// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
// the per-record checksum of the durable solve-record store. Software
// table implementation: the store's logs are a few megabytes, so a
// byte-at-a-time table walk is nowhere near the I/O cost around it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tags::store {

/// Incremental CRC32C: fold `len` bytes into a running crc. Start from 0
/// and pass the previous return value to chain buffers.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t len,
                                   std::uint32_t crc = 0) noexcept;

}  // namespace tags::store
