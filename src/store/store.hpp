// The durable solve-record store: an append-only CRC32C-framed log of
// Records (store/record.hpp, store/log.hpp) plus an atomically-renamed
// index segment for point lookup. One store is a directory:
//
//   <dir>/log.tsl    the record log (append-only, fsync'd commit batches)
//   <dir>/index.tsi  key -> offset of the latest record, rewritten via
//                    write-temp-then-rename after every commit
//
// Durability contract: a record is durable once the commit() that carried
// it returns — the log is fsync'd before the index is published, so the
// index can only ever lag the log, never lead it. Reopen runs log recovery
// (truncate to the committed prefix, bumping store.records_dropped when
// anything was cut) and rebuilds the in-memory index from the surviving
// frames; the on-disk segment is a read-side accelerator (StoreOptions::
// use_index skips the full scan), never the source of truth.
//
// Thread-safe: append/commit/lookup/scan serialize on one mutex (the store
// is I/O-bound; shard workers committing concurrently is the design load).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "store/record.hpp"

namespace tags::store {

struct StoreOptions {
  /// Open without write access (no recovery truncation — the scan still
  /// stops at the first invalid frame, so readers see the same committed
  /// prefix a writer would recover).
  bool read_only = false;
  /// Readers only: trust a valid, exactly-current index segment instead of
  /// scanning the whole log (point lookups then pread + CRC-verify single
  /// records). Falls back to the full scan when the segment is missing,
  /// invalid, or lags the log. An index-served open sees the *live* view
  /// only — the segment maps each key to its latest record, so scan() and
  /// stats().total_records cover live records, not superseded history.
  bool use_index = false;
  /// Fault-injection hooks (also settable via the environment variables
  /// TAGS_STORE_CRASH_AFTER_COMMITS / TAGS_STORE_CRASH_BEFORE_INDEX, so
  /// child processes in the kill-resume tests can be armed externally):
  /// raise SIGKILL after the Nth commit completes (-1: never)...
  int crash_after_commits = -1;
  /// ...and when set, die after the log fsync but *before* the index
  /// segment is published — the index-lags-log recovery case.
  bool crash_before_index = false;
};

struct StoreStats {
  std::uint64_t live_records = 0;    ///< distinct keys (latest record each)
  std::uint64_t total_records = 0;   ///< committed records incl. superseded
  std::uint64_t bytes = 0;           ///< durable log bytes
  std::uint64_t appended = 0;        ///< records appended by this handle
  std::uint64_t commits = 0;         ///< commits issued by this handle
  std::uint64_t dropped_events = 0;  ///< recovery truncations (this open)
  std::uint64_t dropped_bytes = 0;   ///< bytes cut by recovery (this open)
  std::uint64_t decode_failures = 0; ///< CRC-valid frames that failed decode
  bool reinitialized = false;        ///< log header was corrupt: started empty
  bool index_used = false;           ///< open served by the index segment
};

class SolveStore {
 public:
  /// Open (creating when writable) the store directory. Throws
  /// std::runtime_error on I/O failure; corruption never throws — it is
  /// recovered and reported through stats().
  explicit SolveStore(std::string dir, StoreOptions opts = {});
  ~SolveStore();

  SolveStore(const SolveStore&) = delete;
  SolveStore& operator=(const SolveStore&) = delete;

  /// Buffer one record for the next commit. Visible to lookup()
  /// immediately (from this handle), durable only after commit().
  void append(const Record& r);

  /// Make every buffered record durable: write + fsync the log, then
  /// publish the refreshed index segment atomically.
  void commit();

  /// append + commit as one single-record batch.
  void append_commit(const Record& r);

  /// Latest record for a key: pending-but-uncommitted first, then the
  /// committed log (re-read and CRC-verified — a record that rotted on
  /// disk after open returns nullopt and counts store.records_dropped,
  /// never corrupt bytes).
  [[nodiscard]] std::optional<Record> lookup(const RecordKey& key) const;

  /// Iterate every committed record in append order (superseded records
  /// included — this is the history view). Return false to stop early.
  /// Records failing re-verification are skipped (counted as dropped).
  void scan(const std::function<bool(const Record&)>& fn) const;

  [[nodiscard]] std::size_t size() const;  ///< live (distinct-key) records
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept;

  [[nodiscard]] static std::string log_path(const std::string& dir);
  [[nodiscard]] static std::string index_path(const std::string& dir);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace tags::store
