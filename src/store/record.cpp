#include "store/record.hpp"

#include "store/codec.hpp"

namespace tags::store {

namespace {

// Local FNV-1a (the store sits below ctmc/digest.hpp in the link graph, so
// it carries its own copy of the 9-line hash rather than a dependency).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* to_string(RecordKind kind) noexcept {
  switch (kind) {
    case RecordKind::kAnswer: return "answer";
    case RecordKind::kShard: return "shard";
    case RecordKind::kBench: return "bench";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_record(const Record& r) {
  BufWriter w;
  w.put_u32(kRecordSchemaVersion);
  w.put_u16(static_cast<std::uint16_t>(r.key.kind));
  w.put_str(r.key.name);
  w.put_u64(r.key.structure);
  w.put_u64(r.key.point);
  w.put_u8(r.cert.certified ? 1 : 0);
  w.put_u8(r.cert.converged ? 1 : 0);
  w.put_f64(r.cert.residual);
  w.put_f64(r.cert.mass_error);
  w.put_f64(r.cert.condition);
  w.put_f64(r.solve_ms);
  for (const std::uint64_t c : r.warm) w.put_u64(c);
  // The digest is always recomputed at encode time so a record cannot be
  // written with a stale digest; decode_record verifies it.
  w.put_u64(fnv1a(r.payload));
  w.put_bytes(r.payload);
  return std::move(w).take();
}

std::optional<Record> decode_record(std::span<const std::uint8_t> bytes) {
  BufReader rd(bytes);
  const std::uint32_t schema = rd.get_u32();
  if (schema != kRecordSchemaVersion) return std::nullopt;
  Record r;
  const std::uint16_t kind = rd.get_u16();
  if (kind != static_cast<std::uint16_t>(RecordKind::kAnswer) &&
      kind != static_cast<std::uint16_t>(RecordKind::kShard) &&
      kind != static_cast<std::uint16_t>(RecordKind::kBench)) {
    return std::nullopt;
  }
  r.key.kind = static_cast<RecordKind>(kind);
  r.key.name = rd.get_str();
  r.key.structure = rd.get_u64();
  r.key.point = rd.get_u64();
  r.cert.certified = rd.get_u8() != 0;
  r.cert.converged = rd.get_u8() != 0;
  r.cert.residual = rd.get_f64();
  r.cert.mass_error = rd.get_f64();
  r.cert.condition = rd.get_f64();
  r.solve_ms = rd.get_f64();
  for (std::uint64_t& c : r.warm) c = rd.get_u64();
  r.payload_digest = rd.get_u64();
  r.payload = rd.get_bytes();
  if (!rd.ok() || !rd.at_end()) return std::nullopt;
  if (fnv1a(r.payload) != r.payload_digest) return std::nullopt;
  return r;
}

}  // namespace tags::store
