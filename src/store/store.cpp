#include "store/store.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "store/codec.hpp"
#include "store/crc32c.hpp"
#include "store/io.hpp"
#include "store/log.hpp"

namespace tags::store {

namespace {

constexpr char kIndexMagic[8] = {'T', 'S', 'I', 'D', 'X', '0', '1', '\0'};
constexpr std::uint32_t kIndexFormatVersion = 1;

struct KeyHash {
  std::size_t operator()(const RecordKey& k) const noexcept {
    // FNV-1a over the key fields (the store's local copy of the hash).
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
      }
    };
    mix(static_cast<std::uint64_t>(k.kind));
    mix(k.name.size());
    for (const char c : k.name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(k.structure);
    mix(k.point);
    return static_cast<std::size_t>(h);
  }
};

struct IndexSegment {
  std::uint64_t log_bytes = 0;
  std::vector<std::pair<RecordKey, std::uint64_t>> entries;  ///< key -> offset
};

std::vector<std::uint8_t> encode_index(const IndexSegment& seg) {
  BufWriter body;
  body.put_u32(kIndexFormatVersion);
  body.put_u64(seg.log_bytes);
  body.put_u32(static_cast<std::uint32_t>(seg.entries.size()));
  for (const auto& [key, offset] : seg.entries) {
    body.put_u16(static_cast<std::uint16_t>(key.kind));
    body.put_str(key.name);
    body.put_u64(key.structure);
    body.put_u64(key.point);
    body.put_u64(offset);
  }
  BufWriter file;
  for (const char c : kIndexMagic) file.put_u8(static_cast<std::uint8_t>(c));
  const auto& b = body.bytes();
  file.put_u32(crc32c(b.data(), b.size()));
  for (const std::uint8_t byte : b) file.put_u8(byte);
  return std::move(file).take();
}

std::optional<IndexSegment> decode_index(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kIndexMagic) + 4) return std::nullopt;
  for (std::size_t i = 0; i < sizeof(kIndexMagic); ++i) {
    if (bytes[i] != static_cast<std::uint8_t>(kIndexMagic[i])) return std::nullopt;
  }
  BufReader head(bytes.subspan(sizeof(kIndexMagic), 4));
  const std::uint32_t crc = head.get_u32();
  const auto body = bytes.subspan(sizeof(kIndexMagic) + 4);
  if (crc32c(body.data(), body.size()) != crc) return std::nullopt;
  BufReader rd(body);
  if (rd.get_u32() != kIndexFormatVersion) return std::nullopt;
  IndexSegment seg;
  seg.log_bytes = rd.get_u64();
  const std::uint32_t count = rd.get_u32();
  seg.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RecordKey key;
    key.kind = static_cast<RecordKind>(rd.get_u16());
    key.name = rd.get_str();
    key.structure = rd.get_u64();
    key.point = rd.get_u64();
    const std::uint64_t offset = rd.get_u64();
    seg.entries.emplace_back(std::move(key), offset);
  }
  if (!rd.ok() || !rd.at_end()) return std::nullopt;
  return seg;
}

/// Strict integer environment knob: a malformed value (trailing garbage,
/// overflow, not a number at all) keeps the fallback and bumps
/// store.env_parse_errors instead of silently becoming whatever atoi
/// truncated it to ("8GB" used to read as 8, "oops" as 0).
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    obs::count("store.env_parse_errors");
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace

struct SolveStore::State {
  explicit State(std::string dir, StoreOptions opts)
      : dir(std::move(dir)),
        opts(opts),
        appended_counter("store.records_appended"),
        commits_counter("store.commits"),
        dropped_counter("store.records_dropped"),
        recovered_counter("store.records_recovered"),
        decode_failed_counter("store.decode_failures"),
        lookups_counter("store.lookups"),
        lookup_hits_counter("store.lookup_hits"),
        records_gauge("store.records"),
        bytes_gauge("store.bytes") {}

  const std::string dir;
  StoreOptions opts;

  mutable std::mutex m;
  std::unique_ptr<LogFile> log;

  /// key -> offset of the latest record (committed or pending).
  std::unordered_map<RecordKey, std::uint64_t, KeyHash> index;
  /// Every committed record's (offset, key), in append order — the scan view.
  std::vector<std::pair<std::uint64_t, RecordKey>> history;
  /// Appended but not yet committed, keyed by the offset append() assigned.
  std::unordered_map<std::uint64_t, Record> pending;
  std::vector<std::uint64_t> pending_order;

  StoreStats st;
  int commits_until_crash = -1;

  obs::Counter appended_counter;
  obs::Counter commits_counter;
  obs::Counter dropped_counter;
  obs::Counter recovered_counter;
  obs::Counter decode_failed_counter;
  obs::Counter lookups_counter;
  obs::Counter lookup_hits_counter;
  obs::Gauge records_gauge;
  obs::Gauge bytes_gauge;

  void publish_index_locked() {
    IndexSegment seg;
    seg.log_bytes = log->durable_bytes();
    seg.entries.assign(index.begin(), index.end());
    // Publication failure is tolerated: the index is an accelerator, and
    // the next open rebuilds it from the log.
    (void)atomic_write_file(index_path(dir), encode_index(seg));
  }

  void refresh_gauges_locked() {
    records_gauge.set(static_cast<double>(index.size()));
    bytes_gauge.set(static_cast<double>(log->durable_bytes()));
  }
};

std::string SolveStore::log_path(const std::string& dir) { return dir + "/log.tsl"; }
std::string SolveStore::index_path(const std::string& dir) { return dir + "/index.tsi"; }

SolveStore::SolveStore(std::string dir, StoreOptions opts)
    : state_(std::make_unique<State>(std::move(dir), opts)) {
  State& s = *state_;
  s.opts.crash_after_commits =
      env_int("TAGS_STORE_CRASH_AFTER_COMMITS", s.opts.crash_after_commits);
  s.opts.crash_before_index =
      env_int("TAGS_STORE_CRASH_BEFORE_INDEX", s.opts.crash_before_index ? 1 : 0) != 0;
  s.commits_until_crash = s.opts.crash_after_commits;

  if (!s.opts.read_only) {
    std::error_code ec;
    std::filesystem::create_directories(s.dir, ec);
    if (ec) {
      throw std::runtime_error("store: cannot create directory " + s.dir + ": " +
                               ec.message());
    }
  }

  // Reader fast path: a valid index segment whose watermark matches the
  // log exactly lets us skip the full scan — every record it points at is
  // still CRC-verified at read time. A lagging segment (crash between the
  // log fsync and the index publish) falls back to the scan so readers
  // never miss records the log already made durable.
  if (s.opts.read_only && s.opts.use_index) {
    if (const auto bytes = read_file_bytes(index_path(s.dir))) {
      if (const auto seg = decode_index(*bytes)) {
        auto log = std::make_unique<LogFile>(log_path(s.dir), /*read_only=*/true,
                                             LogFile::FrameFn{});
        if (seg->log_bytes == log->durable_bytes()) {
          s.log = std::move(log);
          for (const auto& [key, offset] : seg->entries) {
            if (offset + kFrameHeaderBytes <= seg->log_bytes) {
              s.index.emplace(key, offset);
              s.history.emplace_back(offset, key);
            }
          }
          std::sort(s.history.begin(), s.history.end(),
                    [](const auto& a, const auto& b) { return a.first < b.first; });
          s.st.index_used = true;
          s.st.live_records = s.index.size();
          s.st.total_records = s.history.size();
          s.st.bytes = s.log->durable_bytes();
          return;
        }
      }
    }
  }

  // Recovery open: scan and verify every frame, decode the surviving
  // records, truncate the log to the committed prefix.
  const auto on_frame = [&s](std::uint64_t offset,
                             std::span<const std::uint8_t> payload) {
    if (const auto record = decode_record(payload)) {
      s.index[record->key] = offset;
      s.history.emplace_back(offset, record->key);
    } else {
      // Frame CRC passed but the record is not parseable (e.g. a future
      // schema version). Skipped, never served.
      ++s.st.decode_failures;
      s.decode_failed_counter.add(1);
    }
  };
  s.log = std::make_unique<LogFile>(log_path(s.dir), s.opts.read_only, on_frame);

  const RecoverStats& rec = s.log->recovery();
  s.st.dropped_events = rec.drop_events;
  s.st.dropped_bytes = rec.dropped_bytes;
  s.st.reinitialized = rec.reinitialized;
  s.st.live_records = s.index.size();
  s.st.total_records = s.history.size();
  s.st.bytes = rec.bytes;
  if (rec.drop_events > 0) s.dropped_counter.add(rec.drop_events);
  if (rec.frames > 0) s.recovered_counter.add(rec.frames);

  // Refresh a stale or missing index segment so readers can trust it.
  if (!s.opts.read_only) {
    const auto existing = read_file_bytes(index_path(s.dir));
    std::optional<IndexSegment> seg;
    if (existing) seg = decode_index(*existing);
    if (!seg || seg->log_bytes != s.log->durable_bytes() ||
        seg->entries.size() != s.index.size()) {
      s.publish_index_locked();
    }
  }
  s.refresh_gauges_locked();
}

SolveStore::~SolveStore() {
  // Buffered-but-uncommitted records die with the handle by design: the
  // durability unit is commit(), and destructors must not fsync surprise
  // batches mid-crash.
}

void SolveStore::append(const Record& r) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  Record stored = r;
  stored.payload_digest = 0;  // recomputed by encode_record
  const auto bytes = encode_record(stored);
  const std::uint64_t offset = s.log->append(bytes);
  s.index[stored.key] = offset;
  s.pending.emplace(offset, std::move(stored));
  s.pending_order.push_back(offset);
  ++s.st.appended;
  s.appended_counter.add(1);
}

void SolveStore::commit() {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  if (s.pending_order.empty()) return;
  s.log->commit();
  ++s.st.commits;
  s.commits_counter.add(1);

  const bool crash_now =
      s.commits_until_crash >= 0 && --s.commits_until_crash < 0;
  if (crash_now && s.opts.crash_before_index) {
    // Fault injection: the log batch is durable, the index is not — the
    // reopen must recover from the log alone.
    std::raise(SIGKILL);
  }

  for (const std::uint64_t offset : s.pending_order) {
    s.history.emplace_back(offset, s.pending.at(offset).key);
  }
  s.pending.clear();
  s.pending_order.clear();
  s.st.live_records = s.index.size();
  s.st.total_records = s.history.size();
  s.st.bytes = s.log->durable_bytes();
  s.publish_index_locked();
  s.refresh_gauges_locked();

  if (crash_now) std::raise(SIGKILL);
}

void SolveStore::append_commit(const Record& r) {
  append(r);
  commit();
}

std::optional<Record> SolveStore::lookup(const RecordKey& key) const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  s.lookups_counter.add(1);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return std::nullopt;
  if (const auto pending = s.pending.find(it->second); pending != s.pending.end()) {
    s.lookup_hits_counter.add(1);
    return pending->second;
  }
  if (const auto payload = s.log->read_frame(it->second)) {
    if (auto record = decode_record(*payload)) {
      s.lookup_hits_counter.add(1);
      return record;
    }
  }
  // The frame rotted on disk after open (or the index pointed at garbage):
  // report a miss, never corrupt bytes.
  s.dropped_counter.add(1);
  return std::nullopt;
}

void SolveStore::scan(const std::function<bool(const Record&)>& fn) const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  for (const auto& [offset, key] : s.history) {
    const auto payload = s.log->read_frame(offset);
    if (!payload) {
      s.dropped_counter.add(1);
      continue;
    }
    auto record = decode_record(*payload);
    if (!record) {
      s.dropped_counter.add(1);
      continue;
    }
    if (!fn(*record)) return;
  }
}

std::size_t SolveStore::size() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  return s.index.size();
}

StoreStats SolveStore::stats() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  return s.st;
}

const std::string& SolveStore::directory() const noexcept { return state_->dir; }

}  // namespace tags::store
