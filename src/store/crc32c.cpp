#include "store/crc32c.hpp"

#include <array>

namespace tags::store {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace tags::store
