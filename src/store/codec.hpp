// Little-endian binary encoding for store records and index segments —
// explicitly byte-ordered so a log written on any supported platform reads
// back identically, and doubles round-trip bit-exactly (the store's
// byte-identity contract rides on this). Header-only; also used by the
// higher layers (core, serve) to encode their record payloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tags::store {

class BufWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Bit-pattern encoding: NaNs and signed zeros round-trip exactly.
  void put_f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_str(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_bytes(std::span<const std::uint8_t> b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader. Any out-of-range read latches ok() == false and
/// returns zero values; callers check ok() once at the end, so a truncated
/// or corrupt payload decodes to "invalid", never to a crash.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() {
    if (pos_ + 1 > data_.size()) return fail_u8();
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t get_u16() {
    std::uint16_t v = get_u8();
    v |= static_cast<std::uint16_t>(get_u8()) << 8;
    return v;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string get_str() {
    const std::uint32_t n = get_u32();
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::vector<std::uint8_t> get_bytes() {
    const std::uint32_t n = get_u32();
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::uint8_t fail_u8() noexcept {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tags::store
