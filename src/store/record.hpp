// The solve record: one durable unit of the results store. The envelope
// carries everything a query needs without decoding the payload — schema
// version, the (kind, name, structure, point) key, the payload digest, a
// certificate summary, timings, and a warm-start telemetry snapshot — and
// the payload is an opaque byte string encoded by the owning layer
// (serve::encode_answer for answers, the metrics codec in core for sweep
// shards, the gauge snapshot in bench_util for bench history).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tags::store {

/// Record-envelope schema. Bumped on any change to encode_record's layout;
/// decoders reject versions they do not know rather than misparse.
inline constexpr std::uint32_t kRecordSchemaVersion = 1;

enum class RecordKind : std::uint16_t {
  kAnswer = 1,  ///< one served/one-shot scenario answer (payload: serve codec)
  kShard = 2,   ///< one committed sweep shard (payload: metrics/row codec)
  kBench = 3,   ///< one bench run's gauge snapshot (payload: name/value pairs)
};

[[nodiscard]] const char* to_string(RecordKind kind) noexcept;

/// Point-lookup key. The field meaning depends on the kind:
///  kAnswer: name = policy wire name, structure = ctmc::structure_digest,
///           point = core::rate_digest of the scenario.
///  kShard:  name = sweep name, structure = the sweep digest (grid + base
///           parameters + shard plan), point = shard index.
///  kBench:  name = bench id, structure/point = 0 (history read via scan).
struct RecordKey {
  RecordKind kind = RecordKind::kAnswer;
  std::string name;
  std::uint64_t structure = 0;
  std::uint64_t point = 0;

  bool operator==(const RecordKey&) const = default;
};

/// What the solver certified about the recorded solution (a compressed
/// linalg::Certificate — enough for store_query to triage a record without
/// decoding pi).
struct CertSummary {
  bool certified = false;  ///< linalg::Certificate::ok()
  bool converged = false;
  double residual = 0.0;    ///< recomputed ||pi Q||_inf
  double mass_error = 0.0;  ///< |1 - sum(pi)|
  double condition = 0.0;   ///< cond_1 estimate (0: not computed)
};

/// Warm-start telemetry snapshot (hits, misses, cleared, uncertified) —
/// journalled per shard so a resumed sweep reports counters identical to
/// the uninterrupted run.
using WarmCounters = std::array<std::uint64_t, 4>;

struct Record {
  RecordKey key;
  CertSummary cert;
  double solve_ms = 0.0;            ///< wall time the payload cost to compute
  WarmCounters warm{};              ///< telemetry snapshot
  std::uint64_t payload_digest = 0; ///< FNV-1a over the payload bytes
  std::vector<std::uint8_t> payload;
};

/// Envelope encoding (schema version first; see DESIGN.md "Durable
/// solve-record store" for the byte layout). The CRC32C frame around the
/// encoded record is the log layer's job, not this one's.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const Record& r);

/// Decode one record payload. nullopt on any structural problem: unknown
/// schema version, truncated fields, payload-digest mismatch, trailing
/// bytes. A frame whose CRC passed can still fail here (defence in depth);
/// callers treat both identically as corruption.
[[nodiscard]] std::optional<Record> decode_record(std::span<const std::uint8_t> bytes);

}  // namespace tags::store
