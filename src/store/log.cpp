#include "store/log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "store/crc32c.hpp"
#include "store/io.hpp"

namespace tags::store {

namespace {

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("store log " + path + ": " + what + ": " +
                           std::strerror(errno));
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t n =
        ::pwrite(fd, data + done, len - done, static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// pread exactly len bytes; false on EOF-before-len or error.
bool read_all(int fd, std::uint8_t* data, std::size_t len, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t n =
        ::pread(fd, data + done, len - done, static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> encode_header() {
  std::vector<std::uint8_t> h(kLogHeaderBytes);
  std::memcpy(h.data(), kLogMagic, sizeof(kLogMagic));
  store_u32(h.data() + 8, kLogFormatVersion);
  store_u32(h.data() + 12, crc32c(h.data(), 12));
  return h;
}

}  // namespace

LogFile::LogFile(std::string path, bool read_only, const FrameFn& on_frame)
    : path_(std::move(path)), read_only_(read_only) {
  const int flags = (read_only_ ? O_RDONLY : O_RDWR | O_CREAT) | O_CLOEXEC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) io_fail(path_, "open");

  const ::off_t raw_size = ::lseek(fd_, 0, SEEK_END);
  if (raw_size < 0) io_fail(path_, "lseek");
  std::uint64_t file_size = static_cast<std::uint64_t>(raw_size);

  // Fresh file: stamp the header and we are done.
  if (file_size == 0 && !read_only_) {
    const auto header = encode_header();
    if (!write_all(fd_, header.data(), header.size(), 0)) io_fail(path_, "write header");
    if (::fsync(fd_) != 0) io_fail(path_, "fsync header");
    durable_end_ = write_end_ = kLogHeaderBytes;
    recover_.bytes = kLogHeaderBytes;
    return;
  }

  // Header check. A corrupt header means no frame can be trusted: the whole
  // file is dropped and the log reinitialized (counted as one drop event).
  bool header_ok = false;
  if (file_size >= kLogHeaderBytes) {
    std::uint8_t h[kLogHeaderBytes];
    if (!read_all(fd_, h, sizeof(h), 0)) io_fail(path_, "read header");
    header_ok = std::memcmp(h, kLogMagic, sizeof(kLogMagic)) == 0 &&
                load_u32(h + 8) == kLogFormatVersion &&
                load_u32(h + 12) == crc32c(h, 12);
  }
  if (!header_ok) {
    recover_.dropped_bytes = file_size;
    recover_.drop_events = file_size > 0 ? 1 : 0;
    recover_.reinitialized = true;
    if (read_only_) {
      durable_end_ = write_end_ = 0;
      recover_.bytes = 0;
      return;
    }
    if (::ftruncate(fd_, 0) != 0) io_fail(path_, "truncate");
    const auto header = encode_header();
    if (!write_all(fd_, header.data(), header.size(), 0)) io_fail(path_, "write header");
    if (::fsync(fd_) != 0) io_fail(path_, "fsync header");
    durable_end_ = write_end_ = kLogHeaderBytes;
    recover_.bytes = kLogHeaderBytes;
    return;
  }

  // Frame scan: advance while every frame verifies; stop (and truncate) at
  // the first byte that does not.
  std::uint64_t offset = kLogHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (offset + kFrameHeaderBytes <= file_size) {
    std::uint8_t fh[kFrameHeaderBytes];
    if (!read_all(fd_, fh, sizeof(fh), offset)) io_fail(path_, "read frame header");
    const std::uint32_t magic = load_u32(fh);
    const std::uint32_t len = load_u32(fh + 4);
    const std::uint32_t crc = load_u32(fh + 8);
    if (magic != kFrameMagic || len > kMaxFrameBytes ||
        offset + kFrameHeaderBytes + len > file_size) {
      break;
    }
    payload.resize(len);
    if (len > 0 && !read_all(fd_, payload.data(), len, offset + kFrameHeaderBytes)) {
      io_fail(path_, "read frame payload");
    }
    if (crc32c(payload.data(), len) != crc) break;
    if (on_frame) on_frame(offset, payload);
    ++recover_.frames;
    offset += kFrameHeaderBytes + len;
  }

  if (offset < file_size) {
    recover_.dropped_bytes = file_size - offset;
    recover_.drop_events = 1;
    if (!read_only_) {
      if (::ftruncate(fd_, static_cast<::off_t>(offset)) != 0) io_fail(path_, "truncate");
      if (::fsync(fd_) != 0) io_fail(path_, "fsync after truncate");
    }
  }
  durable_end_ = write_end_ = offset;
  recover_.bytes = offset;
}

LogFile::~LogFile() {
  if (fd_ >= 0) (void)::close(fd_);
}

std::uint64_t LogFile::append(std::span<const std::uint8_t> payload) {
  if (read_only_) throw std::logic_error("store log: append on read-only log");
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("store log: record exceeds kMaxFrameBytes");
  }
  const std::uint64_t offset = write_end_;
  std::uint8_t fh[kFrameHeaderBytes];
  store_u32(fh, kFrameMagic);
  store_u32(fh + 4, static_cast<std::uint32_t>(payload.size()));
  store_u32(fh + 8, crc32c(payload.data(), payload.size()));
  buffer_.insert(buffer_.end(), fh, fh + sizeof(fh));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  write_end_ += kFrameHeaderBytes + payload.size();
  ++pending_;
  return offset;
}

void LogFile::commit() {
  if (buffer_.empty()) return;
  if (!write_all(fd_, buffer_.data(), buffer_.size(), durable_end_)) {
    io_fail(path_, "write");
  }
  if (::fsync(fd_) != 0) io_fail(path_, "fsync");
  durable_end_ = write_end_;
  buffer_.clear();
  pending_ = 0;
}

std::optional<std::vector<std::uint8_t>> LogFile::read_frame(
    std::uint64_t offset) const {
  if (offset + kFrameHeaderBytes > durable_end_) return std::nullopt;
  std::uint8_t fh[kFrameHeaderBytes];
  if (!read_all(fd_, fh, sizeof(fh), offset)) return std::nullopt;
  const std::uint32_t magic = load_u32(fh);
  const std::uint32_t len = load_u32(fh + 4);
  const std::uint32_t crc = load_u32(fh + 8);
  if (magic != kFrameMagic || len > kMaxFrameBytes ||
      offset + kFrameHeaderBytes + len > durable_end_) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !read_all(fd_, payload.data(), len, offset + kFrameHeaderBytes)) {
    return std::nullopt;
  }
  if (crc32c(payload.data(), len) != crc) return std::nullopt;
  return payload;
}

}  // namespace tags::store
