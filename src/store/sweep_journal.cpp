#include "store/sweep_journal.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace tags::store {

namespace {

obs::Counter& journaled_counter() {
  static obs::Counter c("store.shards_journaled");
  return c;
}

obs::Counter& resumed_counter() {
  static obs::Counter c("store.shards_resumed");
  return c;
}

}  // namespace

SweepJournal::SweepJournal(SolveStore& store, std::string sweep_name,
                           std::uint64_t sweep_digest)
    : store_(store), name_(std::move(sweep_name)), digest_(sweep_digest) {}

std::optional<std::vector<std::uint8_t>> SweepJournal::load_shard(
    std::size_t shard, WarmCounters* warm, double* elapsed_ms) const {
  const RecordKey key{RecordKind::kShard, name_, digest_,
                      static_cast<std::uint64_t>(shard)};
  auto record = store_.lookup(key);
  if (!record) return std::nullopt;
  if (warm != nullptr) *warm = record->warm;
  if (elapsed_ms != nullptr) *elapsed_ms = record->solve_ms;
  resumed_counter().add(1);
  return std::move(record->payload);
}

void SweepJournal::commit_shard(std::size_t shard,
                                std::span<const std::uint8_t> payload,
                                const WarmCounters& warm, double elapsed_ms) {
  Record r;
  r.key = RecordKey{RecordKind::kShard, name_, digest_,
                    static_cast<std::uint64_t>(shard)};
  r.warm = warm;
  r.solve_ms = elapsed_ms;
  r.payload.assign(payload.begin(), payload.end());
  store_.append_commit(r);
  journaled_counter().add(1);
}

}  // namespace tags::store
