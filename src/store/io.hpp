// POSIX file plumbing for the store: fsync wrappers and the
// write-temp-then-rename primitive the index segments (and anything else
// that must never be seen half-written) are published with.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tags::store {

/// fsync the directory containing `path` (best effort: after a rename the
/// directory entry itself must reach disk for the rename to be durable).
void fsync_parent_dir(const std::string& path) noexcept;

/// Write `bytes` to a temporary file next to `path`, fsync it, and rename
/// it over `path` (then fsync the directory). A reader concurrently
/// opening `path` sees either the old contents or the new, never a tear.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     std::span<const std::uint8_t> bytes) noexcept;

/// Slurp a whole file; nullopt when it does not exist or cannot be read.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path);

}  // namespace tags::store
