// The append-only checksummed log under the solve-record store. Layout:
//
//   header (16 bytes): magic "TSLOG01\0" | u32 format version | u32 CRC32C
//                      of the preceding 12 bytes
//   frame  (12 + n):   u32 frame magic | u32 payload length n | u32 CRC32C
//                      of the payload | payload bytes
//
// all integers little-endian. Appends are buffered; commit() writes the
// buffered frames with one pwrite per frame and fsyncs — a batch is either
// fully durable or recoverable to the previous commit. Reopen always runs
// recovery: every frame is re-verified in order and the file is truncated
// at the first invalid byte (bad magic, impossible length, CRC mismatch,
// torn tail), so the survivors are exactly the committed prefix. There is
// deliberately no resync-after-corruption: once framing is broken nothing
// after it can be trusted, and the recovery invariant ("the committed
// prefix, nothing else") stays provable. See DESIGN.md "Durable
// solve-record store".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tags::store {

inline constexpr char kLogMagic[8] = {'T', 'S', 'L', 'O', 'G', '0', '1', '\0'};
inline constexpr std::uint32_t kLogFormatVersion = 1;
inline constexpr std::size_t kLogHeaderBytes = 16;
inline constexpr std::uint32_t kFrameMagic = 0x52465354u;  // "TSFR"
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on one frame's payload: anything larger is corruption by
/// definition (a full fig09 H2 answer with pi is ~100 KB).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

/// What recovery found and did on open.
struct RecoverStats {
  std::uint64_t frames = 0;         ///< valid frames surviving recovery
  std::uint64_t bytes = 0;          ///< durable file size after recovery
  std::uint64_t dropped_bytes = 0;  ///< corrupt/torn tail bytes truncated away
  std::uint64_t drop_events = 0;    ///< 1 when a truncation happened, else 0
  bool reinitialized = false;       ///< header was corrupt: log reset to empty
};

class LogFile {
 public:
  /// Called for each valid frame during open: (file offset of the frame
  /// header, payload bytes).
  using FrameFn = std::function<void(std::uint64_t offset,
                                     std::span<const std::uint8_t> payload)>;

  /// Open `path` (created empty with a fresh header when absent), run
  /// recovery, and report every surviving frame through `on_frame`.
  /// `read_only` opens without write access and skips the truncation (the
  /// scan still stops at the first invalid frame). Throws
  /// std::runtime_error on I/O failure (not on corruption — corruption is
  /// recovered, I/O errors are not).
  LogFile(std::string path, bool read_only, const FrameFn& on_frame);
  ~LogFile();

  LogFile(const LogFile&) = delete;
  LogFile& operator=(const LogFile&) = delete;

  /// Buffer one frame for the next commit. Returns the file offset the
  /// frame will occupy (usable as an index entry immediately — the index
  /// is only published after the commit that makes the offset real).
  std::uint64_t append(std::span<const std::uint8_t> payload);

  /// Write all buffered frames and fsync the file. Throws
  /// std::runtime_error on I/O failure. No-op when nothing is buffered.
  void commit();

  /// Re-read and verify one frame (by the offset append/open reported).
  /// nullopt when the frame fails verification — a reader-side guard for
  /// corruption that happened after open (see SolveStore::lookup).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_frame(
      std::uint64_t offset) const;

  [[nodiscard]] std::uint64_t durable_bytes() const noexcept { return durable_end_; }
  [[nodiscard]] std::uint64_t pending_frames() const noexcept { return pending_; }
  [[nodiscard]] const RecoverStats& recovery() const noexcept { return recover_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  bool read_only_ = false;
  std::uint64_t durable_end_ = 0;  ///< fsync'd high-water mark
  std::uint64_t write_end_ = 0;    ///< durable_end_ + buffered bytes
  std::vector<std::uint8_t> buffer_;
  std::uint64_t pending_ = 0;
  RecoverStats recover_;
};

}  // namespace tags::store
