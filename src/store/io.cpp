#include "store/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>

namespace tags::store {

void fsync_parent_dir(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

bool atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) noexcept {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      (void)::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

std::optional<std::vector<std::uint8_t>> read_file_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  (void)::close(fd);
  return out;
}

}  // namespace tags::store
