// Crash-safe sweep journalling on top of SolveStore: one kShard record per
// completed shard, keyed by (sweep name, sweep digest, shard index). A
// resumed sweep loads the committed shards (payload + the shard's
// warm-start counter snapshot) and re-evaluates only the rest — the sweep
// digest covers the grid, base parameters, and shard plan, so a journal
// can never be replayed against a different sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/store.hpp"

namespace tags::store {

class SweepJournal {
 public:
  /// `sweep_digest` must be a digest of everything that determines the
  /// shard payloads: policy, base parameters, grid values, shard plan.
  SweepJournal(SolveStore& store, std::string sweep_name, std::uint64_t sweep_digest);

  /// Committed payload of one shard, with its warm-start counter snapshot;
  /// nullopt when the shard was never committed (or failed verification).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load_shard(
      std::size_t shard, WarmCounters* warm, double* elapsed_ms = nullptr) const;

  /// Journal one completed shard: append + fsync commit (one durable batch
  /// per shard — the commit boundary *is* the resume point).
  void commit_shard(std::size_t shard, std::span<const std::uint8_t> payload,
                    const WarmCounters& warm, double elapsed_ms);

  [[nodiscard]] std::uint64_t sweep_digest() const noexcept { return digest_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  SolveStore& store_;
  std::string name_;
  std::uint64_t digest_;
};

}  // namespace tags::store
