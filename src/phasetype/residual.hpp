// Residual-life computations for the TAGS timeout race (paper Section 3.2).
//
// A job with H2(alpha, mu1, mu2) demand races an Erlang(k, t) timeout. If
// the timeout wins, the surviving demand is again H2 with the *same* rates
// but a shifted mixing probability alpha' (exponential memorylessness within
// each branch): alpha' = alpha r1 / (alpha r1 + (1-alpha) r2), where
// r_i = P(Exp(mu_i) survives Erlang(k,t)) = (t / (t + mu_i))^k.
#pragma once

#include "phasetype/ph.hpp"

namespace tags::ph {

/// P(Exp(mu) > Erlang(k, t)) = (t/(t+mu))^k.
[[nodiscard]] double exp_survival_vs_erlang(double mu, unsigned k, double t);

/// The paper's alpha': mixing probability of the residual H2 after a job
/// survives an Erlang(k, t) timeout. k is the total number of Erlang phases
/// (the paper's n ticks + 1 timeout phase => k = n + 1).
[[nodiscard]] double h2_alpha_prime(double alpha, double mu1, double mu2, unsigned k,
                                    double t);

/// Probability that an H2(alpha, mu1, mu2) job times out against
/// Erlang(k, t).
[[nodiscard]] double h2_timeout_probability(double alpha, double mu1, double mu2,
                                            unsigned k, double t);

}  // namespace tags::ph
