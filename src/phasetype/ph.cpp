#include "phasetype/ph.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace tags::ph {

using linalg::DenseMatrix;
using linalg::Vec;

PhaseType::PhaseType(Vec alpha, DenseMatrix t) : alpha_(std::move(alpha)), t_(std::move(t)) {
  const std::size_t m = alpha_.size();
  if (t_.rows() != m || t_.cols() != m) {
    throw std::invalid_argument("PhaseType: alpha/T dimension mismatch");
  }
  double mass = 0.0;
  for (double a : alpha_) {
    if (a < -1e-12) throw std::invalid_argument("PhaseType: negative alpha entry");
    mass += a;
  }
  if (mass > 1.0 + 1e-9) throw std::invalid_argument("PhaseType: alpha sums above 1");
  for (std::size_t i = 0; i < m; ++i) {
    if (t_(i, i) > 0.0) throw std::invalid_argument("PhaseType: positive diagonal in T");
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i != j && t_(i, j) < -1e-12) {
        throw std::invalid_argument("PhaseType: negative off-diagonal in T");
      }
      row += t_(i, j);
    }
    if (row > 1e-9 * std::max(1.0, -t_(i, i))) {
      throw std::invalid_argument("PhaseType: T row sums must be <= 0");
    }
  }
}

Vec PhaseType::exit_rates() const {
  const std::size_t m = n_phases();
  Vec t0(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) row += t_(i, j);
    t0[i] = -row;
  }
  return t0;
}

double PhaseType::moment(unsigned k) const {
  const std::size_t m = n_phases();
  if (m == 0 || k == 0) return k == 0 ? 1.0 : 0.0;
  // (-T) x = ones; then repeatedly (-T) x_{j+1} = x_j. m_k = k! alpha x_k.
  DenseMatrix neg_t(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) neg_t(i, j) = -t_(i, j);
  const linalg::LuFactorization f = linalg::lu_factor(std::move(neg_t));
  if (f.singular()) throw std::runtime_error("PhaseType::moment: singular -T");
  Vec x(m, 1.0);
  double factorial = 1.0;
  for (unsigned j = 1; j <= k; ++j) {
    f.solve_in_place(x);
    factorial *= static_cast<double>(j);
  }
  return factorial * linalg::dot(alpha_, x);
}

double PhaseType::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double PhaseType::scv() const {
  const double m1 = moment(1);
  return variance() / (m1 * m1);
}

Vec PhaseType::expm_apply(double x, const Vec& v) const {
  const std::size_t m = n_phases();
  if (x == 0.0) return v;
  // Uniformization: T = lambda (P - I) with P = I + T/lambda substochastic.
  double lambda = 0.0;
  for (std::size_t i = 0; i < m; ++i) lambda = std::max(lambda, -t_(i, i));
  lambda = lambda * 1.02 + 1e-300;
  // Split long horizons to keep the Poisson series short and stable.
  const double max_jumps = 512.0;
  const int n_steps = std::max(1, static_cast<int>(std::ceil(lambda * x / max_jumps)));
  const double dt = x / n_steps;
  const double q = lambda * dt;

  Vec result = v;
  Vec term(m), acc(m), next(m);
  for (int s = 0; s < n_steps; ++s) {
    term = result;
    linalg::set_zero(acc);
    double w = std::exp(-q);
    double cumulative = 0.0;
    std::size_t k = 0;
    while (cumulative < 1.0 - 1e-15) {
      linalg::axpy(w, term, acc);
      cumulative += w;
      ++k;
      w *= q / static_cast<double>(k);
      if (k > static_cast<std::size_t>(q + 60.0 * std::sqrt(q + 1.0) + 60.0)) break;
      // next = P term = term + (T term)/lambda.
      t_.multiply(term, next);
      for (std::size_t i = 0; i < m; ++i) next[i] = term[i] + next[i] / lambda;
      term.swap(next);
    }
    result = acc;
  }
  return result;
}

double PhaseType::survival(double x) const {
  if (x < 0.0) return 1.0;
  const Vec ones(n_phases(), 1.0);
  const Vec ex = expm_apply(x, ones);
  return std::min(1.0, std::max(0.0, linalg::dot(alpha_, ex)));
}

double PhaseType::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const Vec ex = expm_apply(x, exit_rates());
  return std::max(0.0, linalg::dot(alpha_, ex));
}

double PhaseType::laplace(double s) const {
  const std::size_t m = n_phases();
  DenseMatrix a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = (i == j ? s : 0.0) - t_(i, j);
  }
  const Vec x = linalg::lu_solve(a, exit_rates());
  double mass = 0.0;
  for (double v : alpha_) mass += v;
  return linalg::dot(alpha_, x) + (1.0 - mass);  // atom at zero transforms to 1
}

double PhaseType::survival_against_erlang(unsigned k, double theta) const {
  const std::size_t m = n_phases();
  DenseMatrix a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = (i == j ? theta : 0.0) - t_(i, j);
  }
  const linalg::LuFactorization f = linalg::lu_factor(std::move(a));
  if (f.singular()) throw std::runtime_error("survival_against_erlang: singular system");
  Vec v(m, 1.0);
  for (unsigned step = 0; step < k; ++step) {
    f.solve_in_place(v);
    linalg::scale(theta, v);
  }
  return linalg::dot(alpha_, v);
}

PhaseType PhaseType::residual_after_erlang(unsigned k, double theta) const {
  const std::size_t m = n_phases();
  // beta_j proportional to [alpha (theta(theta I - T)^{-1})^k]_j.
  DenseMatrix a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) a(i, j) = (i == j ? theta : 0.0) - t_(i, j);
  }
  const linalg::LuFactorization f = linalg::lu_factor(std::move(a));
  if (f.singular()) throw std::runtime_error("residual_after_erlang: singular system");
  Vec beta = alpha_;
  for (unsigned step = 0; step < k; ++step) {
    // Row-vector update: beta <- theta * beta (theta I - T)^{-1}
    // i.e. solve (theta I - T)^T x = beta.
    beta = f.solve_transpose(beta);
    linalg::scale(theta, beta);
  }
  const double norm = linalg::sum(beta);
  if (norm <= 0.0) {
    throw std::runtime_error("residual_after_erlang: survival probability is zero");
  }
  linalg::scale(1.0 / norm, beta);
  return PhaseType(std::move(beta), t_);
}

// -- Constructors -----------------------------------------------------------

PhaseType exponential(double rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("exponential: rate must be > 0");
  DenseMatrix t(1, 1);
  t(0, 0) = -rate;
  return PhaseType({1.0}, std::move(t));
}

PhaseType erlang(unsigned k, double rate) {
  if (k == 0 || !(rate > 0.0)) throw std::invalid_argument("erlang: bad parameters");
  DenseMatrix t(k, k);
  for (unsigned i = 0; i < k; ++i) {
    t(i, i) = -rate;
    if (i + 1 < k) t(i, i + 1) = rate;
  }
  Vec alpha(k, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType hyperexp2(double p, double mu1, double mu2) {
  return hyperexp({p, 1.0 - p}, {mu1, mu2});
}

PhaseType hyperexp(const Vec& weights, const Vec& rates) {
  if (weights.size() != rates.size() || weights.empty()) {
    throw std::invalid_argument("hyperexp: weights/rates mismatch");
  }
  const std::size_t m = weights.size();
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("hyperexp: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("hyperexp: zero total weight");
  DenseMatrix t(m, m);
  Vec alpha(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!(rates[i] > 0.0)) throw std::invalid_argument("hyperexp: rate must be > 0");
    t(i, i) = -rates[i];
    alpha[i] = weights[i] / total;
  }
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType coxian(const Vec& rates, const Vec& cont) {
  const std::size_t m = rates.size();
  if (m == 0 || cont.size() != m - 1) {
    throw std::invalid_argument("coxian: need m rates and m-1 continuation probs");
  }
  DenseMatrix t(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!(rates[i] > 0.0)) throw std::invalid_argument("coxian: rate must be > 0");
    t(i, i) = -rates[i];
    if (i + 1 < m) {
      if (cont[i] < 0.0 || cont[i] > 1.0) {
        throw std::invalid_argument("coxian: continuation prob out of [0,1]");
      }
      t(i, i + 1) = rates[i] * cont[i];
    }
  }
  Vec alpha(m, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(t));
}

// -- Closure operations -----------------------------------------------------

PhaseType convolve(const PhaseType& a, const PhaseType& b) {
  const std::size_t ma = a.n_phases(), mb = b.n_phases();
  const Vec ta0 = a.exit_rates();
  DenseMatrix t(ma + mb, ma + mb);
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < ma; ++j) t(i, j) = a.T()(i, j);
    // Absorption from A enters B with B's initial distribution.
    for (std::size_t j = 0; j < mb; ++j) t(i, ma + j) = ta0[i] * b.alpha()[j];
  }
  for (std::size_t i = 0; i < mb; ++i)
    for (std::size_t j = 0; j < mb; ++j) t(ma + i, ma + j) = b.T()(i, j);

  double a_mass = 0.0;
  for (double v : a.alpha()) a_mass += v;
  Vec alpha(ma + mb, 0.0);
  for (std::size_t i = 0; i < ma; ++i) alpha[i] = a.alpha()[i];
  // If A has an atom at zero, start directly in B.
  for (std::size_t j = 0; j < mb; ++j) alpha[ma + j] = (1.0 - a_mass) * b.alpha()[j];
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType mixture(double p, const PhaseType& a, const PhaseType& b) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("mixture: p out of [0,1]");
  const std::size_t ma = a.n_phases(), mb = b.n_phases();
  DenseMatrix t(ma + mb, ma + mb);
  for (std::size_t i = 0; i < ma; ++i)
    for (std::size_t j = 0; j < ma; ++j) t(i, j) = a.T()(i, j);
  for (std::size_t i = 0; i < mb; ++i)
    for (std::size_t j = 0; j < mb; ++j) t(ma + i, ma + j) = b.T()(i, j);
  Vec alpha(ma + mb, 0.0);
  for (std::size_t i = 0; i < ma; ++i) alpha[i] = p * a.alpha()[i];
  for (std::size_t j = 0; j < mb; ++j) alpha[ma + j] = (1.0 - p) * b.alpha()[j];
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType minimum(const PhaseType& a, const PhaseType& b) {
  // min(A, B) absorbs when either chain absorbs: state space is the product
  // of transient phases, generator the Kronecker sum T_a (+) T_b.
  const std::size_t ma = a.n_phases(), mb = b.n_phases();
  DenseMatrix t(ma * mb, ma * mb);
  for (std::size_t i1 = 0; i1 < ma; ++i1) {
    for (std::size_t i2 = 0; i2 < mb; ++i2) {
      const std::size_t row = i1 * mb + i2;
      for (std::size_t j1 = 0; j1 < ma; ++j1) {
        if (a.T()(i1, j1) != 0.0) t(row, j1 * mb + i2) += a.T()(i1, j1);
      }
      for (std::size_t j2 = 0; j2 < mb; ++j2) {
        if (b.T()(i2, j2) != 0.0) t(row, i1 * mb + j2) += b.T()(i2, j2);
      }
    }
  }
  Vec alpha(ma * mb, 0.0);
  for (std::size_t i1 = 0; i1 < ma; ++i1)
    for (std::size_t i2 = 0; i2 < mb; ++i2)
      alpha[i1 * mb + i2] = a.alpha()[i1] * b.alpha()[i2];
  return PhaseType(std::move(alpha), std::move(t));
}

}  // namespace tags::ph
