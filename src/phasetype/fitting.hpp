// Moment-matching fits (the paper cites EMpht [1] for fitting general
// distributions; two/three-moment matching covers the cases the models use).
#pragma once

#include "phasetype/ph.hpp"

namespace tags::ph {

/// Fit an Erlang to (mean, scv <= 1): order k = round(1/scv) clamped to
/// >= 1, rate = k/mean. Exact when 1/scv is integral.
[[nodiscard]] PhaseType fit_erlang(double mean, double scv);

/// Fit a balanced-means H2 to (mean, scv >= 1): the standard two-moment
/// hyper-exponential with p/mu1 = (1-p)/mu2. scv == 1 degenerates to the
/// exponential.
[[nodiscard]] PhaseType fit_h2(double mean, double scv);

/// Two-moment fit choosing Erlang for scv < 1, exponential for scv == 1,
/// H2 for scv > 1 (the classic dispatch).
[[nodiscard]] PhaseType fit_two_moment(double mean, double scv);

/// H2 parameters with mean `mean` and a fixed rate ratio mu1 = ratio*mu2,
/// solving p/mu1 + (1-p)/mu2 = mean for the rates. This is exactly how the
/// paper constructs its Figures 9-12 distributions (ratio 100 or 10,
/// p = alpha). Returns hyperexp2(p, mu1, mu2).
[[nodiscard]] PhaseType h2_with_ratio(double p, double ratio, double mean);

}  // namespace tags::ph
