#include "phasetype/fitting.hpp"

#include <cmath>
#include <stdexcept>

namespace tags::ph {

PhaseType fit_erlang(double mean, double scv) {
  if (!(mean > 0.0) || !(scv > 0.0) || scv > 1.0 + 1e-12) {
    throw std::invalid_argument("fit_erlang: need mean > 0 and 0 < scv <= 1");
  }
  const unsigned k = static_cast<unsigned>(std::max(1.0, std::round(1.0 / scv)));
  return erlang(k, static_cast<double>(k) / mean);
}

PhaseType fit_h2(double mean, double scv) {
  if (!(mean > 0.0) || scv < 1.0 - 1e-12) {
    throw std::invalid_argument("fit_h2: need mean > 0 and scv >= 1");
  }
  if (scv <= 1.0 + 1e-12) return exponential(1.0 / mean);
  // Balanced means: p/mu1 = (1-p)/mu2.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double mu1 = 2.0 * p / mean;
  const double mu2 = 2.0 * (1.0 - p) / mean;
  return hyperexp2(p, mu1, mu2);
}

PhaseType fit_two_moment(double mean, double scv) {
  if (scv < 1.0 - 1e-12) return fit_erlang(mean, scv);
  return fit_h2(mean, scv);
}

PhaseType h2_with_ratio(double p, double ratio, double mean) {
  if (!(p > 0.0) || p >= 1.0 || !(ratio > 0.0) || !(mean > 0.0)) {
    throw std::invalid_argument("h2_with_ratio: bad parameters");
  }
  // mean = p/mu1 + (1-p)/mu2 with mu1 = ratio*mu2
  //      = (p/ratio + 1 - p) / mu2.
  const double mu2 = (p / ratio + (1.0 - p)) / mean;
  const double mu1 = ratio * mu2;
  return hyperexp2(p, mu1, mu2);
}

}  // namespace tags::ph
