// Phase-type distributions PH(alpha, T): the absorption time of a CTMC with
// initial distribution alpha over m transient phases and subgenerator T.
//
// This is the machinery behind every distribution in the paper: the Erlang
// timeout, the exponential and hyper-exponential (H2) service demands, and
// the residual-life computation of Section 3.2.
#pragma once

#include <vector>

#include "linalg/dense.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ph {

class PhaseType {
 public:
  PhaseType() = default;

  /// alpha: initial distribution over phases (sums to <= 1; any deficit is
  /// an atom at zero). T: m x m subgenerator (negative diagonal, rows sum
  /// to <= 0). Validated; throws std::invalid_argument on malformed input.
  PhaseType(linalg::Vec alpha, linalg::DenseMatrix t);

  [[nodiscard]] std::size_t n_phases() const noexcept { return alpha_.size(); }
  [[nodiscard]] const linalg::Vec& alpha() const noexcept { return alpha_; }
  [[nodiscard]] const linalg::DenseMatrix& T() const noexcept { return t_; }

  /// Exit-rate vector t0 = -T 1.
  [[nodiscard]] linalg::Vec exit_rates() const;

  /// k-th raw moment E[S^k] = k! alpha (-T)^{-k} 1.
  [[nodiscard]] double moment(unsigned k) const;

  [[nodiscard]] double mean() const { return moment(1); }
  [[nodiscard]] double variance() const;
  /// Squared coefficient of variation Var/Mean^2.
  [[nodiscard]] double scv() const;

  /// Survival function P(S > x) = alpha exp(T x) 1.
  [[nodiscard]] double survival(double x) const;
  [[nodiscard]] double cdf(double x) const { return 1.0 - survival(x); }
  /// Density f(x) = alpha exp(T x) t0.
  [[nodiscard]] double pdf(double x) const;

  /// Laplace-Stieltjes transform E[e^{-sS}] = alpha (sI - T)^{-1} t0
  /// (+ the point mass at zero). Defined for s >= 0.
  [[nodiscard]] double laplace(double s) const;

  /// P(S > X) for an independent Erlang(k, theta) horizon X:
  /// alpha [theta (theta I - T)^{-1}]^k 1.
  [[nodiscard]] double survival_against_erlang(unsigned k, double theta) const;

  /// Distribution of the phase at an Erlang(k, theta) horizon, conditioned
  /// on survival; the residual life is PH(beta, T) with this beta. This is
  /// the general form of the paper's alpha' computation (Section 3.2).
  [[nodiscard]] PhaseType residual_after_erlang(unsigned k, double theta) const;

 private:
  linalg::Vec alpha_;
  linalg::DenseMatrix t_;
  /// exp(T x) applied to v by uniformization.
  [[nodiscard]] linalg::Vec expm_apply(double x, const linalg::Vec& v) const;
};

// -- Constructors -----------------------------------------------------------

/// Exponential(rate).
[[nodiscard]] PhaseType exponential(double rate);

/// Erlang(k, rate): k phases in series, each Exp(rate); mean k/rate.
[[nodiscard]] PhaseType erlang(unsigned k, double rate);

/// Two-phase hyper-exponential: Exp(mu1) w.p. p, Exp(mu2) w.p. 1-p.
[[nodiscard]] PhaseType hyperexp2(double p, double mu1, double mu2);

/// General hyper-exponential: Exp(rates[i]) w.p. weights[i] (normalised).
[[nodiscard]] PhaseType hyperexp(const linalg::Vec& weights, const linalg::Vec& rates);

/// Coxian: phases in series with rate rates[i]; after phase i the process
/// continues to phase i+1 with probability cont[i] (cont has size m-1).
[[nodiscard]] PhaseType coxian(const linalg::Vec& rates, const linalg::Vec& cont);

// -- Closure operations -----------------------------------------------------

/// S = A then B (convolution / series composition).
[[nodiscard]] PhaseType convolve(const PhaseType& a, const PhaseType& b);

/// S = A w.p. p, else B.
[[nodiscard]] PhaseType mixture(double p, const PhaseType& a, const PhaseType& b);

/// S = min(A, B) via the Kronecker-sum construction.
[[nodiscard]] PhaseType minimum(const PhaseType& a, const PhaseType& b);

}  // namespace tags::ph
