#include "phasetype/residual.hpp"

#include <cmath>
#include <stdexcept>

namespace tags::ph {

double exp_survival_vs_erlang(double mu, unsigned k, double t) {
  if (!(mu > 0.0) || !(t > 0.0) || k == 0) {
    throw std::invalid_argument("exp_survival_vs_erlang: bad parameters");
  }
  return std::pow(t / (t + mu), static_cast<double>(k));
}

double h2_alpha_prime(double alpha, double mu1, double mu2, unsigned k, double t) {
  const double r1 = exp_survival_vs_erlang(mu1, k, t);
  const double r2 = exp_survival_vs_erlang(mu2, k, t);
  const double num = alpha * r1;
  const double den = num + (1.0 - alpha) * r2;
  if (den <= 0.0) {
    throw std::invalid_argument("h2_alpha_prime: zero survival probability");
  }
  return num / den;
}

double h2_timeout_probability(double alpha, double mu1, double mu2, unsigned k,
                              double t) {
  return alpha * exp_survival_vs_erlang(mu1, k, t) +
         (1.0 - alpha) * exp_survival_vs_erlang(mu2, k, t);
}

}  // namespace tags::ph
