#include "serve/jsonv.hpp"

#include <cctype>
#include <string>

#include "obs/numio.hpp"

namespace tags::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_number(fallback) : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind() != Kind::kString) return std::string(fallback);
  return v->as_string();
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}
JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}
JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_object(std::vector<JsonMember> v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(v);
  return j;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  // Deep enough for any protocol message, small enough to never threaten
  // the stack on hostile input.
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue::make_bool(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue::make_bool(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue::make_null();
          return true;
        }
        return fail("invalid literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    consume('{');
    std::vector<JsonMember> members;
    skip_ws();
    if (consume('}')) {
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    out = JsonValue::make_object(std::move(members));
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    consume('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) {
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by the protocol; lone surrogates encode as-is).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    // from_chars is locale-independent (strtod honours LC_NUMERIC, so an
    // embedding application calling setlocale() would break the protocol)
    // and round-trips every double the writer can emit.
    const auto v = numio::parse_double(text_.substr(start, pos_ - start));
    if (!v) return fail("malformed number");
    out = JsonValue::make_number(*v);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text, error).parse();
}

}  // namespace tags::serve
