#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"

namespace tags::serve {

namespace {

/// Shared per-connection write end: engine responders outlive the reader
/// thread (a queued solve can complete after the client stops reading), so
/// writes go through this refcounted, mutex-guarded wrapper and turn into
/// no-ops once the socket is closed.
struct Wire {
  explicit Wire(int fd) : fd(fd) {}
  /// The fd closes only here, after every holder (reader thread, engine
  /// responders) has dropped its reference — a write error merely shuts the
  /// socket down, so the fd number cannot be reused under a live reader.
  ~Wire() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(m);
    if (dead) return;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      // MSG_NOSIGNAL: a client that hung up yields EPIPE, not process death.
      const ssize_t n =
          ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::shutdown(fd, SHUT_RDWR);
        dead = true;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Pop the reader thread out of recv() during teardown.
  void shutdown_read() {
    std::lock_guard<std::mutex> lock(m);
    if (!dead) ::shutdown(fd, SHUT_RD);
  }

 private:
  std::mutex m;
  int fd;
  bool dead = false;
};

}  // namespace

struct Server::State {
  explicit State(ServerOptions opts) : opts(std::move(opts)), engine(this->opts.engine) {}

  const ServerOptions opts;
  Engine engine;

  int listen_fd = -1;
  std::thread accept_thread;

  std::mutex m;
  std::condition_variable shutdown_cv;
  bool shutdown_requested = false;
  bool accepting = false;
  std::vector<std::shared_ptr<Wire>> wires;
  std::vector<std::thread> conn_threads;

  obs::Counter connections{"serve.connections"};
  obs::Counter bad_requests{"serve.requests_rejected"};

  void serve_connection(std::shared_ptr<Wire> wire, int fd);
  void handle_line(const std::string& line, const std::shared_ptr<Wire>& wire);
  void accept_loop();
};

Server::Server(ServerOptions opts) : state_(std::make_unique<State>(std::move(opts))) {}

Server::~Server() {
  request_shutdown();
  // wait() may already have run; it is safe to repeat the teardown.
  wait();
}

bool Server::start(std::string* error) {
  State& s = *state_;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (s.opts.socket_path.empty() ||
      s.opts.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path empty or too long for AF_UNIX";
    return false;
  }
  std::memcpy(addr.sun_path, s.opts.socket_path.c_str(), s.opts.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      // Distinguish a live server from a stale socket file: try connecting.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(fd);
        if (error != nullptr) {
          *error = "another server is listening on " + s.opts.socket_path;
        }
        return false;
      }
      ::unlink(s.opts.socket_path.c_str());
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return false;
      }
    } else {
      if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    ::unlink(s.opts.socket_path.c_str());
    return false;
  }

  s.listen_fd = fd;
  {
    std::lock_guard<std::mutex> lock(s.m);
    s.accepting = true;
  }
  s.accept_thread = std::thread([st = state_.get()] { st->accept_loop(); });
  return true;
}

void Server::State::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed: shutdown
    }
    connections.add(1);
    auto wire = std::make_shared<Wire>(fd);
    std::lock_guard<std::mutex> lock(m);
    if (shutdown_requested) {
      // Raced with shutdown; refuse politely.
      wire->write_line(serialize_error("", "server shutting down"));
      continue;  // wire closes fd on destruction
    }
    wires.push_back(wire);
    conn_threads.emplace_back(
        [this, wire = std::move(wire), fd] { serve_connection(wire, fd); });
  }
}

void Server::State::serve_connection(std::shared_ptr<Wire> wire, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or shutdown_read() during teardown
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_line(line, wire);
    }
    buffer.erase(0, start);
    // A protocol line that never terminates is abuse, not a request.
    if (buffer.size() > (1u << 20)) {
      wire->write_line(serialize_error("", "request line too long"));
      break;
    }
  }
}

void Server::State::handle_line(const std::string& line,
                                const std::shared_ptr<Wire>& wire) {
  std::string error;
  std::optional<Request> req = parse_request(line, &error);
  if (!req.has_value()) {
    bad_requests.add(1);
    wire->write_line(serialize_error("", error));
    return;
  }
  switch (req->op) {
    case RequestOp::kSolve:
      engine.submit(std::move(*req),
                    [wire](std::string response) { wire->write_line(response); });
      return;
    case RequestOp::kStats:
      wire->write_line(serialize_stats(req->id, engine.stats()));
      return;
    case RequestOp::kPing:
      wire->write_line(serialize_ack(req->id, RequestOp::kPing));
      return;
    case RequestOp::kShutdown: {
      wire->write_line(serialize_ack(req->id, RequestOp::kShutdown));
      std::lock_guard<std::mutex> lock(m);
      shutdown_requested = true;
      shutdown_cv.notify_all();
      return;
    }
  }
}

void Server::wait() {
  State& s = *state_;
  {
    std::unique_lock<std::mutex> lock(s.m);
    s.shutdown_cv.wait(lock, [&s] { return s.shutdown_requested; });
    if (!s.accepting) return;  // teardown already done by a previous wait()
    s.accepting = false;
  }

  // Stop accepting. close() alone does not wake a thread already blocked in
  // accept() on Linux; shutdown() pops it out with an error first.
  if (s.listen_fd >= 0) {
    ::shutdown(s.listen_fd, SHUT_RDWR);
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  if (s.accept_thread.joinable()) s.accept_thread.join();

  // Let queued work finish (responses still flow to open connections),
  // then unblock readers and reap connection threads.
  s.engine.drain();
  std::vector<std::shared_ptr<Wire>> wires;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(s.m);
    wires.swap(s.wires);
    threads.swap(s.conn_threads);
  }
  for (const auto& w : wires) w->shutdown_read();
  for (auto& t : threads) t.join();
  wires.clear();  // last references: sockets close here

  ::unlink(s.opts.socket_path.c_str());

  if (!s.opts.telemetry_path.empty()) {
    obs::write_telemetry_json(s.opts.telemetry_path, "tags_server");
  }
  if (!s.opts.prometheus_path.empty()) {
    obs::write_prometheus(s.opts.prometheus_path);
  }
}

void Server::request_shutdown() {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  s.shutdown_requested = true;
  s.shutdown_cv.notify_all();
}

Engine& Server::engine() noexcept { return state_->engine; }

const std::string& Server::socket_path() const noexcept {
  return state_->opts.socket_path;
}

}  // namespace tags::serve
