// Thread-safe LRU cache of solved scenarios, keyed on (policy name,
// frozen-sparsity structure digest, rate-point digest). The value is the
// full deterministic Answer — metrics, stationary vector, digests — so a
// hit is served without touching a model or the thread pool, and repeated
// identical requests are bit-identical by construction: the first computed
// pi is the one every later hit returns.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "serve/request.hpp"

namespace tags::serve {

struct CacheKey {
  std::string model;               ///< policy wire name
  std::uint64_t structure = 0;     ///< ctmc::structure_digest (0: closed form)
  std::uint64_t rates = 0;         ///< core::rate_digest of the request
  bool operator==(const CacheKey&) const = default;
};

class SolveCache {
 public:
  /// `capacity` bounds the number of retained answers; 0 disables caching
  /// (every lookup misses, inserts are dropped).
  explicit SolveCache(std::size_t capacity);
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Lookup; a hit refreshes recency. Counts serve.cache_hit / _miss when
  /// `count` is true — callers that probe the same request twice (submit
  /// fast path, then the dedupe re-check under the slot lock) pass false on
  /// the second probe so each request is counted exactly once.
  [[nodiscard]] std::optional<Answer> lookup(const CacheKey& key, bool count = true);

  /// Count a miss without probing — for requests whose full key cannot be
  /// formed yet (structure never assembled), which miss by construction.
  void note_miss();

  /// Insert (or overwrite — idempotent for identical keys, which is what
  /// concurrent duplicate requests produce). Evicts the least-recently-used
  /// answer when full, counting serve.cache_evicted.
  void insert(const CacheKey& key, const Answer& answer);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const noexcept;
  [[nodiscard]] std::uint64_t misses() const noexcept;
  [[nodiscard]] std::uint64_t evicted() const noexcept;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace tags::serve
