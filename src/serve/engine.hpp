// The analysis engine behind tags_server: a solve cache in front of a
// prioritized job queue draining into the work-stealing core::ThreadPool,
// with one warm-start ScenarioSlot per model structure. Transport-agnostic
// — the socket server and any in-process test drive it identically through
// submit(), and every response reaches the caller through the responder
// callback exactly once (answer, shed, or error).
//
// Caching contract: repeated identical requests are answered bit-for-bit
// identically (the first computed stationary vector is the one every later
// hit serves), and a fresh engine's first solve of a scenario equals the
// one-shot path (evaluate_now) byte-for-byte, because both run a cold
// ScenarioSlot::evaluate with the same solver options.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "ctmc/steady_state.hpp"
#include "serve/request.hpp"

namespace tags::serve {

struct EngineOptions {
  unsigned threads = 0;             ///< solver workers; 0: ThreadPool default
  std::size_t cache_capacity = 256; ///< retained answers (LRU); 0 disables
  std::size_t queue_depth = 64;     ///< admission bound before shedding
  ctmc::SteadyStateOptions solve;   ///< solver configuration for every request
  /// Durable store directory; empty disables persistence. On construction
  /// the engine warm-loads every valid kAnswer record into the solve cache
  /// (so a restarted server answers known scenarios cached, byte-identical
  /// to the run that computed them), and every fresh solve is committed
  /// back before its response is sent.
  std::string store_path;
};

class Engine {
 public:
  /// Receives one serialized protocol line per submitted request.
  using Responder = std::function<void(std::string line)>;

  explicit Engine(EngineOptions opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submit one solve request. The responder is invoked exactly once: from
  /// the calling thread on a cache hit or admission-time shed, from a pool
  /// worker otherwise. Responders must be thread-safe against other
  /// responses on the same connection.
  void submit(Request req, Responder respond);

  /// The one-shot path (tags_client --oneshot, figure drivers): a fresh
  /// slot, a cold solve, the same Answer construction the server performs.
  [[nodiscard]] static Answer evaluate_now(const core::ScenarioRequest& scenario,
                                           const ctmc::SteadyStateOptions& opts = {});

  [[nodiscard]] StatsSnapshot stats() const;

  /// Block until every admitted job has completed or been shed. Callers
  /// stop submitting first (the server closes its listener before this).
  void drain();

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace tags::serve
