#include "serve/job_queue.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tags::serve {

namespace {

struct Entry {
  Priority priority;
  std::chrono::steady_clock::time_point deadline;
  std::uint64_t seq;
  std::function<void()> run;
  std::function<void(ShedReason)> shed;
};

/// Heap order: "a pops after b" — lower priority first loses, then later
/// deadline, then later arrival. std::push_heap keeps the best job on top.
bool pops_after(const Entry& a, const Entry& b) noexcept {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.deadline != b.deadline) return a.deadline > b.deadline;
  return a.seq > b.seq;
}

/// The victim under overload is the job that would pop last.
bool worse_victim(const Entry& a, const Entry& b) noexcept { return pops_after(a, b); }

}  // namespace

struct JobQueue::State {
  explicit State(std::size_t max_depth)
      : max_depth(std::max<std::size_t>(1, max_depth)),
        depth_gauge("serve.queue.depth"),
        shed_counter("serve.jobs_shed"),
        deadline_counter("serve.deadline_missed") {}

  const std::size_t max_depth;

  std::mutex m;
  std::condition_variable idle_cv;
  std::vector<Entry> heap;
  std::uint64_t next_seq = 0;
  std::size_t running = 0;

  std::atomic<std::uint64_t> shed_total{0};
  std::atomic<std::uint64_t> deadline_missed{0};

  obs::Gauge depth_gauge;
  obs::Counter shed_counter;
  obs::Counter deadline_counter;

  void note_shed(ShedReason reason) noexcept {
    shed_total.fetch_add(1, std::memory_order_relaxed);
    shed_counter.add(1);
    if (reason == ShedReason::kDeadline) {
      deadline_missed.fetch_add(1, std::memory_order_relaxed);
      deadline_counter.add(1);
    }
  }
};

JobQueue::JobQueue(std::size_t max_depth) : state_(std::make_unique<State>(max_depth)) {}

JobQueue::~JobQueue() { drain(); }

bool JobQueue::submit(Job job) {
  State& s = *state_;
  const auto now = std::chrono::steady_clock::now();

  // Stale at admission: a deadline in the past can never be met.
  if (job.deadline <= now) {
    s.note_shed(ShedReason::kDeadline);
    if (job.shed) job.shed(ShedReason::kDeadline);
    return false;
  }

  Entry incoming{job.priority, job.deadline, 0, std::move(job.run), std::move(job.shed)};
  std::function<void(ShedReason)> victim_shed;

  {
    std::unique_lock<std::mutex> lock(s.m);
    if (s.heap.size() >= s.max_depth) {
      // Full. Find the worst queued job; the incoming one is admitted only
      // by strictly outranking it on priority class.
      auto worst = std::max_element(s.heap.begin(), s.heap.end(), worse_victim);
      if (worst == s.heap.end() || incoming.priority <= worst->priority) {
        lock.unlock();
        s.note_shed(ShedReason::kQueueFull);
        if (incoming.shed) incoming.shed(ShedReason::kQueueFull);
        return false;
      }
      victim_shed = std::move(worst->shed);
      s.heap.erase(worst);
      std::make_heap(s.heap.begin(), s.heap.end(), pops_after);
    }
    incoming.seq = s.next_seq++;
    s.heap.push_back(std::move(incoming));
    std::push_heap(s.heap.begin(), s.heap.end(), pops_after);
    s.depth_gauge.set(static_cast<double>(s.heap.size()));
  }

  if (victim_shed) {
    s.note_shed(ShedReason::kQueueFull);
    victim_shed(ShedReason::kQueueFull);
  }
  return true;
}

bool JobQueue::run_next() {
  State& s = *state_;
  std::vector<std::function<void(ShedReason)>> expired;
  Entry picked;
  bool have = false;

  {
    std::unique_lock<std::mutex> lock(s.m);
    const auto now = std::chrono::steady_clock::now();
    while (!s.heap.empty()) {
      std::pop_heap(s.heap.begin(), s.heap.end(), pops_after);
      Entry e = std::move(s.heap.back());
      s.heap.pop_back();
      if (e.deadline <= now) {
        expired.push_back(std::move(e.shed));
        continue;
      }
      picked = std::move(e);
      have = true;
      break;
    }
    s.depth_gauge.set(static_cast<double>(s.heap.size()));
    if (have) ++s.running;
  }

  for (auto& shed : expired) {
    s.note_shed(ShedReason::kDeadline);
    if (shed) shed(ShedReason::kDeadline);
  }
  if (!have) {
    // Eviction or deadline expiry consumed the job this thunk was posted
    // for; nothing to do, but drain() may be waiting on the expired sheds.
    std::lock_guard<std::mutex> lock(s.m);
    s.idle_cv.notify_all();
    return false;
  }

  picked.run();

  {
    std::lock_guard<std::mutex> lock(s.m);
    --s.running;
    if (s.running == 0 && s.heap.empty()) s.idle_cv.notify_all();
  }
  return true;
}

void JobQueue::drain() {
  State& s = *state_;
  std::unique_lock<std::mutex> lock(s.m);
  s.idle_cv.wait(lock, [&s] { return s.heap.empty() && s.running == 0; });
}

std::size_t JobQueue::depth() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  return s.heap.size();
}

std::uint64_t JobQueue::shed_total() const noexcept {
  return state_->shed_total.load(std::memory_order_relaxed);
}

std::uint64_t JobQueue::deadline_missed() const noexcept {
  return state_->deadline_missed.load(std::memory_order_relaxed);
}

}  // namespace tags::serve
