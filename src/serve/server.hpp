// The tags_server transport: a Unix-domain stream listener speaking the
// newline-delimited JSON line protocol (serve/request.hpp), one thread per
// connection, responses correlated by request id (solve responses may
// arrive out of submission order — the queue reorders by priority). The
// server owns an Engine; everything protocol-independent lives there.
//
// Lifecycle: start() binds and spawns the accept loop; wait() blocks until
// a shutdown request (protocol op or request_shutdown()) has been seen,
// then stops accepting, drains the engine, closes connections and writes
// the optional telemetry/Prometheus exports.
#pragma once

#include <memory>
#include <string>

#include "serve/engine.hpp"

namespace tags::serve {

struct ServerOptions {
  std::string socket_path;      ///< AF_UNIX path; bound fresh (stale file unlinked)
  EngineOptions engine;
  std::string telemetry_path;   ///< write_telemetry_json here at shutdown ("" = skip)
  std::string prometheus_path;  ///< write_prometheus here at shutdown ("" = skip)
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop. False (with *error filled)
  /// on socket failure — an already-bound path is reported, not stolen.
  [[nodiscard]] bool start(std::string* error);

  /// Block until shutdown has been requested, then drain and tear down.
  void wait();

  /// Ask the server to stop (thread-safe, idempotent). wait() completes
  /// after in-flight jobs drain.
  void request_shutdown();

  [[nodiscard]] Engine& engine() noexcept;
  [[nodiscard]] const std::string& socket_path() const noexcept;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace tags::serve
