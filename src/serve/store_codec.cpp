#include "serve/store_codec.hpp"

#include <string>
#include <utility>

namespace tags::serve {

void encode_answer(const Answer& answer, store::BufWriter& w) {
  w.put_str(std::string(core::to_string(answer.scenario.policy)));
  w.put_f64(answer.scenario.lambda);
  w.put_f64(answer.scenario.mu);
  w.put_f64(answer.scenario.t);
  w.put_f64(answer.scenario.alpha);
  w.put_f64(answer.scenario.mu1);
  w.put_f64(answer.scenario.mu2);
  w.put_u64(answer.scenario.n);
  w.put_u64(answer.scenario.k1);
  w.put_u64(answer.scenario.k2);

  const models::Metrics& m = answer.metrics;
  w.put_f64(m.mean_q1);
  w.put_f64(m.mean_q2);
  w.put_f64(m.mean_total);
  w.put_f64(m.throughput);
  w.put_f64(m.loss1_rate);
  w.put_f64(m.loss2_rate);
  w.put_f64(m.loss_rate);
  w.put_f64(m.response_time);
  w.put_f64(m.utilisation1);
  w.put_f64(m.utilisation2);

  w.put_u64(answer.pi.size());
  for (const double v : answer.pi) w.put_f64(v);

  w.put_u64(answer.structure_digest);
  w.put_u64(answer.rate_digest);
  w.put_u64(answer.pi_digest);
  w.put_u64(static_cast<std::uint64_t>(answer.n_states));
  w.put_u8(answer.certified ? 1 : 0);
  w.put_u8(answer.converged ? 1 : 0);
  w.put_str(answer.method);
}

std::optional<Answer> decode_answer(store::BufReader& rd) {
  Answer a;
  const std::string policy = rd.get_str();
  const auto kind = core::policy_from_string(policy);
  if (!kind) return std::nullopt;
  a.scenario.policy = *kind;
  a.scenario.lambda = rd.get_f64();
  a.scenario.mu = rd.get_f64();
  a.scenario.t = rd.get_f64();
  a.scenario.alpha = rd.get_f64();
  a.scenario.mu1 = rd.get_f64();
  a.scenario.mu2 = rd.get_f64();
  a.scenario.n = static_cast<unsigned>(rd.get_u64());
  a.scenario.k1 = static_cast<unsigned>(rd.get_u64());
  a.scenario.k2 = static_cast<unsigned>(rd.get_u64());

  models::Metrics& m = a.metrics;
  m.mean_q1 = rd.get_f64();
  m.mean_q2 = rd.get_f64();
  m.mean_total = rd.get_f64();
  m.throughput = rd.get_f64();
  m.loss1_rate = rd.get_f64();
  m.loss2_rate = rd.get_f64();
  m.loss_rate = rd.get_f64();
  m.response_time = rd.get_f64();
  m.utilisation1 = rd.get_f64();
  m.utilisation2 = rd.get_f64();

  const std::uint64_t n_pi = rd.get_u64();
  if (!rd.ok() || n_pi * sizeof(double) > rd.remaining()) return std::nullopt;
  a.pi.resize(static_cast<std::size_t>(n_pi));
  for (double& v : a.pi) v = rd.get_f64();

  a.structure_digest = rd.get_u64();
  a.rate_digest = rd.get_u64();
  a.pi_digest = rd.get_u64();
  a.n_states = static_cast<std::int64_t>(rd.get_u64());
  a.certified = rd.get_u8() != 0;
  a.converged = rd.get_u8() != 0;
  a.method = rd.get_str();
  if (!rd.ok() || !rd.at_end()) return std::nullopt;
  return a;
}

store::RecordKey answer_key(const Answer& answer) {
  return store::RecordKey{store::RecordKind::kAnswer,
                          std::string(core::to_string(answer.scenario.policy)),
                          answer.structure_digest, answer.rate_digest};
}

store::Record answer_record(const Answer& answer, const store::CertSummary& cert,
                            double solve_ms) {
  store::Record r;
  r.key = answer_key(answer);
  r.cert = cert;
  r.solve_ms = solve_ms;
  store::BufWriter w;
  encode_answer(answer, w);
  r.payload = std::move(w).take();
  return r;
}

}  // namespace tags::serve
