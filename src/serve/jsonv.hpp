// Minimal JSON value + recursive-descent parser for the tags_server line
// protocol. Deliberately tiny: objects are ordered key/value vectors (the
// protocol has a handful of keys per message, and preserving order keeps
// round-trips byte-stable), numbers are doubles, and the only consumers
// are serve/request.cpp and the client. The writer side reuses
// obs::JsonWriter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tags::serve {

class JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept { return items_; }
  [[nodiscard]] const std::vector<JsonMember>& members() const noexcept {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Typed member accessors with defaults (protocol-friendly).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::vector<JsonMember> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<JsonMember> members_;
};

/// Parse one JSON document. Returns nullopt on malformed input, with a
/// human-readable reason (including the byte offset) in *error when given.
/// Trailing non-whitespace after the document is an error — protocol lines
/// carry exactly one message.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace tags::serve
