// The tags_server line protocol: newline-delimited JSON, one message per
// line, in either direction. Requests name an operation; solve requests
// carry a core::ScenarioRequest (the same scenario vocabulary the figure
// binaries evaluate), an optional deadline, and a priority class. The
// deterministic payload of a solve response — everything derived from the
// scenario alone, never from server state or timing — is grouped under a
// "result" object so byte-identity between a served answer and the
// one-shot path can be checked by comparing that object verbatim.
//
// Documented in DESIGN.md "The analysis server"; exercised end-to-end by
// tools/serve_smoke.py.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/scenario.hpp"
#include "models/metrics.hpp"

namespace tags::serve {

enum class RequestOp { kSolve, kStats, kPing, kShutdown };

[[nodiscard]] std::string_view to_string(RequestOp op) noexcept;

/// Priority classes, rippled-JobQueue style: higher classes are served
/// first under load, and under overload a high-priority submission may
/// displace a queued low-priority job rather than being shed itself.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };

struct Request {
  RequestOp op = RequestOp::kSolve;
  std::string id;  ///< echoed verbatim in the response (client correlation)
  core::ScenarioRequest scenario;  ///< kSolve only
  /// Time budget in milliseconds from receipt; the job is shed (never
  /// silently dropped) once exceeded while queued. Negative: no deadline.
  double deadline_ms = -1.0;
  Priority priority = Priority::kNormal;
  bool want_pi = false;  ///< include the full stationary vector in the response
};

/// Parse one protocol line. Returns nullopt and fills *error on any
/// malformed or unknown field — the protocol is strict so client typos
/// surface as errors, not silently-defaulted parameters.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::string* error);

/// Serialize a request to one protocol line (no trailing newline).
[[nodiscard]] std::string serialize_request(const Request& req);

/// The deterministic product of one solve: a pure function of the
/// scenario (given a fixed solver configuration). Shared between the
/// engine's cache and the response serializer.
struct Answer {
  core::ScenarioRequest scenario;
  models::Metrics metrics;
  linalg::Vec pi;                      ///< empty for closed-form policies
  std::uint64_t structure_digest = 0;  ///< frozen-sparsity digest (0: closed form)
  std::uint64_t rate_digest = 0;       ///< rate-point digest
  std::uint64_t pi_digest = 0;         ///< FNV-1a over the pi bytes
  std::int64_t n_states = 0;
  bool certified = false;
  bool converged = false;
  std::string method;  ///< solver that produced pi ("closed-form" when none)
};

/// Server-side bookkeeping for one answered request (volatile: excluded
/// from the "result" object by construction).
struct Served {
  bool cached = false;   ///< answered from the solve cache
  bool warm = false;     ///< solved warm-started from a previous pi
  double queue_ms = 0.0;
  double solve_ms = 0.0;
};

/// A point-in-time view of the server counters, for the stats op. All
/// functional (maintained by the serve layer itself), so the endpoint
/// works in obs-off builds too.
struct StatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evicted = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t deadline_missed = 0;
  std::size_t cache_size = 0;
  std::size_t queue_depth = 0;
  std::size_t slots = 0;  ///< warm-start model slots alive
  unsigned threads = 0;
};

// Response serializers (one protocol line, no trailing newline).
[[nodiscard]] std::string serialize_answer(const std::string& id, const Answer& answer,
                                           const Served& served, bool want_pi);
enum class ShedReason { kQueueFull, kDeadline };
[[nodiscard]] std::string_view to_string(ShedReason reason) noexcept;
[[nodiscard]] std::string serialize_shed(const std::string& id, ShedReason reason);
[[nodiscard]] std::string serialize_error(const std::string& id,
                                          const std::string& error);
[[nodiscard]] std::string serialize_stats(const std::string& id,
                                          const StatsSnapshot& stats);
[[nodiscard]] std::string serialize_ack(const std::string& id, RequestOp op);

}  // namespace tags::serve
