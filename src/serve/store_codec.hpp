// Store codec for serve::Answer: the payload bytes behind every kAnswer
// record. Everything deterministic about an answer round-trips bit-exactly
// (doubles by bit pattern, including the full stationary vector), so an
// answer warm-loaded from the store serialises byte-identically to the
// solve that produced it — the property the serve persistence test pins.
#pragma once

#include <optional>

#include "serve/request.hpp"
#include "store/codec.hpp"
#include "store/record.hpp"

namespace tags::serve {

void encode_answer(const Answer& answer, store::BufWriter& w);

/// Decode one answer payload; nullopt on truncation, trailing bytes, or an
/// unknown policy name (the scenario must reconstruct exactly).
[[nodiscard]] std::optional<Answer> decode_answer(store::BufReader& rd);

/// The store key of an answer: kAnswer / policy wire name / structure
/// digest / rate digest — the same triple the engine's solve cache keys on.
[[nodiscard]] store::RecordKey answer_key(const Answer& answer);

/// Assemble the full record: key, certificate summary, solve time, and the
/// encoded payload.
[[nodiscard]] store::Record answer_record(const Answer& answer,
                                          const store::CertSummary& cert,
                                          double solve_ms);

}  // namespace tags::serve
