// Prioritized admission queue for the analysis server, in the spirit of
// rippled's JobQueue: jobs carry a priority class and an optional deadline,
// admission is bounded, and overload sheds work explicitly (the client gets
// a "shed" response, never a hang). The queue does not own threads — the
// engine posts one ThreadPool thunk per admitted job, and each thunk asks
// run_next() for the best job at that moment, so high-priority arrivals are
// served before earlier low-priority ones regardless of posting order.
//
// Shedding happens at three points:
//   - admission, when the deadline has already passed (deadline_ms <= 0
//     after queueing delays — the classic "stale request" case);
//   - admission, when the queue is full: the incoming job is shed unless it
//     strictly outranks the worst queued job, in which case that job is
//     evicted instead (priority inversion under overload would otherwise
//     starve urgent work);
//   - dequeue, when the deadline expired while queued.
// Every shed invokes the job's shed callback exactly once, outside the
// queue lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "serve/request.hpp"

namespace tags::serve {

/// One queued unit of work. `run` executes the solve and writes the
/// response; `shed` writes the shed/overload response instead. Exactly one
/// of the two is invoked per submitted job.
struct Job {
  Priority priority = Priority::kNormal;
  /// Absolute expiry; jobs with no deadline use time_point::max().
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::function<void()> run;
  std::function<void(ShedReason)> shed;
};

class JobQueue {
 public:
  /// `max_depth` bounds the number of queued (admitted, not yet running)
  /// jobs; 0 is treated as 1.
  explicit JobQueue(std::size_t max_depth);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admit one job. Returns true when the job was queued; false when it was
  /// shed at admission (its shed callback has already run). May also shed a
  /// previously queued lower-priority job to make room.
  bool submit(Job job);

  /// Dequeue and execute the best runnable job, shedding any expired ones
  /// encountered first. Safe to call when the queue is empty (eviction can
  /// leave more posted thunks than queued jobs); returns true when a job's
  /// `run` was invoked.
  bool run_next();

  /// Block until every admitted job has finished or been shed. Callers must
  /// ensure no new submissions race with drain (the server stops accepting
  /// connections first).
  void drain();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::uint64_t shed_total() const noexcept;
  [[nodiscard]] std::uint64_t deadline_missed() const noexcept;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace tags::serve
