#include "serve/solve_cache.hpp"

#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "ctmc/digest.hpp"
#include "obs/metrics.hpp"

namespace tags::serve {

namespace {

struct KeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    std::uint64_t h = ctmc::fnv1a64(k.model.data(), k.model.size());
    h = ctmc::fnv1a64_u64(k.structure, h);
    h = ctmc::fnv1a64_u64(k.rates, h);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

struct SolveCache::State {
  explicit State(std::size_t capacity)
      : capacity(capacity),
        hit_counter("serve.cache_hit"),
        miss_counter("serve.cache_miss"),
        evict_counter("serve.cache_evicted"),
        size_gauge("serve.cache.size") {}

  const std::size_t capacity;

  mutable std::mutex m;
  /// Most-recently-used at the front.
  std::list<std::pair<CacheKey, Answer>> lru;
  std::unordered_map<CacheKey, std::list<std::pair<CacheKey, Answer>>::iterator, KeyHash>
      index;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};

  obs::Counter hit_counter;
  obs::Counter miss_counter;
  obs::Counter evict_counter;
  obs::Gauge size_gauge;
};

SolveCache::SolveCache(std::size_t capacity) : state_(std::make_unique<State>(capacity)) {}

SolveCache::~SolveCache() = default;

std::optional<Answer> SolveCache::lookup(const CacheKey& key, bool count) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (count) {
      s.misses.fetch_add(1, std::memory_order_relaxed);
      s.miss_counter.add(1);
    }
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  if (count) {
    s.hits.fetch_add(1, std::memory_order_relaxed);
    s.hit_counter.add(1);
  }
  return it->second->second;
}

void SolveCache::note_miss() {
  State& s = *state_;
  s.misses.fetch_add(1, std::memory_order_relaxed);
  s.miss_counter.add(1);
}

void SolveCache::insert(const CacheKey& key, const Answer& answer) {
  State& s = *state_;
  if (s.capacity == 0) return;
  std::lock_guard<std::mutex> lock(s.m);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // A concurrent duplicate landed first; keep its answer (the one already
    // being served) so identical requests stay bit-identical.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= s.capacity) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    s.evictions.fetch_add(1, std::memory_order_relaxed);
    s.evict_counter.add(1);
  }
  s.lru.emplace_front(key, answer);
  s.index.emplace(key, s.lru.begin());
  s.size_gauge.set(static_cast<double>(s.lru.size()));
}

std::size_t SolveCache::size() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.m);
  return s.lru.size();
}

std::uint64_t SolveCache::hits() const noexcept {
  return state_->hits.load(std::memory_order_relaxed);
}
std::uint64_t SolveCache::misses() const noexcept {
  return state_->misses.load(std::memory_order_relaxed);
}
std::uint64_t SolveCache::evicted() const noexcept {
  return state_->evictions.load(std::memory_order_relaxed);
}

}  // namespace tags::serve
