#include "serve/engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/pool.hpp"
#include "ctmc/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/job_queue.hpp"
#include "serve/solve_cache.hpp"
#include "serve/store_codec.hpp"
#include "store/store.hpp"

namespace tags::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

Answer answer_from(const core::ScenarioRequest& scenario,
                   const core::ScenarioOutcome& outcome) {
  Answer a;
  a.scenario = scenario;
  a.metrics = outcome.metrics;
  a.pi = outcome.pi;
  a.structure_digest = outcome.structure_digest;
  a.rate_digest = core::rate_digest(scenario);
  a.pi_digest =
      ctmc::fnv1a64(a.pi.data(), a.pi.size() * sizeof(double));
  a.n_states = static_cast<std::int64_t>(a.pi.size());
  a.certified = outcome.solve.certificate.ok();
  a.converged = outcome.solve.converged;
  a.method = a.pi.empty() ? std::string("closed-form")
                          : std::string(ctmc::to_string(outcome.solve.method_used));
  return a;
}

bool closed_form(core::PolicyKind policy) noexcept {
  return policy == core::PolicyKind::kRandom || policy == core::PolicyKind::kRandomH2;
}

}  // namespace

struct Engine::State {
  explicit State(EngineOptions opts)
      : opts(std::move(opts)),
        pool(this->opts.threads),
        queue(this->opts.queue_depth),
        cache(this->opts.cache_capacity),
        requests_counter("serve.requests"),
        cache_loaded_counter("store.cache_loaded") {
    if (!this->opts.store_path.empty()) {
      store = std::make_unique<store::SolveStore>(this->opts.store_path);
      warm_load();
    }
  }

  const EngineOptions opts;
  core::ThreadPool pool;
  JobQueue queue;
  SolveCache cache;
  /// Durable answer store (null when persistence is off). SolveStore is
  /// internally synchronised; workers append concurrently.
  std::unique_ptr<store::SolveStore> store;

  /// One warm-start slot per model structure, each behind its own mutex so
  /// concurrent requests for different structures solve in parallel while
  /// requests sharing a structure serialise (and dedupe via the cache
  /// re-check below).
  struct Slot {
    std::mutex m;
    core::ScenarioSlot slot;
  };
  std::mutex slots_m;
  std::unordered_map<std::string, std::unique_ptr<Slot>> slots;
  /// structure_key -> frozen-sparsity digest, learned at first assembly.
  /// Lets submit() form the full cache key without touching a model.
  std::unordered_map<std::string, std::uint64_t> structures;

  std::atomic<std::uint64_t> requests{0};
  obs::Counter requests_counter;
  obs::Counter cache_loaded_counter;

  /// Replay every valid kAnswer record into the solve cache and structure
  /// map, so a restarted engine serves known scenarios from cache (cached:
  /// true, byte-identical result). Rotten records are skipped by the store
  /// itself; a payload that fails the answer codec is skipped here.
  void warm_load() {
    store->scan([this](const store::Record& rec) {
      if (rec.key.kind != store::RecordKind::kAnswer) return true;
      store::BufReader rd(rec.payload);
      const auto answer = decode_answer(rd);
      if (!answer) return true;
      if (!closed_form(answer->scenario.policy)) {
        learn_structure(core::structure_key(answer->scenario),
                        answer->structure_digest);
      }
      cache.insert(CacheKey{std::string(core::to_string(answer->scenario.policy)),
                            answer->structure_digest, answer->rate_digest},
                   *answer);
      cache_loaded_counter.add(1);
      return true;
    });
  }

  /// Commit one freshly solved answer (no-op when persistence is off).
  void persist(const Answer& answer, const core::ScenarioOutcome& outcome,
               double solve_ms) {
    if (!store) return;
    const linalg::Certificate& c = outcome.solve.certificate;
    const store::CertSummary cert{answer.certified, answer.converged, c.residual,
                                  c.mass_error, c.condition};
    store->append_commit(answer_record(answer, cert, solve_ms));
  }

  Slot& slot_for(const std::string& key) {
    std::lock_guard<std::mutex> lock(slots_m);
    auto& entry = slots[key];
    if (!entry) entry = std::make_unique<Slot>();
    return *entry;
  }

  std::optional<std::uint64_t> known_structure(const core::ScenarioRequest& scenario) {
    if (closed_form(scenario.policy)) return 0;  // no chain, digest fixed at 0
    std::lock_guard<std::mutex> lock(slots_m);
    const auto it = structures.find(core::structure_key(scenario));
    if (it == structures.end()) return std::nullopt;
    return it->second;
  }

  void learn_structure(const std::string& key, std::uint64_t digest) {
    std::lock_guard<std::mutex> lock(slots_m);
    structures.emplace(key, digest);
  }

  void execute(const Request& req, const Responder& respond, bool counted,
               Clock::time_point admitted);
};

Engine::Engine(EngineOptions opts) : state_(std::make_unique<State>(std::move(opts))) {}

Engine::~Engine() { drain(); }

void Engine::submit(Request req, Responder respond) {
  State& s = *state_;
  s.requests.fetch_add(1, std::memory_order_relaxed);
  s.requests_counter.add(1);
  obs::Span span("serve/request");

  // Fast path: with the structure digest already known (any structure seen
  // before, or a closed-form policy), a cached answer is served from the
  // submitting thread without queueing at all.
  bool counted = false;
  if (const auto structure = s.known_structure(req.scenario)) {
    const CacheKey key{std::string(core::to_string(req.scenario.policy)), *structure,
                       core::rate_digest(req.scenario)};
    counted = true;
    if (auto hit = s.cache.lookup(key)) {
      respond(serialize_answer(req.id, *hit, Served{.cached = true}, req.want_pi));
      return;
    }
  }

  const auto admitted = Clock::now();
  Job job;
  job.priority = req.priority;
  if (req.deadline_ms >= 0) {
    job.deadline = admitted + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      req.deadline_ms));
  }
  const std::string id = req.id;
  job.shed = [respond, id](ShedReason reason) { respond(serialize_shed(id, reason)); };
  job.run = [this, req = std::move(req), respond, counted, admitted] {
    state_->execute(req, respond, counted, admitted);
  };
  if (state_->queue.submit(std::move(job))) {
    s.pool.post([st = state_.get()] { st->queue.run_next(); });
  }
}

void Engine::State::execute(const Request& req, const Responder& respond, bool counted,
                            Clock::time_point admitted) {
  const double queue_ms = ms_since(admitted);
  obs::Span span("serve/solve");
  try {
    const std::string skey = core::structure_key(req.scenario);
    Slot& slot = slot_for(skey);
    std::lock_guard<std::mutex> slot_lock(slot.m);

    // Dedupe re-check: a concurrent identical request may have finished
    // while this one was queued (or waiting on the slot). Serving its
    // answer keeps identical requests bit-identical.
    if (const auto structure = known_structure(req.scenario)) {
      const CacheKey key{std::string(core::to_string(req.scenario.policy)), *structure,
                         core::rate_digest(req.scenario)};
      if (auto hit = cache.lookup(key, !counted)) {
        respond(serialize_answer(req.id, *hit,
                                 Served{.cached = true, .queue_ms = queue_ms},
                                 req.want_pi));
        return;
      }
    } else if (!counted) {
      // Unknown structure: nothing with this structure was ever solved, so
      // this request misses by construction.
      cache.note_miss();
    }

    const auto t0 = Clock::now();
    const std::uint64_t warm_before = slot.slot.warm().hits;
    const core::ScenarioOutcome outcome = slot.slot.evaluate(req.scenario, opts.solve);
    const double solve_ms = ms_since(t0);
    const bool warm = slot.slot.warm().hits > warm_before;

    if (!closed_form(req.scenario.policy)) {
      learn_structure(skey, outcome.structure_digest);
    }
    const Answer answer = answer_from(req.scenario, outcome);
    cache.insert(CacheKey{std::string(core::to_string(req.scenario.policy)),
                          answer.structure_digest, answer.rate_digest},
                 answer);
    // Durability before visibility: the record is fsync'd before the
    // response leaves, so any answer a client ever saw survives a crash.
    persist(answer, outcome, solve_ms);
    respond(serialize_answer(
        req.id, answer,
        Served{.cached = false, .warm = warm, .queue_ms = queue_ms, .solve_ms = solve_ms},
        req.want_pi));
  } catch (const std::exception& e) {
    respond(serialize_error(req.id, e.what()));
  } catch (...) {
    respond(serialize_error(req.id, "unknown evaluation failure"));
  }
}

Answer Engine::evaluate_now(const core::ScenarioRequest& scenario,
                            const ctmc::SteadyStateOptions& opts) {
  return answer_from(scenario, core::evaluate_scenario(scenario, opts));
}

StatsSnapshot Engine::stats() const {
  State& s = *state_;
  StatsSnapshot snap;
  snap.requests = s.requests.load(std::memory_order_relaxed);
  snap.cache_hits = s.cache.hits();
  snap.cache_misses = s.cache.misses();
  snap.cache_evicted = s.cache.evicted();
  snap.jobs_shed = s.queue.shed_total();
  snap.deadline_missed = s.queue.deadline_missed();
  snap.cache_size = s.cache.size();
  snap.queue_depth = s.queue.depth();
  {
    std::lock_guard<std::mutex> lock(s.slots_m);
    snap.slots = s.slots.size();
  }
  snap.threads = s.pool.size();
  return snap;
}

void Engine::drain() {
  state_->queue.drain();
  state_->pool.wait_idle();
}

}  // namespace tags::serve
