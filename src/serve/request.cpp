#include "serve/request.hpp"

#include <cmath>

#include "ctmc/digest.hpp"
#include "obs/json.hpp"
#include "serve/jsonv.hpp"

namespace tags::serve {

std::string_view to_string(RequestOp op) noexcept {
  switch (op) {
    case RequestOp::kSolve: return "solve";
    case RequestOp::kStats: return "stats";
    case RequestOp::kPing: return "ping";
    case RequestOp::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view to_string(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDeadline: return "deadline";
  }
  return "?";
}

namespace {

bool parse_params(const JsonValue& params, core::ScenarioRequest& scenario,
                  std::string* error) {
  for (const auto& [key, value] : params.members()) {
    if (value.kind() != JsonValue::Kind::kNumber) {
      if (error != nullptr) *error = "param '" + key + "' must be a number";
      return false;
    }
    const double v = value.as_number();
    if (key == "lambda") {
      scenario.lambda = v;
    } else if (key == "mu") {
      scenario.mu = v;
    } else if (key == "t") {
      scenario.t = v;
    } else if (key == "alpha") {
      scenario.alpha = v;
    } else if (key == "mu1") {
      scenario.mu1 = v;
    } else if (key == "mu2") {
      scenario.mu2 = v;
    } else if (key == "n" || key == "k1" || key == "k2") {
      if (v < 0 || v != std::floor(v) || v > 1e6) {
        if (error != nullptr) {
          *error = "param '" + key + "' must be a small non-negative integer";
        }
        return false;
      }
      const auto u = static_cast<unsigned>(v);
      if (key == "n") {
        scenario.n = u;
      } else if (key == "k1") {
        scenario.k1 = u;
      } else {
        scenario.k2 = u;
      }
    } else {
      if (error != nullptr) *error = "unknown param '" + key + "'";
      return false;
    }
  }
  return true;
}

bool parse_priority(const JsonValue& v, Priority& out, std::string* error) {
  if (v.kind() == JsonValue::Kind::kString) {
    const std::string& s = v.as_string();
    if (s == "low") {
      out = Priority::kLow;
    } else if (s == "normal") {
      out = Priority::kNormal;
    } else if (s == "high") {
      out = Priority::kHigh;
    } else {
      if (error != nullptr) *error = "unknown priority '" + s + "'";
      return false;
    }
    return true;
  }
  if (v.kind() == JsonValue::Kind::kNumber) {
    const double p = v.as_number();
    if (p < 0 || p > 2 || p != std::floor(p)) {
      if (error != nullptr) *error = "priority must be 0, 1, or 2";
      return false;
    }
    out = static_cast<Priority>(static_cast<int>(p));
    return true;
  }
  if (error != nullptr) *error = "priority must be a string or integer";
  return false;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line, std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> doc = parse_json(line, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "request must be a JSON object";
    return std::nullopt;
  }

  Request req;
  const std::string op = doc->string_or("op", "solve");
  if (op == "solve") {
    req.op = RequestOp::kSolve;
  } else if (op == "stats") {
    req.op = RequestOp::kStats;
  } else if (op == "ping") {
    req.op = RequestOp::kPing;
  } else if (op == "shutdown") {
    req.op = RequestOp::kShutdown;
  } else {
    if (error != nullptr) *error = "unknown op '" + op + "'";
    return std::nullopt;
  }
  req.id = doc->string_or("id", "");

  for (const auto& [key, value] : doc->members()) {
    if (key == "op" || key == "id") continue;
    if (req.op != RequestOp::kSolve) {
      if (error != nullptr) {
        *error = "field '" + key + "' not allowed for op '" + op + "'";
      }
      return std::nullopt;
    }
    if (key == "model") {
      if (value.kind() != JsonValue::Kind::kString) {
        if (error != nullptr) *error = "model must be a string";
        return std::nullopt;
      }
      const auto kind = core::policy_from_string(value.as_string());
      if (!kind.has_value()) {
        if (error != nullptr) *error = "unknown model '" + value.as_string() + "'";
        return std::nullopt;
      }
      req.scenario.policy = *kind;
    } else if (key == "params") {
      if (!value.is_object()) {
        if (error != nullptr) *error = "params must be an object";
        return std::nullopt;
      }
      if (!parse_params(value, req.scenario, error)) return std::nullopt;
    } else if (key == "deadline_ms") {
      if (value.kind() != JsonValue::Kind::kNumber) {
        if (error != nullptr) *error = "deadline_ms must be a number";
        return std::nullopt;
      }
      req.deadline_ms = value.as_number();
    } else if (key == "priority") {
      if (!parse_priority(value, req.priority, error)) return std::nullopt;
    } else if (key == "want_pi") {
      if (value.kind() != JsonValue::Kind::kBool) {
        if (error != nullptr) *error = "want_pi must be a boolean";
        return std::nullopt;
      }
      req.want_pi = value.as_bool();
    } else {
      if (error != nullptr) *error = "unknown field '" + key + "'";
      return std::nullopt;
    }
  }

  if (req.op == RequestOp::kSolve && doc->find("model") == nullptr) {
    if (error != nullptr) *error = "solve request missing 'model'";
    return std::nullopt;
  }
  return req;
}

std::string serialize_request(const Request& req) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("op", std::string(to_string(req.op)));
  if (!req.id.empty()) w.field("id", req.id);
  if (req.op == RequestOp::kSolve) {
    const core::ScenarioRequest& s = req.scenario;
    w.field("model", std::string(core::to_string(s.policy)));
    w.key("params");
    w.begin_object();
    w.field("lambda", s.lambda);
    if (s.is_h2()) {
      w.field("alpha", s.alpha);
      w.field("mu1", s.mu1);
      w.field("mu2", s.mu2);
    } else {
      w.field("mu", s.mu);
    }
    if (s.policy == core::PolicyKind::kTags || s.policy == core::PolicyKind::kTagsH2) {
      w.field("t", s.t);
      w.field("n", static_cast<std::int64_t>(s.n));
    }
    w.field("k1", static_cast<std::int64_t>(s.k1));
    w.field("k2", static_cast<std::int64_t>(s.k2));
    w.end_object();
    if (req.deadline_ms >= 0) w.field("deadline_ms", req.deadline_ms);
    if (req.priority != Priority::kNormal) {
      w.field("priority",
              std::string(req.priority == Priority::kHigh ? "high" : "low"));
    }
    if (req.want_pi) w.field("want_pi", true);
  }
  w.end_object();
  return std::move(w).str();
}

namespace {

void write_metrics(obs::JsonWriter& w, const models::Metrics& m) {
  w.key("metrics");
  w.begin_object();
  w.field("mean_q1", m.mean_q1);
  w.field("mean_q2", m.mean_q2);
  w.field("mean_total", m.mean_total);
  w.field("throughput", m.throughput);
  w.field("loss1_rate", m.loss1_rate);
  w.field("loss2_rate", m.loss2_rate);
  w.field("loss_rate", m.loss_rate);
  w.field("response_time", m.response_time);
  w.field("utilisation1", m.utilisation1);
  w.field("utilisation2", m.utilisation2);
  w.end_object();
}

}  // namespace

std::string serialize_answer(const std::string& id, const Answer& answer,
                             const Served& served, bool want_pi) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "solve");
  // Volatile server-side facts first; the deterministic payload is the
  // self-contained "result" object below (byte-comparable across servers
  // and the one-shot path).
  w.field("cached", served.cached);
  w.field("warm", served.warm);
  w.field("queue_ms", served.queue_ms);
  w.field("solve_ms", served.solve_ms);
  w.key("result");
  w.begin_object();
  w.field("model", std::string(core::to_string(answer.scenario.policy)));
  w.field("structure", ctmc::digest_hex(answer.structure_digest));
  w.field("rates", ctmc::digest_hex(answer.rate_digest));
  w.field("n_states", answer.n_states);
  write_metrics(w, answer.metrics);
  w.field("pi_digest", ctmc::digest_hex(answer.pi_digest));
  w.field("certified", answer.certified);
  w.field("converged", answer.converged);
  w.field("method", answer.method);
  if (want_pi) {
    w.key("pi");
    w.begin_array();
    for (const double p : answer.pi) w.value(p);
    w.end_array();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string serialize_shed(const std::string& id, ShedReason reason) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("id", id);
  w.field("ok", false);
  w.field("op", "solve");
  w.field("shed", true);
  w.field("reason", std::string(to_string(reason)));
  w.end_object();
  return std::move(w).str();
}

std::string serialize_error(const std::string& id, const std::string& error) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("id", id);
  w.field("ok", false);
  w.field("error", error);
  w.end_object();
  return std::move(w).str();
}

std::string serialize_stats(const std::string& id, const StatsSnapshot& stats) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", "stats");
  w.key("stats");
  w.begin_object();
  w.field("requests", static_cast<std::int64_t>(stats.requests));
  w.field("cache_hits", static_cast<std::int64_t>(stats.cache_hits));
  w.field("cache_misses", static_cast<std::int64_t>(stats.cache_misses));
  w.field("cache_evicted", static_cast<std::int64_t>(stats.cache_evicted));
  w.field("jobs_shed", static_cast<std::int64_t>(stats.jobs_shed));
  w.field("deadline_missed", static_cast<std::int64_t>(stats.deadline_missed));
  w.field("cache_size", static_cast<std::int64_t>(stats.cache_size));
  w.field("queue_depth", static_cast<std::int64_t>(stats.queue_depth));
  w.field("slots", static_cast<std::int64_t>(stats.slots));
  w.field("threads", static_cast<std::int64_t>(stats.threads));
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string serialize_ack(const std::string& id, RequestOp op) {
  obs::JsonWriter w(17);
  w.begin_object();
  w.field("id", id);
  w.field("ok", true);
  w.field("op", std::string(to_string(op)));
  w.end_object();
  return std::move(w).str();
}

}  // namespace tags::serve
