#include "core/table.hpp"

#include <cstdint>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "obs/numio.hpp"
#include "store/io.hpp"

namespace tags::core {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: wrong column count");
  }
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    // to_chars(general, precision) renders exactly like %.*g in the C
    // locale, so golden CSV files keep their bytes while a comma-decimal
    // global locale can no longer corrupt the table.
    cells.push_back(numio::format_g(v, precision_));
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_text(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row_text: wrong column count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(width[c]));
      os << cells[c];
    }
    os << "\n";
  };
  os << std::left;
  emit(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < columns_.size()) rule += "  ";
  }
  os << rule << "\n";
  os << std::right;
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << columns_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << "\n";
  }
}

bool Table::save_csv(const std::string& path) const {
  // Rendered in memory and published temp-then-rename: an interrupted run
  // (the crash-safe sweep resume case) leaves either the previous CSV or
  // the complete new one, never a truncated file.
  std::ostringstream body;
  write_csv(body);
  const std::string text = body.str();
  return store::atomic_write_file(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace tags::core
