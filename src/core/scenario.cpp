#include "core/scenario.hpp"

#include "core/sweep.hpp"

namespace tags::core {

Fig6Scenario Fig6Scenario::make() {
  Fig6Scenario s;
  // The paper plots the total/average queue length against the timeout rate
  // with the interesting region around the optimum near t ~ 50-60.
  for (double t = 10.0; t <= 150.0; t += 5.0) s.t_values.push_back(t);
  return s;
}

models::TagsParams Fig6Scenario::tags_at(double t) const {
  models::TagsParams p;
  p.lambda = lambda;
  p.mu = PaperDefaults::kMu;
  p.t = t;
  p.n = PaperDefaults::kTicks;
  p.k1 = p.k2 = PaperDefaults::kBuffer;
  return p;
}

models::TagsParams Fig8Scenario::tags_at(double lambda, double t) const {
  models::TagsParams p;
  p.lambda = lambda;
  p.mu = PaperDefaults::kMu;
  p.t = t;
  p.n = PaperDefaults::kTicks;
  p.k1 = p.k2 = PaperDefaults::kBuffer;
  return p;
}

Fig9Scenario Fig9Scenario::make() {
  Fig9Scenario s;
  for (double t = 4.0; t <= 60.0; t += 4.0) s.t_values.push_back(t);
  for (double t = 70.0; t <= 150.0; t += 20.0) s.t_values.push_back(t);
  return s;
}

models::TagsH2Params Fig9Scenario::tags_at(double t) const {
  return models::TagsH2Params::from_ratio(lambda, alpha, ratio,
                                          PaperDefaults::kMeanDemand, t,
                                          PaperDefaults::kTicks,
                                          PaperDefaults::kBuffer,
                                          PaperDefaults::kBuffer);
}

Fig11Scenario Fig11Scenario::make() {
  Fig11Scenario s;
  s.alphas = linspace(0.89, 0.99, 11);
  return s;
}

models::TagsH2Params Fig11Scenario::tags_at(double alpha, double t) const {
  return models::TagsH2Params::from_ratio(lambda, alpha, ratio,
                                          PaperDefaults::kMeanDemand, t,
                                          PaperDefaults::kTicks,
                                          PaperDefaults::kBuffer,
                                          PaperDefaults::kBuffer);
}

}  // namespace tags::core
