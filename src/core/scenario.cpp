#include "core/scenario.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/sweep.hpp"
#include "ctmc/digest.hpp"
#include "models/random_alloc.hpp"
#include "models/round_robin.hpp"
#include "models/shortest_queue.hpp"

namespace tags::core {

Fig6Scenario Fig6Scenario::make() {
  Fig6Scenario s;
  // The paper plots the total/average queue length against the timeout rate
  // with the interesting region around the optimum near t ~ 50-60.
  for (double t = 10.0; t <= 150.0; t += 5.0) s.t_values.push_back(t);
  return s;
}

models::TagsParams Fig6Scenario::tags_at(double t) const {
  models::TagsParams p;
  p.lambda = lambda;
  p.mu = PaperDefaults::kMu;
  p.t = t;
  p.n = PaperDefaults::kTicks;
  p.k1 = p.k2 = PaperDefaults::kBuffer;
  return p;
}

models::TagsParams Fig8Scenario::tags_at(double lambda, double t) const {
  models::TagsParams p;
  p.lambda = lambda;
  p.mu = PaperDefaults::kMu;
  p.t = t;
  p.n = PaperDefaults::kTicks;
  p.k1 = p.k2 = PaperDefaults::kBuffer;
  return p;
}

Fig9Scenario Fig9Scenario::make() {
  Fig9Scenario s;
  for (double t = 4.0; t <= 60.0; t += 4.0) s.t_values.push_back(t);
  for (double t = 70.0; t <= 150.0; t += 20.0) s.t_values.push_back(t);
  return s;
}

models::TagsH2Params Fig9Scenario::tags_at(double t) const {
  return models::TagsH2Params::from_ratio(lambda, alpha, ratio,
                                          PaperDefaults::kMeanDemand, t,
                                          PaperDefaults::kTicks,
                                          PaperDefaults::kBuffer,
                                          PaperDefaults::kBuffer);
}

Fig11Scenario Fig11Scenario::make() {
  Fig11Scenario s;
  s.alphas = linspace(0.89, 0.99, 11);
  return s;
}

models::TagsH2Params Fig11Scenario::tags_at(double alpha, double t) const {
  return models::TagsH2Params::from_ratio(lambda, alpha, ratio,
                                          PaperDefaults::kMeanDemand, t,
                                          PaperDefaults::kTicks,
                                          PaperDefaults::kBuffer,
                                          PaperDefaults::kBuffer);
}

// ---------------------------------------------------------------------------
// Scenario requests
// ---------------------------------------------------------------------------

std::string_view to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kTags: return "tags";
    case PolicyKind::kTagsH2: return "tags_h2";
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kRandomH2: return "random_h2";
    case PolicyKind::kRoundRobin: return "round_robin";
    case PolicyKind::kShortestQueue: return "shortest_queue";
    case PolicyKind::kShortestQueueH2: return "shortest_queue_h2";
  }
  return "?";
}

std::optional<PolicyKind> policy_from_string(std::string_view name) noexcept {
  for (const PolicyKind kind :
       {PolicyKind::kTags, PolicyKind::kTagsH2, PolicyKind::kRandom,
        PolicyKind::kRandomH2, PolicyKind::kRoundRobin, PolicyKind::kShortestQueue,
        PolicyKind::kShortestQueueH2}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

models::TagsParams ScenarioRequest::tags_params() const {
  models::TagsParams p;
  p.lambda = lambda;
  p.mu = mu;
  p.t = t;
  p.n = n;
  p.k1 = k1;
  p.k2 = k2;
  return p;
}

models::TagsH2Params ScenarioRequest::tags_h2_params() const {
  models::TagsH2Params p;
  p.lambda = lambda;
  p.alpha = alpha;
  p.mu1 = mu1;
  p.mu2 = mu2;
  p.t = t;
  p.n = n;
  p.k1 = k1;
  p.k2 = k2;
  return p;
}

bool ScenarioRequest::is_h2() const noexcept {
  return policy == PolicyKind::kTagsH2 || policy == PolicyKind::kRandomH2 ||
         policy == PolicyKind::kShortestQueueH2;
}

ScenarioRequest request_for(const models::TagsParams& p) {
  ScenarioRequest req;
  req.policy = PolicyKind::kTags;
  req.lambda = p.lambda;
  req.mu = p.mu;
  req.t = p.t;
  req.n = p.n;
  req.k1 = p.k1;
  req.k2 = p.k2;
  return req;
}

ScenarioRequest request_for(const models::TagsH2Params& p) {
  ScenarioRequest req;
  req.policy = PolicyKind::kTagsH2;
  req.lambda = p.lambda;
  req.alpha = p.alpha;
  req.mu1 = p.mu1;
  req.mu2 = p.mu2;
  req.t = p.t;
  req.n = p.n;
  req.k1 = p.k1;
  req.k2 = p.k2;
  return req;
}

namespace {

[[noreturn]] void reject(std::string_view field, double value) {
  throw std::invalid_argument("scenario: " + std::string(field) + " = " +
                              std::to_string(value) + " is outside the model's domain");
}

void require_positive_rate(std::string_view field, double value) {
  if (!std::isfinite(value) || value <= 0.0) reject(field, value);
}

}  // namespace

void validate(const ScenarioRequest& req) {
  require_positive_rate("lambda", req.lambda);
  if (req.is_h2()) {
    require_positive_rate("mu1", req.mu1);
    require_positive_rate("mu2", req.mu2);
    if (!std::isfinite(req.alpha) || req.alpha < 0.0 || req.alpha > 1.0) {
      reject("alpha", req.alpha);
    }
  } else {
    require_positive_rate("mu", req.mu);
  }
  if (req.policy == PolicyKind::kTags || req.policy == PolicyKind::kTagsH2) {
    require_positive_rate("t", req.t);
  }
}

ScenarioRequest baseline_for(PolicyKind kind, const ScenarioRequest& base) {
  ScenarioRequest req = base;
  req.policy = kind;
  return req;
}

std::uint64_t rate_digest(const ScenarioRequest& req) noexcept {
  using ctmc::fnv1a64_double;
  using ctmc::fnv1a64_str;
  using ctmc::fnv1a64_u64;
  std::uint64_t h = fnv1a64_str(to_string(req.policy), ctmc::kFnv1aOffset);
  h = fnv1a64_double(req.lambda, h);
  h = fnv1a64_u64(req.k1, h);
  // Only the fields the policy actually reads enter the digest, so an
  // irrelevant field cannot split the cache between equivalent requests.
  if (req.is_h2()) {
    h = fnv1a64_double(req.alpha, h);
    h = fnv1a64_double(req.mu1, h);
    h = fnv1a64_double(req.mu2, h);
  } else {
    h = fnv1a64_double(req.mu, h);
  }
  if (req.policy == PolicyKind::kTags || req.policy == PolicyKind::kTagsH2) {
    h = fnv1a64_double(req.t, h);
    h = fnv1a64_u64(req.n, h);
    h = fnv1a64_u64(req.k2, h);
  }
  return h;
}

std::string structure_key(const ScenarioRequest& req) {
  std::string key(to_string(req.policy));
  key += "/n" + std::to_string(req.n);
  key += "/k" + std::to_string(req.k1);
  key += "." + std::to_string(req.k2);
  return key;
}

// ---------------------------------------------------------------------------
// ScenarioSlot
// ---------------------------------------------------------------------------

struct ScenarioSlot::Impl {
  // At most one of these is live; `active` aliases it. A slot rebuilds when
  // the structure key of the next request differs from `structure`.
  std::unique_ptr<models::TagsModel> tags;
  std::unique_ptr<models::TagsH2Model> tags_h2;
  std::unique_ptr<models::RoundRobinModel> round_robin;
  std::unique_ptr<models::ShortestQueueModel> shortest_queue;
  std::unique_ptr<models::ShortestQueueH2Model> shortest_queue_h2;
  models::SolvableModel* active = nullptr;
  std::string structure;
  std::uint64_t digest = 0;
  ctmc::WarmStartState warm;

  void reset() {
    tags.reset();
    tags_h2.reset();
    round_robin.reset();
    shortest_queue.reset();
    shortest_queue_h2.reset();
    active = nullptr;
    structure.clear();
    digest = 0;
  }

  void build(const ScenarioRequest& req) {
    reset();
    switch (req.policy) {
      case PolicyKind::kTags:
        tags = std::make_unique<models::TagsModel>(req.tags_params());
        active = tags.get();
        break;
      case PolicyKind::kTagsH2:
        tags_h2 = std::make_unique<models::TagsH2Model>(req.tags_h2_params());
        active = tags_h2.get();
        break;
      case PolicyKind::kRoundRobin:
        round_robin = std::make_unique<models::RoundRobinModel>(
            models::RoundRobinParams{.lambda = req.lambda, .mu = req.mu, .k = req.k1});
        active = round_robin.get();
        break;
      case PolicyKind::kShortestQueue:
        shortest_queue = std::make_unique<models::ShortestQueueModel>(
            models::ShortestQueueParams{.lambda = req.lambda, .mu = req.mu, .k = req.k1});
        active = shortest_queue.get();
        break;
      case PolicyKind::kShortestQueueH2:
        shortest_queue_h2 = std::make_unique<models::ShortestQueueH2Model>(
            models::ShortestQueueH2Params{.lambda = req.lambda,
                                          .alpha = req.alpha,
                                          .mu1 = req.mu1,
                                          .mu2 = req.mu2,
                                          .k = req.k1});
        active = shortest_queue_h2.get();
        break;
      case PolicyKind::kRandom:
      case PolicyKind::kRandomH2:
        throw std::logic_error("closed-form policy has no model slot");
    }
    structure = structure_key(req);
    digest = ctmc::structure_digest(active->chain());
  }

  void rebind(const ScenarioRequest& req) {
    switch (req.policy) {
      case PolicyKind::kTags:
        tags->rebind(req.tags_params());
        break;
      case PolicyKind::kTagsH2:
        tags_h2->rebind(req.tags_h2_params());
        break;
      case PolicyKind::kRoundRobin:
        round_robin->rebind({.lambda = req.lambda, .mu = req.mu, .k = req.k1});
        break;
      case PolicyKind::kShortestQueue:
        shortest_queue->rebind({.lambda = req.lambda, .mu = req.mu, .k = req.k1});
        break;
      case PolicyKind::kShortestQueueH2:
        shortest_queue_h2->rebind({.lambda = req.lambda,
                                   .alpha = req.alpha,
                                   .mu1 = req.mu1,
                                   .mu2 = req.mu2,
                                   .k = req.k1});
        break;
      case PolicyKind::kRandom:
      case PolicyKind::kRandomH2:
        throw std::logic_error("closed-form policy has no model slot");
    }
  }
};

ScenarioSlot::ScenarioSlot() : impl_(std::make_unique<Impl>()) {}
ScenarioSlot::~ScenarioSlot() = default;
ScenarioSlot::ScenarioSlot(ScenarioSlot&&) noexcept = default;
ScenarioSlot& ScenarioSlot::operator=(ScenarioSlot&&) noexcept = default;

ScenarioOutcome ScenarioSlot::evaluate(const ScenarioRequest& req,
                                       const ctmc::SteadyStateOptions& opts) {
  validate(req);
  ScenarioOutcome out;
  // Closed-form / composite policies evaluate directly — no chain to keep.
  if (req.policy == PolicyKind::kRandom) {
    out.metrics =
        models::random_alloc_exp({.lambda = req.lambda, .mu = req.mu, .k = req.k1});
    out.solve.converged = true;
    return out;
  }
  if (req.policy == PolicyKind::kRandomH2) {
    out.metrics = models::random_alloc_h2({.lambda = req.lambda,
                                           .alpha = req.alpha,
                                           .mu1 = req.mu1,
                                           .mu2 = req.mu2,
                                           .k = req.k1});
    out.solve.converged = true;
    return out;
  }

  Impl& s = *impl_;
  if (s.active == nullptr || s.structure != structure_key(req)) {
    s.build(req);
  } else {
    try {
      s.rebind(req);
    } catch (const std::logic_error&) {
      // The new rate point degenerates the emission pattern (e.g. an H2
      // alpha of exactly 0 or 1): rebuild instead of failing the request.
      s.build(req);
    }
  }

  // Overlay the slot's warm-start guess — and its NCD partition cache,
  // which is slot state exactly like the guess — on the caller's solver
  // options. A caller-supplied cache wins (they own the sharing policy).
  auto guess = std::move(s.warm.opts.initial_guess);
  auto ncd_cache = std::move(s.warm.opts.ncd_cache);
  s.warm.opts = opts;
  s.warm.opts.initial_guess = std::move(guess);
  if (!s.warm.opts.ncd_cache) s.warm.opts.ncd_cache = std::move(ncd_cache);
  s.warm.reconcile(s.active->n_states());
  ctmc::SteadyStateResult solved = s.active->solve(s.warm.opts);
  s.warm.accept(solved);

  out.metrics = s.active->metrics_from(solved.pi);
  out.structure_digest = s.digest;
  out.solve = std::move(solved);
  out.pi = std::move(out.solve.pi);  // solve's own copy is moved out
  return out;
}

const ctmc::WarmStartState& ScenarioSlot::warm() const noexcept {
  return impl_->warm;
}

ScenarioOutcome evaluate_scenario(const ScenarioRequest& req,
                                  const ctmc::SteadyStateOptions& opts) {
  ScenarioSlot slot;
  return slot.evaluate(req, opts);
}

models::Metrics scenario_metrics(const ScenarioRequest& req) {
  return evaluate_scenario(req).metrics;
}

}  // namespace tags::core
