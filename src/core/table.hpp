// Aligned-console / CSV table output shared by the figure benches and
// examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tags::core {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Add a numeric row (formatted with `precision` significant digits).
  void add_row(const std::vector<double>& values);

  /// Add a pre-formatted row.
  void add_row_text(std::vector<std::string> cells);

  [[nodiscard]] std::size_t n_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }

  void set_precision(int digits) noexcept { precision_ = digits; }
  void set_title(std::string title) { title_ = std::move(title); }

  /// Render aligned for the console.
  void print(std::ostream& os) const;

  /// Comma-separated output (header + rows).
  void write_csv(std::ostream& os) const;

  /// Write CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 6;
};

}  // namespace tags::core
