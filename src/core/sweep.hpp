// Parameter sweeps. parallel_sweep fans independent evaluations out over
// OpenMP threads; warm_sweep runs sequentially, threading the previous
// stationary vector into each solve (much faster for CTMC t-sweeps, where
// neighbouring parameter points have nearly identical solutions).
#pragma once

#include <functional>
#include <vector>

#include "ctmc/steady_state.hpp"

namespace tags::core {

/// Evenly spaced values [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Evaluate fn over all inputs, in parallel when OpenMP is enabled.
/// Results are returned in input order regardless of scheduling.
template <class T, class Fn>
[[nodiscard]] auto parallel_sweep(const std::vector<T>& inputs, Fn&& fn)
    -> std::vector<decltype(fn(inputs.front()))> {
  using R = decltype(fn(inputs.front()));
  std::vector<R> results(inputs.size());
  const auto count = static_cast<long long>(inputs.size());
#pragma omp parallel for schedule(dynamic)
  for (long long i = 0; i < count; ++i) {
    results[static_cast<std::size_t>(i)] = fn(inputs[static_cast<std::size_t>(i)]);
  }
  return results;
}

/// Sequential sweep with warm-started steady-state solves. `solve_fn` gets
/// the parameter value and solver options (carrying the previous pi as the
/// initial guess) and returns the stationary result for that point.
template <class T, class SolveFn>
[[nodiscard]] std::vector<ctmc::SteadyStateResult> warm_sweep(
    const std::vector<T>& inputs, SolveFn&& solve_fn) {
  std::vector<ctmc::SteadyStateResult> results;
  results.reserve(inputs.size());
  ctmc::SteadyStateOptions opts;
  for (const T& x : inputs) {
    ctmc::SteadyStateResult r = solve_fn(x, opts);
    if (r.converged) {
      opts.initial_guess = r.pi;
    } else if (opts.initial_guess && opts.initial_guess->size() != r.pi.size()) {
      // The state space changed mid-sweep (a structural parameter moved):
      // drop the stale guess instead of letting every later solve silently
      // fall back to the uniform start through the solver's size check.
      opts.initial_guess.reset();
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace tags::core
