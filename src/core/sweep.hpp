// Parameter sweeps. Three execution strategies:
//
//  * parallel_sweep — independent per-point evaluations fanned out over
//    OpenMP threads (no state carried between points).
//  * warm_sweep — sequential, threading the previous stationary vector
//    into each solve (much faster for CTMC t-sweeps, where neighbouring
//    parameter points have nearly identical solutions).
//  * sharded_sweep — the parallel sweep engine: the grid is cut into
//    contiguous shards, each shard is evaluated as one task on the
//    work-stealing pool (core/pool.hpp) with its own thread-local
//    ctmc::WarmStartState (warm starts never cross shards), and results
//    are merged back in grid order.
//
// Determinism contract (see DESIGN.md "Parallel sweep engine"): the shard
// plan is a function of the grid alone — never of the thread count — and a
// shard's evaluation depends only on its own inputs and warm-start chain.
// Running the same grid with 1, 2, or N threads therefore produces
// bit-identical results and identical per-shard warm-start counters; the
// thread count only changes which worker executes a shard and when.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/pool.hpp"
#include "ctmc/steady_state.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "store/sweep_journal.hpp"

namespace tags::core {

/// Evenly spaced values [lo, hi] inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Evaluate fn over all inputs, in parallel when OpenMP is enabled.
/// Results are returned in input order regardless of scheduling.
template <class T, class Fn>
[[nodiscard]] auto parallel_sweep(const std::vector<T>& inputs, Fn&& fn)
    -> std::vector<decltype(fn(inputs.front()))> {
  using R = decltype(fn(inputs.front()));
  std::vector<R> results(inputs.size());
  const auto count = static_cast<long long>(inputs.size());
#pragma omp parallel for schedule(dynamic)
  for (long long i = 0; i < count; ++i) {
    results[static_cast<std::size_t>(i)] = fn(inputs[static_cast<std::size_t>(i)]);
  }
  return results;
}

/// Sequential sweep with warm-started steady-state solves. `solve_fn` gets
/// the parameter value and solver options (carrying the previous pi as the
/// initial guess) and returns the stationary result for that point.
template <class T, class SolveFn>
[[nodiscard]] std::vector<ctmc::SteadyStateResult> warm_sweep(
    const std::vector<T>& inputs, SolveFn&& solve_fn) {
  std::vector<ctmc::SteadyStateResult> results;
  results.reserve(inputs.size());
  ctmc::WarmStartState warm;
  for (const T& x : inputs) {
    ctmc::SteadyStateResult r = solve_fn(x, warm.opts);
    warm.accept(r);
    // A structural parameter may have moved mid-sweep; reconciling against
    // the size we just solved drops a stale guess instead of letting every
    // later solve silently fall back to the uniform start.
    warm.reconcile(static_cast<ctmc::index_t>(r.pi.size()));
    results.push_back(std::move(r));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Sharded parallel sweep engine
// ---------------------------------------------------------------------------

/// Half-open index range [begin, end) of grid points forming one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Execution plan for a sharded sweep. `threads == 0` resolves to
/// ThreadPool::default_threads() (TAGS_SWEEP_THREADS, else hardware
/// concurrency); `shard_size == 0` resolves to default_shard_size(n);
/// `batch == 0` resolves to default_batch_width() (TAGS_SWEEP_BATCH, else
/// 1). Batch width — like thread count — is an execution knob only: it is
/// excluded from sweep digests and the shard plan, so journals replay and
/// direct-solver results stay bit-identical at any width (see DESIGN.md
/// "Batched multi-point sweeps").
struct SweepPlan {
  unsigned threads = 0;
  std::size_t shard_size = 0;
  std::size_t batch = 0;
};

/// Batch width when the plan leaves it 0: TAGS_SWEEP_BATCH when set to a
/// well-formed integer in [1, 64] (malformed or out-of-range values are
/// rejected, falling back rather than silently truncating), else 1
/// (unbatched).
[[nodiscard]] std::size_t default_batch_width() noexcept;

/// Default shard size: a function of the grid size only (so results never
/// depend on the machine), small enough to load-balance a many-core pool
/// on the paper's ~30-point grids, large enough to amortise the cold solve
/// that starts every shard's warm-start chain.
[[nodiscard]] std::size_t default_shard_size(std::size_t n_points) noexcept;

/// Cut [0, n_points) into contiguous shards of `shard_size` (the last
/// shard takes the remainder). shard_size == 0 uses the default.
[[nodiscard]] std::vector<ShardRange> plan_shards(std::size_t n_points,
                                                  std::size_t shard_size = 0);

/// What a sharded sweep did: merged warm-start counters plus the shape of
/// the run. Counters are summed in grid order, so totals are identical for
/// every thread count.
struct SweepStats {
  ctmc::WarmStartState warm;  ///< merged counters (opts field unused)
  std::size_t points = 0;
  std::size_t shards = 0;
  unsigned threads = 1;
  /// Shards replayed from a sweep journal instead of being evaluated
  /// (always 0 without a store binding; see SweepJournalBinding).
  std::size_t resumed = 0;
};

/// Binding between a sharded sweep and the durable store: the journal that
/// persists completed shards plus the result codec. `decode` must fill the
/// whole span and return false on any mismatch (a failed decode falls back
/// to evaluating the shard — resume is best-effort, correctness is not).
/// Encoding doubles by bit pattern (store::BufWriter::put_f64) is what
/// makes a resumed sweep byte-identical to an uninterrupted one.
template <class R>
struct SweepJournalBinding {
  store::SweepJournal* journal = nullptr;
  std::function<void(std::span<const R>, store::BufWriter&)> encode;
  std::function<bool(store::BufReader&, std::span<R>)> decode;

  [[nodiscard]] bool active() const noexcept { return journal != nullptr; }
};

/// The parallel sweep driver. `eval` is invoked once per shard — from
/// worker threads when threads > 1 — as
///   eval(ShardRange shard, std::span<R> out, ctmc::WarmStartState& warm)
/// and must fill out[i - shard.begin] for each grid index i in the shard,
/// building any per-shard state (model instance, warm chain) locally.
/// Results land in grid order; stats (when requested) merge shard counters
/// in grid order.
template <class R, class ShardEval>
[[nodiscard]] std::vector<R> sharded_sweep(std::size_t n_points, const SweepPlan& plan,
                                           ShardEval&& eval,
                                           SweepStats* stats = nullptr,
                                           const SweepJournalBinding<R>* binding = nullptr) {
  const std::vector<ShardRange> shards = plan_shards(n_points, plan.shard_size);
  const unsigned threads =
      plan.threads > 0 ? plan.threads : ThreadPool::default_threads();
  std::vector<R> results(n_points);
  std::vector<ctmc::WarmStartState> warm(shards.size());
  std::vector<unsigned char> resumed(shards.size(), 0);

  const obs::ScopedTimer timer("core/sharded_sweep");
  obs::Span sweep_span("core/sharded_sweep");
  sweep_span.attr("points", static_cast<double>(n_points));
  sweep_span.attr("shards", static_cast<double>(shards.size()));
  sweep_span.attr("threads", static_cast<double>(threads));
  obs::gauge_set("core.sweep.points", static_cast<double>(n_points));
  obs::gauge_set("core.sweep.shards", static_cast<double>(shards.size()));
  obs::gauge_set("core.sweep.threads", static_cast<double>(threads));

  const auto run_shard = [&](std::size_t s) {
    // Default-constructed: parents under the worker's core/pool_task span
    // on the threaded path, or directly under core/sharded_sweep serially.
    obs::Span span("core/shard");
    span.attr("shard", static_cast<double>(s));
    const ShardRange range = shards[s];
    span.attr("points", static_cast<double>(range.size()));
    const std::span<R> out(results.data() + range.begin, range.size());

    // Resume path: a shard the journal already holds is replayed (payload
    // decoded bit-exactly, warm counters restored from the record) instead
    // of evaluated; any decode mismatch falls through to evaluation.
    if (binding != nullptr && binding->active()) {
      store::WarmCounters wc{};
      if (const auto payload = binding->journal->load_shard(s, &wc)) {
        store::BufReader rd(*payload);
        if (binding->decode(rd, out) && rd.ok() && rd.at_end()) {
          warm[s].hits = wc[0];
          warm[s].misses = wc[1];
          warm[s].cleared = wc[2];
          warm[s].uncertified = wc[3];
          resumed[s] = 1;
          span.attr("resumed", 1.0);
          return;
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      eval(range, out, warm[s]);
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    t0)
              .count();
      store::BufWriter w;
      binding->encode(std::span<const R>(out.data(), out.size()), w);
      binding->journal->commit_shard(
          s, w.bytes(),
          store::WarmCounters{warm[s].hits, warm[s].misses, warm[s].cleared,
                              warm[s].uncertified},
          elapsed_ms);
      return;
    }
    eval(range, out, warm[s]);
  };
  if (threads <= 1 || shards.size() <= 1) {
    for (std::size_t s = 0; s < shards.size(); ++s) run_shard(s);
  } else {
    ThreadPool pool(threads);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      tasks.emplace_back([&run_shard, s] { run_shard(s); });
    }
    pool.run(std::move(tasks));
  }

  if (stats != nullptr) {
    stats->points = n_points;
    stats->shards = shards.size();
    stats->threads = threads;
    for (const ctmc::WarmStartState& w : warm) stats->warm.merge(w);
    for (const unsigned char r : resumed) stats->resumed += r;
  }
  return results;
}

}  // namespace tags::core
