// Work-stealing thread pool for coarse-grained batch work (sweep shards,
// scenario requests). Each worker owns a deque: it pops its own work from
// the front and, when empty, steals from the back of the most loaded
// victim. Tasks here are whole CTMC solves (milliseconds), so the deques
// are mutex-guarded — contention is negligible at that granularity and the
// locking keeps the pool trivially ThreadSanitizer-clean.
//
// Instrumented through src/obs: core.pool.tasks_queued / tasks_stolen /
// tasks_completed counters, per-worker busy time under
// core.pool.worker<i>.busy_ms gauges and a core.pool.task_ms histogram, so
// saturation shows up in the telemetry report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace tags::core {

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (0 picks default_threads()).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run a batch of tasks to completion. Tasks are dealt round-robin onto
  /// the worker deques; idle workers steal. Blocks until every task has
  /// finished; if any task threw, the first exception (in completion
  /// order) is rethrown after the batch has drained. Concurrent run()
  /// calls from different threads are serialised.
  void run(std::vector<std::function<void()>> tasks);

  /// Enqueue one task with no batch barrier: it runs as soon as a worker
  /// is free, and post() returns immediately. This is the long-lived
  /// service submission path (the serve::JobQueue drains through it).
  /// Posted tasks must not throw — there is no batch to rethrow into, so
  /// an escaped exception is swallowed after being counted under
  /// core.pool.task_errors (callers that care wrap their work in try/catch,
  /// as the JobQueue does). Safe to call from any thread, including from
  /// inside a running task.
  void post(std::function<void()> task);

  /// Block until every task — posted or batched — has finished. Intended
  /// for service shutdown/drain; new post() calls during the wait extend
  /// it.
  void wait_idle();

  /// Busy wall-clock nanoseconds accumulated by one worker across all
  /// batches so far (stable only between run() calls).
  [[nodiscard]] std::uint64_t worker_busy_ns(unsigned worker) const;

  /// Tasks this pool's workers took from another worker's deque.
  [[nodiscard]] std::uint64_t tasks_stolen() const;

  /// Tasks executed to completion (including ones that threw).
  [[nodiscard]] std::uint64_t tasks_completed() const;

  /// Thread count used when a caller passes 0: the TAGS_SWEEP_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static unsigned default_threads();

 private:
  struct State;
  void worker_loop(unsigned me);

  std::unique_ptr<State> state_;
  std::vector<std::thread> threads_;
};

}  // namespace tags::core
