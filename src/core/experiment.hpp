// High-level experiment helpers: evaluate each allocation policy at a
// scenario point, with warm-started t-sweeps for the TAGS families.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "models/metrics.hpp"
#include "models/random_alloc.hpp"
#include "models/round_robin.hpp"
#include "models/shortest_queue.hpp"

namespace tags::core {

/// Metrics of the three policies at one exponential-demand parameter point.
struct PolicyComparison {
  models::Metrics tags;
  models::Metrics random;
  models::Metrics round_robin;  ///< exponential comparison only
  models::Metrics shortest_queue;
};

[[nodiscard]] PolicyComparison compare_policies_exp(const models::TagsParams& p);

/// H2 variant (shares lambda / alpha / rates / buffer with the TAGS params).
[[nodiscard]] PolicyComparison compare_policies_h2(const models::TagsH2Params& p);

/// TAGS metrics across a t-sweep, warm-starting consecutive solves
/// (sequential: one warm chain across the whole grid).
[[nodiscard]] std::vector<models::Metrics> tags_t_sweep(
    const models::TagsParams& base, const std::vector<double>& t_values);

[[nodiscard]] std::vector<models::Metrics> tags_h2_t_sweep(
    const models::TagsH2Params& base, const std::vector<double>& t_values);

/// Sharded t-sweeps on the parallel sweep engine: the grid is cut by
/// plan_shards (a function of the grid only), every shard gets its own
/// model instance + warm-start chain on a pool worker, and results merge
/// back in grid order — bit-identical for every thread count (see the
/// determinism contract in core/sweep.hpp).
[[nodiscard]] std::vector<models::Metrics> tags_t_sweep(
    const models::TagsParams& base, const std::vector<double>& t_values,
    const SweepPlan& plan, SweepStats* stats = nullptr);

[[nodiscard]] std::vector<models::Metrics> tags_h2_t_sweep(
    const models::TagsH2Params& base, const std::vector<double>& t_values,
    const SweepPlan& plan, SweepStats* stats = nullptr);

/// Journaled sharded t-sweeps: every completed shard is committed to
/// `store` as one durable record before the sweep moves on, and a rerun of
/// the same sweep (same base parameters, grid, and shard plan — captured
/// in the sweep digest) replays the committed shards bit-exactly instead
/// of re-evaluating them. `store == nullptr` degrades to the plain sweep.
[[nodiscard]] std::vector<models::Metrics> tags_t_sweep(
    const models::TagsParams& base, const std::vector<double>& t_values,
    const SweepPlan& plan, SweepStats* stats, store::SolveStore* store);

[[nodiscard]] std::vector<models::Metrics> tags_h2_t_sweep(
    const models::TagsH2Params& base, const std::vector<double>& t_values,
    const SweepPlan& plan, SweepStats* stats, store::SolveStore* store);

/// Digest identifying a journaled sweep: name, base parameters, grid
/// values (by bit pattern), and the resolved shard size. Exposed so tests
/// and tools/store_query can recompute the key of a campaign's records.
[[nodiscard]] std::uint64_t sweep_digest(const models::TagsParams& base,
                                         const std::vector<double>& t_values,
                                         const SweepPlan& plan);
[[nodiscard]] std::uint64_t sweep_digest(const models::TagsH2Params& base,
                                         const std::vector<double>& t_values,
                                         const SweepPlan& plan);

/// The store codec for models::Metrics: all ten fields by f64 bit pattern,
/// in declaration order (the byte-identity of resumed sweeps rests on it).
void encode_metrics(std::span<const models::Metrics> ms, store::BufWriter& w);
[[nodiscard]] bool decode_metrics(store::BufReader& rd, std::span<models::Metrics> out);

}  // namespace tags::core
