#include "core/pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace tags::core {

namespace {

// Batch-level instrumentation shared by every pool in the process (the
// registry aggregates same-named handles, so statics are fine).
obs::Counter& queued_counter() {
  static obs::Counter c("core.pool.tasks_queued");
  return c;
}
obs::Counter& stolen_counter() {
  static obs::Counter c("core.pool.tasks_stolen");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter c("core.pool.tasks_completed");
  return c;
}
obs::Counter& posted_counter() {
  static obs::Counter c("core.pool.tasks_posted");
  return c;
}
obs::Counter& error_counter() {
  static obs::Counter c("core.pool.task_errors");
  return c;
}

}  // namespace

struct ThreadPool::State {
  /// One unit of work on a deque. Batched entries report their first
  /// exception back to the blocked run() caller; posted entries have no
  /// waiter, so an escaped exception is only counted.
  struct Entry {
    std::function<void()> fn;
    bool batched = false;
  };

  // One deque per worker. Owners pop from the front, thieves take from the
  // back; each deque has its own lock so a steal never blocks the victim's
  // neighbours.
  struct Queue {
    std::mutex m;
    std::deque<Entry> tasks;
  };

  explicit State(unsigned n) : queues(n), busy_ns(n) {
    for (auto& b : busy_ns) b.store(0, std::memory_order_relaxed);
  }

  std::vector<Queue> queues;
  std::vector<std::atomic<std::uint64_t>> busy_ns;
  std::atomic<std::uint64_t> stolen{0};
  std::atomic<std::uint64_t> completed{0};
  // Round-robin cursor for post() placement (run() deals by index).
  std::atomic<std::uint64_t> post_cursor{0};
  // Span id active on the thread that called run(): workers execute the
  // batch on other threads, so each task span names this as its parent
  // explicitly (the per-thread span stack cannot cross the pool boundary).
  std::atomic<std::uint64_t> batch_parent{0};

  // Lifecycle: run()/post() publish work under `m` and waiters sleep on
  // done_cv; workers sleep on work_cv between tasks.
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::size_t pending = 0;        ///< all tasks not yet finished
  std::size_t batch_pending = 0;  ///< batched tasks of the active run()
  bool stop = false;
  std::exception_ptr first_error;

  // Serialises concurrent run() callers (one batch in flight at a time).
  std::mutex run_m;

  /// Take one task: own queue first, then steal from the back of the most
  /// loaded victim. Returns false when every deque is empty.
  bool take(unsigned me, Entry& out, bool& stole) {
    {
      Queue& own = queues[me];
      const std::lock_guard<std::mutex> lock(own.m);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.front());
        own.tasks.pop_front();
        stole = false;
        return true;
      }
    }
    // Pick the victim with the longest queue (sampled without locks held
    // long: lock each candidate only for the peek/steal).
    const unsigned n = static_cast<unsigned>(queues.size());
    for (unsigned hop = 1; hop < n; ++hop) {
      Queue& victim = queues[(me + hop) % n];
      const std::lock_guard<std::mutex> lock(victim.m);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        stole = true;
        return true;
      }
    }
    return false;
  }
};

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads > 0 ? threads : default_threads();
  state_ = std::make_unique<State>(n);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->m);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned me) {
  State& s = *state_;
  for (;;) {
    bool stole = false;
    State::Entry entry;
    // Fast path: grab work (own deque, then steal) without the batch lock.
    bool got = s.take(me, entry, stole);
    if (!got) {
      std::unique_lock<std::mutex> lock(s.m);
      s.work_cv.wait(lock, [&] {
        if (s.stop) return true;
        got = s.take(me, entry, stole);
        return got;
      });
      if (!got) return;  // stop requested, queues drained
    }
    if (stole) {
      s.stolen.fetch_add(1, std::memory_order_relaxed);
      stolen_counter().add();
    }
    // Busy time is part of the pool's functional API (worker_busy_ns), so
    // measure it directly — obs::now_ns() is stubbed to 0 in obs-OFF builds.
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    {
      obs::Span span("core/pool_task",
                     entry.batched ? s.batch_parent.load(std::memory_order_relaxed)
                                   : 0);
      span.attr("worker", static_cast<double>(me));
      if (stole) span.attr("stolen", 1.0);
      try {
        entry.fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    entry.fn = nullptr;  // release captures before signalling completion
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    s.busy_ns[me].fetch_add(elapsed, std::memory_order_relaxed);
    s.completed.fetch_add(1, std::memory_order_relaxed);
    completed_counter().add();
    if (error) error_counter().add();
    obs::observe("core.pool.task_ms", static_cast<double>(elapsed) / 1e6);
    bool all_done = false;
    bool batch_done = false;
    {
      const std::lock_guard<std::mutex> lock(s.m);
      if (entry.batched) {
        if (error && !s.first_error) s.first_error = error;
        batch_done = (--s.batch_pending == 0);
      }
      all_done = (--s.pending == 0);
    }
    if (batch_done || all_done) s.done_cv.notify_all();
  }
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  State& s = *state_;
  const std::lock_guard<std::mutex> batch_lock(s.run_m);
  s.batch_parent.store(obs::Span::current_id(), std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(s.m);
    s.first_error = nullptr;
    s.pending += tasks.size();
    s.batch_pending = tasks.size();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      State::Queue& q = s.queues[i % s.queues.size()];
      const std::lock_guard<std::mutex> qlock(q.m);
      q.tasks.push_back({std::move(tasks[i]), /*batched=*/true});
    }
  }
  queued_counter().add(tasks.size());
  s.work_cv.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(s.m);
    s.done_cv.wait(lock, [&] { return s.batch_pending == 0; });
    error = s.first_error;
    s.first_error = nullptr;
  }
  for (unsigned i = 0; i < size(); ++i) {
    obs::gauge_set(("core.pool.worker" + std::to_string(i) + ".busy_ms").c_str(),
                   static_cast<double>(worker_busy_ns(i)) / 1e6);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::post(std::function<void()> task) {
  State& s = *state_;
  const auto slot = static_cast<std::size_t>(
      s.post_cursor.fetch_add(1, std::memory_order_relaxed) % s.queues.size());
  {
    const std::lock_guard<std::mutex> lock(s.m);
    ++s.pending;
    State::Queue& q = s.queues[slot];
    const std::lock_guard<std::mutex> qlock(q.m);
    q.tasks.push_back({std::move(task), /*batched=*/false});
  }
  posted_counter().add();
  s.work_cv.notify_one();
}

void ThreadPool::wait_idle() {
  State& s = *state_;
  std::unique_lock<std::mutex> lock(s.m);
  s.done_cv.wait(lock, [&] { return s.pending == 0; });
}

std::uint64_t ThreadPool::worker_busy_ns(unsigned worker) const {
  return state_->busy_ns.at(worker).load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_stolen() const {
  return state_->stolen.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_completed() const {
  return state_->completed.load(std::memory_order_relaxed);
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("TAGS_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace tags::core
