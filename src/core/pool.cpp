#include "core/pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>

#include "obs/obs.hpp"

namespace tags::core {

namespace {

// Batch-level instrumentation shared by every pool in the process (the
// registry aggregates same-named handles, so statics are fine).
obs::Counter& queued_counter() {
  static obs::Counter c("core.pool.tasks_queued");
  return c;
}
obs::Counter& stolen_counter() {
  static obs::Counter c("core.pool.tasks_stolen");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter c("core.pool.tasks_completed");
  return c;
}

}  // namespace

struct ThreadPool::State {
  // One deque per worker. Owners pop from the front, thieves take from the
  // back; each deque has its own lock so a steal never blocks the victim's
  // neighbours.
  struct Queue {
    std::mutex m;
    std::deque<std::function<void()>*> tasks;
  };

  explicit State(unsigned n) : queues(n), busy_ns(n) {
    for (auto& b : busy_ns) b.store(0, std::memory_order_relaxed);
  }

  std::vector<Queue> queues;
  std::vector<std::atomic<std::uint64_t>> busy_ns;
  std::atomic<std::uint64_t> stolen{0};
  std::atomic<std::uint64_t> completed{0};
  // Span id active on the thread that called run(): workers execute the
  // batch on other threads, so each task span names this as its parent
  // explicitly (the per-thread span stack cannot cross the pool boundary).
  std::atomic<std::uint64_t> batch_parent{0};

  // Batch lifecycle: run() publishes work under `m` and waits on done_cv;
  // workers sleep on work_cv between batches.
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::size_t pending = 0;  ///< tasks not yet finished in the active batch
  bool stop = false;
  std::exception_ptr first_error;

  // Serialises concurrent run() callers (one batch in flight at a time).
  std::mutex run_m;

  /// Take one task: own queue first, then steal from the back of the most
  /// loaded victim. Returns nullptr when every deque is empty.
  std::function<void()>* take(unsigned me, bool& stole) {
    {
      Queue& own = queues[me];
      const std::lock_guard<std::mutex> lock(own.m);
      if (!own.tasks.empty()) {
        auto* t = own.tasks.front();
        own.tasks.pop_front();
        stole = false;
        return t;
      }
    }
    // Pick the victim with the longest queue (sampled without locks held
    // long: lock each candidate only for the peek/steal).
    const unsigned n = static_cast<unsigned>(queues.size());
    for (unsigned hop = 1; hop < n; ++hop) {
      Queue& victim = queues[(me + hop) % n];
      const std::lock_guard<std::mutex> lock(victim.m);
      if (!victim.tasks.empty()) {
        auto* t = victim.tasks.back();
        victim.tasks.pop_back();
        stole = true;
        return t;
      }
    }
    return nullptr;
  }
};

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads > 0 ? threads : default_threads();
  state_ = std::make_unique<State>(n);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->m);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(unsigned me) {
  State& s = *state_;
  for (;;) {
    bool stole = false;
    // Fast path: grab work (own deque, then steal) without the batch lock.
    std::function<void()>* task = s.take(me, stole);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(s.m);
      s.work_cv.wait(lock, [&] {
        if (s.stop) return true;
        task = s.take(me, stole);
        return task != nullptr;
      });
      if (task == nullptr) return;  // stop requested, queues drained
    }
    if (stole) {
      s.stolen.fetch_add(1, std::memory_order_relaxed);
      stolen_counter().add();
    }
    // Busy time is part of the pool's functional API (worker_busy_ns), so
    // measure it directly — obs::now_ns() is stubbed to 0 in obs-OFF builds.
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    {
      obs::Span span("core/pool_task",
                     s.batch_parent.load(std::memory_order_relaxed));
      span.attr("worker", static_cast<double>(me));
      if (stole) span.attr("stolen", 1.0);
      try {
        (*task)();
      } catch (...) {
        error = std::current_exception();
      }
    }
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    s.busy_ns[me].fetch_add(elapsed, std::memory_order_relaxed);
    s.completed.fetch_add(1, std::memory_order_relaxed);
    completed_counter().add();
    obs::observe("core.pool.task_ms", static_cast<double>(elapsed) / 1e6);
    bool batch_done = false;
    {
      const std::lock_guard<std::mutex> lock(s.m);
      if (error && !s.first_error) s.first_error = error;
      batch_done = (--s.pending == 0);
    }
    if (batch_done) s.done_cv.notify_all();
  }
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  State& s = *state_;
  const std::lock_guard<std::mutex> batch_lock(s.run_m);
  s.batch_parent.store(obs::Span::current_id(), std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(s.m);
    s.first_error = nullptr;
    s.pending = tasks.size();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      State::Queue& q = s.queues[i % s.queues.size()];
      const std::lock_guard<std::mutex> qlock(q.m);
      q.tasks.push_back(&tasks[i]);
    }
  }
  queued_counter().add(tasks.size());
  s.work_cv.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(s.m);
    s.done_cv.wait(lock, [&] { return s.pending == 0; });
    error = s.first_error;
    s.first_error = nullptr;
  }
  for (unsigned i = 0; i < size(); ++i) {
    obs::gauge_set(("core.pool.worker" + std::to_string(i) + ".busy_ms").c_str(),
                   static_cast<double>(worker_busy_ns(i)) / 1e6);
  }
  if (error) std::rethrow_exception(error);
}

std::uint64_t ThreadPool::worker_busy_ns(unsigned worker) const {
  return state_->busy_ns.at(worker).load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_stolen() const {
  return state_->stolen.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_completed() const {
  return state_->completed.load(std::memory_order_relaxed);
}

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("TAGS_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace tags::core
