#include "core/experiment.hpp"

#include <optional>
#include <span>
#include <string_view>

#include "core/sweep.hpp"
#include "ctmc/digest.hpp"
#include "models/batch_sweep.hpp"
#include "obs/obs.hpp"

namespace tags::core {

PolicyComparison compare_policies_exp(const models::TagsParams& p) {
  PolicyComparison c;
  c.tags = models::TagsModel(p).metrics();
  c.random = models::random_alloc_exp({.lambda = p.lambda, .mu = p.mu, .k = p.k1});
  c.round_robin =
      models::RoundRobinModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  c.shortest_queue =
      models::ShortestQueueModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  return c;
}

PolicyComparison compare_policies_h2(const models::TagsH2Params& p) {
  PolicyComparison c;
  c.tags = models::TagsH2Model(p).metrics();
  c.random = models::random_alloc_h2(
      {.lambda = p.lambda, .alpha = p.alpha, .mu1 = p.mu1, .mu2 = p.mu2, .k = p.k1});
  c.shortest_queue = models::ShortestQueueH2Model({.lambda = p.lambda,
                                                   .alpha = p.alpha,
                                                   .mu1 = p.mu1,
                                                   .mu2 = p.mu2,
                                                   .k = p.k1})
                         .metrics();
  return c;
}

namespace {

/// One warm-started t-chain over [range): the body shared by the legacy
/// sequential sweeps (one chain across the whole grid) and the sharded
/// engine (one chain per shard, thread-local model instance). `batch > 1`
/// packs that many adjacent points per solve (models::batched_t_chain);
/// batch width never enters the shard plan or journal digest, so it is an
/// execution knob like the thread count, not part of a sweep's identity.
template <class Model, class Params>
void eval_t_chain(const Params& base, const std::vector<double>& t_values,
                  ShardRange range, std::span<models::Metrics> out,
                  ctmc::WarmStartState& warm, std::size_t batch = 1) {
  models::batched_t_chain<Model>(
      base, t_values, range.begin, range.end, batch, warm,
      [&](std::size_t i, const ctmc::SteadyStateResult& solved, Model& model) {
        out[i - range.begin] = model.metrics_from(solved.pi);
      });
}

template <class Model, class Params>
std::vector<models::Metrics> model_t_sweep(const Params& base,
                                           const std::vector<double>& t_values,
                                           const SweepPlan& plan, SweepStats* stats,
                                           const SweepJournalBinding<models::Metrics>*
                                               binding = nullptr) {
  const std::size_t batch = plan.batch > 0 ? plan.batch : default_batch_width();
  return sharded_sweep<models::Metrics>(
      t_values.size(), plan,
      [&](ShardRange range, std::span<models::Metrics> out,
          ctmc::WarmStartState& warm) {
        eval_t_chain<Model>(base, t_values, range, out, warm, batch);
      },
      stats, binding);
}

/// Shared tail of both sweep digests: grid values by bit pattern plus the
/// resolved shard size (a journal keyed on a 4-point shard plan must never
/// replay into an 8-point one — shard indices would mean different ranges).
std::uint64_t digest_grid_and_plan(std::uint64_t h, const std::vector<double>& t_values,
                                   const SweepPlan& plan) {
  h = ctmc::fnv1a64_u64(t_values.size(), h);
  for (const double t : t_values) h = ctmc::fnv1a64_double(t, h);
  const std::size_t shard_size =
      plan.shard_size > 0 ? plan.shard_size : default_shard_size(t_values.size());
  return ctmc::fnv1a64_u64(shard_size, h);
}

std::uint64_t digest_name(std::string_view name) {
  return ctmc::fnv1a64(name.data(), name.size());
}

SweepJournalBinding<models::Metrics> make_metrics_binding(store::SweepJournal& journal) {
  SweepJournalBinding<models::Metrics> b;
  b.journal = &journal;
  b.encode = [](std::span<const models::Metrics> ms, store::BufWriter& w) {
    encode_metrics(ms, w);
  };
  b.decode = [](store::BufReader& rd, std::span<models::Metrics> out) {
    return decode_metrics(rd, out);
  };
  return b;
}

}  // namespace

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  std::vector<models::Metrics> out(t_values.size());
  ctmc::WarmStartState warm;
  eval_t_chain<models::TagsModel>(base, t_values, {0, t_values.size()}, out, warm);
  return out;
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  std::vector<models::Metrics> out(t_values.size());
  ctmc::WarmStartState warm;
  eval_t_chain<models::TagsH2Model>(base, t_values, {0, t_values.size()}, out, warm);
  return out;
}

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values,
                                          const SweepPlan& plan, SweepStats* stats) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  return model_t_sweep<models::TagsModel>(base, t_values, plan, stats);
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values,
                                             const SweepPlan& plan,
                                             SweepStats* stats) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  return model_t_sweep<models::TagsH2Model>(base, t_values, plan, stats);
}

std::uint64_t sweep_digest(const models::TagsParams& base,
                           const std::vector<double>& t_values,
                           const SweepPlan& plan) {
  std::uint64_t h = digest_name("tags_t_sweep");
  h = ctmc::fnv1a64_double(base.lambda, h);
  h = ctmc::fnv1a64_double(base.mu, h);
  h = ctmc::fnv1a64_u64(base.n, h);
  h = ctmc::fnv1a64_u64(base.k1, h);
  h = ctmc::fnv1a64_u64(base.k2, h);
  return digest_grid_and_plan(h, t_values, plan);
}

std::uint64_t sweep_digest(const models::TagsH2Params& base,
                           const std::vector<double>& t_values,
                           const SweepPlan& plan) {
  std::uint64_t h = digest_name("tags_h2_t_sweep");
  h = ctmc::fnv1a64_double(base.lambda, h);
  h = ctmc::fnv1a64_double(base.alpha, h);
  h = ctmc::fnv1a64_double(base.mu1, h);
  h = ctmc::fnv1a64_double(base.mu2, h);
  h = ctmc::fnv1a64_u64(base.n, h);
  h = ctmc::fnv1a64_u64(base.k1, h);
  h = ctmc::fnv1a64_u64(base.k2, h);
  return digest_grid_and_plan(h, t_values, plan);
}

void encode_metrics(std::span<const models::Metrics> ms, store::BufWriter& w) {
  for (const models::Metrics& m : ms) {
    w.put_f64(m.mean_q1);
    w.put_f64(m.mean_q2);
    w.put_f64(m.mean_total);
    w.put_f64(m.throughput);
    w.put_f64(m.loss1_rate);
    w.put_f64(m.loss2_rate);
    w.put_f64(m.loss_rate);
    w.put_f64(m.response_time);
    w.put_f64(m.utilisation1);
    w.put_f64(m.utilisation2);
  }
}

bool decode_metrics(store::BufReader& rd, std::span<models::Metrics> out) {
  for (models::Metrics& m : out) {
    m.mean_q1 = rd.get_f64();
    m.mean_q2 = rd.get_f64();
    m.mean_total = rd.get_f64();
    m.throughput = rd.get_f64();
    m.loss1_rate = rd.get_f64();
    m.loss2_rate = rd.get_f64();
    m.loss_rate = rd.get_f64();
    m.response_time = rd.get_f64();
    m.utilisation1 = rd.get_f64();
    m.utilisation2 = rd.get_f64();
  }
  return rd.ok();
}

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values,
                                          const SweepPlan& plan, SweepStats* stats,
                                          store::SolveStore* store) {
  if (store == nullptr) return tags_t_sweep(base, t_values, plan, stats);
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  store::SweepJournal journal(*store, "tags_t_sweep",
                              sweep_digest(base, t_values, plan));
  const auto binding = make_metrics_binding(journal);
  return model_t_sweep<models::TagsModel>(base, t_values, plan, stats, &binding);
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values,
                                             const SweepPlan& plan, SweepStats* stats,
                                             store::SolveStore* store) {
  if (store == nullptr) return tags_h2_t_sweep(base, t_values, plan, stats);
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  store::SweepJournal journal(*store, "tags_h2_t_sweep",
                              sweep_digest(base, t_values, plan));
  const auto binding = make_metrics_binding(journal);
  return model_t_sweep<models::TagsH2Model>(base, t_values, plan, stats, &binding);
}

}  // namespace tags::core
