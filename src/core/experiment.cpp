#include "core/experiment.hpp"

#include "core/sweep.hpp"
#include "obs/obs.hpp"

namespace tags::core {

PolicyComparison compare_policies_exp(const models::TagsParams& p) {
  PolicyComparison c;
  c.tags = models::TagsModel(p).metrics();
  c.random = models::random_alloc_exp({.lambda = p.lambda, .mu = p.mu, .k = p.k1});
  c.round_robin =
      models::RoundRobinModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  c.shortest_queue =
      models::ShortestQueueModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  return c;
}

PolicyComparison compare_policies_h2(const models::TagsH2Params& p) {
  PolicyComparison c;
  c.tags = models::TagsH2Model(p).metrics();
  c.random = models::random_alloc_h2(
      {.lambda = p.lambda, .alpha = p.alpha, .mu1 = p.mu1, .mu2 = p.mu2, .k = p.k1});
  c.shortest_queue = models::ShortestQueueH2Model({.lambda = p.lambda,
                                                   .alpha = p.alpha,
                                                   .mu1 = p.mu1,
                                                   .mu2 = p.mu2,
                                                   .k = p.k1})
                         .metrics();
  return c;
}

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  std::vector<models::Metrics> out;
  out.reserve(t_values.size());
  ctmc::SteadyStateOptions opts;
  for (double t : t_values) {
    models::TagsParams p = base;
    p.t = t;
    const auto model = [&] {
      const obs::ScopedTimer build_timer("build");
      return models::TagsModel(p);
    }();
    obs::gauge_set("core.tags_t_sweep.last_states",
                   static_cast<double>(model.n_states()));
    const auto solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return model.solve(opts);
    }();
    if (solved.converged) opts.initial_guess = solved.pi;
    out.push_back(model.metrics_from(solved.pi));
  }
  return out;
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  std::vector<models::Metrics> out;
  out.reserve(t_values.size());
  ctmc::SteadyStateOptions opts;
  for (double t : t_values) {
    models::TagsH2Params p = base;
    p.t = t;
    const auto model = [&] {
      const obs::ScopedTimer build_timer("build");
      return models::TagsH2Model(p);
    }();
    obs::gauge_set("core.tags_h2_t_sweep.last_states",
                   static_cast<double>(model.n_states()));
    const auto solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return model.solve(opts);
    }();
    if (solved.converged) opts.initial_guess = solved.pi;
    out.push_back(model.metrics_from(solved.pi));
  }
  return out;
}

}  // namespace tags::core
