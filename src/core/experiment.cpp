#include "core/experiment.hpp"

#include <optional>
#include <span>

#include "core/sweep.hpp"
#include "obs/obs.hpp"

namespace tags::core {

PolicyComparison compare_policies_exp(const models::TagsParams& p) {
  PolicyComparison c;
  c.tags = models::TagsModel(p).metrics();
  c.random = models::random_alloc_exp({.lambda = p.lambda, .mu = p.mu, .k = p.k1});
  c.round_robin =
      models::RoundRobinModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  c.shortest_queue =
      models::ShortestQueueModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  return c;
}

PolicyComparison compare_policies_h2(const models::TagsH2Params& p) {
  PolicyComparison c;
  c.tags = models::TagsH2Model(p).metrics();
  c.random = models::random_alloc_h2(
      {.lambda = p.lambda, .alpha = p.alpha, .mu1 = p.mu1, .mu2 = p.mu2, .k = p.k1});
  c.shortest_queue = models::ShortestQueueH2Model({.lambda = p.lambda,
                                                   .alpha = p.alpha,
                                                   .mu1 = p.mu1,
                                                   .mu2 = p.mu2,
                                                   .k = p.k1})
                         .metrics();
  return c;
}

namespace {

/// One warm-started t-chain over [range): the body shared by the legacy
/// sequential sweeps (one chain across the whole grid) and the sharded
/// engine (one chain per shard, thread-local model instance).
template <class Model, class Params>
void eval_t_chain(const Params& base, const std::vector<double>& t_values,
                  ShardRange range, std::span<models::Metrics> out,
                  ctmc::WarmStartState& warm) {
  std::optional<Model> model;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    Params p = base;
    p.t = t_values[i];
    {
      // Only t moves within the sweep: the sparsity pattern is frozen, so
      // every point after the first is a rate rebind, not a rebuild.
      const obs::ScopedTimer build_timer("build");
      if (model) {
        model->rebind(p);
      } else {
        model.emplace(p);
      }
    }
    warm.reconcile(model->n_states());
    const auto solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return model->solve(warm.opts);
    }();
    warm.accept(solved);
    out[i - range.begin] = model->metrics_from(solved.pi);
  }
}

template <class Model, class Params>
std::vector<models::Metrics> model_t_sweep(const Params& base,
                                           const std::vector<double>& t_values,
                                           const SweepPlan& plan, SweepStats* stats) {
  return sharded_sweep<models::Metrics>(
      t_values.size(), plan,
      [&](ShardRange range, std::span<models::Metrics> out,
          ctmc::WarmStartState& warm) {
        eval_t_chain<Model>(base, t_values, range, out, warm);
      },
      stats);
}

}  // namespace

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  std::vector<models::Metrics> out(t_values.size());
  ctmc::WarmStartState warm;
  eval_t_chain<models::TagsModel>(base, t_values, {0, t_values.size()}, out, warm);
  return out;
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  std::vector<models::Metrics> out(t_values.size());
  ctmc::WarmStartState warm;
  eval_t_chain<models::TagsH2Model>(base, t_values, {0, t_values.size()}, out, warm);
  return out;
}

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values,
                                          const SweepPlan& plan, SweepStats* stats) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  return model_t_sweep<models::TagsModel>(base, t_values, plan, stats);
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values,
                                             const SweepPlan& plan,
                                             SweepStats* stats) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  return model_t_sweep<models::TagsH2Model>(base, t_values, plan, stats);
}

}  // namespace tags::core
