#include "core/experiment.hpp"

#include <optional>

#include "core/sweep.hpp"
#include "obs/obs.hpp"

namespace tags::core {

PolicyComparison compare_policies_exp(const models::TagsParams& p) {
  PolicyComparison c;
  c.tags = models::TagsModel(p).metrics();
  c.random = models::random_alloc_exp({.lambda = p.lambda, .mu = p.mu, .k = p.k1});
  c.round_robin =
      models::RoundRobinModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  c.shortest_queue =
      models::ShortestQueueModel({.lambda = p.lambda, .mu = p.mu, .k = p.k1}).metrics();
  return c;
}

PolicyComparison compare_policies_h2(const models::TagsH2Params& p) {
  PolicyComparison c;
  c.tags = models::TagsH2Model(p).metrics();
  c.random = models::random_alloc_h2(
      {.lambda = p.lambda, .alpha = p.alpha, .mu1 = p.mu1, .mu2 = p.mu2, .k = p.k1});
  c.shortest_queue = models::ShortestQueueH2Model({.lambda = p.lambda,
                                                   .alpha = p.alpha,
                                                   .mu1 = p.mu1,
                                                   .mu2 = p.mu2,
                                                   .k = p.k1})
                         .metrics();
  return c;
}

std::vector<models::Metrics> tags_t_sweep(const models::TagsParams& base,
                                          const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_t_sweep");
  std::vector<models::Metrics> out;
  out.reserve(t_values.size());
  ctmc::SteadyStateOptions opts;
  std::optional<models::TagsModel> model;
  for (double t : t_values) {
    models::TagsParams p = base;
    p.t = t;
    {
      // Only t moves within the sweep: the sparsity pattern is frozen, so
      // every point after the first is a rate rebind, not a rebuild.
      const obs::ScopedTimer build_timer("build");
      if (model) {
        model->rebind(p);
      } else {
        model.emplace(p);
      }
    }
    obs::gauge_set("core.tags_t_sweep.last_states",
                   static_cast<double>(model->n_states()));
    ctmc::reconcile_warm_start(opts, model->n_states());
    const auto solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return model->solve(opts);
    }();
    if (solved.converged) opts.initial_guess = solved.pi;
    out.push_back(model->metrics_from(solved.pi));
  }
  return out;
}

std::vector<models::Metrics> tags_h2_t_sweep(const models::TagsH2Params& base,
                                             const std::vector<double>& t_values) {
  const obs::ScopedTimer sweep_timer("core/tags_h2_t_sweep");
  std::vector<models::Metrics> out;
  out.reserve(t_values.size());
  ctmc::SteadyStateOptions opts;
  std::optional<models::TagsH2Model> model;
  for (double t : t_values) {
    models::TagsH2Params p = base;
    p.t = t;
    {
      const obs::ScopedTimer build_timer("build");
      if (model) {
        model->rebind(p);
      } else {
        model.emplace(p);
      }
    }
    obs::gauge_set("core.tags_h2_t_sweep.last_states",
                   static_cast<double>(model->n_states()));
    ctmc::reconcile_warm_start(opts, model->n_states());
    const auto solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return model->solve(opts);
    }();
    if (solved.converged) opts.initial_guess = solved.pi;
    out.push_back(model->metrics_from(solved.pi));
  }
  return out;
}

}  // namespace tags::core
