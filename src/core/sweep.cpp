#include "core/sweep.hpp"

namespace tags::core {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(count - 1));
  }
  return out;
}

}  // namespace tags::core
