#include "core/sweep.hpp"

#include <algorithm>
#include <cstdlib>

namespace tags::core {

std::size_t default_batch_width() noexcept {
  const char* env = std::getenv("TAGS_SWEEP_BATCH");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 64) return 1;
  return static_cast<std::size_t>(v);
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(count - 1));
  }
  return out;
}

std::size_t default_shard_size(std::size_t n_points) noexcept {
  if (n_points == 0) return 1;
  // Aim for ~16 shards (plenty of stealing slack for an 8-way pool) but
  // never shards of fewer than 2 points: a 1-point shard is all cold
  // solve, which wastes the warm-start chain entirely.
  constexpr std::size_t kTargetShards = 16;
  const std::size_t size = (n_points + kTargetShards - 1) / kTargetShards;
  return std::max<std::size_t>(size, 2);
}

std::vector<ShardRange> plan_shards(std::size_t n_points, std::size_t shard_size) {
  if (shard_size == 0) shard_size = default_shard_size(n_points);
  std::vector<ShardRange> shards;
  shards.reserve(n_points / shard_size + 1);
  for (std::size_t begin = 0; begin < n_points; begin += shard_size) {
    shards.push_back({begin, std::min(begin + shard_size, n_points)});
  }
  return shards;
}

}  // namespace tags::core
