// The paper's experimental scenarios (Section 5), one per figure, with the
// published parameter values as defaults.
#pragma once

#include <string>
#include <vector>

#include "models/tags.hpp"
#include "models/tags_h2.hpp"

namespace tags::core {

/// Common constants: n = 6, K1 = K2 = 10, mu = 10 (mean demand 0.1).
struct PaperDefaults {
  static constexpr unsigned kTicks = 6;
  static constexpr unsigned kBuffer = 10;
  static constexpr double kMu = 10.0;
  static constexpr double kMeanDemand = 0.1;
};

/// Figures 6 & 7: lambda = 5, exponential demands, sweep the timer rate t.
struct Fig6Scenario {
  double lambda = 5.0;
  std::vector<double> t_values;  ///< default filled by make()
  [[nodiscard]] static Fig6Scenario make();
  [[nodiscard]] models::TagsParams tags_at(double t) const;
};

/// Figure 8: response time vs arrival rate at the queue-length-optimal
/// integer t. The paper quotes t* = 51, 49, 45, 42 for lambda = 5, 7, 9, 11.
struct Fig8Scenario {
  std::vector<double> lambdas{5.0, 7.0, 9.0, 11.0};
  [[nodiscard]] models::TagsParams tags_at(double lambda, double t) const;
};

/// Figures 9 & 10: H2 demands, alpha = 0.99, mu1 = 100 mu2, mean 0.1,
/// lambda = 11, sweep t.
struct Fig9Scenario {
  double lambda = 11.0;
  double alpha = 0.99;
  double ratio = 100.0;
  std::vector<double> t_values;
  [[nodiscard]] static Fig9Scenario make();
  [[nodiscard]] models::TagsH2Params tags_at(double t) const;
};

/// Figures 11 & 12: H2 with mu1 = 10 mu2, alpha swept over [0.89, 0.99],
/// TAGS at the per-alpha optimal t.
struct Fig11Scenario {
  double lambda = 11.0;
  double ratio = 10.0;
  std::vector<double> alphas;
  [[nodiscard]] static Fig11Scenario make();
  [[nodiscard]] models::TagsH2Params tags_at(double alpha, double t) const;
};

}  // namespace tags::core
