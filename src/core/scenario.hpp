// The paper's experimental scenarios (Section 5), one per figure, with the
// published parameter values as defaults — plus the shared scenario-request
// layer: a ScenarioRequest names one policy at one parameter point, and
// evaluate_scenario / ScenarioSlot are the single evaluation path behind
// both the one-shot figure binaries and the tags_server daemon, so a served
// answer and a driver's answer come from provably the same code.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"
#include "models/tags.hpp"
#include "models/tags_h2.hpp"

namespace tags::core {

/// Common constants: n = 6, K1 = K2 = 10, mu = 10 (mean demand 0.1).
struct PaperDefaults {
  static constexpr unsigned kTicks = 6;
  static constexpr unsigned kBuffer = 10;
  static constexpr double kMu = 10.0;
  static constexpr double kMeanDemand = 0.1;
};

/// Figures 6 & 7: lambda = 5, exponential demands, sweep the timer rate t.
struct Fig6Scenario {
  double lambda = 5.0;
  std::vector<double> t_values;  ///< default filled by make()
  [[nodiscard]] static Fig6Scenario make();
  [[nodiscard]] models::TagsParams tags_at(double t) const;
};

/// Figure 8: response time vs arrival rate at the queue-length-optimal
/// integer t. The paper quotes t* = 51, 49, 45, 42 for lambda = 5, 7, 9, 11.
struct Fig8Scenario {
  std::vector<double> lambdas{5.0, 7.0, 9.0, 11.0};
  [[nodiscard]] models::TagsParams tags_at(double lambda, double t) const;
};

/// Figures 9 & 10: H2 demands, alpha = 0.99, mu1 = 100 mu2, mean 0.1,
/// lambda = 11, sweep t.
struct Fig9Scenario {
  double lambda = 11.0;
  double alpha = 0.99;
  double ratio = 100.0;
  std::vector<double> t_values;
  [[nodiscard]] static Fig9Scenario make();
  [[nodiscard]] models::TagsH2Params tags_at(double t) const;
};

/// Figures 11 & 12: H2 with mu1 = 10 mu2, alpha swept over [0.89, 0.99],
/// TAGS at the per-alpha optimal t.
struct Fig11Scenario {
  double lambda = 11.0;
  double ratio = 10.0;
  std::vector<double> alphas;
  [[nodiscard]] static Fig11Scenario make();
  [[nodiscard]] models::TagsH2Params tags_at(double alpha, double t) const;
};

// ---------------------------------------------------------------------------
// Scenario requests: the policy/parameter-point vocabulary shared by the
// figure drivers and the tags_server daemon.
// ---------------------------------------------------------------------------

/// Every allocation policy a scenario can name. The exponential-demand
/// baselines (kRandom, kRoundRobin, kShortestQueue) read lambda/mu/k1; the
/// H2 baselines (kRandomH2, kShortestQueueH2) read lambda/alpha/mu1/mu2/k1.
enum class PolicyKind {
  kTags,
  kTagsH2,
  kRandom,
  kRandomH2,
  kRoundRobin,
  kShortestQueue,
  kShortestQueueH2,
};

/// Wire/CLI name of a policy ("tags", "tags_h2", "random", "random_h2",
/// "round_robin", "shortest_queue", "shortest_queue_h2").
[[nodiscard]] std::string_view to_string(PolicyKind kind) noexcept;
[[nodiscard]] std::optional<PolicyKind> policy_from_string(std::string_view name) noexcept;

/// One solvable scenario: a policy at one parameter point. The field set is
/// the union of every policy's parameters; each policy reads its own slice
/// (see PolicyKind). Defaults are the paper's common constants.
struct ScenarioRequest {
  PolicyKind policy = PolicyKind::kTags;
  double lambda = 5.0;  ///< arrival rate
  double mu = 10.0;     ///< service rate (exponential-demand family)
  double t = 50.0;      ///< TAGS timer phase rate
  double alpha = 0.99;  ///< P(job short) (H2 family)
  double mu1 = 19.9;    ///< short-job rate (H2 family)
  double mu2 = 0.199;   ///< long-job rate (H2 family)
  unsigned n = PaperDefaults::kTicks;    ///< timer ticks (structural)
  unsigned k1 = PaperDefaults::kBuffer;  ///< node-1 buffer (structural)
  unsigned k2 = PaperDefaults::kBuffer;  ///< node-2 buffer (structural)

  [[nodiscard]] models::TagsParams tags_params() const;
  [[nodiscard]] models::TagsH2Params tags_h2_params() const;
  /// True for the policies whose demands are hyper-exponential.
  [[nodiscard]] bool is_h2() const noexcept;
};

/// Reject requests whose rate parameters no model can solve: throws
/// std::invalid_argument for non-finite or non-positive lambda, for a
/// non-positive mu (exponential family) or mu1/mu2 (H2 family), for an
/// alpha outside [0, 1], and for a non-positive timer rate t on the TAGS
/// policies. Called by ScenarioSlot::evaluate before any model is built,
/// so the server's error path and the one-shot path reject identically.
void validate(const ScenarioRequest& req);

/// Lift model parameter structs into requests (the figure drivers' path).
[[nodiscard]] ScenarioRequest request_for(const models::TagsParams& p);
[[nodiscard]] ScenarioRequest request_for(const models::TagsH2Params& p);

/// The same parameter point under a different policy: the baseline
/// comparison every figure makes. Exponential baselines inherit
/// lambda/mu/k1 from `base`; H2 baselines inherit lambda/alpha/mu1/mu2/k1.
[[nodiscard]] ScenarioRequest baseline_for(PolicyKind kind, const ScenarioRequest& base);

/// FNV-1a digest over the policy name and every numeric parameter the
/// policy reads — the "rate point" component of the solve-cache key.
/// Structural parameters are included too, so the digest alone is a usable
/// exact-request key even before a model is assembled.
[[nodiscard]] std::uint64_t rate_digest(const ScenarioRequest& req) noexcept;

/// The structural identity of a request: policy plus the parameters that
/// shape the state space (n/k1/k2). Requests with equal structure keys
/// share a frozen sparsity pattern — and therefore a ScenarioSlot.
[[nodiscard]] std::string structure_key(const ScenarioRequest& req);

/// What one evaluation produced. Closed-form policies (kRandom) have no
/// chain: pi stays empty, structure_digest 0, and solve holds a synthetic
/// converged result.
struct ScenarioOutcome {
  models::Metrics metrics;
  linalg::Vec pi;                        ///< stationary vector (CTMC policies)
  ctmc::SteadyStateResult solve;         ///< convergence + certificate
  std::uint64_t structure_digest = 0;    ///< ctmc::structure_digest of the chain
};

/// A reusable evaluation slot holding at most one assembled model. Re-used
/// with a request of the same structure key, it rebinds rates on the frozen
/// sparsity pattern and warm-starts from the previous solve (the
/// ctmc::WarmStartState machinery); a different structure rebuilds. A
/// default-constructed slot evaluated once is exactly the one-shot path.
/// Not thread-safe: the server wraps each slot in its own mutex.
class ScenarioSlot {
 public:
  ScenarioSlot();
  ~ScenarioSlot();
  ScenarioSlot(ScenarioSlot&&) noexcept;
  ScenarioSlot& operator=(ScenarioSlot&&) noexcept;

  /// Evaluate a request, reusing the assembled model when the structure
  /// matches. `opts` seeds the solver configuration; the slot overlays its
  /// warm-start guess on top. Throws std::invalid_argument for parameter
  /// values the model rejects.
  [[nodiscard]] ScenarioOutcome evaluate(const ScenarioRequest& req,
                                         const ctmc::SteadyStateOptions& opts = {});

  /// Warm-start counters accumulated by this slot (hits/misses/cleared).
  [[nodiscard]] const ctmc::WarmStartState& warm() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot evaluation: a fresh slot, a cold solve. The figure binaries'
/// baseline metrics and the tags_client --oneshot mode both live here.
[[nodiscard]] ScenarioOutcome evaluate_scenario(const ScenarioRequest& req,
                                                const ctmc::SteadyStateOptions& opts = {});

/// Convenience: evaluate_scenario(req).metrics.
[[nodiscard]] models::Metrics scenario_metrics(const ScenarioRequest& req);

}  // namespace tags::core
