#include "obs/metrics.hpp"

#include <sstream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "obs/timer.hpp"

#if TAGS_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace tags::obs {

namespace {

// Counters beyond this many distinct names fall back to a shared atomic.
constexpr std::size_t kSlabSlots = 1024;
constexpr std::size_t kMaxSolveRecords = 10000;

struct Slab {
  std::array<std::atomic<std::uint64_t>, kSlabSlots> slot{};
};

struct CounterInfo {
  std::string name;
  std::atomic<std::uint64_t> overflow{0};  ///< used when id >= kSlabSlots
};

struct GaugeInfo {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistInfo {
  std::string name;
  std::vector<double> bounds;  ///< sorted upper bounds; +1 overflow bucket
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<std::uint64_t> n{0};
  std::atomic<double> sum{0.0};

  void observe(double v) noexcept {
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds.begin());
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<CounterInfo>> counters;
  std::unordered_map<std::string, std::size_t> counter_id;
  std::vector<std::unique_ptr<GaugeInfo>> gauges;
  std::unordered_map<std::string, std::size_t> gauge_id;
  std::vector<std::unique_ptr<HistInfo>> hists;
  std::unordered_map<std::string, std::size_t> hist_id;
  // Slabs are never freed: a slab returned by an exiting thread goes to the
  // free list and keeps its counts, so aggregation never races a teardown.
  std::vector<std::unique_ptr<Slab>> slabs;
  std::vector<Slab*> free_slabs;
  std::vector<SolveRecord> solves;
  std::uint64_t solves_dropped = 0;

  static Registry& get() {
    static Registry* r = new Registry;  // leaked: outlives static destructors
    return *r;
  }
};

/// This thread's slab, leased from the registry and returned on thread exit.
struct SlabLease {
  Slab* slab = nullptr;
  ~SlabLease() {
    if (slab == nullptr) return;
    Registry& r = Registry::get();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.free_slabs.push_back(slab);
  }
};

Slab& local_slab() {
  thread_local SlabLease lease;
  if (lease.slab == nullptr) {
    Registry& r = Registry::get();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (!r.free_slabs.empty()) {
      lease.slab = r.free_slabs.back();
      r.free_slabs.pop_back();
    } else {
      r.slabs.push_back(std::make_unique<Slab>());
      lease.slab = r.slabs.back().get();
    }
  }
  return *lease.slab;
}

std::size_t intern(std::unordered_map<std::string, std::size_t>& ids,
                   const std::string& name, std::size_t next) {
  const auto [it, inserted] = ids.emplace(name, next);
  return it->second;
}

std::uint64_t counter_total(Registry& r, std::size_t id) {
  // Caller holds r.mu.
  std::uint64_t total = r.counters[id]->overflow.load(std::memory_order_relaxed);
  if (id < kSlabSlots) {
    for (const auto& slab : r.slabs) {
      total += slab->slot[id].load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

Counter::Counter(const std::string& name) {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  id_ = intern(r.counter_id, name, r.counters.size());
  if (id_ == r.counters.size()) {
    r.counters.push_back(std::make_unique<CounterInfo>());
    r.counters.back()->name = name;
  }
}

void Counter::add(std::uint64_t delta) noexcept {
  if (id_ < kSlabSlots) {
    local_slab().slot[id_].fetch_add(delta, std::memory_order_relaxed);
  } else {
    Registry::get().counters[id_]->overflow.fetch_add(delta, std::memory_order_relaxed);
  }
}

std::uint64_t Counter::value() const {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  return counter_total(r, id_);
}

Gauge::Gauge(const std::string& name) {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  id_ = intern(r.gauge_id, name, r.gauges.size());
  if (id_ == r.gauges.size()) {
    r.gauges.push_back(std::make_unique<GaugeInfo>());
    r.gauges.back()->name = name;
  }
}

void Gauge::set(double v) noexcept {
  Registry::get().gauges[id_]->value.store(v, std::memory_order_relaxed);
}

double Gauge::value() const {
  return Registry::get().gauges[id_]->value.load(std::memory_order_relaxed);
}

Histogram::Histogram(const std::string& name, std::vector<double> upper_bounds) {
  assert(std::is_sorted(upper_bounds.begin(), upper_bounds.end()));
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  id_ = intern(r.hist_id, name, r.hists.size());
  if (id_ == r.hists.size()) {
    auto info = std::make_unique<HistInfo>();
    info->name = name;
    info->bounds = std::move(upper_bounds);
    info->buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(info->bounds.size() + 1);
    for (std::size_t i = 0; i <= info->bounds.size(); ++i) info->buckets[i] = 0;
    r.hists.push_back(std::move(info));
  }
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  std::vector<double> b;
  b.reserve(count);
  double v = first;
  for (std::size_t i = 0; i < count; ++i, v *= factor) b.push_back(v);
  return b;
}

std::vector<double> Histogram::linear_bounds(double lo, double hi, std::size_t count) {
  std::vector<double> b;
  b.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    b.push_back(lo + (hi - lo) * static_cast<double>(i + 1) /
                         static_cast<double>(count));
  }
  return b;
}

void Histogram::observe(double v) noexcept { Registry::get().hists[id_]->observe(v); }

std::uint64_t Histogram::count() const {
  return Registry::get().hists[id_]->n.load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  return Registry::get().hists[id_]->sum.load(std::memory_order_relaxed);
}

namespace {

double hist_percentile(const HistInfo& h, double p) {
  const std::size_t n_buckets = h.bounds.size() + 1;
  std::vector<std::uint64_t> counts(n_buckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    counts[i] = h.buckets[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target || i + 1 == n_buckets) {
      if (i == h.bounds.size()) return h.bounds.empty() ? 0.0 : h.bounds.back();
      const double lower = i == 0 ? std::min(0.0, h.bounds[0]) : h.bounds[i - 1];
      const double upper = h.bounds[i];
      const double frac =
          counts[i] == 0 ? 1.0 : (target - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return h.bounds.back();
}

}  // namespace

double Histogram::percentile(double p) const {
  return hist_percentile(*Registry::get().hists[id_], p);
}

// ---------------------------------------------------------------------------
// Name-based helpers
// ---------------------------------------------------------------------------

void count(const char* name, std::uint64_t delta) {
  if (!metrics_on()) return;
  Counter(name).add(delta);
}

void gauge_set(const char* name, double v) {
  if (!metrics_on()) return;
  Gauge(name).set(v);
}

void observe(const char* name, double v) {
  if (!metrics_on()) return;
  Histogram(name, Histogram::exponential_bounds(1e-6, 4.0, 24)).observe(v);
}

// ---------------------------------------------------------------------------
// Solve log
// ---------------------------------------------------------------------------

void record_solve(SolveRecord rec) {
  if (!metrics_on()) return;
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.solves.size() >= kMaxSolveRecords) {
    ++r.solves_dropped;
    return;
  }
  r.solves.push_back(std::move(rec));
}

std::vector<SolveRecord> solve_records() {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  return r.solves;
}

std::vector<CounterSnapshot> counter_snapshots() {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterSnapshot> out;
  out.reserve(r.counters.size());
  for (std::size_t i = 0; i < r.counters.size(); ++i) {
    out.push_back({r.counters[i]->name, counter_total(r, i)});
  }
  return out;
}

std::vector<GaugeSnapshot> gauge_snapshots() {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<GaugeSnapshot> out;
  out.reserve(r.gauges.size());
  for (const auto& g : r.gauges) {
    out.push_back({g->name, g->value.load(std::memory_order_relaxed)});
  }
  return out;
}

std::vector<HistogramSnapshot> histogram_snapshots() {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistogramSnapshot> out;
  out.reserve(r.hists.size());
  for (const auto& h : r.hists) {
    HistogramSnapshot s;
    s.name = h->name;
    s.bounds = h->bounds;
    s.buckets.resize(h->bounds.size() + 1);
    for (std::size_t i = 0; i <= h->bounds.size(); ++i) {
      s.buckets[i] = h->buckets[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum = h->sum.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string metrics_json(const std::string& id) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("schema_version", static_cast<std::int64_t>(5));
  w.field("obs_level", static_cast<std::int64_t>(level()));

  w.key("timers");
  w.begin_object();
  for (const auto& [path, stat] : timer_stats()) {
    w.key(path);
    w.begin_object();
    w.field("count", static_cast<std::int64_t>(stat.count));
    w.field("total_ms", static_cast<double>(stat.total_ns) / 1e6);
    w.field("self_ms", static_cast<double>(stat.self_ns) / 1e6);
    w.end_object();
  }
  w.end_object();

  // Schema v2: the causal span profile. Sorted by (start, id), so a span's
  // parent always appears before it; self_ms excludes same-thread children.
  w.key("spans");
  w.begin_array();
  for (const SpanRecord& s : span_records_export()) {
    w.begin_object();
    w.field("id", static_cast<std::int64_t>(s.id));
    w.field("parent", static_cast<std::int64_t>(s.parent_id));
    w.field("thread", static_cast<std::int64_t>(s.thread));
    w.field("name", s.name);
    w.field("start_ms", static_cast<double>(s.start_ns) / 1e6);
    w.field("end_ms", static_cast<double>(s.end_ns) / 1e6);
    w.field("self_ms", static_cast<double>(s.self_ns) / 1e6);
    if (!s.num.empty()) {
      w.key("num");
      w.begin_object();
      for (const auto& [k, v] : s.num) w.field(k, v);
      w.end_object();
    }
    if (!s.str.empty()) {
      w.key("str");
      w.begin_object();
      for (const auto& [k, v] : s.str) w.field(k, v);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("spans_dropped", static_cast<std::int64_t>(spans_dropped()));

  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);

  w.key("counters");
  w.begin_object();
  for (std::size_t i = 0; i < r.counters.size(); ++i) {
    w.field(r.counters[i]->name, static_cast<std::int64_t>(counter_total(r, i)));
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& g : r.gauges) {
    w.field(g->name, g->value.load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& h : r.hists) {
    w.key(h->name);
    w.begin_object();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= h->bounds.size(); ++i) {
      total += h->buckets[i].load(std::memory_order_relaxed);
    }
    w.field("count", static_cast<std::int64_t>(total));
    w.field("sum", h->sum.load(std::memory_order_relaxed));
    w.field("p50", hist_percentile(*h, 50.0));
    w.field("p90", hist_percentile(*h, 90.0));
    w.field("p99", hist_percentile(*h, 99.0));
    w.end_object();
  }
  w.end_object();

  w.key("solves");
  w.begin_array();
  for (const SolveRecord& s : r.solves) {
    w.begin_object();
    w.field("context", s.context);
    w.field("method", s.method);
    w.field("n", static_cast<std::int64_t>(s.n));
    w.field("iterations", static_cast<std::int64_t>(s.iterations));
    w.field("residual", s.residual);
    w.field("relative_residual", s.relative_residual);
    w.field("converged", s.converged);
    w.field("diverged", s.diverged);
    w.field("certified", s.certified);
    if (s.condition > 0.0) w.field("condition", s.condition);
    w.field("wall_ms", s.wall_ms);
    if (!s.attempts.empty()) w.field("attempts", s.attempts);
    if (!s.note.empty()) w.field("note", s.note);
    w.end_object();
  }
  w.end_array();
  w.field("solves_dropped", static_cast<std::int64_t>(r.solves_dropped));

  // Schema v3: the analysis-server section — the serve.* counters and
  // gauges under stable field names, so the smoke harness and dashboards
  // need not know the registry naming scheme. All-zero when no server ran
  // in this process.
  const auto counter_by_name = [&r](const char* name) -> std::int64_t {
    for (std::size_t i = 0; i < r.counters.size(); ++i) {
      if (r.counters[i]->name == name) {
        return static_cast<std::int64_t>(counter_total(r, i));
      }
    }
    return 0;
  };
  const auto gauge_by_name = [&r](const char* name) -> double {
    for (const auto& g : r.gauges) {
      if (g->name == name) return g->value.load(std::memory_order_relaxed);
    }
    return 0.0;
  };
  w.key("server");
  w.begin_object();
  w.field("requests", counter_by_name("serve.requests"));
  w.field("cache_hit", counter_by_name("serve.cache_hit"));
  w.field("cache_miss", counter_by_name("serve.cache_miss"));
  w.field("cache_evicted", counter_by_name("serve.cache_evicted"));
  w.field("jobs_shed", counter_by_name("serve.jobs_shed"));
  w.field("deadline_missed", counter_by_name("serve.deadline_missed"));
  w.field("queue_depth", gauge_by_name("serve.queue.depth"));
  w.field("cache_size", gauge_by_name("serve.cache.size"));
  w.end_object();

  // Schema v4: the durable-store section — the store.* counters and gauges
  // under stable field names (all-zero when no store was opened).
  w.key("store");
  w.begin_object();
  w.field("records_appended", counter_by_name("store.records_appended"));
  w.field("commits", counter_by_name("store.commits"));
  w.field("records_dropped", counter_by_name("store.records_dropped"));
  w.field("records_recovered", counter_by_name("store.records_recovered"));
  w.field("decode_failures", counter_by_name("store.decode_failures"));
  w.field("lookups", counter_by_name("store.lookups"));
  w.field("lookup_hits", counter_by_name("store.lookup_hits"));
  w.field("shards_journaled", counter_by_name("store.shards_journaled"));
  w.field("shards_resumed", counter_by_name("store.shards_resumed"));
  w.field("cache_loaded", counter_by_name("store.cache_loaded"));
  w.field("records", gauge_by_name("store.records"));
  w.field("bytes", gauge_by_name("store.bytes"));
  w.end_object();

  // Schema v5: the NCD aggregation-disaggregation section — the ncd.*
  // counters under stable field names (all-zero when no solve crossed the
  // detection threshold in this process).
  w.key("ncd");
  w.begin_object();
  w.field("partitions_built", counter_by_name("ncd.partitions_built"));
  w.field("cache_hits", counter_by_name("ncd.cache.hits"));
  w.field("cache_invalidated", counter_by_name("ncd.cache.invalidated"));
  w.field("gate_accepts", counter_by_name("ncd.gate.accepts"));
  w.field("gate_rejects", counter_by_name("ncd.gate.rejects"));
  w.field("solves", counter_by_name("ncd.solves"));
  w.field("fallthroughs", counter_by_name("ncd.fallthroughs"));
  w.field("sweeps", counter_by_name("ncd.sweeps"));
  w.end_object();

  w.end_object();
  return std::move(w).str();
}

std::string metrics_text() {
  std::ostringstream os;
  os << "timers (count, total ms, self ms):\n";
  for (const auto& [path, stat] : timer_stats()) {
    // Indent by nesting depth so the tree structure is visible.
    const auto depth = static_cast<std::size_t>(
        std::count(path.begin(), path.end(), '/'));
    os << std::string(2 + 2 * depth, ' ')
       << path.substr(path.find_last_of('/') + (path.find('/') == std::string::npos
                                                    ? 0
                                                    : 1))
       << "  x" << stat.count << "  " << static_cast<double>(stat.total_ns) / 1e6
       << "  " << static_cast<double>(stat.self_ns) / 1e6 << "\n";
  }
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  os << "counters:\n";
  for (std::size_t i = 0; i < r.counters.size(); ++i) {
    const std::uint64_t v = counter_total(r, i);
    if (v != 0) os << "  " << r.counters[i]->name << " = " << v << "\n";
  }
  os << "gauges:\n";
  for (const auto& g : r.gauges) {
    os << "  " << g->name << " = " << g->value.load(std::memory_order_relaxed) << "\n";
  }
  os << "solve records: " << r.solves.size() << "\n";
  return os.str();
}

void reset_metrics() {
  Registry& r = Registry::get();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.counters) c->overflow.store(0, std::memory_order_relaxed);
  for (auto& slab : r.slabs) {
    for (auto& s : slab->slot) s.store(0, std::memory_order_relaxed);
  }
  for (auto& g : r.gauges) g->value.store(0.0, std::memory_order_relaxed);
  for (auto& h : r.hists) {
    for (std::size_t i = 0; i <= h->bounds.size(); ++i) {
      h->buckets[i].store(0, std::memory_order_relaxed);
    }
    h->n.store(0, std::memory_order_relaxed);
    h->sum.store(0.0, std::memory_order_relaxed);
  }
  r.solves.clear();
  r.solves_dropped = 0;
  detail::reset_timer_stats();
  detail::reset_spans();
}

}  // namespace tags::obs

#endif  // TAGS_OBS_ENABLED

namespace tags::obs {

#if !TAGS_OBS_ENABLED
std::string metrics_json(const std::string& id) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("schema_version", static_cast<std::int64_t>(5));
  w.field("obs_level", static_cast<std::int64_t>(-1));
  w.key("timers");
  w.begin_object();
  w.end_object();
  w.key("spans");
  w.begin_array();
  w.end_array();
  w.field("spans_dropped", static_cast<std::int64_t>(0));
  w.key("counters");
  w.begin_object();
  w.end_object();
  w.key("gauges");
  w.begin_object();
  w.end_object();
  w.key("histograms");
  w.begin_object();
  w.end_object();
  w.key("solves");
  w.begin_array();
  w.end_array();
  w.field("solves_dropped", static_cast<std::int64_t>(0));
  w.key("server");
  w.begin_object();
  w.field("requests", static_cast<std::int64_t>(0));
  w.field("cache_hit", static_cast<std::int64_t>(0));
  w.field("cache_miss", static_cast<std::int64_t>(0));
  w.field("cache_evicted", static_cast<std::int64_t>(0));
  w.field("jobs_shed", static_cast<std::int64_t>(0));
  w.field("deadline_missed", static_cast<std::int64_t>(0));
  w.field("queue_depth", 0.0);
  w.field("cache_size", 0.0);
  w.end_object();
  w.key("store");
  w.begin_object();
  w.field("records_appended", static_cast<std::int64_t>(0));
  w.field("commits", static_cast<std::int64_t>(0));
  w.field("records_dropped", static_cast<std::int64_t>(0));
  w.field("records_recovered", static_cast<std::int64_t>(0));
  w.field("decode_failures", static_cast<std::int64_t>(0));
  w.field("lookups", static_cast<std::int64_t>(0));
  w.field("lookup_hits", static_cast<std::int64_t>(0));
  w.field("shards_journaled", static_cast<std::int64_t>(0));
  w.field("shards_resumed", static_cast<std::int64_t>(0));
  w.field("cache_loaded", static_cast<std::int64_t>(0));
  w.field("records", 0.0);
  w.field("bytes", 0.0);
  w.end_object();
  w.key("ncd");
  w.begin_object();
  w.field("partitions_built", static_cast<std::int64_t>(0));
  w.field("cache_hits", static_cast<std::int64_t>(0));
  w.field("cache_invalidated", static_cast<std::int64_t>(0));
  w.field("gate_accepts", static_cast<std::int64_t>(0));
  w.field("gate_rejects", static_cast<std::int64_t>(0));
  w.field("solves", static_cast<std::int64_t>(0));
  w.field("fallthroughs", static_cast<std::int64_t>(0));
  w.field("sweeps", static_cast<std::int64_t>(0));
  w.end_object();
  w.end_object();
  return std::move(w).str();
}
#endif  // !TAGS_OBS_ENABLED

bool write_telemetry_json(const std::string& path, const std::string& id) {
  // Temp-then-rename so a crash mid-export (or a concurrent reader) never
  // sees a truncated JSON; check_bench_json.py rejects empty artifacts.
  return write_text_file_atomic(path, metrics_json(id) + "\n");
}

}  // namespace tags::obs
