// Minimal streaming JSON writer used by the telemetry exports. Handles
// nesting commas and string escaping; callers are responsible for balanced
// begin/end calls. Non-finite doubles are emitted as null (JSON has no inf
// or nan literals).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "obs/numio.hpp"

namespace tags::obs {

class JsonWriter {
 public:
  /// `precision` is the significant-digit count for doubles. The default
  /// matches the historical telemetry output; pass 17 for exact double
  /// round-trips (the serve line protocol relies on that for byte-identical
  /// pi vectors).
  explicit JsonWriter(int precision = 15) : precision_(precision) {
    // JSON is locale-free by definition; the classic locale keeps a
    // comma-decimal or digit-grouping global locale from corrupting the
    // integers streamed below (doubles go through to_chars regardless).
    os_.imbue(std::locale::classic());
  }

  void begin_object() {
    comma();
    os_ << '{';
    first_.push_back(true);
  }
  void end_object() {
    first_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    comma();
    os_ << '[';
    first_.push_back(true);
  }
  void end_array() {
    first_.pop_back();
    os_ << ']';
  }

  void key(const std::string& k) {
    comma();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
  }

  void field(const std::string& k, const std::string& v) {
    key(k);
    value(v);
  }
  void field(const std::string& k, const char* v) {
    key(k);
    value(std::string(v));
  }
  void field(const std::string& k, double v) {
    key(k);
    value(v);
  }
  void field(const std::string& k, std::int64_t v) {
    key(k);
    value(v);
  }
  void field(const std::string& k, bool v) {
    key(k);
    value(v);
  }

  void value(const std::string& v) {
    comma();
    write_string(v);
  }
  void value(double v) {
    comma();
    if (std::isfinite(v)) {
      os_ << numio::format_g(v, precision_);
    } else {
      os_ << "null";
    }
  }
  void value(std::int64_t v) {
    comma();
    os_ << v;
  }
  void value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
  }

  [[nodiscard]] std::string str() && { return std::move(os_).str(); }

 private:
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // key() already positioned us after ':'
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }

  void write_string(const std::string& s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  std::vector<bool> first_;
  bool pending_value_ = false;
  int precision_;
};

}  // namespace tags::obs
