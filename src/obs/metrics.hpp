// Process-wide metrics registry: counters (lock-free per-thread slabs),
// gauges, histograms (relaxed atomic buckets), and a bounded log of solver
// runs. Handles are cheap value types that cache a registry index; handles
// constructed with the same name share one metric, so `static` handles in
// different translation units aggregate together.
//
// Everything is safe to call from concurrent threads, including the OpenMP
// sweep workers. Aggregated reads (value(), metrics_json(), ...) take a
// registry mutex; the write paths never do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/level.hpp"

namespace tags::obs {

/// One solver invocation, as recorded by the linalg and CTMC layers.
struct SolveRecord {
  std::string context;  ///< "linear" or "steady_state"
  std::string method;   ///< "jacobi", "gmres", "gauss-seidel", ...
  std::int64_t n = 0;   ///< system size (CTMC states / matrix rows)
  int iterations = 0;
  double residual = 0.0;
  double relative_residual = 0.0;
  bool converged = false;
  bool diverged = false;
  /// Result certification (numerics layer): true when the recomputed
  /// residual / finiteness / probability-mass checks all passed.
  bool certified = false;
  /// Hager 1-norm condition estimate; 0 when the path did not compute one.
  double condition = 0.0;
  double wall_ms = 0.0;
  std::string attempts;  ///< kAuto fallback chain, e.g. "gauss-seidel,gmres"
  std::string note;      ///< free-form (preconditioner choice, restart length)
};

#if TAGS_OBS_ENABLED

class Counter {
 public:
  explicit Counter(const std::string& name);
  /// Lock-free: increments this thread's slab slot (relaxed atomic).
  void add(std::uint64_t delta = 1) noexcept;
  /// Aggregate across all thread slabs.
  [[nodiscard]] std::uint64_t value() const;

 private:
  std::size_t id_;
};

class Gauge {
 public:
  explicit Gauge(const std::string& name);
  void set(double v) noexcept;
  [[nodiscard]] double value() const;

 private:
  std::size_t id_;
};

class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending; an overflow bucket is implicit.
  /// Re-registering a name reuses the existing buckets.
  Histogram(const std::string& name, std::vector<double> upper_bounds);

  [[nodiscard]] static std::vector<double> exponential_bounds(double first, double factor,
                                                              std::size_t count);
  [[nodiscard]] static std::vector<double> linear_bounds(double lo, double hi,
                                                         std::size_t count);

  void observe(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Linear interpolation within the containing bucket; the first bucket is
  /// anchored at 0 and the overflow bucket reports its lower edge. p in
  /// [0, 100].
  [[nodiscard]] double percentile(double p) const;

 private:
  std::size_t id_;
};

// Name-based one-shot helpers (one registry lookup per call — keep them off
// per-iteration hot loops; the handle classes above are for those).
void count(const char* name, std::uint64_t delta = 1);
void gauge_set(const char* name, double v);
/// Observes into a histogram with default exponential bounds.
void observe(const char* name, double v);

/// Appends to the bounded in-process solve log (no-op below level metrics).
void record_solve(SolveRecord rec);
[[nodiscard]] std::vector<SolveRecord> solve_records();

/// Monotonic nanoseconds, for wall-time deltas.
[[nodiscard]] std::uint64_t now_ns() noexcept;

// Read-only registry snapshots, for exporters (Prometheus text, the server
// /stats endpoint). Each call takes the registry mutex once.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          ///< sorted upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};
[[nodiscard]] std::vector<CounterSnapshot> counter_snapshots();
[[nodiscard]] std::vector<GaugeSnapshot> gauge_snapshots();
[[nodiscard]] std::vector<HistogramSnapshot> histogram_snapshots();

/// Whole-registry JSON snapshot (counters, gauges, histograms, timers,
/// spans, solve log) — the object written by write_telemetry_json.
/// Schema v2: tools/check_bench_json.py.
[[nodiscard]] std::string metrics_json(const std::string& id);

/// Human-readable summary: timer tree plus non-zero metrics.
[[nodiscard]] std::string metrics_text();

/// Zero all values and drop the solve log; registered names survive.
void reset_metrics();

#else  // TAGS_OBS_ENABLED

class Counter {
 public:
  explicit Counter(const std::string&) {}
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  explicit Gauge(const std::string&) {}
  void set(double) noexcept {}
  [[nodiscard]] double value() const { return 0.0; }
};

class Histogram {
 public:
  Histogram(const std::string&, std::vector<double>) {}
  [[nodiscard]] static std::vector<double> exponential_bounds(double, double,
                                                              std::size_t) {
    return {};
  }
  [[nodiscard]] static std::vector<double> linear_bounds(double, double, std::size_t) {
    return {};
  }
  void observe(double) noexcept {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double percentile(double) const { return 0.0; }
};

inline void count(const char*, std::uint64_t = 1) {}
inline void gauge_set(const char*, double) {}
inline void observe(const char*, double) {}
inline void record_solve(SolveRecord) {}
[[nodiscard]] inline std::vector<SolveRecord> solve_records() { return {}; }
[[nodiscard]] inline std::uint64_t now_ns() noexcept { return 0; }

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};
[[nodiscard]] inline std::vector<CounterSnapshot> counter_snapshots() { return {}; }
[[nodiscard]] inline std::vector<GaugeSnapshot> gauge_snapshots() { return {}; }
[[nodiscard]] inline std::vector<HistogramSnapshot> histogram_snapshots() {
  return {};
}
[[nodiscard]] std::string metrics_json(const std::string& id);  // minimal, in obs.cpp
[[nodiscard]] inline std::string metrics_text() { return "observability disabled\n"; }
inline void reset_metrics() {}

#endif  // TAGS_OBS_ENABLED

/// Writes metrics_json(id) to `path`, creating parent directories. Always
/// available (emits an empty-but-schema-valid document when observability is
/// compiled out or the level is 0). Returns false on I/O failure.
bool write_telemetry_json(const std::string& path, const std::string& id);

}  // namespace tags::obs
