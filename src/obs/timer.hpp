// RAII scoped wall-clock timers with nesting. Timers stack per thread; a
// timer's path is its enclosing timers' labels joined with '/'. On scope
// exit the (count, total, self) statistics are folded into the registry,
// where self = total minus time spent in enclosed timers.
//
// Intended for phase-level attribution (derivation, solves, sweeps), not
// per-iteration loops: scope exit takes a mutex.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/level.hpp"

namespace tags::obs {

struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

#if TAGS_OBS_ENABLED

class ScopedTimer {
 public:
  /// Label-lifetime contract: the characters of `label` are copied into the
  /// timer's owned path during construction, so any lifetime is fine —
  /// string literals, temporaries, substrings of a buffer about to be
  /// reused. (Earlier revisions documented a must-outlive-the-scope rule;
  /// that requirement is gone and must not come back: call sites pass
  /// dynamically composed labels.) Inactive (zero-cost destructor) when the
  /// level is off at construction.
  explicit ScopedTimer(std::string_view label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string path_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedTimer* parent_ = nullptr;
  bool active_ = false;
};

/// Snapshot of all timer paths (sorted by path, so parents precede children).
[[nodiscard]] std::map<std::string, TimerStat> timer_stats();

namespace detail {
void reset_timer_stats();  // called by reset_metrics()
}

#else  // TAGS_OBS_ENABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

[[nodiscard]] inline std::map<std::string, TimerStat> timer_stats() { return {}; }

#endif  // TAGS_OBS_ENABLED

}  // namespace tags::obs
