#include "obs/span.hpp"

#if TAGS_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace tags::obs {

namespace {

// Bounds the completed-span store: at roughly 150 bytes per record this is
// ~10 MB worst case. Long sweeps with more spans than this drop the excess
// (counted), exactly like the solve log.
constexpr std::size_t kMaxSpanRecords = 65536;

struct SpanStore {
  std::mutex mu;
  std::vector<SpanRecord> records;
  std::uint64_t dropped = 0;
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint32_t> next_thread{0};

  static SpanStore& get() {
    static SpanStore* s = new SpanStore;  // leaked: outlives static destructors
    return *s;
  }
};

thread_local Span* tl_span_top = nullptr;

std::uint32_t this_thread_index() {
  thread_local const std::uint32_t index =
      SpanStore::get().next_thread.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::uint64_t span_clock_start_ns() {
  // Shares t=0 semantics with trace events: pinned at first use, so span
  // timestamps and trace timestamps are directly comparable.
  static const std::uint64_t start = now_ns();
  return start;
}

std::uint64_t since_clock_start_ns() {
  // The base MUST be pinned before now is sampled: in `now_ns() - base`
  // the evaluation order is unspecified, and sampling now first makes the
  // very first span's start precede the base it then subtracts — a uint64
  // underflow. The saturation also absorbs sub-tick clock jitter.
  const std::uint64_t base = span_clock_start_ns();
  const std::uint64_t now = now_ns();
  return now > base ? now - base : 0;
}

}  // namespace

Span::Span(std::string_view name) {
  if (!metrics_on()) return;
  open(name, tl_span_top != nullptr ? tl_span_top->rec_.id : 0);
}

Span::Span(std::string_view name, std::uint64_t parent_id) {
  if (!metrics_on()) return;
  open(name, parent_id);
}

void Span::open(std::string_view name, std::uint64_t parent_id) {
  active_ = true;
  SpanStore& store = SpanStore::get();
  rec_.id = store.next_id.fetch_add(1, std::memory_order_relaxed);
  rec_.parent_id = parent_id;
  rec_.thread = this_thread_index();
  rec_.name.assign(name.data(), name.size());
  prev_ = tl_span_top;
  tl_span_top = this;
  rec_.start_ns = since_clock_start_ns();
}

Span::~Span() {
  if (!active_) return;
  rec_.end_ns = since_clock_start_ns();
  tl_span_top = prev_;
  SpanStore& store = SpanStore::get();
  bool dropped = false;
  {
    const std::lock_guard<std::mutex> lock(store.mu);
    if (store.records.size() >= kMaxSpanRecords) {
      ++store.dropped;
      dropped = true;
    } else {
      store.records.push_back(std::move(rec_));
    }
  }
  // Counted outside the store lock: count() takes the registry mutex, and
  // reset_metrics() takes registry-then-store — nesting store-then-registry
  // here would be a lock-order inversion (TSan-flagged potential deadlock).
  if (dropped) count("trace.spans_dropped");
}

void Span::attr(std::string_view key, double v) {
  if (!active_) return;
  rec_.num.emplace_back(std::string(key), v);
}

void Span::attr(std::string_view key, std::string_view v) {
  if (!active_) return;
  rec_.str.emplace_back(std::string(key), std::string(v));
}

std::uint64_t Span::current_id() noexcept {
  return tl_span_top != nullptr ? tl_span_top->id() : 0;
}

std::vector<SpanRecord> span_records() {
  SpanStore& store = SpanStore::get();
  const std::lock_guard<std::mutex> lock(store.mu);
  return store.records;
}

std::vector<SpanRecord> span_records_export() {
  std::vector<SpanRecord> recs = span_records();
  std::sort(recs.begin(), recs.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  // Sum same-thread child durations into each parent. Keyed on (parent id,
  // thread) so a cross-thread child never eats its parent's self time.
  std::unordered_map<std::uint64_t, std::uint64_t> child_ns;
  std::unordered_map<std::uint64_t, std::uint32_t> thread_of;
  child_ns.reserve(recs.size());
  thread_of.reserve(recs.size());
  for (const SpanRecord& r : recs) thread_of.emplace(r.id, r.thread);
  for (const SpanRecord& r : recs) {
    if (r.parent_id == 0) continue;
    const auto it = thread_of.find(r.parent_id);
    if (it != thread_of.end() && it->second == r.thread) {
      child_ns[r.parent_id] += r.duration_ns();
    }
  }
  for (SpanRecord& r : recs) {
    const std::uint64_t total = r.duration_ns();
    const auto it = child_ns.find(r.id);
    const std::uint64_t children = it != child_ns.end() ? it->second : 0;
    r.self_ns = total > children ? total - children : 0;
  }
  return recs;
}

std::uint64_t spans_dropped() noexcept {
  SpanStore& store = SpanStore::get();
  const std::lock_guard<std::mutex> lock(store.mu);
  return store.dropped;
}

namespace detail {

void reset_spans() {
  SpanStore& store = SpanStore::get();
  const std::lock_guard<std::mutex> lock(store.mu);
  store.records.clear();
  store.dropped = 0;
}

}  // namespace detail

}  // namespace tags::obs

#endif  // TAGS_OBS_ENABLED
