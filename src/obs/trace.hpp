// Event tracing: a pluggable global TraceSink receiving structured events
// (solver iterations, derivation progress, fallback transitions, ...).
// Emission is sampled — high-frequency producers call trace_iteration,
// which forwards every Nth event (TAGS_OBS_SAMPLE, default 16; level debug
// forces 1) — and gated on tracing_on(), a two-atomic-load check, so the
// cost with no sink or level < trace is one predictable branch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/level.hpp"

namespace tags::obs {

#if TAGS_OBS_ENABLED

struct TraceEvent {
  std::string name;  ///< e.g. "solver.iteration", "steady_state.fallback"
  double t_seconds = 0.0;  ///< monotonic time since process start
  std::vector<std::pair<std::string, double>> num;
  std::vector<std::pair<std::string, std::string>> str;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Collects events in memory — tests and small runs. Growth is bounded:
/// beyond `capacity` events the sink drops new events (counting them in the
/// trace.events_dropped counter and dropped()), so a long sweep left
/// tracing cannot grow memory without bound.
class MemorySink final : public TraceSink {
 public:
  /// Default capacity fits any per-solve trace while capping worst-case
  /// memory at roughly a hundred MB of events.
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit MemorySink(std::size_t capacity = kDefaultCapacity);
  void on_event(const TraceEvent& ev) override;
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Events discarded because the sink was at capacity.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

/// Appends one JSON object per line to a file.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  [[nodiscard]] bool ok() const noexcept;
  void on_event(const TraceEvent& ev) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Installs the global sink. `sample_every` controls trace_iteration
/// sampling: 0 reads TAGS_OBS_SAMPLE (default 16), n >= 1 forces every nth
/// iteration. Installing a sink raises the level to at least kTrace.
void install_trace_sink(std::shared_ptr<TraceSink> sink, int sample_every = 0);
void clear_trace_sink();
[[nodiscard]] int trace_sample_every() noexcept;

/// Forwards unconditionally (callers should check tracing_on() first to
/// avoid building the event).
void emit(TraceEvent ev);

/// Sampled per-iteration solver telemetry: emits a "solver.iteration" event
/// on every Nth call (per thread), N = trace_sample_every(). No-op unless
/// tracing_on().
void trace_iteration(const char* solver, int iteration, double residual);

#else  // TAGS_OBS_ENABLED

struct TraceEvent {
  std::string name;
  double t_seconds = 0.0;
  std::vector<std::pair<std::string, double>> num;
  std::vector<std::pair<std::string, std::string>> str;
};

inline void clear_trace_sink() {}
[[nodiscard]] inline int trace_sample_every() noexcept { return 0; }
inline void emit(TraceEvent) {}
inline void trace_iteration(const char*, int, double) {}

#endif  // TAGS_OBS_ENABLED

}  // namespace tags::obs
