// Global observability level, read once from the TAGS_OBS_LEVEL environment
// variable and adjustable at runtime (tests, CLI flags).
//
//   0  off      — instrumentation short-circuits to nothing
//   1  metrics  — counters/gauges/histograms/timers + solve log (default)
//   2  trace    — additionally forward events to the installed TraceSink
//   3  debug    — like trace, with sampling forced to every event
//
// When the library is configured with TAGS_ENABLE_OBS=OFF the whole API
// collapses to constexpr no-ops so call sites compile out entirely.
#pragma once

#if TAGS_OBS_ENABLED
#include <atomic>
#endif

namespace tags::obs {

enum class Level : int { kOff = 0, kMetrics = 1, kTrace = 2, kDebug = 3 };

#if TAGS_OBS_ENABLED

namespace detail {

/// Parses TAGS_OBS_LEVEL ("0".."3", "off", "metrics", "trace", "debug").
int init_level_from_env() noexcept;

inline std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{init_level_from_env()};
  return level;
}

/// Set iff a trace sink is installed; combined with the level for the fast
/// "should I build this event at all" check.
inline std::atomic<bool>& sink_installed() noexcept {
  static std::atomic<bool> installed{false};
  return installed;
}

}  // namespace detail

[[nodiscard]] inline Level level() noexcept {
  return static_cast<Level>(detail::level_storage().load(std::memory_order_relaxed));
}

inline void set_level(Level l) noexcept {
  detail::level_storage().store(static_cast<int>(l), std::memory_order_relaxed);
}

/// True when counters/timers should record (level >= metrics).
[[nodiscard]] inline bool metrics_on() noexcept {
  return detail::level_storage().load(std::memory_order_relaxed) >=
         static_cast<int>(Level::kMetrics);
}

/// True when trace events should be built and forwarded: requires both
/// level >= trace and an installed sink.
[[nodiscard]] inline bool tracing_on() noexcept {
  return detail::level_storage().load(std::memory_order_relaxed) >=
             static_cast<int>(Level::kTrace) &&
         detail::sink_installed().load(std::memory_order_relaxed);
}

#else  // TAGS_OBS_ENABLED

[[nodiscard]] inline constexpr Level level() noexcept { return Level::kOff; }
inline constexpr void set_level(Level) noexcept {}
[[nodiscard]] inline constexpr bool metrics_on() noexcept { return false; }
[[nodiscard]] inline constexpr bool tracing_on() noexcept { return false; }

#endif  // TAGS_OBS_ENABLED

}  // namespace tags::obs
