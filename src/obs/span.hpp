// Causal span profiling: RAII spans with process-unique ids, parent ids,
// per-thread stacks, start/end timestamps, and key:value attributes. Where
// ScopedTimer folds durations into path-keyed aggregates, a Span keeps the
// individual occurrence — one record per scope — so a single sweep yields a
// causally linked profile (which shard ran which solve, which solve paid the
// transpose fill) exportable as a Chrome trace / telemetry "spans" section.
//
// Causality follows scopes on one thread automatically (the per-thread span
// stack supplies the parent id). Across threads it is explicit: capture
// Span::current_id() before handing work off, and construct the worker-side
// span with that id as `parent_id` (the ThreadPool does this per task, so
// anything solved inside a pool job hangs off the dispatching span).
//
// Intended granularity is per solve / per phase, not per iteration: scope
// exit appends to a mutex-guarded bounded store. The store caps at
// kMaxSpanRecords; beyond that spans are counted in trace.spans_dropped and
// discarded (ids keep advancing, so parent links in surviving records stay
// valid). Compiled out under TAGS_ENABLE_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/level.hpp"

namespace tags::obs {

/// One completed span, as exported into telemetry JSON v2 and Chrome traces.
struct SpanRecord {
  std::uint64_t id = 0;        ///< process-unique, assigned at construction
  std::uint64_t parent_id = 0; ///< 0 for roots
  std::uint32_t thread = 0;    ///< dense per-process thread index
  std::string name;
  std::uint64_t start_ns = 0;  ///< monotonic, relative to process start
  std::uint64_t end_ns = 0;
  /// duration minus the summed durations of same-thread direct children,
  /// clamped at zero. Filled by span_records_export(); 0 in raw records.
  std::uint64_t self_ns = 0;
  std::vector<std::pair<std::string, double>> num;
  std::vector<std::pair<std::string, std::string>> str;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
};

#if TAGS_OBS_ENABLED

class Span {
 public:
  /// Opens a span as a child of this thread's innermost active span (a root
  /// when the stack is empty). The name's characters are copied — any
  /// lifetime is fine. Inactive (zero-cost destructor, id() == 0) when the
  /// level is off at construction.
  explicit Span(std::string_view name);

  /// Opens a span with an explicit parent — the cross-thread edge. Pass the
  /// id captured via current_id() on the dispatching thread; 0 makes a root.
  Span(std::string_view name, std::uint64_t parent_id);

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key:value attribute (copied). No-ops on an inactive span.
  void attr(std::string_view key, double v);
  void attr(std::string_view key, std::string_view v);

  /// This span's id, for parenting work dispatched to other threads.
  /// 0 when inactive.
  [[nodiscard]] std::uint64_t id() const noexcept { return rec_.id; }

  /// The innermost active span id on this thread (0 outside any span).
  [[nodiscard]] static std::uint64_t current_id() noexcept;

 private:
  void open(std::string_view name, std::uint64_t parent_id);

  SpanRecord rec_;
  Span* prev_ = nullptr;  ///< enclosing span on this thread's stack
  bool active_ = false;
};

/// Snapshot of the completed-span store, in completion order (children
/// before their parents; sort by start_ns for parent-before-child order).
[[nodiscard]] std::vector<SpanRecord> span_records();

/// The exporter view: records sorted by (start_ns, id) — a parent starts no
/// later than its children and ids are assigned in construction order, so
/// parents always precede their children — with self_ns filled in. Self
/// time only subtracts same-thread children: cross-thread children (pool
/// jobs fanned out from a sweep span) overlap in wall time, so subtracting
/// them would be meaningless.
[[nodiscard]] std::vector<SpanRecord> span_records_export();

/// Spans discarded because the store was full (also mirrored in the
/// trace.spans_dropped counter).
[[nodiscard]] std::uint64_t spans_dropped() noexcept;

namespace detail {
void reset_spans();  // called by reset_metrics()
}

#else  // TAGS_OBS_ENABLED

class Span {
 public:
  explicit Span(std::string_view) noexcept {}
  Span(std::string_view, std::uint64_t) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void attr(std::string_view, double) noexcept {}
  void attr(std::string_view, std::string_view) noexcept {}
  [[nodiscard]] std::uint64_t id() const noexcept { return 0; }
  [[nodiscard]] static std::uint64_t current_id() noexcept { return 0; }
};

[[nodiscard]] inline std::vector<SpanRecord> span_records() { return {}; }
[[nodiscard]] inline std::vector<SpanRecord> span_records_export() { return {}; }
[[nodiscard]] inline std::uint64_t spans_dropped() noexcept { return 0; }

#endif  // TAGS_OBS_ENABLED

}  // namespace tags::obs
