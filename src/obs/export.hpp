// Telemetry exporters beyond the native JSON snapshot:
//
//  * Chrome Trace Event Format — the span store rendered as complete ("X")
//    events, loadable in chrome://tracing or Perfetto for a flamegraph of a
//    run (one track per instrumented thread, span attributes in args).
//  * Prometheus text exposition (version 0.0.4) — counters, gauges,
//    histograms (cumulative le-labelled buckets), and timer paths, for
//    scraping by the upcoming tags_server /stats endpoint or node textfile
//    collectors.
//
// Both are always linkable: with TAGS_ENABLE_OBS=OFF (or level 0) they emit
// empty-but-valid documents, mirroring write_telemetry_json.
#pragma once

#include <string>

namespace tags::obs {

/// The whole span store in Chrome Trace Event Format. `process_name` labels
/// the single pid's track in the viewer.
[[nodiscard]] std::string chrome_trace_json(const std::string& process_name);

/// All counters/gauges/histograms/timers in Prometheus text exposition.
/// Metric names are sanitised ([^a-zA-Z0-9_:] -> '_') and prefixed "tags_";
/// timer paths become labels on tags_timer_* families.
[[nodiscard]] std::string prometheus_text();

/// Write chrome_trace_json / prometheus_text to `path`, creating parent
/// directories. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const std::string& process_name);
bool write_prometheus(const std::string& path);

/// Write `body` to `path` via a temp file + rename in the same directory,
/// creating parent directories as needed — a reader (or a crash mid-write)
/// can never observe a partial or zero-length artifact. Shared by every
/// results/ exporter (telemetry JSON, Chrome trace, Prometheus text).
bool write_text_file_atomic(const std::string& path, const std::string& body);

}  // namespace tags::obs
