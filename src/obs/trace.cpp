#include "obs/trace.hpp"

#if TAGS_OBS_ENABLED

#include <climits>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tags::obs {

namespace {

struct SinkSlot {
  std::mutex mu;
  std::shared_ptr<TraceSink> sink;
  std::atomic<int> sample_every{16};

  static SinkSlot& get() {
    static SinkSlot* s = new SinkSlot;  // leaked: outlives static destructors
    return *s;
  }
};

int env_sample_every() {
  // Strict parse: "8x" or "fast" keep the default instead of whatever
  // atoi made of them (0, which used to flip the knob to its floor).
  if (const char* env = std::getenv("TAGS_OBS_SAMPLE")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= INT_MAX) {
      return static_cast<int>(v);
    }
  }
  return 16;
}

std::uint64_t process_start_ns() {
  static const std::uint64_t start = now_ns();
  return start;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

MemorySink::MemorySink(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void MemorySink::on_event(const TraceEvent& ev) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(ev);
      return;
    }
    ++dropped_;
  }
  // Counter update outside mu_: count() takes the registry mutex.
  count("trace.events_dropped");
}

std::vector<TraceEvent> MemorySink::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t MemorySink::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void MemorySink::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

struct JsonlSink::Impl {
  std::mutex mu;
  std::ofstream out;
};

JsonlSink::JsonlSink(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path);
}

JsonlSink::~JsonlSink() = default;

bool JsonlSink::ok() const noexcept { return static_cast<bool>(impl_->out); }

void JsonlSink::on_event(const TraceEvent& ev) {
  JsonWriter w;
  w.begin_object();
  w.field("name", ev.name);
  w.field("t", ev.t_seconds);
  for (const auto& [k, v] : ev.num) w.field(k, v);
  for (const auto& [k, v] : ev.str) w.field(k, v);
  w.end_object();
  const std::lock_guard<std::mutex> lock(impl_->mu);
  // Flush per event: the installed sink lives in a leaked singleton, so the
  // stream destructor (and its implicit flush) never runs at process exit.
  impl_->out << std::move(w).str() << '\n' << std::flush;
}

// ---------------------------------------------------------------------------
// Global sink management and emission
// ---------------------------------------------------------------------------

void install_trace_sink(std::shared_ptr<TraceSink> sink, int sample_every) {
  SinkSlot& slot = SinkSlot::get();
  bool has_sink = false;
  {
    const std::lock_guard<std::mutex> lock(slot.mu);
    slot.sink = std::move(sink);
    slot.sample_every.store(sample_every >= 1 ? sample_every : env_sample_every(),
                            std::memory_order_relaxed);
    has_sink = slot.sink != nullptr;
  }
  detail::sink_installed().store(has_sink, std::memory_order_relaxed);
  if (has_sink && level() < Level::kTrace) set_level(Level::kTrace);
  process_start_ns();  // pin t=0 no later than sink installation
}

void clear_trace_sink() {
  SinkSlot& slot = SinkSlot::get();
  const std::lock_guard<std::mutex> lock(slot.mu);
  slot.sink.reset();
  detail::sink_installed().store(false, std::memory_order_relaxed);
}

int trace_sample_every() noexcept {
  if (level() >= Level::kDebug) return 1;
  return SinkSlot::get().sample_every.load(std::memory_order_relaxed);
}

void emit(TraceEvent ev) {
  if (!tracing_on()) return;
  ev.t_seconds =
      static_cast<double>(now_ns() - process_start_ns()) / 1e9;
  std::shared_ptr<TraceSink> sink;
  {
    SinkSlot& slot = SinkSlot::get();
    const std::lock_guard<std::mutex> lock(slot.mu);
    sink = slot.sink;
  }
  if (sink) sink->on_event(ev);
}

void trace_iteration(const char* solver, int iteration, double residual) {
  if (!tracing_on()) return;
  const int every = trace_sample_every();
  if (every > 1) {
    // Sample by call count, not by iteration value: solvers that only check
    // residuals every k-th sweep pass iteration numbers that may never be
    // divisible by the sampling interval.
    static thread_local std::uint64_t call_seq = 0;
    if (call_seq++ % static_cast<std::uint64_t>(every) != 0) return;
  }
  TraceEvent ev;
  ev.name = "solver.iteration";
  ev.num.emplace_back("iteration", static_cast<double>(iteration));
  ev.num.emplace_back("residual", residual);
  ev.str.emplace_back("solver", solver);
  emit(std::move(ev));
}

}  // namespace tags::obs

#endif  // TAGS_OBS_ENABLED
