// Locale-independent number I/O.
//
// printf("%g"), strtod and ostream<< all consult the global C/C++ locale:
// under a comma-decimal locale (de_DE, fr_FR, ...) they render "3,14" and
// refuse to parse "3.14", silently corrupting CSV tables, JSON protocol
// frames and metric exports the moment an embedding application calls
// setlocale(). Everything user-visible therefore funnels through
// std::to_chars / std::from_chars, which are specified to use the C locale
// always. to_chars(general, precision) is specified to format exactly as
// printf("%.*g") in the C locale, so swapping snprintf for it is
// byte-identical where it matters (golden CSV files); to_chars without a
// precision emits the shortest round-trip form.
#pragma once

#include <charconv>
#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

namespace tags::numio {

/// Format like printf("%.*g", precision, v) in the C locale. A negative
/// precision falls back to printf's default of 6.
inline std::string format_g(double v, int precision) {
  if (precision < 0) precision = 6;
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, precision);
  if (ec != std::errc{}) return "?";  // cannot happen for double with this buffer
  return std::string(buf, end);
}

/// Shortest representation that parses back to exactly `v` (round-trip).
inline std::string format_roundtrip(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "?";
  return std::string(buf, end);
}

/// Parse a whole token as a double, locale-independently, with strtod's
/// range semantics: a syntactically valid number whose magnitude overflows
/// yields +-infinity, one that underflows yields +-0.0 (from_chars alone
/// reports result_out_of_range and leaves the value unspecified, so the
/// direction is recovered from the token's decimal exponent). Returns
/// nullopt unless the entire token is consumed.
inline std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (p != s.data() + s.size()) return std::nullopt;
  if (ec == std::errc{}) return v;
  if (ec != std::errc::result_out_of_range) return std::nullopt;
  // Out of range: decide overflow vs underflow from the token. The true
  // decimal exponent is far outside [-324, 308], so its sign alone picks
  // the strtod result.
  const bool neg = s.front() == '-';
  std::string_view mant = s.substr(neg ? 1 : 0);
  long exp10 = 0;
  if (const std::size_t epos = mant.find_first_of("eE");
      epos != std::string_view::npos) {
    const std::string_view etok = mant.substr(epos + 1);
    mant = mant.substr(0, epos);
    long e = 0;
    const bool eneg = !etok.empty() && etok.front() == '-';
    for (const char c : etok) {
      if (c < '0' || c > '9') continue;
      if (e < 1000000) e = e * 10 + (c - '0');  // clamp: only the sign matters
    }
    exp10 = eneg ? -e : e;
  }
  // Exponent of the first significant digit relative to the decimal point.
  bool seen_point = false;
  bool seen_sig = false;
  long first_sig = 0;
  long int_digits = 0;
  for (const char c : mant) {
    if (c == '.') {
      seen_point = true;
      continue;
    }
    if (c < '0' || c > '9') break;
    if (!seen_point) {
      if (seen_sig || c != '0') ++int_digits;
      if (!seen_sig && c != '0') seen_sig = true;
    } else if (!seen_sig) {
      --first_sig;
      if (c != '0') seen_sig = true;
    }
  }
  if (int_digits > 0) first_sig = int_digits - 1;
  if (!seen_sig) return neg ? -0.0 : 0.0;  // defensive: zero never overflows
  const double huge = std::numeric_limits<double>::infinity();
  const bool overflow = first_sig + exp10 > 0;
  const double mag = overflow ? huge : 0.0;
  return neg ? -mag : mag;
}

}  // namespace tags::numio
