#include "obs/timer.hpp"

#if TAGS_OBS_ENABLED

#include <mutex>

#include "obs/metrics.hpp"

namespace tags::obs {

namespace {

struct TimerTable {
  std::mutex mu;
  std::map<std::string, TimerStat> stats;

  static TimerTable& get() {
    static TimerTable* t = new TimerTable;  // leaked: outlives static destructors
    return *t;
  }
};

thread_local ScopedTimer* tl_top = nullptr;

}  // namespace

ScopedTimer::ScopedTimer(std::string_view label) {
  if (!metrics_on()) return;
  active_ = true;
  parent_ = tl_top;
  tl_top = this;
  // The label is copied here, before the constructor returns — the caller's
  // buffer owes nothing beyond this call (see the contract in timer.hpp).
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + label.size());
    path_ = parent_->path_;
    path_ += '/';
    path_.append(label.data(), label.size());
  } else {
    path_.assign(label.data(), label.size());
  }
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::uint64_t total = now_ns() - start_ns_;
  tl_top = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += total;
  const std::uint64_t self = total > child_ns_ ? total - child_ns_ : 0;
  TimerTable& t = TimerTable::get();
  const std::lock_guard<std::mutex> lock(t.mu);
  TimerStat& s = t.stats[path_];
  ++s.count;
  s.total_ns += total;
  s.self_ns += self;
}

std::map<std::string, TimerStat> timer_stats() {
  TimerTable& t = TimerTable::get();
  const std::lock_guard<std::mutex> lock(t.mu);
  return t.stats;
}

namespace detail {

void reset_timer_stats() {
  TimerTable& t = TimerTable::get();
  const std::lock_guard<std::mutex> lock(t.mu);
  t.stats.clear();
}

}  // namespace detail

}  // namespace tags::obs

#endif  // TAGS_OBS_ENABLED
