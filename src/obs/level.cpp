#include "obs/level.hpp"

#if TAGS_OBS_ENABLED

#include <cstdlib>
#include <cstring>

namespace tags::obs::detail {

int init_level_from_env() noexcept {
  const char* env = std::getenv("TAGS_OBS_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(Level::kMetrics);
  if (std::strcmp(env, "off") == 0) return static_cast<int>(Level::kOff);
  if (std::strcmp(env, "metrics") == 0) return static_cast<int>(Level::kMetrics);
  if (std::strcmp(env, "trace") == 0) return static_cast<int>(Level::kTrace);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(Level::kDebug);
  // Unrecognised text keeps the default rather than silently disabling
  // everything (atoi("garbage") would read as 0 = off).
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return static_cast<int>(Level::kMetrics);
  if (v < static_cast<long>(Level::kOff)) return static_cast<int>(Level::kOff);
  if (v > static_cast<long>(Level::kDebug)) return static_cast<int>(Level::kDebug);
  return static_cast<int>(v);
}

}  // namespace tags::obs::detail

#endif  // TAGS_OBS_ENABLED
