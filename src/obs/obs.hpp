// Umbrella header for the observability layer: level gating, metrics
// registry, scoped timers, and trace sinks. Instrumented call sites include
// this one header; everything compiles to no-ops when the project is built
// with TAGS_ENABLE_OBS=OFF.
#pragma once

#include "obs/export.hpp"   // IWYU pragma: export
#include "obs/level.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/span.hpp"     // IWYU pragma: export
#include "obs/timer.hpp"    // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
