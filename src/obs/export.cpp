#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <locale>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/numio.hpp"
#include "obs/span.hpp"
#include "obs/timer.hpp"

namespace tags::obs {

bool write_text_file_atomic(const std::string& path, const std::string& body) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << body;
    if (!out.flush()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

namespace {

bool write_text_file(const std::string& path, const std::string& body) {
  return write_text_file_atomic(path, body);
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_name(const std::string& raw) {
  std::string out = "tags_";
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    out += (std::isalnum(u) != 0 || c == '_' || c == ':') ? c : '_';
  }
  return out;
}

/// Label values escape backslash, double quote, and newline.
std::string prom_label_value(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_number(std::ostringstream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    // Prometheus expects C-locale numbers; to_chars ignores the global
    // locale where ostream's num_put would honour a comma decimal point.
    os << numio::format_g(v, 15);
  }
}

}  // namespace

std::string chrome_trace_json(const std::string& process_name) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata: name the single process track.
  w.begin_object();
  w.field("ph", "M");
  w.field("pid", static_cast<std::int64_t>(1));
  w.field("tid", static_cast<std::int64_t>(0));
  w.field("name", "process_name");
  w.key("args");
  w.begin_object();
  w.field("name", process_name);
  w.end_object();
  w.end_object();

  for (const SpanRecord& s : span_records_export()) {
    w.begin_object();
    w.field("name", s.name);
    w.field("cat", "span");
    w.field("ph", "X");
    // Chrome traces use microseconds.
    w.field("ts", static_cast<double>(s.start_ns) / 1e3);
    w.field("dur", static_cast<double>(s.duration_ns()) / 1e3);
    w.field("pid", static_cast<std::int64_t>(1));
    w.field("tid", static_cast<std::int64_t>(s.thread));
    w.key("args");
    w.begin_object();
    w.field("id", static_cast<std::int64_t>(s.id));
    w.field("parent", static_cast<std::int64_t>(s.parent_id));
    w.field("self_ms", static_cast<double>(s.self_ns) / 1e6);
    for (const auto& [k, v] : s.num) w.field(k, v);
    for (const auto& [k, v] : s.str) w.field(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.field("spans_dropped", static_cast<std::int64_t>(spans_dropped()));
  w.end_object();
  return std::move(w).str();
}

std::string prometheus_text() {
  std::ostringstream os;
  os.imbue(std::locale::classic());  // integer grouping is locale-driven too

  for (const CounterSnapshot& c : counter_snapshots()) {
    const std::string name = prom_name(c.name) + "_total";
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << c.value << '\n';
  }

  for (const GaugeSnapshot& g : gauge_snapshots()) {
    const std::string name = prom_name(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << ' ';
    prom_number(os, g.value);
    os << '\n';
  }

  for (const HistogramSnapshot& h : histogram_snapshots()) {
    const std::string name = prom_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << name << "_bucket{le=\"";
      prom_number(os, h.bounds[i]);
      os << "\"} " << cumulative << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum ";
    prom_number(os, h.sum);
    os << '\n';
    os << name << "_count " << h.count << '\n';
  }

  // Timer paths as labelled families: one series per path. Seconds, per
  // Prometheus convention.
  const auto timers = timer_stats();
  if (!timers.empty()) {
    os << "# TYPE tags_timer_seconds_total counter\n";
    for (const auto& [path, stat] : timers) {
      os << "tags_timer_seconds_total{path=\"" << prom_label_value(path) << "\"} "
         << static_cast<double>(stat.total_ns) / 1e9 << '\n';
    }
    os << "# TYPE tags_timer_self_seconds_total counter\n";
    for (const auto& [path, stat] : timers) {
      os << "tags_timer_self_seconds_total{path=\"" << prom_label_value(path)
         << "\"} " << static_cast<double>(stat.self_ns) / 1e9 << '\n';
    }
    os << "# TYPE tags_timer_count_total counter\n";
    for (const auto& [path, stat] : timers) {
      os << "tags_timer_count_total{path=\"" << prom_label_value(path) << "\"} "
         << stat.count << '\n';
    }
  }
  return os.str();
}

bool write_chrome_trace(const std::string& path, const std::string& process_name) {
  return write_text_file(path, chrome_trace_json(process_name) + "\n");
}

bool write_prometheus(const std::string& path) {
  return write_text_file(path, prometheus_text());
}

}  // namespace tags::obs
