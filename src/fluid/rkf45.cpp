// Runge-Kutta-Fehlberg 4(5) with standard coefficients and PI-free simple
// step control.
#include <cmath>

#include "fluid/ode.hpp"
#include "obs/obs.hpp"

namespace tags::fluid {

Vec rkf45_integrate(const OdeRhs& f, Vec y, double t0, double t_end,
                    const OdeOptions& opts) {
  const std::size_t n = y.size();
  Vec k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n), y4(n), y5(n);
  double t = t0;
  double h = opts.dt;

  while (t < t_end) {
    h = std::min(h, t_end - t);
    if (t + h == t) {
      // The remaining gap is below one ulp of t: t += h would not move and
      // the loop would spin forever. Within rounding, we are at t_end.
      obs::count("numerics.rkf45.stall_terminations");
      if (obs::tracing_on()) {
        obs::TraceEvent ev;
        ev.name = "numerics.rkf45_stall";
        ev.num.emplace_back("t", t);
        ev.num.emplace_back("t_end", t_end);
        ev.num.emplace_back("h", h);
        obs::emit(std::move(ev));
      }
      break;
    }
    f(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * (k1[i] / 4.0);
    f(t + h / 4.0, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (3.0 / 32.0 * k1[i] + 9.0 / 32.0 * k2[i]);
    }
    f(t + 3.0 * h / 8.0, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (1932.0 / 2197.0 * k1[i] - 7200.0 / 2197.0 * k2[i] +
                           7296.0 / 2197.0 * k3[i]);
    }
    f(t + 12.0 * h / 13.0, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (439.0 / 216.0 * k1[i] - 8.0 * k2[i] +
                           3680.0 / 513.0 * k3[i] - 845.0 / 4104.0 * k4[i]);
    }
    f(t + h, tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (-8.0 / 27.0 * k1[i] + 2.0 * k2[i] -
                           3544.0 / 2565.0 * k3[i] + 1859.0 / 4104.0 * k4[i] -
                           11.0 / 40.0 * k5[i]);
    }
    f(t + h / 2.0, tmp, k6);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y4[i] = y[i] + h * (25.0 / 216.0 * k1[i] + 1408.0 / 2565.0 * k3[i] +
                          2197.0 / 4104.0 * k4[i] - k5[i] / 5.0);
      y5[i] = y[i] + h * (16.0 / 135.0 * k1[i] + 6656.0 / 12825.0 * k3[i] +
                          28561.0 / 56430.0 * k4[i] - 9.0 / 50.0 * k5[i] +
                          2.0 / 55.0 * k6[i]);
      const double scale = opts.abs_tol + opts.rel_tol * std::abs(y[i]);
      err = std::max(err, std::abs(y5[i] - y4[i]) / scale);
    }
    if (err <= 1.0 || h <= opts.min_dt) {
      if (err > 1.0) {
        // Forced acceptance at the step floor: error control is lost for
        // this step. Count it so a stiff run that rode min_dt the whole way
        // is distinguishable from one the controller actually resolved.
        obs::count("numerics.rkf45.forced_min_dt_steps");
        if (obs::tracing_on()) {
          obs::TraceEvent ev;
          ev.name = "numerics.rkf45_error_control_loss";
          ev.num.emplace_back("t", t);
          ev.num.emplace_back("h", h);
          ev.num.emplace_back("err", err);
          obs::emit(std::move(ev));
        }
      }
      t += h;
      y = y5;  // local extrapolation
    }
    const double factor =
        err > 0.0 ? 0.9 * std::pow(err, -0.2) : 4.0;  // grow on tiny error
    h = std::clamp(h * std::clamp(factor, 0.2, 4.0), opts.min_dt, opts.max_dt);
  }
  return y;
}

}  // namespace tags::fluid
