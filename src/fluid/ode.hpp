// Minimal ODE toolkit for the fluid-flow analysis of Section 3.1
// (Hillston, QEST 2005): systems dy/dt = f(t, y), fixed-step RK4 and
// adaptive RKF45 integrators, and integrate-to-steady-state.
#pragma once

#include <functional>
#include <vector>

namespace tags::fluid {

using Vec = std::vector<double>;

/// Right-hand side: writes dy into the last argument (pre-sized).
using OdeRhs = std::function<void(double t, const Vec& y, Vec& dy)>;

struct OdeOptions {
  double dt = 1e-3;          ///< RK4 step / RKF45 initial step
  double abs_tol = 1e-9;     ///< RKF45 error control
  double rel_tol = 1e-7;
  double min_dt = 1e-12;
  double max_dt = 1.0;
};

/// Fixed-step classic Runge-Kutta to time t_end; returns y(t_end).
[[nodiscard]] Vec rk4_integrate(const OdeRhs& f, Vec y0, double t0, double t_end,
                                const OdeOptions& opts = {});

/// Trajectory sampled at the given ascending times (RK4 between samples).
[[nodiscard]] std::vector<Vec> rk4_trajectory(const OdeRhs& f, Vec y0, double t0,
                                              const std::vector<double>& times,
                                              const OdeOptions& opts = {});

/// Adaptive Runge-Kutta-Fehlberg 4(5); returns y(t_end).
[[nodiscard]] Vec rkf45_integrate(const OdeRhs& f, Vec y0, double t0, double t_end,
                                  const OdeOptions& opts = {});

struct SteadyStateOde {
  Vec y;
  double time = 0.0;      ///< integration time used
  bool converged = false; ///< ||dy||_inf fell below the threshold
};

/// Integrate until ||f(t,y)||_inf <= derivative_tol (or t_max).
[[nodiscard]] SteadyStateOde integrate_to_steady(const OdeRhs& f, Vec y0,
                                                 double derivative_tol = 1e-9,
                                                 double t_max = 1e5,
                                                 const OdeOptions& opts = {});

}  // namespace tags::fluid
