#include "fluid/ode.hpp"

#include <cmath>

namespace tags::fluid {

namespace {

double inf_norm(const Vec& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace

SteadyStateOde integrate_to_steady(const OdeRhs& f, Vec y0, double derivative_tol,
                                   double t_max, const OdeOptions& opts) {
  SteadyStateOde out;
  out.y = std::move(y0);
  Vec dy(out.y.size());
  double t = 0.0;
  // Integrate in exponentially growing chunks, checking the derivative norm
  // between chunks.
  double chunk = 1.0;
  while (t < t_max) {
    out.y = rkf45_integrate(f, std::move(out.y), t, t + chunk, opts);
    t += chunk;
    f(t, out.y, dy);
    if (inf_norm(dy) <= derivative_tol) {
      out.converged = true;
      break;
    }
    chunk = std::min(chunk * 2.0, t_max - t);
    if (chunk <= 0.0) break;
  }
  out.time = t;
  return out;
}

}  // namespace tags::fluid
