#include "fluid/ode.hpp"

namespace tags::fluid {

namespace {

void rk4_step(const OdeRhs& f, double t, Vec& y, double h, Vec& k1, Vec& k2, Vec& k3,
              Vec& k4, Vec& tmp) {
  const std::size_t n = y.size();
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  f(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  f(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
  f(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

}  // namespace

Vec rk4_integrate(const OdeRhs& f, Vec y0, double t0, double t_end,
                  const OdeOptions& opts) {
  const std::size_t n = y0.size();
  Vec k1(n), k2(n), k3(n), k4(n), tmp(n);
  double t = t0;
  while (t < t_end) {
    const double h = std::min(opts.dt, t_end - t);
    rk4_step(f, t, y0, h, k1, k2, k3, k4, tmp);
    t += h;
  }
  return y0;
}

std::vector<Vec> rk4_trajectory(const OdeRhs& f, Vec y0, double t0,
                                const std::vector<double>& times,
                                const OdeOptions& opts) {
  std::vector<Vec> out;
  out.reserve(times.size());
  double t = t0;
  for (double target : times) {
    if (target > t) {
      y0 = rk4_integrate(f, std::move(y0), t, target, opts);
      t = target;
    }
    out.push_back(y0);
  }
  return out;
}

}  // namespace tags::fluid
