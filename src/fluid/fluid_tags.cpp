#include "fluid/fluid_tags.hpp"

#include <algorithm>
#include <cmath>

namespace tags::fluid {

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

std::size_t tags_fluid_dim(const models::TagsParams& p) { return 2 * p.n + 5; }

Vec tags_fluid_initial(const models::TagsParams& p) {
  Vec y(tags_fluid_dim(p), 0.0);
  y[1 + p.n] = 1.0;          // tau_n = 1 (fresh node-1 timer)
  y[p.n + 3 + p.n] = 1.0;    // rho_n = 1 (fresh node-2 repeat phase)
  return y;
}

OdeRhs make_tags_fluid_rhs(const models::TagsParams& p) {
  const unsigned n = p.n;
  const double lambda = p.lambda, mu = p.mu, t = p.t;
  const double k1 = p.k1, k2 = p.k2;
  // Index helpers into the flat state vector.
  const auto TAU = [n](unsigned j) { return 1 + j; };
  const std::size_t X2 = n + 2;
  const auto RHO = [n](unsigned j) { return n + 3 + j; };
  const std::size_t SIGMA = 2 * n + 4;

  return [=](double /*time*/, const Vec& y, Vec& dy) {
    std::fill(dy.begin(), dy.end(), 0.0);
    const double x1 = y[0];
    const double x2 = y[X2];
    const double g1 = clamp01(x1);        // P(node 1 busy), fluid gate
    const double a1 = clamp01(k1 - x1);   // admission gate at node 1
    const double g2 = clamp01(x2);
    const double a2 = clamp01(k2 - x2);

    // Node-1 flows.
    const double service1 = mu * g1;
    const double timeout = t * y[TAU(0)] * g1;
    dy[0] += lambda * a1 - service1 - timeout;

    // Node-1 timer phases: ticks cascade downward while busy; service and
    // timeout both reset the timer mass to phase n.
    for (unsigned j = 0; j <= n; ++j) {
      const double mass = y[TAU(j)];
      if (j >= 1) dy[TAU(j - 1)] += t * g1 * mass;  // tick down
      if (j >= 1) dy[TAU(j)] -= t * g1 * mass;
      dy[TAU(j)] -= mu * g1 * mass;  // service reset drains every phase
    }
    dy[TAU(n)] += mu * g1;   // ... and deposits at phase n
    dy[TAU(0)] -= t * g1 * y[TAU(0)];  // timeout consumes phase-0 mass
    dy[TAU(n)] += t * g1 * y[TAU(0)];  // ... and also resets to n

    // Node-2 flows: admitted timeouts in, served heads out.
    const double service2 = mu * y[SIGMA] * g2;
    dy[X2] += timeout * a2 - service2;

    // Node-2 head phases: repeat ticks while busy; repeat completion moves
    // mass to sigma; service completion resets the head to a fresh repeat.
    for (unsigned j = 1; j <= n; ++j) {
      const double mass = y[RHO(j)];
      dy[RHO(j - 1)] += t * g2 * mass;
      dy[RHO(j)] -= t * g2 * mass;
    }
    dy[SIGMA] += t * g2 * y[RHO(0)];
    dy[RHO(0)] -= t * g2 * y[RHO(0)];
    dy[RHO(n)] += mu * g2 * y[SIGMA];
    dy[SIGMA] -= mu * g2 * y[SIGMA];
  };
}

FluidTagsResult tags_fluid_steady(const models::TagsParams& p, double tol) {
  const OdeRhs rhs = make_tags_fluid_rhs(p);
  const SteadyStateOde ss = integrate_to_steady(rhs, tags_fluid_initial(p), tol, 1e5);
  FluidTagsResult r;
  r.mean_q1 = ss.y[0];
  r.mean_q2 = ss.y[p.n + 2];
  r.time_to_steady = ss.time;
  r.converged = ss.converged;
  return r;
}

std::vector<std::pair<double, double>> tags_fluid_transient(
    const models::TagsParams& p, const std::vector<double>& times) {
  const OdeRhs rhs = make_tags_fluid_rhs(p);
  const auto traj = rk4_trajectory(rhs, tags_fluid_initial(p), 0.0, times);
  std::vector<std::pair<double, double>> out;
  out.reserve(traj.size());
  for (const Vec& y : traj) out.emplace_back(y[0], y[p.n + 2]);
  return out;
}

}  // namespace tags::fluid
