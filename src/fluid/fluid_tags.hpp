// Fluid (mean-field) approximation of the TAGS model, in the spirit of the
// place-per-slot representation of Section 3.1 / Figure 4: instead of
// deriving the CTMC, track continuous populations of component derivatives
// and integrate ODEs whose rates gate on min(1, population) terms.
//
// Variables (layout of the state vector):
//   y[0]                 x1       jobs at node 1 (in [0, K1])
//   y[1 .. n+1]          tau_j    node-1 timer phase mass, j = 0..n
//   y[n+2]               x2       jobs at node 2 (in [0, K2])
//   y[n+3 .. 2n+3]       rho_j    node-2 head repeat-phase mass, j = 0..n
//   y[2n+4]              sigma    node-2 head serving mass
// Invariants: sum_j tau_j = 1, sum_j rho_j + sigma = 1.
//
// This is an approximation on two counts: the mean-field closure (gating
// with min(1, x) instead of P(x >= 1)) and treating the timer distribution
// as independent of the queue length. The ablation bench abl_fluid
// quantifies both against the exact CTMC.
#pragma once

#include "fluid/ode.hpp"
#include "models/tags.hpp"

namespace tags::fluid {

struct FluidTagsResult {
  double mean_q1 = 0.0;
  double mean_q2 = 0.0;
  double time_to_steady = 0.0;
  bool converged = false;
};

/// The ODE right-hand side for the given parameters (exposed for transient
/// experiments and tests).
[[nodiscard]] OdeRhs make_tags_fluid_rhs(const models::TagsParams& p);

/// Initial condition: empty system, fresh timers.
[[nodiscard]] Vec tags_fluid_initial(const models::TagsParams& p);

/// Dimension of the fluid state vector: 2n + 5.
[[nodiscard]] std::size_t tags_fluid_dim(const models::TagsParams& p);

/// Integrate to the fluid fixed point. The tolerance is on ||dy/dt||_inf;
/// the RKF45 step control floors the achievable residual around 1e-8.
[[nodiscard]] FluidTagsResult tags_fluid_steady(const models::TagsParams& p,
                                                double tol = 1e-6);

/// Transient fluid trajectory of (x1, x2) at the given times.
[[nodiscard]] std::vector<std::pair<double, double>> tags_fluid_transient(
    const models::TagsParams& p, const std::vector<double>& times);

}  // namespace tags::fluid
