#include "models/tags_h2.hpp"

#include <stdexcept>

#include "phasetype/residual.hpp"

namespace tags::models {

double TagsH2Params::mean_demand() const {
  return alpha / mu1 + (1.0 - alpha) / mu2;
}

double TagsH2Params::alpha_prime() const {
  return ph::h2_alpha_prime(alpha, mu1, mu2, n + 1, t);
}

TagsH2Params TagsH2Params::from_ratio(double lambda, double alpha, double ratio,
                                      double mean_demand, double t, unsigned n,
                                      unsigned k1, unsigned k2) {
  if (!(ratio > 0.0) || !(mean_demand > 0.0) || !(alpha > 0.0) || alpha >= 1.0) {
    throw std::invalid_argument("TagsH2Params::from_ratio: bad parameters");
  }
  TagsH2Params p;
  p.lambda = lambda;
  p.alpha = alpha;
  // mean = alpha/mu1 + (1-alpha)/mu2 with mu1 = ratio * mu2.
  p.mu2 = (alpha / ratio + (1.0 - alpha)) / mean_demand;
  p.mu1 = ratio * p.mu2;
  p.t = t;
  p.n = n;
  p.k1 = k1;
  p.k2 = k2;
  return p;
}

namespace {

unsigned node1_index(unsigned q1, unsigned c1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + ((q1 - 1) * 2 + c1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 3) + phase2;
}

enum Label : ctmc::label_t {
  kArrival = 1,
  kService1,
  kTick1,
  kTimeout,
  kTimeoutLost,
  kTick2,
  kRepeat,
  kService2,
  kLoss1,
};

const std::vector<std::string> kLabels = {
    "tau",          "arrival", "service1",      "tick1",    "timeout",
    "timeout_lost", "tick2",   "repeatservice", "service2", "loss1"};

}  // namespace

ctmc::index_t TagsH2Model::state_count(const TagsH2Params& p) noexcept {
  const auto n1 = static_cast<ctmc::index_t>(p.k1 * 2 * (p.n + 1) + 1);
  const auto n2 = static_cast<ctmc::index_t>(p.k2 * (p.n + 3) + 1);
  return n1 * n2;
}

ctmc::index_t TagsH2Model::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.c1, s.j1, params_.n);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsH2Model::State TagsH2Model::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.c1 = kShort;
    s.j1 = n;
  } else {
    const unsigned rest = i1 - 1;
    s.j1 = rest % (n + 1);
    const unsigned qc = rest / (n + 1);
    s.c1 = qc % 2;
    s.q1 = 1 + qc / 2;
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 3);
    s.phase2 = (i2 - 1) % (n + 3);
  }
  return s;
}

TagsH2Model::TagsH2Model(const TagsH2Params& params) : params_(params) {
  node1_states_ = params_.k1 * 2 * (params_.n + 1) + 1;
  node2_states_ = params_.k2 * (params_.n + 3) + 1;
  alpha_prime_ = params_.alpha_prime();
  assemble();
}

void TagsH2Model::rebind(const TagsH2Params& params) {
  if (params.n != params_.n || params.k1 != params_.k1 || params.k2 != params_.k2) {
    throw std::invalid_argument(
        "TagsH2Model::rebind: n/k1/k2 are structural; construct a new model");
  }
  params_ = params;
  alpha_prime_ = params_.alpha_prime();
  rebind_rates();
}

ctmc::index_t TagsH2Model::state_space_size() const {
  return static_cast<ctmc::index_t>(node1_states_) * node2_states_;
}

const std::vector<std::string>& TagsH2Model::transition_labels() const {
  return kLabels;
}

void TagsH2Model::for_each_transition(ctmc::index_t state,
                                      const TransitionSink& emit) const {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  const unsigned serving_short = n + 1;
  const unsigned serving_long = n + 2;
  const double alpha = params_.alpha;
  const double aprime = alpha_prime_;
  const State s = decode(state);

  // Head departure at node 1: the next head's class is freshly sampled
  // (branch alpha / 1-alpha); an emptied queue pins (kShort, n).
  const auto node1_departure = [&](double rate, unsigned q2_next, unsigned p2_next,
                                   ctmc::label_t label) {
    if (s.q1 >= 2) {
      emit(encode({s.q1 - 1, kShort, n, q2_next, p2_next}), rate * alpha, label);
      emit(encode({s.q1 - 1, kLong, n, q2_next, p2_next}), rate * (1.0 - alpha),
           label);
    } else {
      emit(encode({0, kShort, n, q2_next, p2_next}), rate, label);
    }
  };

  // --- Node 1 ---
  if (s.q1 < k1) {
    if (s.q1 == 0) {
      // The arriving job becomes the head: sample its class now.
      emit(encode({1, kShort, n, s.q2, s.phase2}), params_.lambda * alpha, kArrival);
      emit(encode({1, kLong, n, s.q2, s.phase2}), params_.lambda * (1.0 - alpha),
           kArrival);
    } else {
      emit(encode({s.q1 + 1, s.c1, s.j1, s.q2, s.phase2}), params_.lambda, kArrival);
    }
  } else {
    emit(state, params_.lambda, kLoss1);
  }
  if (s.q1 >= 1) {
    const double mu_head = s.c1 == kShort ? params_.mu1 : params_.mu2;
    node1_departure(mu_head, s.q2, s.phase2, kService1);
    if (s.j1 >= 1) {
      emit(encode({s.q1, s.c1, s.j1 - 1, s.q2, s.phase2}), params_.t, kTick1);
    } else {
      if (s.q2 < k2) {
        const unsigned p2 = s.q2 == 0 ? n : s.phase2;
        node1_departure(params_.t, s.q2 + 1, p2, kTimeout);
      } else {
        node1_departure(params_.t, s.q2, s.phase2, kTimeoutLost);
      }
    }
  }

  // --- Node 2 ---
  if (s.q2 >= 1) {
    if (s.phase2 == serving_short || s.phase2 == serving_long) {
      const double mu_head = s.phase2 == serving_short ? params_.mu1 : params_.mu2;
      emit(encode({s.q1, s.c1, s.j1, s.q2 - 1, n}), mu_head, kService2);
    } else if (s.phase2 >= 1) {
      emit(encode({s.q1, s.c1, s.j1, s.q2, s.phase2 - 1}), params_.t, kTick2);
    } else {
      // Repeat ends: sample the timed-out job's class with alpha'.
      emit(encode({s.q1, s.c1, s.j1, s.q2, serving_short}), params_.t * aprime,
           kRepeat);
      emit(encode({s.q1, s.c1, s.j1, s.q2, serving_long}),
           params_.t * (1.0 - aprime), kRepeat);
    }
  }
}

ctmc::MeasureSpec TagsH2Model::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"service1", "service2"};
  spec.loss1_labels = {"loss1"};
  spec.loss2_labels = {"timeout_lost"};
  return spec;
}

}  // namespace tags::models
