#include "models/tags_h2.hpp"

#include <cassert>
#include <stdexcept>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"
#include "phasetype/residual.hpp"

namespace tags::models {

double TagsH2Params::mean_demand() const {
  return alpha / mu1 + (1.0 - alpha) / mu2;
}

double TagsH2Params::alpha_prime() const {
  return ph::h2_alpha_prime(alpha, mu1, mu2, n + 1, t);
}

TagsH2Params TagsH2Params::from_ratio(double lambda, double alpha, double ratio,
                                      double mean_demand, double t, unsigned n,
                                      unsigned k1, unsigned k2) {
  if (!(ratio > 0.0) || !(mean_demand > 0.0) || !(alpha > 0.0) || alpha >= 1.0) {
    throw std::invalid_argument("TagsH2Params::from_ratio: bad parameters");
  }
  TagsH2Params p;
  p.lambda = lambda;
  p.alpha = alpha;
  // mean = alpha/mu1 + (1-alpha)/mu2 with mu1 = ratio * mu2.
  p.mu2 = (alpha / ratio + (1.0 - alpha)) / mean_demand;
  p.mu1 = ratio * p.mu2;
  p.t = t;
  p.n = n;
  p.k1 = k1;
  p.k2 = k2;
  return p;
}

namespace {

unsigned node1_index(unsigned q1, unsigned c1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + ((q1 - 1) * 2 + c1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 3) + phase2;
}

}  // namespace

ctmc::index_t TagsH2Model::state_count(const TagsH2Params& p) noexcept {
  const auto n1 = static_cast<ctmc::index_t>(p.k1 * 2 * (p.n + 1) + 1);
  const auto n2 = static_cast<ctmc::index_t>(p.k2 * (p.n + 3) + 1);
  return n1 * n2;
}

ctmc::index_t TagsH2Model::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.c1, s.j1, params_.n);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsH2Model::State TagsH2Model::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.c1 = kShort;
    s.j1 = n;
  } else {
    const unsigned rest = i1 - 1;
    s.j1 = rest % (n + 1);
    const unsigned qc = rest / (n + 1);
    s.c1 = qc % 2;
    s.q1 = 1 + qc / 2;
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 3);
    s.phase2 = (i2 - 1) % (n + 3);
  }
  return s;
}

TagsH2Model::TagsH2Model(const TagsH2Params& params) : params_(params) {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  node1_states_ = k1 * 2 * (n + 1) + 1;
  node2_states_ = k2 * (n + 3) + 1;
  const unsigned serving_short = n + 1;
  const unsigned serving_long = n + 2;
  const double alpha = params_.alpha;
  const double aprime = params_.alpha_prime();

  ctmc::CtmcBuilder b;
  const auto l_arrival = b.label("arrival");
  const auto l_service1 = b.label("service1");
  const auto l_tick1 = b.label("tick1");
  const auto l_timeout = b.label("timeout");
  const auto l_timeout_lost = b.label("timeout_lost");
  const auto l_tick2 = b.label("tick2");
  const auto l_repeat = b.label("repeatservice");
  const auto l_service2 = b.label("service2");
  const auto l_loss1 = b.label("loss1");

  const auto for_each_state = [&](auto&& fn) {
    for (unsigned q1 = 0; q1 <= k1; ++q1) {
      const unsigned c1_hi = q1 == 0 ? 0 : 1;
      for (unsigned c1 = 0; c1 <= c1_hi; ++c1) {
        const unsigned j1_lo = q1 == 0 ? n : 0;
        for (unsigned j1 = j1_lo; j1 <= n; ++j1) {
          for (unsigned q2 = 0; q2 <= k2; ++q2) {
            const unsigned p2_lo = q2 == 0 ? n : 0;
            const unsigned p2_hi = q2 == 0 ? n : serving_long;
            for (unsigned p2 = p2_lo; p2 <= p2_hi; ++p2) {
              fn(State{q1, c1, j1, q2, p2});
            }
          }
        }
      }
    }
  };

  // Head departure at node 1: the next head's class is freshly sampled
  // (branch alpha / 1-alpha); an emptied queue pins (kShort, n).
  const auto add_node1_departure = [&](const State& s, ctmc::index_t from, double rate,
                                       unsigned q2_next, unsigned p2_next,
                                       ctmc::label_t label) {
    if (s.q1 >= 2) {
      b.add(from, encode({s.q1 - 1, kShort, n, q2_next, p2_next}), rate * alpha, label);
      b.add(from, encode({s.q1 - 1, kLong, n, q2_next, p2_next}), rate * (1.0 - alpha),
            label);
    } else {
      b.add(from, encode({0, kShort, n, q2_next, p2_next}), rate, label);
    }
  };

  for_each_state([&](const State& s) {
    const ctmc::index_t from = encode(s);

    // --- Node 1 ---
    if (s.q1 < k1) {
      if (s.q1 == 0) {
        // The arriving job becomes the head: sample its class now.
        b.add(from, encode({1, kShort, n, s.q2, s.phase2}), params_.lambda * alpha,
              l_arrival);
        b.add(from, encode({1, kLong, n, s.q2, s.phase2}),
              params_.lambda * (1.0 - alpha), l_arrival);
      } else {
        b.add(from, encode({s.q1 + 1, s.c1, s.j1, s.q2, s.phase2}), params_.lambda,
              l_arrival);
      }
    } else {
      b.add(from, from, params_.lambda, l_loss1);
    }
    if (s.q1 >= 1) {
      const double mu_head = s.c1 == kShort ? params_.mu1 : params_.mu2;
      add_node1_departure(s, from, mu_head, s.q2, s.phase2, l_service1);
      if (s.j1 >= 1) {
        b.add(from, encode({s.q1, s.c1, s.j1 - 1, s.q2, s.phase2}), params_.t, l_tick1);
      } else {
        if (s.q2 < k2) {
          const unsigned p2 = s.q2 == 0 ? n : s.phase2;
          add_node1_departure(s, from, params_.t, s.q2 + 1, p2, l_timeout);
        } else {
          add_node1_departure(s, from, params_.t, s.q2, s.phase2, l_timeout_lost);
        }
      }
    }

    // --- Node 2 ---
    if (s.q2 >= 1) {
      if (s.phase2 == serving_short || s.phase2 == serving_long) {
        const double mu_head = s.phase2 == serving_short ? params_.mu1 : params_.mu2;
        b.add(from, encode({s.q1, s.c1, s.j1, s.q2 - 1, n}), mu_head, l_service2);
      } else if (s.phase2 >= 1) {
        b.add(from, encode({s.q1, s.c1, s.j1, s.q2, s.phase2 - 1}), params_.t, l_tick2);
      } else {
        // Repeat ends: sample the timed-out job's class with alpha'.
        b.add(from, encode({s.q1, s.c1, s.j1, s.q2, serving_short}), params_.t * aprime,
              l_repeat);
        b.add(from, encode({s.q1, s.c1, s.j1, s.q2, serving_long}),
              params_.t * (1.0 - aprime), l_repeat);
      }
    }
  });

  b.ensure_states(static_cast<ctmc::index_t>(node1_states_) * node2_states_);
  chain_ = b.build();
}

ctmc::SteadyStateResult TagsH2Model::solve(const ctmc::SteadyStateOptions& opts) const {
  return ctmc::steady_state(chain_, opts);
}

Metrics TagsH2Model::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  return metrics_from(result.pi);
}

Metrics TagsH2Model::metrics_from(const linalg::Vec& pi) const {
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "service1") +
                 ctmc::throughput(chain_, pi, "service2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss1");
  m.loss2_rate = ctmc::throughput(chain_, pi, "timeout_lost");
  finalize(m);
  return m;
}

}  // namespace tags::models
