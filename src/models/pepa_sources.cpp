#include "models/pepa_sources.hpp"

#include <string>

#include "obs/numio.hpp"

namespace tags::models {

namespace {

std::string num(double v) {
  // to_chars: same bytes as %.17g in the C locale, immune to LC_NUMERIC.
  return numio::format_g(v, 17);
}

std::string idx(const std::string& base, unsigned i) {
  return base + "_" + std::to_string(i);
}

}  // namespace

std::string tags_pepa_source(const TagsParams& p) {
  const unsigned n = p.n, k1 = p.k1, k2 = p.k2;
  std::string s;
  s += "% TAGS two-node model (Thomas 2006, Figure 3; corrected cooperation\n";
  s += "% sets and tick2 discipline, see DESIGN.md).\n";
  s += "lambda = " + num(p.lambda) + ";\n";
  s += "mu = " + num(p.mu) + ";\n";
  s += "t = " + num(p.t) + ";\n\n";

  // Queue 1.
  s += "Q1_0 = (arrival, lambda).Q1_1;\n";
  for (unsigned i = 1; i < k1; ++i) {
    s += idx("Q1", i) + " = (arrival, lambda)." + idx("Q1", i + 1) +
         " + (service1, mu)." + idx("Q1", i - 1) + " + (timeout, infty)." +
         idx("Q1", i - 1) + " + (tick1, infty)." + idx("Q1", i) + ";\n";
  }
  s += idx("Q1", k1) + " = (service1, mu)." + idx("Q1", k1 - 1) +
       " + (timeout, infty)." + idx("Q1", k1 - 1) + " + (tick1, infty)." +
       idx("Q1", k1) + ";\n\n";

  // Timer 1: n ticks then the timeout phase; service resets it.
  s += "T1_0 = (timeout, t)." + idx("T1", n) + " + (service1, infty)." + idx("T1", n) +
       ";\n";
  for (unsigned j = 1; j <= n; ++j) {
    s += idx("T1", j) + " = (tick1, t)." + idx("T1", j - 1) + " + (service1, infty)." +
         idx("T1", n) + ";\n";
  }
  s += "\n";

  // Queue 2: unprimed = repeat service in progress, primed (suffix p) =
  // residual service in progress (tick2 deliberately absent there).
  s += "Q2_0 = (timeout, infty).Q2_1;\n";
  for (unsigned i = 1; i < k2; ++i) {
    s += idx("Q2", i) + " = (timeout, infty)." + idx("Q2", i + 1) +
         " + (tick2, infty)." + idx("Q2", i) + " + (repeatservice, infty)." +
         idx("Q2p", i) + ";\n";
    s += idx("Q2p", i) + " = (timeout, infty)." + idx("Q2p", i + 1) +
         " + (service2, mu)." + idx("Q2", i - 1) + ";\n";
  }
  s += idx("Q2", k2) + " = (timeout, infty)." + idx("Q2", k2) + " + (tick2, infty)." +
       idx("Q2", k2) + " + (repeatservice, infty)." + idx("Q2p", k2) + ";\n";
  s += idx("Q2p", k2) + " = (timeout, infty)." + idx("Q2p", k2) + " + (service2, mu)." +
       idx("Q2", k2 - 1) + ";\n\n";

  // Timer 2: drives the repeat-service Erlang; frozen while the queue is
  // empty or the head is in residual service (no tick2 offered then).
  s += "T2_0 = (repeatservice, t)." + idx("T2", n) + ";\n";
  for (unsigned j = 1; j <= n; ++j) {
    s += idx("T2", j) + " = (tick2, t)." + idx("T2", j - 1) + ";\n";
  }
  s += "\n";

  s += "Node1 = Q1_0 <timeout, service1, tick1> " + idx("T1", n) + ";\n";
  s += "Node2 = Q2_0 <repeatservice, tick2> " + idx("T2", n) + ";\n";
  s += "System = Node1 <timeout> Node2;\n";
  return s;
}

std::string tags_h2_pepa_source(const TagsH2Params& p) {
  const unsigned n = p.n, k1 = p.k1, k2 = p.k2;
  std::string s;
  s += "% TAGS with H2 service demands (Thomas 2006, Figure 5; corrected\n";
  s += "% timeout rates in unprimed Q1_i, see DESIGN.md).\n";
  s += "lambda = " + num(p.lambda) + ";\n";
  s += "alpha = " + num(p.alpha) + ";\n";
  s += "mu1 = " + num(p.mu1) + ";\n";
  s += "mu2 = " + num(p.mu2) + ";\n";
  s += "t = " + num(p.t) + ";\n";
  s += "aprime = " + num(p.alpha_prime()) + ";  % residual-class probability\n\n";

  // Queue 1. Unprimed: head short; primed (suffix p): head long.
  s += "Q1_0 = (arrival, alpha * lambda).Q1_1 + (arrival, (1 - alpha) * "
       "lambda).Q1p_1;\n";
  const auto q1_line = [&](unsigned i, bool primed) {
    const std::string self = primed ? idx("Q1p", i) : idx("Q1", i);
    const std::string up = primed ? idx("Q1p", i + 1) : idx("Q1", i + 1);
    const std::string mu = primed ? "mu2" : "mu1";
    std::string line = self + " = ";
    if (i < k1) line += "(arrival, lambda)." + up + " + ";
    line += "(tick1, infty)." + self;
    if (i == 1) {
      line += " + (service1, " + mu + ").Q1_0 + (timeout, infty).Q1_0";
    } else {
      line += " + (service1, alpha * " + mu + ")." + idx("Q1", i - 1);
      line += " + (service1, (1 - alpha) * " + mu + ")." + idx("Q1p", i - 1);
      line += " + (timeout, alpha * infty)." + idx("Q1", i - 1);
      line += " + (timeout, (1 - alpha) * infty)." + idx("Q1p", i - 1);
    }
    line += ";\n";
    return line;
  };
  for (unsigned i = 1; i <= k1; ++i) s += q1_line(i, false);
  for (unsigned i = 1; i <= k1; ++i) s += q1_line(i, true);
  s += "\n";

  s += "T1_0 = (timeout, t)." + idx("T1", n) + " + (service1, infty)." + idx("T1", n) +
       ";\n";
  for (unsigned j = 1; j <= n; ++j) {
    s += idx("T1", j) + " = (tick1, t)." + idx("T1", j - 1) + " + (service1, infty)." +
         idx("T1", n) + ";\n";
  }
  s += "\n";

  // Queue 2: unprimed repeat; s-suffix serving short; l-suffix serving long.
  s += "Q2_0 = (timeout, infty).Q2_1;\n";
  const auto q2_up = [&](const std::string& base, unsigned i) {
    return i < k2 ? idx(base, i + 1) : idx(base, k2);
  };
  for (unsigned i = 1; i <= k2; ++i) {
    s += idx("Q2", i) + " = (timeout, infty)." + q2_up("Q2", i) + " + (tick2, infty)." +
         idx("Q2", i) + " + (repeatservice, aprime * infty)." + idx("Q2s", i) +
         " + (repeatservice, (1 - aprime) * infty)." + idx("Q2l", i) + ";\n";
    s += idx("Q2s", i) + " = (timeout, infty)." + q2_up("Q2s", i) +
         " + (service2, mu1)." + idx("Q2", i - 1) + ";\n";
    s += idx("Q2l", i) + " = (timeout, infty)." + q2_up("Q2l", i) +
         " + (service2, mu2)." + idx("Q2", i - 1) + ";\n";
  }
  s += "\n";

  s += "T2_0 = (repeatservice, t)." + idx("T2", n) + ";\n";
  for (unsigned j = 1; j <= n; ++j) {
    s += idx("T2", j) + " = (tick2, t)." + idx("T2", j - 1) + ";\n";
  }
  s += "\n";

  s += "Node1 = Q1_0 <timeout, service1, tick1> " + idx("T1", n) + ";\n";
  s += "Node2 = Q2_0 <repeatservice, tick2> " + idx("T2", n) + ";\n";
  s += "System = Node1 <timeout> Node2;\n";
  return s;
}

std::string random_pepa_source(const RandomAllocParams& p) {
  std::string s;
  s += "% Weighted random allocation (Thomas 2006, Appendix A).\n";
  s += "lambda1 = " + num(p.lambda * p.p1) + ";\n";
  s += "lambda2 = " + num(p.lambda * (1.0 - p.p1)) + ";\n";
  s += "mu = " + num(p.mu) + ";\n\n";
  for (unsigned q = 1; q <= 2; ++q) {
    const std::string base = "Queue" + std::to_string(q);
    const std::string lam = "lambda" + std::to_string(q);
    const std::string arr = "arrival" + std::to_string(q);
    const std::string srv = "service" + std::to_string(q);
    s += idx(base, 0) + " = (" + arr + ", " + lam + ")." + idx(base, 1) + ";\n";
    for (unsigned j = 1; j < p.k; ++j) {
      s += idx(base, j) + " = (" + arr + ", " + lam + ")." + idx(base, j + 1) + " + (" +
           srv + ", mu)." + idx(base, j - 1) + ";\n";
    }
    s += idx(base, p.k) + " = (" + srv + ", mu)." + idx(base, p.k - 1) + ";\n\n";
  }
  s += "System = Queue1_0 <> Queue2_0;\n";
  return s;
}

std::string shortest_queue_pepa_source(const ShortestQueueParams& p) {
  const unsigned k = p.k;
  std::string s;
  s += "% Shortest-queue policy (Thomas 2006, Appendix B). The control\n";
  s += "% component S tracks the queue-length difference d = q1 - q2;\n";
  s += "% Sp_j is d = +j, Sm_j is d = -j.\n";
  s += "lambda = " + num(p.lambda) + ";\n";
  s += "mu = " + num(p.mu) + ";\n\n";
  for (unsigned q = 1; q <= 2; ++q) {
    const std::string base = "Queue" + std::to_string(q);
    const std::string arr = "arr" + std::to_string(q);
    const std::string srv = "serv" + std::to_string(q);
    s += idx(base, 0) + " = (" + arr + ", infty)." + idx(base, 1) + ";\n";
    for (unsigned j = 1; j < k; ++j) {
      s += idx(base, j) + " = (" + arr + ", infty)." + idx(base, j + 1) + " + (" + srv +
           ", infty)." + idx(base, j - 1) + ";\n";
    }
    s += idx(base, k) + " = (" + srv + ", infty)." + idx(base, k - 1) + ";\n\n";
  }
  // Difference tracker. Names: S_0, Sp_j (positive), Sm_j (negative).
  const auto sname = [&](int d) {
    if (d == 0) return std::string("S_0");
    if (d > 0) return idx("Sp", static_cast<unsigned>(d));
    return idx("Sm", static_cast<unsigned>(-d));
  };
  s += "S_0 = (arr1, lambda / 2)." + sname(1) + " + (arr2, lambda / 2)." + sname(-1) +
       " + (serv1, mu)." + sname(-1) + " + (serv2, mu)." + sname(1) + ";\n";
  for (int d = 1; d <= static_cast<int>(k); ++d) {
    // d > 0: queue 1 longer, all arrivals to queue 2.
    s += sname(d) + " = (arr2, lambda)." + sname(d - 1) + " + (serv1, mu)." +
         sname(d - 1);
    if (d < static_cast<int>(k)) s += " + (serv2, mu)." + sname(d + 1);
    s += ";\n";
    s += sname(-d) + " = (arr1, lambda)." + sname(-d + 1) + " + (serv2, mu)." +
         sname(-d + 1);
    if (d < static_cast<int>(k)) s += " + (serv1, mu)." + sname(-d - 1);
    s += ";\n";
  }
  s += "\nSystem = (Queue1_0 <> Queue2_0) <arr1, arr2, serv1, serv2> S_0;\n";
  return s;
}

}  // namespace tags::models
