#include "models/shortest_queue.hpp"

#include <stdexcept>

namespace tags::models {

namespace {

enum Label : ctmc::label_t {
  kArr1 = 1,
  kArr2,
  kServ1,
  kServ2,
  kLoss,
};

const std::vector<std::string> kLabels = {"tau",   "arr1",  "arr2",
                                          "serv1", "serv2", "loss"};

}  // namespace

// ---------------------------------------------------------------------------
// Exponential variant
// ---------------------------------------------------------------------------

ShortestQueueModel::ShortestQueueModel(const ShortestQueueParams& params)
    : params_(params) {
  assemble();
}

void ShortestQueueModel::rebind(const ShortestQueueParams& params) {
  if (params.k != params_.k) {
    throw std::invalid_argument(
        "ShortestQueueModel::rebind: k is structural; construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t ShortestQueueModel::state_space_size() const {
  const auto side = static_cast<ctmc::index_t>(params_.k) + 1;
  return side * side;
}

const std::vector<std::string>& ShortestQueueModel::transition_labels() const {
  return kLabels;
}

ctmc::index_t ShortestQueueModel::encode(const State& s) const noexcept {
  return static_cast<ctmc::index_t>(s.q1) * (params_.k + 1) + s.q2;
}

ShortestQueueModel::State ShortestQueueModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned k1 = params_.k + 1;
  return {static_cast<unsigned>(idx) / k1, static_cast<unsigned>(idx) % k1};
}

void ShortestQueueModel::for_each_transition(ctmc::index_t state,
                                             const TransitionSink& emit) const {
  const unsigned k = params_.k;
  const State s = decode(state);
  const unsigned q1 = s.q1;
  const unsigned q2 = s.q2;
  // Routing: strictly shorter queue wins; ties split the stream.
  if (q1 < q2) {
    emit(encode({q1 + 1, q2}), params_.lambda, kArr1);
  } else if (q2 < q1) {
    emit(encode({q1, q2 + 1}), params_.lambda, kArr2);
  } else if (q1 < k) {  // tie, space available
    emit(encode({q1 + 1, q2}), params_.lambda / 2.0, kArr1);
    emit(encode({q1, q2 + 1}), params_.lambda / 2.0, kArr2);
  } else {  // both full
    emit(state, params_.lambda, kLoss);
  }
  if (q1 >= 1) emit(encode({q1 - 1, q2}), params_.mu, kServ1);
  if (q2 >= 1) emit(encode({q1, q2 - 1}), params_.mu, kServ2);
}

ctmc::MeasureSpec ShortestQueueModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"serv1", "serv2"};
  spec.loss1_labels = {"loss"};
  return spec;
}

// ---------------------------------------------------------------------------
// H2 variant
// ---------------------------------------------------------------------------

namespace {

unsigned local_index(unsigned q, unsigned c) { return q == 0 ? 0 : 1 + (q - 1) * 2 + c; }

}  // namespace

ShortestQueueH2Model::ShortestQueueH2Model(const ShortestQueueH2Params& params)
    : params_(params) {
  assemble();
}

void ShortestQueueH2Model::rebind(const ShortestQueueH2Params& params) {
  if (params.k != params_.k) {
    throw std::invalid_argument(
        "ShortestQueueH2Model::rebind: k is structural; construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t ShortestQueueH2Model::state_space_size() const {
  const auto stride = static_cast<ctmc::index_t>(2 * params_.k + 1);
  return stride * stride;
}

const std::vector<std::string>& ShortestQueueH2Model::transition_labels() const {
  return kLabels;
}

ctmc::index_t ShortestQueueH2Model::encode(const State& s) const noexcept {
  const unsigned stride = 2 * params_.k + 1;
  return static_cast<ctmc::index_t>(local_index(s.q1, s.c1)) * stride +
         local_index(s.q2, s.c2);
}

ShortestQueueH2Model::State ShortestQueueH2Model::decode(
    ctmc::index_t idx) const noexcept {
  const unsigned stride = 2 * params_.k + 1;
  const unsigned i1 = static_cast<unsigned>(idx) / stride;
  const unsigned i2 = static_cast<unsigned>(idx) % stride;
  State s{};
  if (i1 != 0) {
    s.q1 = 1 + (i1 - 1) / 2;
    s.c1 = (i1 - 1) % 2;
  }
  if (i2 != 0) {
    s.q2 = 1 + (i2 - 1) / 2;
    s.c2 = (i2 - 1) % 2;
  }
  return s;
}

void ShortestQueueH2Model::for_each_transition(ctmc::index_t state,
                                               const TransitionSink& emit) const {
  const unsigned k = params_.k;
  const double alpha = params_.alpha;
  const State s = decode(state);

  // Arrival into one queue (class sampled when the queue was empty).
  const auto add_arrival = [&](bool to_q1, double rate, ctmc::label_t label) {
    if (to_q1) {
      if (s.q1 == 0) {
        emit(encode({1, 0, s.q2, s.c2}), rate * alpha, label);
        emit(encode({1, 1, s.q2, s.c2}), rate * (1.0 - alpha), label);
      } else {
        emit(encode({s.q1 + 1, s.c1, s.q2, s.c2}), rate, label);
      }
    } else {
      if (s.q2 == 0) {
        emit(encode({s.q1, s.c1, 1, 0}), rate * alpha, label);
        emit(encode({s.q1, s.c1, 1, 1}), rate * (1.0 - alpha), label);
      } else {
        emit(encode({s.q1, s.c1, s.q2 + 1, s.c2}), rate, label);
      }
    }
  };

  if (s.q1 < s.q2) {
    add_arrival(true, params_.lambda, kArr1);
  } else if (s.q2 < s.q1) {
    add_arrival(false, params_.lambda, kArr2);
  } else if (s.q1 < k) {
    add_arrival(true, params_.lambda / 2.0, kArr1);
    add_arrival(false, params_.lambda / 2.0, kArr2);
  } else {
    emit(state, params_.lambda, kLoss);
  }
  if (s.q1 >= 1) {
    const double mu = s.c1 == 0 ? params_.mu1 : params_.mu2;
    if (s.q1 >= 2) {
      emit(encode({s.q1 - 1, 0, s.q2, s.c2}), mu * alpha, kServ1);
      emit(encode({s.q1 - 1, 1, s.q2, s.c2}), mu * (1.0 - alpha), kServ1);
    } else {
      emit(encode({0, 0, s.q2, s.c2}), mu, kServ1);
    }
  }
  if (s.q2 >= 1) {
    const double mu = s.c2 == 0 ? params_.mu1 : params_.mu2;
    if (s.q2 >= 2) {
      emit(encode({s.q1, s.c1, s.q2 - 1, 0}), mu * alpha, kServ2);
      emit(encode({s.q1, s.c1, s.q2 - 1, 1}), mu * (1.0 - alpha), kServ2);
    } else {
      emit(encode({s.q1, s.c1, 0, 0}), mu, kServ2);
    }
  }
}

ctmc::MeasureSpec ShortestQueueH2Model::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"serv1", "serv2"};
  spec.loss1_labels = {"loss"};
  return spec;
}

}  // namespace tags::models
