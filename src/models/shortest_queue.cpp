#include "models/shortest_queue.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"

namespace tags::models {

// ---------------------------------------------------------------------------
// Exponential variant
// ---------------------------------------------------------------------------

ShortestQueueModel::ShortestQueueModel(const ShortestQueueParams& params)
    : params_(params) {
  const unsigned k = params_.k;
  ctmc::CtmcBuilder b;
  const auto l_arr1 = b.label("arr1");
  const auto l_arr2 = b.label("arr2");
  const auto l_serv1 = b.label("serv1");
  const auto l_serv2 = b.label("serv2");
  const auto l_loss = b.label("loss");

  for (unsigned q1 = 0; q1 <= k; ++q1) {
    for (unsigned q2 = 0; q2 <= k; ++q2) {
      const ctmc::index_t from = encode({q1, q2});
      // Routing: strictly shorter queue wins; ties split the stream.
      if (q1 < q2) {
        b.add(from, encode({q1 + 1, q2}), params_.lambda, l_arr1);
      } else if (q2 < q1) {
        b.add(from, encode({q1, q2 + 1}), params_.lambda, l_arr2);
      } else if (q1 < k) {  // tie, space available
        b.add(from, encode({q1 + 1, q2}), params_.lambda / 2.0, l_arr1);
        b.add(from, encode({q1, q2 + 1}), params_.lambda / 2.0, l_arr2);
      } else {  // both full
        b.add(from, from, params_.lambda, l_loss);
      }
      if (q1 >= 1) b.add(from, encode({q1 - 1, q2}), params_.mu, l_serv1);
      if (q2 >= 1) b.add(from, encode({q1, q2 - 1}), params_.mu, l_serv2);
    }
  }
  chain_ = b.build();
}

ctmc::index_t ShortestQueueModel::encode(const State& s) const noexcept {
  return static_cast<ctmc::index_t>(s.q1) * (params_.k + 1) + s.q2;
}

ShortestQueueModel::State ShortestQueueModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned k1 = params_.k + 1;
  return {static_cast<unsigned>(idx) / k1, static_cast<unsigned>(idx) % k1};
}

Metrics ShortestQueueModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = ctmc::steady_state(chain_, opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "serv1") +
                 ctmc::throughput(chain_, pi, "serv2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss");
  finalize(m);
  return m;
}

// ---------------------------------------------------------------------------
// H2 variant
// ---------------------------------------------------------------------------

namespace {

unsigned local_index(unsigned q, unsigned c) { return q == 0 ? 0 : 1 + (q - 1) * 2 + c; }

}  // namespace

ShortestQueueH2Model::ShortestQueueH2Model(const ShortestQueueH2Params& params)
    : params_(params) {
  const unsigned k = params_.k;
  const double alpha = params_.alpha;
  ctmc::CtmcBuilder b;
  const auto l_arr1 = b.label("arr1");
  const auto l_arr2 = b.label("arr2");
  const auto l_serv1 = b.label("serv1");
  const auto l_serv2 = b.label("serv2");
  const auto l_loss = b.label("loss");

  const auto for_each_local = [&](auto&& fn) {
    fn(0u, 0u);
    for (unsigned q = 1; q <= k; ++q) {
      fn(q, 0u);
      fn(q, 1u);
    }
  };

  // Arrival into one queue (class sampled when the queue was empty).
  const auto add_arrival = [&](ctmc::index_t from, const State& s, bool to_q1,
                               double rate, ctmc::label_t label) {
    if (to_q1) {
      if (s.q1 == 0) {
        b.add(from, encode({1, 0, s.q2, s.c2}), rate * alpha, label);
        b.add(from, encode({1, 1, s.q2, s.c2}), rate * (1.0 - alpha), label);
      } else {
        b.add(from, encode({s.q1 + 1, s.c1, s.q2, s.c2}), rate, label);
      }
    } else {
      if (s.q2 == 0) {
        b.add(from, encode({s.q1, s.c1, 1, 0}), rate * alpha, label);
        b.add(from, encode({s.q1, s.c1, 1, 1}), rate * (1.0 - alpha), label);
      } else {
        b.add(from, encode({s.q1, s.c1, s.q2 + 1, s.c2}), rate, label);
      }
    }
  };

  for_each_local([&](unsigned q1, unsigned c1) {
    for_each_local([&](unsigned q2, unsigned c2) {
      const State s{q1, c1, q2, c2};
      const ctmc::index_t from = encode(s);
      if (q1 < q2) {
        add_arrival(from, s, true, params_.lambda, l_arr1);
      } else if (q2 < q1) {
        add_arrival(from, s, false, params_.lambda, l_arr2);
      } else if (q1 < k) {
        add_arrival(from, s, true, params_.lambda / 2.0, l_arr1);
        add_arrival(from, s, false, params_.lambda / 2.0, l_arr2);
      } else {
        b.add(from, from, params_.lambda, l_loss);
      }
      if (q1 >= 1) {
        const double mu = c1 == 0 ? params_.mu1 : params_.mu2;
        if (q1 >= 2) {
          b.add(from, encode({q1 - 1, 0, q2, c2}), mu * alpha, l_serv1);
          b.add(from, encode({q1 - 1, 1, q2, c2}), mu * (1.0 - alpha), l_serv1);
        } else {
          b.add(from, encode({0, 0, q2, c2}), mu, l_serv1);
        }
      }
      if (q2 >= 1) {
        const double mu = c2 == 0 ? params_.mu1 : params_.mu2;
        if (q2 >= 2) {
          b.add(from, encode({q1, c1, q2 - 1, 0}), mu * alpha, l_serv2);
          b.add(from, encode({q1, c1, q2 - 1, 1}), mu * (1.0 - alpha), l_serv2);
        } else {
          b.add(from, encode({q1, c1, 0, 0}), mu, l_serv2);
        }
      }
    });
  });
  b.ensure_states(static_cast<ctmc::index_t>(2 * k + 1) * (2 * k + 1));
  chain_ = b.build();
}

ctmc::index_t ShortestQueueH2Model::encode(const State& s) const noexcept {
  const unsigned stride = 2 * params_.k + 1;
  return static_cast<ctmc::index_t>(local_index(s.q1, s.c1)) * stride +
         local_index(s.q2, s.c2);
}

ShortestQueueH2Model::State ShortestQueueH2Model::decode(
    ctmc::index_t idx) const noexcept {
  const unsigned stride = 2 * params_.k + 1;
  const unsigned i1 = static_cast<unsigned>(idx) / stride;
  const unsigned i2 = static_cast<unsigned>(idx) % stride;
  State s{};
  if (i1 != 0) {
    s.q1 = 1 + (i1 - 1) / 2;
    s.c1 = (i1 - 1) % 2;
  }
  if (i2 != 0) {
    s.q2 = 1 + (i2 - 1) / 2;
    s.c2 = (i2 - 1) % 2;
  }
  return s;
}

Metrics ShortestQueueH2Model::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = ctmc::steady_state(chain_, opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "serv1") +
                 ctmc::throughput(chain_, pi, "serv2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss");
  finalize(m);
  return m;
}

}  // namespace tags::models
