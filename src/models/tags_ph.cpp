#include "models/tags_ph.hpp"

#include <stdexcept>
#include <utility>

namespace tags::models {

namespace {

unsigned node1_index(unsigned q1, unsigned h1, unsigned j1, unsigned n, unsigned m) {
  return q1 == 0 ? 0 : 1 + ((q1 - 1) * m + h1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n, unsigned m) {
  (void)m;
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 1 + m) + phase2;
}

enum Label : ctmc::label_t {
  kArrival = 1,
  kService1,
  kPhase1,
  kTick1,
  kTimeout,
  kTimeoutLost,
  kTick2,
  kRepeat,
  kPhase2,
  kService2,
  kLoss1,
};

const std::vector<std::string> kLabels = {
    "tau",     "arrival",      "service1", "phase1",        "tick1",  "timeout",
    "timeout_lost", "tick2",   "repeatservice", "phase2",   "service2", "loss1"};

}  // namespace

ctmc::index_t TagsPhModel::state_count(const TagsPhParams& p) noexcept {
  const auto m = static_cast<ctmc::index_t>(p.service.n_phases());
  const auto n1 = static_cast<ctmc::index_t>(p.k1) * m * (p.n + 1) + 1;
  const auto n2 = static_cast<ctmc::index_t>(p.k2) * (p.n + 1 + m) + 1;
  return n1 * n2;
}

ctmc::index_t TagsPhModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.h1, s.j1, params_.n, m_);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n, m_);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsPhModel::State TagsPhModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.h1 = 0;
    s.j1 = n;
  } else {
    const unsigned rest = i1 - 1;
    s.j1 = rest % (n + 1);
    const unsigned qh = rest / (n + 1);
    s.h1 = qh % m_;
    s.q1 = 1 + qh / m_;
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 1 + m_);
    s.phase2 = (i2 - 1) % (n + 1 + m_);
  }
  return s;
}

TagsPhModel::TagsPhModel(TagsPhParams params)
    : params_(std::move(params)),
      residual_alpha_(
          params_.service.residual_after_erlang(params_.n + 1, params_.t).alpha()),
      exit_(params_.service.exit_rates()) {
  m_ = static_cast<unsigned>(params_.service.n_phases());
  node1_states_ = params_.k1 * m_ * (params_.n + 1) + 1;
  node2_states_ = params_.k2 * (params_.n + 1 + m_) + 1;
  assemble();
}

void TagsPhModel::rebind(TagsPhParams params) {
  if (params.n != params_.n || params.k1 != params_.k1 || params.k2 != params_.k2 ||
      params.service.n_phases() != params_.service.n_phases()) {
    throw std::invalid_argument(
        "TagsPhModel::rebind: n/k1/k2/phase-count are structural; construct a "
        "new model");
  }
  params_ = std::move(params);
  residual_alpha_ =
      params_.service.residual_after_erlang(params_.n + 1, params_.t).alpha();
  exit_ = params_.service.exit_rates();
  rebind_rates();
}

ctmc::index_t TagsPhModel::state_space_size() const {
  return static_cast<ctmc::index_t>(node1_states_) * node2_states_;
}

const std::vector<std::string>& TagsPhModel::transition_labels() const {
  return kLabels;
}

void TagsPhModel::for_each_transition(ctmc::index_t state,
                                      const TransitionSink& emit) const {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  const linalg::Vec& alpha = params_.service.alpha();
  const linalg::DenseMatrix& T = params_.service.T();
  const State s = decode(state);

  // A head departs node 1 (service or timeout): the next head starts in a
  // phase drawn from alpha; an emptied queue pins (h=0, j=n).
  const auto node1_departure = [&](double rate, unsigned q2_next, unsigned p2_next,
                                   ctmc::label_t label) {
    if (rate == 0.0) return;
    if (s.q1 >= 2) {
      for (unsigned h = 0; h < m_; ++h) {
        if (alpha[h] <= 0.0) continue;
        emit(encode({s.q1 - 1, h, n, q2_next, p2_next}), rate * alpha[h], label);
      }
      // Any deficit of alpha would be an instantaneous job — unsupported in
      // a CTMC; PhaseType construction already bounds sum(alpha) <= 1 and
      // queueing models require it to be exactly 1.
    } else {
      emit(encode({0, 0, n, q2_next, p2_next}), rate, label);
    }
  };

  // --- Node 1 ---
  if (s.q1 < k1) {
    if (s.q1 == 0) {
      for (unsigned h = 0; h < m_; ++h) {
        if (alpha[h] <= 0.0) continue;
        emit(encode({1, h, n, s.q2, s.phase2}), params_.lambda * alpha[h], kArrival);
      }
    } else {
      emit(encode({s.q1 + 1, s.h1, s.j1, s.q2, s.phase2}), params_.lambda, kArrival);
    }
  } else {
    emit(state, params_.lambda, kLoss1);
  }
  if (s.q1 >= 1) {
    // PH internal phase moves.
    for (unsigned h = 0; h < m_; ++h) {
      if (h == s.h1) continue;
      const double r = T(s.h1, h);
      if (r > 0.0) {
        emit(encode({s.q1, h, s.j1, s.q2, s.phase2}), r, kPhase1);
      }
    }
    // Completion (absorption).
    node1_departure(exit_[s.h1], s.q2, s.phase2, kService1);
    // Timer.
    if (s.j1 >= 1) {
      emit(encode({s.q1, s.h1, s.j1 - 1, s.q2, s.phase2}), params_.t, kTick1);
    } else {
      if (s.q2 < k2) {
        const unsigned p2 = s.q2 == 0 ? n : s.phase2;
        node1_departure(params_.t, s.q2 + 1, p2, kTimeout);
      } else {
        node1_departure(params_.t, s.q2, s.phase2, kTimeoutLost);
      }
    }
  }

  // --- Node 2 ---
  if (s.q2 >= 1) {
    if (s.phase2 > n) {
      const unsigned h = s.phase2 - (n + 1);
      for (unsigned h2 = 0; h2 < m_; ++h2) {
        if (h2 == h) continue;
        const double r = T(h, h2);
        if (r > 0.0) {
          emit(encode({s.q1, s.h1, s.j1, s.q2, n + 1 + h2}), r, kPhase2);
        }
      }
      emit(encode({s.q1, s.h1, s.j1, s.q2 - 1, n}), exit_[h], kService2);
    } else if (s.phase2 >= 1) {
      emit(encode({s.q1, s.h1, s.j1, s.q2, s.phase2 - 1}), params_.t, kTick2);
    } else {
      // Repeat ends: sample the residual phase.
      for (unsigned h = 0; h < m_; ++h) {
        if (residual_alpha_[h] <= 0.0) continue;
        emit(encode({s.q1, s.h1, s.j1, s.q2, n + 1 + h}),
             params_.t * residual_alpha_[h], kRepeat);
      }
    }
  }
}

ctmc::MeasureSpec TagsPhModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"service1", "service2"};
  spec.loss1_labels = {"loss1"};
  spec.loss2_labels = {"timeout_lost"};
  return spec;
}

}  // namespace tags::models
