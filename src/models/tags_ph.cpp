#include "models/tags_ph.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"

namespace tags::models {

namespace {

unsigned node1_index(unsigned q1, unsigned h1, unsigned j1, unsigned n, unsigned m) {
  return q1 == 0 ? 0 : 1 + ((q1 - 1) * m + h1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n, unsigned m) {
  (void)m;
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 1 + m) + phase2;
}

}  // namespace

ctmc::index_t TagsPhModel::state_count(const TagsPhParams& p) noexcept {
  const auto m = static_cast<ctmc::index_t>(p.service.n_phases());
  const auto n1 = static_cast<ctmc::index_t>(p.k1) * m * (p.n + 1) + 1;
  const auto n2 = static_cast<ctmc::index_t>(p.k2) * (p.n + 1 + m) + 1;
  return n1 * n2;
}

ctmc::index_t TagsPhModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.h1, s.j1, params_.n, m_);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n, m_);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsPhModel::State TagsPhModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.h1 = 0;
    s.j1 = n;
  } else {
    const unsigned rest = i1 - 1;
    s.j1 = rest % (n + 1);
    const unsigned qh = rest / (n + 1);
    s.h1 = qh % m_;
    s.q1 = 1 + qh / m_;
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 1 + m_);
    s.phase2 = (i2 - 1) % (n + 1 + m_);
  }
  return s;
}

TagsPhModel::TagsPhModel(TagsPhParams params)
    : params_(std::move(params)),
      residual_alpha_(
          params_.service.residual_after_erlang(params_.n + 1, params_.t).alpha()) {
  m_ = static_cast<unsigned>(params_.service.n_phases());
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  node1_states_ = k1 * m_ * (n + 1) + 1;
  node2_states_ = k2 * (n + 1 + m_) + 1;

  const auto& alpha = params_.service.alpha();
  const auto& T = params_.service.T();
  const linalg::Vec exit = params_.service.exit_rates();

  ctmc::CtmcBuilder b;
  const auto l_arrival = b.label("arrival");
  const auto l_service1 = b.label("service1");
  const auto l_phase1 = b.label("phase1");
  const auto l_tick1 = b.label("tick1");
  const auto l_timeout = b.label("timeout");
  const auto l_timeout_lost = b.label("timeout_lost");
  const auto l_tick2 = b.label("tick2");
  const auto l_repeat = b.label("repeatservice");
  const auto l_phase2 = b.label("phase2");
  const auto l_service2 = b.label("service2");
  const auto l_loss1 = b.label("loss1");

  const auto for_each_state = [&](auto&& fn) {
    for (unsigned q1 = 0; q1 <= k1; ++q1) {
      const unsigned h1_hi = q1 == 0 ? 0 : m_ - 1;
      for (unsigned h1 = 0; h1 <= h1_hi; ++h1) {
        const unsigned j1_lo = q1 == 0 ? n : 0;
        for (unsigned j1 = j1_lo; j1 <= n; ++j1) {
          for (unsigned q2 = 0; q2 <= k2; ++q2) {
            const unsigned p2_lo = q2 == 0 ? n : 0;
            const unsigned p2_hi = q2 == 0 ? n : n + m_;
            for (unsigned p2 = p2_lo; p2 <= p2_hi; ++p2) {
              fn(State{q1, h1, j1, q2, p2});
            }
          }
        }
      }
    }
  };

  // A head departs node 1 (service or timeout): the next head starts in a
  // phase drawn from alpha; an emptied queue pins (h=0, j=n).
  const auto add_node1_departure = [&](const State& s, ctmc::index_t from, double rate,
                                       unsigned q2_next, unsigned p2_next,
                                       ctmc::label_t label) {
    if (rate == 0.0) return;
    if (s.q1 >= 2) {
      for (unsigned h = 0; h < m_; ++h) {
        if (alpha[h] <= 0.0) continue;
        b.add(from, encode({s.q1 - 1, h, n, q2_next, p2_next}), rate * alpha[h], label);
      }
      // Any deficit of alpha would be an instantaneous job — unsupported in
      // a CTMC; PhaseType construction already bounds sum(alpha) <= 1 and
      // queueing models require it to be exactly 1.
    } else {
      b.add(from, encode({0, 0, n, q2_next, p2_next}), rate, label);
    }
  };

  for_each_state([&](const State& s) {
    const ctmc::index_t from = encode(s);

    // --- Node 1 ---
    if (s.q1 < k1) {
      if (s.q1 == 0) {
        for (unsigned h = 0; h < m_; ++h) {
          if (alpha[h] <= 0.0) continue;
          b.add(from, encode({1, h, n, s.q2, s.phase2}), params_.lambda * alpha[h],
                l_arrival);
        }
      } else {
        b.add(from, encode({s.q1 + 1, s.h1, s.j1, s.q2, s.phase2}), params_.lambda,
              l_arrival);
      }
    } else {
      b.add(from, from, params_.lambda, l_loss1);
    }
    if (s.q1 >= 1) {
      // PH internal phase moves.
      for (unsigned h = 0; h < m_; ++h) {
        if (h == s.h1) continue;
        const double r = T(s.h1, h);
        if (r > 0.0) {
          b.add(from, encode({s.q1, h, s.j1, s.q2, s.phase2}), r, l_phase1);
        }
      }
      // Completion (absorption).
      add_node1_departure(s, from, exit[s.h1], s.q2, s.phase2, l_service1);
      // Timer.
      if (s.j1 >= 1) {
        b.add(from, encode({s.q1, s.h1, s.j1 - 1, s.q2, s.phase2}), params_.t, l_tick1);
      } else {
        if (s.q2 < k2) {
          const unsigned p2 = s.q2 == 0 ? n : s.phase2;
          add_node1_departure(s, from, params_.t, s.q2 + 1, p2, l_timeout);
        } else {
          add_node1_departure(s, from, params_.t, s.q2, s.phase2, l_timeout_lost);
        }
      }
    }

    // --- Node 2 ---
    if (s.q2 >= 1) {
      if (s.phase2 > n) {
        const unsigned h = s.phase2 - (n + 1);
        for (unsigned h2 = 0; h2 < m_; ++h2) {
          if (h2 == h) continue;
          const double r = T(h, h2);
          if (r > 0.0) {
            b.add(from, encode({s.q1, s.h1, s.j1, s.q2, n + 1 + h2}), r, l_phase2);
          }
        }
        b.add(from, encode({s.q1, s.h1, s.j1, s.q2 - 1, n}), exit[h], l_service2);
      } else if (s.phase2 >= 1) {
        b.add(from, encode({s.q1, s.h1, s.j1, s.q2, s.phase2 - 1}), params_.t, l_tick2);
      } else {
        // Repeat ends: sample the residual phase.
        for (unsigned h = 0; h < m_; ++h) {
          if (residual_alpha_[h] <= 0.0) continue;
          b.add(from, encode({s.q1, s.h1, s.j1, s.q2, n + 1 + h}),
                params_.t * residual_alpha_[h], l_repeat);
        }
      }
    }
  });

  b.ensure_states(static_cast<ctmc::index_t>(node1_states_) * node2_states_);
  chain_ = b.build();
}

ctmc::SteadyStateResult TagsPhModel::solve(const ctmc::SteadyStateOptions& opts) const {
  return ctmc::steady_state(chain_, opts);
}

Metrics TagsPhModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  return metrics_from(result.pi);
}

Metrics TagsPhModel::metrics_from(const linalg::Vec& pi) const {
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "service1") +
                 ctmc::throughput(chain_, pi, "service2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss1");
  m.loss2_rate = ctmc::throughput(chain_, pi, "timeout_lost");
  finalize(m);
  return m;
}

}  // namespace tags::models
