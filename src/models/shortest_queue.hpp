// The shortest-queue policy (paper Appendix B, Figure 14): two bounded
// queues; each arrival joins the strictly shorter queue, ties split the
// stream evenly; an arrival finding both queues full is lost. With
// exponential demands this is the optimal policy the paper compares TAGS
// against; the H2 variant routes on queue length only (the policy cannot
// see job classes).
#pragma once

#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"

namespace tags::models {

struct ShortestQueueParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned k = 10;  ///< buffer per queue
};

class ShortestQueueModel {
 public:
  explicit ShortestQueueModel(const ShortestQueueParams& params);

  struct State {
    unsigned q1;
    unsigned q2;
  };

  [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;
  [[nodiscard]] Metrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

 private:
  ShortestQueueParams params_;
  ctmc::Ctmc chain_;
};

struct ShortestQueueH2Params {
  double lambda = 11.0;
  double alpha = 0.99;
  double mu1 = 19.9;
  double mu2 = 0.199;
  unsigned k = 10;
};

class ShortestQueueH2Model {
 public:
  explicit ShortestQueueH2Model(const ShortestQueueH2Params& params);

  struct State {
    unsigned q1;
    unsigned c1;  ///< head class of queue 1 (0 short / 1 long; 0 when empty)
    unsigned q2;
    unsigned c2;
  };

  [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;
  [[nodiscard]] Metrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

 private:
  ShortestQueueH2Params params_;
  ctmc::Ctmc chain_;
};

}  // namespace tags::models
