// The shortest-queue policy (paper Appendix B, Figure 14): two bounded
// queues; each arrival joins the strictly shorter queue, ties split the
// stream evenly; an arrival finding both queues full is lost. With
// exponential demands this is the optimal policy the paper compares TAGS
// against; the H2 variant routes on queue length only (the policy cannot
// see job classes).
#pragma once

#include "models/generator_base.hpp"

namespace tags::models {

struct ShortestQueueParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned k = 10;  ///< buffer per queue
};

class ShortestQueueModel : public SolvableModel {
 public:
  explicit ShortestQueueModel(const ShortestQueueParams& params);

  struct State {
    unsigned q1;
    unsigned q2;
  };

  [[nodiscard]] const ShortestQueueParams& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Repopulate rates for new lambda/mu; throws std::invalid_argument if
  /// the structural buffer size k changed.
  void rebind(const ShortestQueueParams& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  ShortestQueueParams params_;
};

struct ShortestQueueH2Params {
  double lambda = 11.0;
  double alpha = 0.99;
  double mu1 = 19.9;
  double mu2 = 0.199;
  unsigned k = 10;
};

class ShortestQueueH2Model : public SolvableModel {
 public:
  explicit ShortestQueueH2Model(const ShortestQueueH2Params& params);

  struct State {
    unsigned q1;
    unsigned c1;  ///< head class of queue 1 (0 short / 1 long; 0 when empty)
    unsigned q2;
    unsigned c2;
  };

  [[nodiscard]] const ShortestQueueH2Params& params() const noexcept {
    return params_;
  }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Repopulate rates for new lambda/alpha/mu1/mu2; throws
  /// std::invalid_argument if k changed. alpha in {0, 1} degenerates the
  /// branching structure and surfaces as the engine's pattern-mismatch
  /// std::logic_error.
  void rebind(const ShortestQueueH2Params& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  ShortestQueueH2Params params_;
};

}  // namespace tags::models
