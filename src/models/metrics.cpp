#include "models/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace tags::models {

double Metrics::flow_balance_gap(double lambda) const {
  return std::abs(lambda - throughput - loss_rate);
}

std::string Metrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "E[N1]=%.4f E[N2]=%.4f E[N]=%.4f thr=%.4f loss=%.3g W=%.4f "
                "u1=%.3f u2=%.3f",
                mean_q1, mean_q2, mean_total, throughput, loss_rate, response_time,
                utilisation1, utilisation2);
  return buf;
}

void finalize(Metrics& m) {
  m.mean_total = m.mean_q1 + m.mean_q2;
  m.loss_rate = m.loss1_rate + m.loss2_rate;
  m.response_time = m.throughput > 0.0 ? m.mean_total / m.throughput : 0.0;
}

}  // namespace tags::models
