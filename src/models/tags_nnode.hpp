// N-node TAGS ("it is a simple matter to add more nodes to the model in the
// same fashion" — paper Section 3). Exponential service demands.
//
// Node 1 races service against its timeout; nodes 2..N-1 first repeat the
// previous node's (timed-out) work — an Erlang period with the previous
// node's timer rate — then serve the residual demand, with their own
// timeout racing the head's whole occupancy; node N is identical but has
// no timeout. N = 2 reduces exactly to TagsModel.
#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"

namespace tags::models {

struct TagsNNodeParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned n = 3;  ///< ticks per Erlang stage (n+1 phases per period)
  /// Timer phase rates t_1..t_{N-1}; node i's timeout period is
  /// Erlang(n+1, t_i) and node i+1's repeat period is Erlang(n+1, t_i).
  std::vector<double> timeout_rates{50.0};
  /// Buffer sizes K_1..K_N (size = timeout_rates.size() + 1).
  std::vector<unsigned> buffers{10, 10};

  [[nodiscard]] unsigned n_nodes() const noexcept {
    return static_cast<unsigned>(buffers.size());
  }
};

struct NNodeMetrics {
  std::vector<double> mean_q;       ///< per node
  std::vector<double> utilisation;  ///< per node
  std::vector<double> loss_rate;    ///< loss at node 1 (arrivals) then per hop
  double mean_total = 0.0;
  double throughput = 0.0;
  double total_loss = 0.0;
  double response_time = 0.0;
};

class TagsNNodeModel {
 public:
  explicit TagsNNodeModel(TagsNNodeParams params);

  [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] ctmc::index_t n_states() const noexcept { return chain_.n_states(); }
  [[nodiscard]] const TagsNNodeParams& params() const noexcept { return params_; }

  [[nodiscard]] NNodeMetrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

  /// Queue length of node `node` in enumerated state `idx`.
  [[nodiscard]] unsigned queue_length(ctmc::index_t idx, unsigned node) const;

 private:
  TagsNNodeParams params_;
  ctmc::Ctmc chain_;
  /// Enumerated states: flattened per-node variables (see .cpp).
  std::vector<std::vector<int>> states_;
  unsigned vars_per_node(unsigned node) const;
};

}  // namespace tags::models
