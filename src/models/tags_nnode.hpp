// N-node TAGS ("it is a simple matter to add more nodes to the model in the
// same fashion" — paper Section 3). Exponential service demands.
//
// Node 1 races service against its timeout; nodes 2..N-1 first repeat the
// previous node's (timed-out) work — an Erlang period with the previous
// node's timer rate — then serve the residual demand, with their own
// timeout racing the head's whole occupancy; node N is identical but has
// no timeout. N = 2 reduces exactly to TagsModel.
#pragma once

#include <unordered_map>
#include <vector>

#include "models/generator_base.hpp"

namespace tags::models {

struct TagsNNodeParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned n = 3;  ///< ticks per Erlang stage (n+1 phases per period)
  /// Timer phase rates t_1..t_{N-1}; node i's timeout period is
  /// Erlang(n+1, t_i) and node i+1's repeat period is Erlang(n+1, t_i).
  std::vector<double> timeout_rates{50.0};
  /// Buffer sizes K_1..K_N (size = timeout_rates.size() + 1).
  std::vector<unsigned> buffers{10, 10};

  [[nodiscard]] unsigned n_nodes() const noexcept {
    return static_cast<unsigned>(buffers.size());
  }
};

struct NNodeMetrics {
  std::vector<double> mean_q;       ///< per node
  std::vector<double> utilisation;  ///< per node
  std::vector<double> loss_rate;    ///< loss at node 1 (arrivals) then per hop
  double mean_total = 0.0;
  double throughput = 0.0;
  double total_loss = 0.0;
  double response_time = 0.0;
};

class TagsNNodeModel : public SolvableModel {
 public:
  explicit TagsNNodeModel(TagsNNodeParams params);

  [[nodiscard]] const TagsNNodeParams& params() const noexcept { return params_; }

  /// Per-node measures (hides the two-queue Metrics of the base).
  [[nodiscard]] NNodeMetrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

  /// Queue length of node `node` in enumerated state `idx`.
  [[nodiscard]] unsigned queue_length(ctmc::index_t idx, unsigned node) const;

  /// Repopulate rates for new lambda/mu/timeout rates; throws
  /// std::invalid_argument if n, the node count, or a buffer size changed
  /// (they reshape the reachable state space).
  void rebind(const TagsNNodeParams& params);

  // GeneratorModel interface. The state space is the BFS-reachable set
  // from the empty system, enumerated once at construction.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  struct VecIntHash {
    std::size_t operator()(const std::vector<int>& v) const noexcept;
  };

  /// Run the move body on flattened state `v`; `fn(to, rate, label)` gets
  /// the successor's flattened state. Shared by the BFS enumeration and
  /// for_each_transition.
  template <class Fn>
  void for_each_move(const std::vector<int>& v, Fn&& fn) const;

  [[nodiscard]] unsigned vars_per_node(unsigned node) const;

  TagsNNodeParams params_;
  std::vector<std::string> labels_;  ///< index 0 = tau
  // Pre-resolved label ids, indexed by 0-based node (names are 1-based).
  std::vector<ctmc::label_t> service_id_, timeout_id_, timeout_lost_id_, repeat_id_;
  ctmc::label_t arrival_id_ = 0, loss1_id_ = 0;
  /// Enumerated states: flattened per-node variables (see .cpp).
  std::vector<std::vector<int>> states_;
  std::unordered_map<std::vector<int>, ctmc::index_t, VecIntHash> index_of_;
};

}  // namespace tags::models
