#include "models/mm1k.hpp"

#include <cmath>

#include "ctmc/builder.hpp"

namespace tags::models {

Mm1kResult mm1k_analytic(const Mm1kParams& p) {
  const unsigned k = p.k;
  const double rho = p.lambda / p.mu;
  Mm1kResult r;
  r.pi.assign(k + 1, 0.0);
  if (std::abs(rho - 1.0) < 1e-12) {
    const double uniform = 1.0 / static_cast<double>(k + 1);
    for (unsigned i = 0; i <= k; ++i) r.pi[i] = uniform;
  } else {
    const double z = (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(k + 1)));
    double power = 1.0;
    for (unsigned i = 0; i <= k; ++i) {
      r.pi[i] = z * power;
      power *= rho;
    }
  }
  for (unsigned i = 0; i <= k; ++i) r.mean_jobs += static_cast<double>(i) * r.pi[i];
  r.loss_prob = r.pi[k];
  r.loss_rate = p.lambda * r.loss_prob;
  r.throughput = p.lambda * (1.0 - r.loss_prob);
  r.utilisation = 1.0 - r.pi[0];
  r.response_time = r.throughput > 0.0 ? r.mean_jobs / r.throughput : 0.0;
  return r;
}

ctmc::Ctmc mm1k_ctmc(const Mm1kParams& p) {
  ctmc::CtmcBuilder b;
  const auto arrival = b.label("arrival");
  const auto service = b.label("service");
  const auto loss = b.label("loss");
  for (unsigned i = 0; i <= p.k; ++i) {
    const auto s = static_cast<ctmc::index_t>(i);
    if (i < p.k) {
      b.add(s, s + 1, p.lambda, arrival);
    } else {
      b.add(s, s, p.lambda, loss);  // recorded for throughput("loss")
    }
    if (i > 0) b.add(s, s - 1, p.mu, service);
  }
  return b.build();
}

}  // namespace tags::models
