#include "models/mm1k.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "ctmc/generator.hpp"
#include "ctmc/generator_model.hpp"

namespace tags::models {

Mm1kResult mm1k_analytic(const Mm1kParams& p) {
  const unsigned k = p.k;
  const double rho = p.lambda / p.mu;
  Mm1kResult r;
  r.pi.assign(k + 1, 0.0);
  if (std::abs(rho - 1.0) < 1e-12) {
    const double uniform = 1.0 / static_cast<double>(k + 1);
    for (unsigned i = 0; i <= k; ++i) r.pi[i] = uniform;
  } else {
    const double z = (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(k + 1)));
    double power = 1.0;
    for (unsigned i = 0; i <= k; ++i) {
      r.pi[i] = z * power;
      power *= rho;
    }
  }
  for (unsigned i = 0; i <= k; ++i) r.mean_jobs += static_cast<double>(i) * r.pi[i];
  r.loss_prob = r.pi[k];
  r.loss_rate = p.lambda * r.loss_prob;
  r.throughput = p.lambda * (1.0 - r.loss_prob);
  r.utilisation = 1.0 - r.pi[0];
  r.response_time = r.throughput > 0.0 ? r.mean_jobs / r.throughput : 0.0;
  return r;
}

namespace {

/// The birth-death chain as a generator model; mm1k_ctmc materialises it,
/// and tests exercise it directly as the smallest GeneratorModel.
class Mm1kGenerator final : public ctmc::GeneratorModel {
 public:
  explicit Mm1kGenerator(const Mm1kParams& p) : p_(p) {}

  [[nodiscard]] ctmc::index_t state_space_size() const override {
    return static_cast<ctmc::index_t>(p_.k) + 1;
  }

  [[nodiscard]] const std::vector<std::string>& transition_labels() const override {
    static const std::vector<std::string> kLabels = {"tau", "arrival", "service",
                                                     "loss"};
    return kLabels;
  }

  void for_each_transition(ctmc::index_t s,
                           const ctmc::TransitionSink& emit) const override {
    const auto i = static_cast<unsigned>(s);
    if (i < p_.k) {
      emit(s + 1, p_.lambda, 1);  // arrival
    } else {
      emit(s, p_.lambda, 3);  // loss, recorded for throughput("loss")
    }
    if (i > 0) emit(s - 1, p_.mu, 2);  // service
  }

 private:
  Mm1kParams p_;
};

}  // namespace

ctmc::Ctmc mm1k_ctmc(const Mm1kParams& p) { return ctmc::materialize(Mm1kGenerator(p)); }

}  // namespace tags::models
