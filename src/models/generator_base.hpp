// Shared base for the model zoo: every model is a GeneratorModel (state
// space + successor function) and owns a GeneratorCtmc engine assembled
// from itself. The base collapses the formerly per-model boilerplate —
// solve(), metrics()/metrics_from() extraction, materialisation — into one
// place; a model supplies its parameter struct, encode/decode, the
// for_each_transition emission body, and a declarative MeasureSpec.
//
// Writing a new model (migration note in DESIGN.md "Generator models"):
//  1. Derive from SolvableModel; store the parameter struct.
//  2. Implement state_space_size / transition_labels / for_each_transition
//     (the emission pattern must obey the rebinding contract in
//     generator_model.hpp).
//  3. Implement measure_spec() mapping states to queue lengths and labels
//     to service/loss events.
//  4. Call assemble() at the end of the constructor; expose a
//     rebind(params) that validates structural parameters and calls
//     rebind_rates() for cheap rate sweeps.
#pragma once

#include "ctmc/generator.hpp"
#include "ctmc/generator_model.hpp"
#include "ctmc/measures.hpp"
#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"

namespace tags::models {

/// The abstraction the zoo is written against (alias: the interface lives
/// in ctmc so the engine layer stays independent of the models library).
using GeneratorModel = ctmc::GeneratorModel;
using TransitionSink = ctmc::TransitionSink;

class SolvableModel : public GeneratorModel {
 public:
  /// The assembled engine: CSR generator + per-label reward vectors.
  [[nodiscard]] const ctmc::GeneratorCtmc& chain() const noexcept { return engine_; }
  [[nodiscard]] ctmc::index_t n_states() const noexcept { return engine_.n_states(); }

  /// Stationary solve (for warm-started parameter sweeps).
  [[nodiscard]] ctmc::SteadyStateResult solve(
      const ctmc::SteadyStateOptions& opts = {}) const;

  /// Solve and extract the paper's metrics.
  [[nodiscard]] Metrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

  /// Metrics from a pre-computed stationary distribution.
  [[nodiscard]] Metrics metrics_from(const linalg::Vec& pi) const;

  /// Materialise the classic labelled-transition chain (first-passage
  /// analysis, exporters). Costs a full re-enumeration; steady-state work
  /// should stay on chain().
  [[nodiscard]] ctmc::Ctmc to_ctmc() const;

 protected:
  SolvableModel() = default;

  /// Enumerate this model into the engine (constructor tail call).
  void assemble() { engine_.assemble(*this); }

  /// Repopulate rates on the frozen pattern after a numerical-parameter
  /// change (models expose this via their rebind(params)).
  void rebind_rates() { engine_.rebind(*this); }

  /// Declarative description of the model's standard measures.
  [[nodiscard]] virtual ctmc::MeasureSpec measure_spec() const = 0;

 private:
  ctmc::GeneratorCtmc engine_;
};

}  // namespace tags::models
