// TAGS with MMPP(2) arrivals: the exact (numerical) counterpart of the
// paper's closing conjecture about bursty traffic. The arrival process is
// a two-phase Markov-modulated Poisson stream; the TAGS state space of
// TagsModel is augmented with the modulation phase.
//
// State (q1, j1, q2, p2, m): the TagsModel state plus m in {0, 1}.
#pragma once

#include "models/generator_base.hpp"
#include "models/tags.hpp"

namespace tags::models {

struct MmppParams {
  double lambda0 = 1.0;  ///< arrival rate in phase 0
  double lambda1 = 21.0; ///< arrival rate in phase 1 (the burst)
  double r01 = 0.25;     ///< phase 0 -> 1 switching rate
  double r10 = 1.0;      ///< phase 1 -> 0 switching rate

  [[nodiscard]] double phase1_probability() const { return r01 / (r01 + r10); }
  [[nodiscard]] double mean_rate() const {
    const double p1 = phase1_probability();
    return (1.0 - p1) * lambda0 + p1 * lambda1;
  }
  /// Index of dispersion of counts in the long run (1 = Poisson); a
  /// standard burstiness measure for MMPP(2).
  [[nodiscard]] double burstiness_index() const;
};

struct TagsMmppParams {
  MmppParams arrivals;
  double mu = 10.0;
  double t = 50.0;
  unsigned n = 6;
  unsigned k1 = 10;
  unsigned k2 = 10;
};

class TagsMmppModel : public SolvableModel {
 public:
  explicit TagsMmppModel(const TagsMmppParams& params);

  struct State {
    TagsModel::State base;
    unsigned m;  ///< modulation phase
  };

  [[nodiscard]] const TagsMmppParams& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Repopulate rates for new arrival/mu/t parameters; throws
  /// std::invalid_argument if n/k1/k2 changed.
  void rebind(const TagsMmppParams& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  TagsMmppParams params_;
  unsigned node1_states_ = 0;
  unsigned node2_states_ = 0;
};

}  // namespace tags::models
