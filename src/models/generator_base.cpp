#include "models/generator_base.hpp"

#include <cassert>

namespace tags::models {

ctmc::SteadyStateResult SolvableModel::solve(const ctmc::SteadyStateOptions& opts) const {
  return ctmc::steady_state(engine_.generator(), opts);
}

Metrics SolvableModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  return metrics_from(result.pi);
}

Metrics SolvableModel::metrics_from(const linalg::Vec& pi) const {
  const ctmc::BasicMeasures b = ctmc::evaluate(engine_, pi, measure_spec());
  Metrics m;
  m.mean_q1 = b.mean_q1;
  m.mean_q2 = b.mean_q2;
  m.utilisation1 = b.utilisation1;
  m.utilisation2 = b.utilisation2;
  m.throughput = b.throughput;
  m.loss1_rate = b.loss1_rate;
  m.loss2_rate = b.loss2_rate;
  finalize(m);
  return m;
}

ctmc::Ctmc SolvableModel::to_ctmc() const { return ctmc::materialize(*this); }

}  // namespace tags::models
