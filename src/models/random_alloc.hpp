// Weighted random allocation (paper Appendix A, Figure 13): arrivals are
// split probabilistically over two independent bounded queues. With
// exponential service each queue is an M/M/1/K (closed form); with H2
// service each queue is an M/H2/1/K CTMC tracking the head job's class.
#pragma once

#include "models/generator_base.hpp"

namespace tags::models {

struct RandomAllocParams {
  double lambda = 5.0;  ///< total arrival rate
  double mu = 10.0;     ///< service rate (both queues)
  unsigned k = 10;      ///< buffer per queue
  double p1 = 0.5;      ///< probability of routing to queue 1
};

/// Closed-form metrics (two independent M/M/1/K queues).
[[nodiscard]] Metrics random_alloc_exp(const RandomAllocParams& p);

struct RandomAllocH2Params {
  double lambda = 11.0;  ///< total arrival rate
  double alpha = 0.99;   ///< P(job is short)
  double mu1 = 19.9;     ///< short rate
  double mu2 = 0.199;    ///< long rate
  unsigned k = 10;
  double p1 = 0.5;
};

/// A single M/H2/1/K queue (head-of-line class tracked). Exposed because
/// it is also a useful model on its own and in tests.
class Mh21kModel : public SolvableModel {
 public:
  /// lambda here is the arrival rate INTO THIS QUEUE.
  Mh21kModel(double lambda, double alpha, double mu1, double mu2, unsigned k);

  struct State {
    unsigned q;  ///< 0..K
    unsigned c;  ///< head class, 0 short / 1 long (0 when empty)
  };

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Repopulate rates for a new arrival/service parameterisation on the
  /// same buffer k. alpha in {0, 1} degenerates the branching structure
  /// and surfaces as the engine's pattern-mismatch std::logic_error.
  void rebind(double lambda, double alpha, double mu1, double mu2);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  /// Single-queue measures, reported in the node-1 slots of Metrics.
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  double lambda_, alpha_, mu1_, mu2_;
  unsigned k_;
};

/// Two independent M/H2/1/K queues with the split-arrival streams.
[[nodiscard]] Metrics random_alloc_h2(const RandomAllocH2Params& p,
                                      const ctmc::SteadyStateOptions& opts = {});

}  // namespace tags::models
