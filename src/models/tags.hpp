// The paper's central model (Figure 3): a two-node TAGS system with
// bounded queues, Poisson arrivals, exponential service, and the
// deterministic timeout approximated by an Erlang process.
//
// State (q1, j1, q2, p2):
//   q1 in 0..K1  — jobs at node 1;
//   j1 in 0..n   — node-1 timer position (n fresh, 0 about to time out);
//                  frozen at n while the queue is empty;
//   q2 in 0..K2  — jobs at node 2;
//   p2           — node-2 head phase: kRepeat(j), j in 0..n (receiving the
//                  repeat service, the paper's unprimed Q2_i), or kServing
//                  (the residual exponential service, primed Q2'_i). The
//                  node-2 timer is frozen at n during kServing — see
//                  DESIGN.md note 2 on the Fig 3 / Fig 5 tick2 discrepancy.
//
// The timeout (and the equal-length repeat service) is Erlang(n+1, t):
// n ticks plus the final timeout/repeatservice phase, each Exp(t).
//
// Transition labels: arrival, service1, tick1, timeout (timed-out job
// admitted at node 2), timeout_lost (timed-out job dropped: queue 2 full),
// tick2, repeatservice, service2, loss1 (arrival dropped: queue 1 full).
#pragma once

#include "models/generator_base.hpp"

namespace tags::models {

struct TagsParams {
  double lambda = 5.0;  ///< arrival rate
  double mu = 10.0;     ///< service rate (both nodes; homogeneous system)
  double t = 50.0;      ///< timer phase rate; timeout period ~ Erlang(n+1, t)
  unsigned n = 6;       ///< timer ticks (paper: n = 6)
  unsigned k1 = 10;     ///< node-1 buffer
  unsigned k2 = 10;     ///< node-2 buffer

  /// Mean of the full timeout period, (n+1)/t.
  [[nodiscard]] double timeout_mean() const { return (n + 1) / t; }
};

class TagsModel : public SolvableModel {
 public:
  explicit TagsModel(const TagsParams& params);

  struct State {
    unsigned q1;     ///< 0..K1
    unsigned j1;     ///< 0..n (== n when q1 == 0)
    unsigned q2;     ///< 0..K2
    unsigned phase2; ///< 0..n = repeat with timer at phase2; n+1 = serving
                     ///< (== n when q2 == 0)
  };

  /// True when the node-2 head is in its residual service (phase2 == n+1).
  [[nodiscard]] bool is_serving2(const State& s) const noexcept {
    return s.q2 > 0 && s.phase2 == params_.n + 1;
  }

  [[nodiscard]] const TagsParams& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Number of states the construction enumerates; matches the paper's
  /// formula (K1(n+1)+1)(K2(n+2)+1).
  [[nodiscard]] static ctmc::index_t state_count(const TagsParams& p) noexcept;

  /// Repopulate rates for new lambda/mu/t on the frozen state space;
  /// throws std::invalid_argument if n/k1/k2 changed.
  void rebind(const TagsParams& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  TagsParams params_;
  unsigned node1_states_ = 0;
  unsigned node2_states_ = 0;
};

}  // namespace tags::models
