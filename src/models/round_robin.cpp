#include "models/round_robin.hpp"

#include <stdexcept>

namespace tags::models {

namespace {

enum Label : ctmc::label_t {
  kArrival = 1,
  kServ1,
  kServ2,
  kLoss,
};

const std::vector<std::string> kLabels = {"tau", "arrival", "serv1", "serv2",
                                          "loss"};

}  // namespace

RoundRobinModel::RoundRobinModel(const RoundRobinParams& params) : params_(params) {
  assemble();
}

void RoundRobinModel::rebind(const RoundRobinParams& params) {
  if (params.k != params_.k) {
    throw std::invalid_argument(
        "RoundRobinModel::rebind: k is structural; construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t RoundRobinModel::state_space_size() const {
  const auto side = static_cast<ctmc::index_t>(params_.k) + 1;
  return side * side * 2;
}

const std::vector<std::string>& RoundRobinModel::transition_labels() const {
  return kLabels;
}

ctmc::index_t RoundRobinModel::encode(const State& s) const noexcept {
  const unsigned stride = params_.k + 1;
  return (static_cast<ctmc::index_t>(s.q1) * stride + s.q2) * 2 + s.next;
}

RoundRobinModel::State RoundRobinModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned stride = params_.k + 1;
  const auto next = static_cast<unsigned>(idx % 2);
  const auto rest = static_cast<unsigned>(idx / 2);
  return {rest / stride, rest % stride, next};
}

void RoundRobinModel::for_each_transition(ctmc::index_t state,
                                          const TransitionSink& emit) const {
  const unsigned k = params_.k;
  const State s = decode(state);
  // Arrival: route to `next`; the cursor advances whether or not the job
  // fits (the dispatcher is blind to occupancy).
  const unsigned target_len = s.next == 0 ? s.q1 : s.q2;
  if (target_len < k) {
    const State to{s.next == 0 ? s.q1 + 1 : s.q1, s.next == 1 ? s.q2 + 1 : s.q2,
                   1 - s.next};
    emit(encode(to), params_.lambda, kArrival);
  } else {
    emit(encode({s.q1, s.q2, 1 - s.next}), params_.lambda, kLoss);
  }
  if (s.q1 >= 1) emit(encode({s.q1 - 1, s.q2, s.next}), params_.mu, kServ1);
  if (s.q2 >= 1) emit(encode({s.q1, s.q2 - 1, s.next}), params_.mu, kServ2);
}

ctmc::MeasureSpec RoundRobinModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"serv1", "serv2"};
  spec.loss1_labels = {"loss"};
  return spec;
}

}  // namespace tags::models
