#include "models/round_robin.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"

namespace tags::models {

RoundRobinModel::RoundRobinModel(const RoundRobinParams& params) : params_(params) {
  const unsigned k = params_.k;
  ctmc::CtmcBuilder b;
  const auto l_arr = b.label("arrival");
  const auto l_serv1 = b.label("serv1");
  const auto l_serv2 = b.label("serv2");
  const auto l_loss = b.label("loss");

  for (unsigned q1 = 0; q1 <= k; ++q1) {
    for (unsigned q2 = 0; q2 <= k; ++q2) {
      for (unsigned next = 0; next <= 1; ++next) {
        const ctmc::index_t from = encode({q1, q2, next});
        // Arrival: route to `next`; the cursor advances whether or not the
        // job fits (the dispatcher is blind to occupancy).
        const unsigned target_len = next == 0 ? q1 : q2;
        if (target_len < k) {
          const State to{next == 0 ? q1 + 1 : q1, next == 1 ? q2 + 1 : q2, 1 - next};
          b.add(from, encode(to), params_.lambda, l_arr);
        } else {
          b.add(from, encode({q1, q2, 1 - next}), params_.lambda, l_loss);
        }
        if (q1 >= 1) b.add(from, encode({q1 - 1, q2, next}), params_.mu, l_serv1);
        if (q2 >= 1) b.add(from, encode({q1, q2 - 1, next}), params_.mu, l_serv2);
      }
    }
  }
  chain_ = b.build();
}

ctmc::index_t RoundRobinModel::encode(const State& s) const noexcept {
  const unsigned stride = params_.k + 1;
  return (static_cast<ctmc::index_t>(s.q1) * stride + s.q2) * 2 + s.next;
}

RoundRobinModel::State RoundRobinModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned stride = params_.k + 1;
  const auto next = static_cast<unsigned>(idx % 2);
  const auto rest = static_cast<unsigned>(idx / 2);
  return {rest / stride, rest % stride, next};
}

Metrics RoundRobinModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = ctmc::steady_state(chain_, opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "serv1") +
                 ctmc::throughput(chain_, pi, "serv2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss");
  finalize(m);
  return m;
}

}  // namespace tags::models
