// TAGS with *general phase-type* service demands — the "certain phase type
// distributions are also possible" direction of Section 3. Subsumes both
// paper models: PH = exponential reproduces TagsModel exactly, PH = H2
// reproduces TagsH2Model exactly (the class bit is the PH phase).
//
// Node 1 tracks the head job's service phase; on a timeout the job
// restarts downstream, and when its repeat period ends the residual
// demand's phase is sampled from the Section 3.2 residual distribution
// beta = alpha * [t(tI - T)^{-1}]^{n+1} (normalised) — computed by
// ph::PhaseType::residual_after_erlang, the general form of the paper's
// alpha'.
//
// State (q1, h1, j1, q2, p2):
//   q1 in 0..K1, h1 in 0..m-1 (head phase; 0 when empty), j1 in 0..n;
//   q2 in 0..K2, p2 in 0..n = repeat timer, n+1+h = serving in phase h.
#pragma once

#include "models/generator_base.hpp"
#include "phasetype/ph.hpp"

namespace tags::models {

struct TagsPhParams {
  double lambda = 5.0;
  ph::PhaseType service = ph::exponential(10.0);
  double t = 50.0;
  unsigned n = 6;
  unsigned k1 = 10;
  unsigned k2 = 10;
};

class TagsPhModel : public SolvableModel {
 public:
  explicit TagsPhModel(TagsPhParams params);

  struct State {
    unsigned q1;
    unsigned h1;      ///< node-1 head phase (0 when q1 == 0)
    unsigned j1;      ///< node-1 timer (n when q1 == 0)
    unsigned q2;
    unsigned phase2;  ///< 0..n repeat timer; n+1+h = serving in phase h
  };

  [[nodiscard]] const TagsPhParams& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// (K1*m*(n+1) + 1) * (K2*(n+1+m) + 1), m = number of PH phases.
  [[nodiscard]] static ctmc::index_t state_count(const TagsPhParams& p) noexcept;

  /// The residual initial distribution used at node 2 (exposed for tests).
  [[nodiscard]] const linalg::Vec& residual_alpha() const noexcept {
    return residual_alpha_;
  }

  /// Repopulate rates for new lambda/t/service *rates*. The number of PH
  /// phases, the zero structure of alpha/T (and hence of the residual
  /// alpha), and n/k1/k2 are structural — throws std::invalid_argument on
  /// a phase-count change; other structural violations surface as the
  /// engine's pattern-mismatch std::logic_error.
  void rebind(TagsPhParams params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  TagsPhParams params_;
  linalg::Vec residual_alpha_;
  linalg::Vec exit_;  ///< PH exit rates -T 1 (cached)
  unsigned m_ = 0;    ///< PH phases
  unsigned node1_states_ = 0;
  unsigned node2_states_ = 0;
};

}  // namespace tags::models
