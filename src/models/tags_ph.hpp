// TAGS with *general phase-type* service demands — the "certain phase type
// distributions are also possible" direction of Section 3. Subsumes both
// paper models: PH = exponential reproduces TagsModel exactly, PH = H2
// reproduces TagsH2Model exactly (the class bit is the PH phase).
//
// Node 1 tracks the head job's service phase; on a timeout the job
// restarts downstream, and when its repeat period ends the residual
// demand's phase is sampled from the Section 3.2 residual distribution
// beta = alpha * [t(tI - T)^{-1}]^{n+1} (normalised) — computed by
// ph::PhaseType::residual_after_erlang, the general form of the paper's
// alpha'.
//
// State (q1, h1, j1, q2, p2):
//   q1 in 0..K1, h1 in 0..m-1 (head phase; 0 when empty), j1 in 0..n;
//   q2 in 0..K2, p2 in 0..n = repeat timer, n+1+h = serving in phase h.
#pragma once

#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"
#include "phasetype/ph.hpp"

namespace tags::models {

struct TagsPhParams {
  double lambda = 5.0;
  ph::PhaseType service = ph::exponential(10.0);
  double t = 50.0;
  unsigned n = 6;
  unsigned k1 = 10;
  unsigned k2 = 10;
};

class TagsPhModel {
 public:
  explicit TagsPhModel(TagsPhParams params);

  struct State {
    unsigned q1;
    unsigned h1;      ///< node-1 head phase (0 when q1 == 0)
    unsigned j1;      ///< node-1 timer (n when q1 == 0)
    unsigned q2;
    unsigned phase2;  ///< 0..n repeat timer; n+1+h = serving in phase h
  };

  [[nodiscard]] const TagsPhParams& params() const noexcept { return params_; }
  [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] ctmc::index_t n_states() const noexcept { return chain_.n_states(); }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// (K1*m*(n+1) + 1) * (K2*(n+1+m) + 1), m = number of PH phases.
  [[nodiscard]] static ctmc::index_t state_count(const TagsPhParams& p) noexcept;

  /// The residual initial distribution used at node 2 (exposed for tests).
  [[nodiscard]] const linalg::Vec& residual_alpha() const noexcept {
    return residual_alpha_;
  }

  [[nodiscard]] Metrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;
  [[nodiscard]] Metrics metrics_from(const linalg::Vec& pi) const;
  [[nodiscard]] ctmc::SteadyStateResult solve(
      const ctmc::SteadyStateOptions& opts = {}) const;

 private:
  TagsPhParams params_;
  linalg::Vec residual_alpha_;
  ctmc::Ctmc chain_;
  unsigned m_ = 0;  ///< PH phases
  unsigned node1_states_ = 0;
  unsigned node2_states_ = 0;
};

}  // namespace tags::models
