// The performance measures the paper reports for each allocation policy.
#pragma once

#include <string>

namespace tags::models {

/// Steady-state metrics of a (possibly two-node) bounded queueing system.
/// Response time follows the paper's convention: Little's law applied with
/// the arrival rate of *successful* jobs, i.e. W = E[N] / throughput.
struct Metrics {
  double mean_q1 = 0.0;        ///< mean number of jobs at node 1 (in system)
  double mean_q2 = 0.0;        ///< mean number at node 2
  double mean_total = 0.0;     ///< mean_q1 + mean_q2
  double throughput = 0.0;     ///< successful completions per unit time
  double loss1_rate = 0.0;     ///< arrivals dropped at node 1 (full buffer)
  double loss2_rate = 0.0;     ///< timed-out jobs dropped at node 2 (full buffer)
  double loss_rate = 0.0;      ///< loss1_rate + loss2_rate
  double response_time = 0.0;  ///< W = mean_total / throughput
  double utilisation1 = 0.0;   ///< P(node 1 busy)
  double utilisation2 = 0.0;   ///< P(node 2 busy)

  /// Flow-balance check: arrivals = throughput + losses (returns the
  /// absolute discrepancy, which should be ~0 for a converged solution).
  [[nodiscard]] double flow_balance_gap(double lambda) const;

  /// Human-readable one-line summary.
  [[nodiscard]] std::string summary() const;
};

/// Finalise derived fields (mean_total, loss_rate, response_time) from the
/// primary fields already set.
void finalize(Metrics& m);

}  // namespace tags::models
