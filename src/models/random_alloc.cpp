#include "models/random_alloc.hpp"

#include "models/mm1k.hpp"

namespace tags::models {

Metrics random_alloc_exp(const RandomAllocParams& p) {
  const Mm1kResult q1 =
      mm1k_analytic({.lambda = p.lambda * p.p1, .mu = p.mu, .k = p.k});
  const Mm1kResult q2 =
      mm1k_analytic({.lambda = p.lambda * (1.0 - p.p1), .mu = p.mu, .k = p.k});
  Metrics m;
  m.mean_q1 = q1.mean_jobs;
  m.mean_q2 = q2.mean_jobs;
  m.throughput = q1.throughput + q2.throughput;
  m.loss1_rate = q1.loss_rate;
  m.loss2_rate = q2.loss_rate;
  m.utilisation1 = q1.utilisation;
  m.utilisation2 = q2.utilisation;
  finalize(m);
  return m;
}

namespace {

enum Label : ctmc::label_t {
  kArrival = 1,
  kService,
  kLoss,
};

const std::vector<std::string> kLabels = {"tau", "arrival", "service", "loss"};

}  // namespace

Mh21kModel::Mh21kModel(double lambda, double alpha, double mu1, double mu2, unsigned k)
    : lambda_(lambda), alpha_(alpha), mu1_(mu1), mu2_(mu2), k_(k) {
  assemble();
}

void Mh21kModel::rebind(double lambda, double alpha, double mu1, double mu2) {
  lambda_ = lambda;
  alpha_ = alpha;
  mu1_ = mu1;
  mu2_ = mu2;
  rebind_rates();
}

ctmc::index_t Mh21kModel::state_space_size() const {
  return static_cast<ctmc::index_t>(2 * k_ + 1);
}

const std::vector<std::string>& Mh21kModel::transition_labels() const {
  return kLabels;
}

ctmc::index_t Mh21kModel::encode(const State& s) const noexcept {
  return s.q == 0 ? 0 : static_cast<ctmc::index_t>(1 + (s.q - 1) * 2 + s.c);
}

Mh21kModel::State Mh21kModel::decode(ctmc::index_t idx) const noexcept {
  if (idx == 0) return {0, 0};
  const auto rest = static_cast<unsigned>(idx - 1);
  return {1 + rest / 2, rest % 2};
}

void Mh21kModel::for_each_transition(ctmc::index_t state,
                                     const TransitionSink& emit) const {
  const State s = decode(state);
  if (s.q < k_) {
    if (s.q == 0) {
      // Arriving job becomes head: sample its class.
      emit(encode({1, 0}), lambda_ * alpha_, kArrival);
      emit(encode({1, 1}), lambda_ * (1.0 - alpha_), kArrival);
    } else {
      emit(encode({s.q + 1, s.c}), lambda_, kArrival);
    }
  } else {
    emit(state, lambda_, kLoss);
  }
  if (s.q >= 1) {
    const double mu = s.c == 0 ? mu1_ : mu2_;
    if (s.q >= 2) {
      emit(encode({s.q - 1, 0}), mu * alpha_, kService);
      emit(encode({s.q - 1, 1}), mu * (1.0 - alpha_), kService);
    } else {
      emit(encode({0, 0}), mu, kService);
    }
  }
}

ctmc::MeasureSpec Mh21kModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q); };
  spec.service_labels = {"service"};
  spec.loss1_labels = {"loss"};
  return spec;
}

Metrics random_alloc_h2(const RandomAllocH2Params& p,
                        const ctmc::SteadyStateOptions& opts) {
  Mh21kModel q(p.lambda * p.p1, p.alpha, p.mu1, p.mu2, p.k);
  const Metrics m1 = q.metrics(opts);
  Metrics m2 = m1;
  if (p.p1 != 0.5) {
    // Same buffer, different arrival rate: rebind instead of rebuilding.
    q.rebind(p.lambda * (1.0 - p.p1), p.alpha, p.mu1, p.mu2);
    m2 = q.metrics(opts);
  }
  Metrics m;
  m.mean_q1 = m1.mean_q1;
  m.mean_q2 = m2.mean_q1;
  m.throughput = m1.throughput + m2.throughput;
  m.loss1_rate = m1.loss1_rate;
  m.loss2_rate = m2.loss1_rate;
  m.utilisation1 = m1.utilisation1;
  m.utilisation2 = m2.utilisation1;
  finalize(m);
  return m;
}

}  // namespace tags::models
