#include "models/random_alloc.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"
#include "models/mm1k.hpp"

namespace tags::models {

Metrics random_alloc_exp(const RandomAllocParams& p) {
  const Mm1kResult q1 =
      mm1k_analytic({.lambda = p.lambda * p.p1, .mu = p.mu, .k = p.k});
  const Mm1kResult q2 =
      mm1k_analytic({.lambda = p.lambda * (1.0 - p.p1), .mu = p.mu, .k = p.k});
  Metrics m;
  m.mean_q1 = q1.mean_jobs;
  m.mean_q2 = q2.mean_jobs;
  m.throughput = q1.throughput + q2.throughput;
  m.loss1_rate = q1.loss_rate;
  m.loss2_rate = q2.loss_rate;
  m.utilisation1 = q1.utilisation;
  m.utilisation2 = q2.utilisation;
  finalize(m);
  return m;
}

Mh21kModel::Mh21kModel(double lambda, double alpha, double mu1, double mu2, unsigned k)
    : lambda_(lambda), alpha_(alpha), mu1_(mu1), mu2_(mu2), k_(k) {
  ctmc::CtmcBuilder b;
  const auto l_arrival = b.label("arrival");
  const auto l_service = b.label("service");
  const auto l_loss = b.label("loss");

  const auto for_each_state = [&](auto&& fn) {
    fn(State{0, 0});
    for (unsigned q = 1; q <= k_; ++q) {
      fn(State{q, 0});
      fn(State{q, 1});
    }
  };

  for_each_state([&](const State& s) {
    const ctmc::index_t from = encode(s);
    if (s.q < k_) {
      if (s.q == 0) {
        // Arriving job becomes head: sample its class.
        b.add(from, encode({1, 0}), lambda_ * alpha_, l_arrival);
        b.add(from, encode({1, 1}), lambda_ * (1.0 - alpha_), l_arrival);
      } else {
        b.add(from, encode({s.q + 1, s.c}), lambda_, l_arrival);
      }
    } else {
      b.add(from, from, lambda_, l_loss);
    }
    if (s.q >= 1) {
      const double mu = s.c == 0 ? mu1_ : mu2_;
      if (s.q >= 2) {
        b.add(from, encode({s.q - 1, 0}), mu * alpha_, l_service);
        b.add(from, encode({s.q - 1, 1}), mu * (1.0 - alpha_), l_service);
      } else {
        b.add(from, encode({0, 0}), mu, l_service);
      }
    }
  });
  b.ensure_states(static_cast<ctmc::index_t>(2 * k_ + 1));
  chain_ = b.build();
}

ctmc::index_t Mh21kModel::encode(const State& s) const noexcept {
  return s.q == 0 ? 0 : static_cast<ctmc::index_t>(1 + (s.q - 1) * 2 + s.c);
}

Mh21kModel::State Mh21kModel::decode(ctmc::index_t idx) const noexcept {
  if (idx == 0) return {0, 0};
  const auto rest = static_cast<unsigned>(idx - 1);
  return {1 + rest / 2, rest % 2};
}

Metrics Mh21kModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = ctmc::steady_state(chain_, opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q;
    if (s.q >= 1) m.utilisation1 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "service");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss");
  finalize(m);
  return m;
}

Metrics random_alloc_h2(const RandomAllocH2Params& p,
                        const ctmc::SteadyStateOptions& opts) {
  const Mh21kModel q1(p.lambda * p.p1, p.alpha, p.mu1, p.mu2, p.k);
  const Metrics m1 = q1.metrics(opts);
  Metrics m2 = m1;
  if (p.p1 != 0.5) {
    const Mh21kModel q2(p.lambda * (1.0 - p.p1), p.alpha, p.mu1, p.mu2, p.k);
    m2 = q2.metrics(opts);
  }
  Metrics m;
  m.mean_q1 = m1.mean_q1;
  m.mean_q2 = m2.mean_q1;
  m.throughput = m1.throughput + m2.throughput;
  m.loss1_rate = m1.loss1_rate;
  m.loss2_rate = m2.loss1_rate;
  m.utilisation1 = m1.utilisation1;
  m.utilisation2 = m2.utilisation1;
  finalize(m);
  return m;
}

}  // namespace tags::models
