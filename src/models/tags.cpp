#include "models/tags.hpp"

#include <stdexcept>

namespace tags::models {

namespace {

/// Node-1 local index: 0 = empty (timer pinned at n); else 1 + (q1-1)(n+1) + j1.
unsigned node1_index(unsigned q1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + (q1 - 1) * (n + 1) + j1;
}

/// Node-2 local index: 0 = empty; else 1 + (q2-1)(n+2) + phase2.
unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 2) + phase2;
}

enum Label : ctmc::label_t {
  kArrival = 1,
  kService1,
  kTick1,
  kTimeout,
  kTimeoutLost,
  kTick2,
  kRepeat,
  kService2,
  kLoss1,
};

const std::vector<std::string> kLabels = {
    "tau",          "arrival", "service1",      "tick1",    "timeout",
    "timeout_lost", "tick2",   "repeatservice", "service2", "loss1"};

}  // namespace

ctmc::index_t TagsModel::state_count(const TagsParams& p) noexcept {
  const auto n1 = static_cast<ctmc::index_t>(p.k1 * (p.n + 1) + 1);
  const auto n2 = static_cast<ctmc::index_t>(p.k2 * (p.n + 2) + 1);
  return n1 * n2;
}

ctmc::index_t TagsModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.j1, params_.n);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsModel::State TagsModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.j1 = n;
  } else {
    s.q1 = 1 + (i1 - 1) / (n + 1);
    s.j1 = (i1 - 1) % (n + 1);
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 2);
    s.phase2 = (i2 - 1) % (n + 2);
  }
  return s;
}

TagsModel::TagsModel(const TagsParams& params) : params_(params) {
  node1_states_ = params_.k1 * (params_.n + 1) + 1;
  node2_states_ = params_.k2 * (params_.n + 2) + 1;
  assemble();
}

void TagsModel::rebind(const TagsParams& params) {
  if (params.n != params_.n || params.k1 != params_.k1 || params.k2 != params_.k2) {
    throw std::invalid_argument(
        "TagsModel::rebind: n/k1/k2 are structural; construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t TagsModel::state_space_size() const {
  return static_cast<ctmc::index_t>(node1_states_) * node2_states_;
}

const std::vector<std::string>& TagsModel::transition_labels() const { return kLabels; }

void TagsModel::for_each_transition(ctmc::index_t state,
                                    const TransitionSink& emit) const {
  const unsigned n = params_.n;
  const unsigned serving = n + 1;  // phase2 value for the residual service
  const State s = decode(state);

  // --- Node 1 ---
  if (s.q1 < params_.k1) {
    emit(encode({s.q1 + 1, s.j1, s.q2, s.phase2}), params_.lambda, kArrival);
  } else {
    emit(state, params_.lambda, kLoss1);
  }
  if (s.q1 >= 1) {
    // Service completes: head departs, timer resets.
    emit(encode({s.q1 - 1, n, s.q2, s.phase2}), params_.mu, kService1);
    if (s.j1 >= 1) {
      emit(encode({s.q1, s.j1 - 1, s.q2, s.phase2}), params_.t, kTick1);
    } else {
      // Timeout fires: head restarts at node 2 (or is dropped), node-1
      // timer resets for the next job.
      if (s.q2 < params_.k2) {
        // Arriving at an empty node 2, the head starts a fresh repeat
        // (phase n); otherwise the head's phase is untouched.
        const unsigned p2 = s.q2 == 0 ? n : s.phase2;
        emit(encode({s.q1 - 1, n, s.q2 + 1, p2}), params_.t, kTimeout);
      } else {
        emit(encode({s.q1 - 1, n, s.q2, s.phase2}), params_.t, kTimeoutLost);
      }
    }
  }

  // --- Node 2 ---
  if (s.q2 >= 1) {
    if (s.phase2 == serving) {
      // Residual service completes; next head starts a fresh repeat.
      emit(encode({s.q1, s.j1, s.q2 - 1, n}), params_.mu, kService2);
    } else if (s.phase2 >= 1) {
      emit(encode({s.q1, s.j1, s.q2, s.phase2 - 1}), params_.t, kTick2);
    } else {
      // Repeat service period ends; the residual service begins.
      emit(encode({s.q1, s.j1, s.q2, serving}), params_.t, kRepeat);
    }
  }
}

ctmc::MeasureSpec TagsModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q1); };
  spec.queue2 = [this](ctmc::index_t i) { return static_cast<double>(decode(i).q2); };
  spec.service_labels = {"service1", "service2"};
  spec.loss1_labels = {"loss1"};
  spec.loss2_labels = {"timeout_lost"};
  return spec;
}

}  // namespace tags::models
