#include "models/tags.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"

namespace tags::models {

namespace {

/// Node-1 local index: 0 = empty (timer pinned at n); else 1 + (q1-1)(n+1) + j1.
unsigned node1_index(unsigned q1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + (q1 - 1) * (n + 1) + j1;
}

/// Node-2 local index: 0 = empty; else 1 + (q2-1)(n+2) + phase2.
unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 2) + phase2;
}

}  // namespace

ctmc::index_t TagsModel::state_count(const TagsParams& p) noexcept {
  const auto n1 = static_cast<ctmc::index_t>(p.k1 * (p.n + 1) + 1);
  const auto n2 = static_cast<ctmc::index_t>(p.k2 * (p.n + 2) + 1);
  return n1 * n2;
}

ctmc::index_t TagsModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.q1, s.j1, params_.n);
  const unsigned i2 = node2_index(s.q2, s.phase2, params_.n);
  return static_cast<ctmc::index_t>(i1) * node2_states_ + i2;
}

TagsModel::State TagsModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  const auto i1 = static_cast<unsigned>(idx / node2_states_);
  const auto i2 = static_cast<unsigned>(idx % node2_states_);
  State s{};
  if (i1 == 0) {
    s.q1 = 0;
    s.j1 = n;
  } else {
    s.q1 = 1 + (i1 - 1) / (n + 1);
    s.j1 = (i1 - 1) % (n + 1);
  }
  if (i2 == 0) {
    s.q2 = 0;
    s.phase2 = n;
  } else {
    s.q2 = 1 + (i2 - 1) / (n + 2);
    s.phase2 = (i2 - 1) % (n + 2);
  }
  return s;
}

TagsModel::TagsModel(const TagsParams& params) : params_(params) {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  node1_states_ = k1 * (n + 1) + 1;
  node2_states_ = k2 * (n + 2) + 1;
  const unsigned serving = n + 1;  // phase2 value for the residual service

  ctmc::CtmcBuilder b;
  const auto l_arrival = b.label("arrival");
  const auto l_service1 = b.label("service1");
  const auto l_tick1 = b.label("tick1");
  const auto l_timeout = b.label("timeout");
  const auto l_timeout_lost = b.label("timeout_lost");
  const auto l_tick2 = b.label("tick2");
  const auto l_repeat = b.label("repeatservice");
  const auto l_service2 = b.label("service2");
  const auto l_loss1 = b.label("loss1");

  // Enumerate every reachable state by its (q1, j1, q2, phase2) tuple. Both
  // "empty" encodings pin the timer to n, so iterating q=0 with a single
  // (j = n) representative covers the whole space.
  const auto for_each_state = [&](auto&& fn) {
    for (unsigned q1 = 0; q1 <= k1; ++q1) {
      const unsigned j1_lo = q1 == 0 ? n : 0;
      for (unsigned j1 = j1_lo; j1 <= n; ++j1) {
        for (unsigned q2 = 0; q2 <= k2; ++q2) {
          const unsigned p2_lo = q2 == 0 ? n : 0;
          const unsigned p2_hi = q2 == 0 ? n : serving;
          for (unsigned p2 = p2_lo; p2 <= p2_hi; ++p2) {
            fn(State{q1, j1, q2, p2});
          }
        }
      }
    }
  };

  for_each_state([&](const State& s) {
    const ctmc::index_t from = encode(s);

    // --- Node 1 ---
    if (s.q1 < k1) {
      b.add(from, encode({s.q1 + 1, s.j1, s.q2, s.phase2}), params_.lambda, l_arrival);
    } else {
      b.add(from, from, params_.lambda, l_loss1);
    }
    if (s.q1 >= 1) {
      // Service completes: head departs, timer resets.
      b.add(from, encode({s.q1 - 1, n, s.q2, s.phase2}), params_.mu, l_service1);
      if (s.j1 >= 1) {
        b.add(from, encode({s.q1, s.j1 - 1, s.q2, s.phase2}), params_.t, l_tick1);
      } else {
        // Timeout fires: head restarts at node 2 (or is dropped), node-1
        // timer resets for the next job.
        if (s.q2 < k2) {
          // Arriving at an empty node 2, the head starts a fresh repeat
          // (phase n); otherwise the head's phase is untouched.
          const unsigned p2 = s.q2 == 0 ? n : s.phase2;
          b.add(from, encode({s.q1 - 1, n, s.q2 + 1, p2}), params_.t, l_timeout);
        } else {
          b.add(from, encode({s.q1 - 1, n, s.q2, s.phase2}), params_.t, l_timeout_lost);
        }
      }
    }

    // --- Node 2 ---
    if (s.q2 >= 1) {
      if (s.phase2 == serving) {
        // Residual service completes; next head starts a fresh repeat.
        b.add(from, encode({s.q1, s.j1, s.q2 - 1, n}), params_.mu, l_service2);
      } else if (s.phase2 >= 1) {
        b.add(from, encode({s.q1, s.j1, s.q2, s.phase2 - 1}), params_.t, l_tick2);
      } else {
        // Repeat service period ends; the residual service begins.
        b.add(from, encode({s.q1, s.j1, s.q2, serving}), params_.t, l_repeat);
      }
    }
  });

  b.ensure_states(static_cast<ctmc::index_t>(node1_states_) * node2_states_);
  chain_ = b.build();
}

ctmc::SteadyStateResult TagsModel::solve(const ctmc::SteadyStateOptions& opts) const {
  return ctmc::steady_state(chain_, opts);
}

Metrics TagsModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  return metrics_from(result.pi);
}

Metrics TagsModel::metrics_from(const linalg::Vec& pi) const {
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.q1;
    m.mean_q2 += pi[i] * s.q2;
    if (s.q1 >= 1) m.utilisation1 += pi[i];
    if (s.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "service1") +
                 ctmc::throughput(chain_, pi, "service2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss1");
  m.loss2_rate = ctmc::throughput(chain_, pi, "timeout_lost");
  finalize(m);
  return m;
}

}  // namespace tags::models
