// Programmatic generation of the paper's PEPA models as parseable text.
//
// Every model in this library exists twice: as a hand-built CTMC (the fast
// direct builders) and as PEPA source derived through the engine in
// src/pepa. Integration tests assert the two constructions agree, which
// validates both the builders and the PEPA semantics at once.
#pragma once

#include <string>

#include "models/random_alloc.hpp"
#include "models/shortest_queue.hpp"
#include "models/tags.hpp"
#include "models/tags_h2.hpp"

namespace tags::models {

/// Figure 3 (with the cooperation-set and tick2 corrections documented in
/// DESIGN.md). System equation constant: "System".
[[nodiscard]] std::string tags_pepa_source(const TagsParams& p);

/// Figure 5: hyper-exponential service demands. The residual-class
/// probability alpha' is embedded as a numeric parameter (computed from
/// Section 3.2's closed form).
[[nodiscard]] std::string tags_h2_pepa_source(const TagsH2Params& p);

/// Appendix A: weighted random allocation, two independent M/M/1/K queues.
[[nodiscard]] std::string random_pepa_source(const RandomAllocParams& p);

/// Appendix B: shortest-queue routing with the difference-tracking control
/// component S.
[[nodiscard]] std::string shortest_queue_pepa_source(const ShortestQueueParams& p);

}  // namespace tags::models
