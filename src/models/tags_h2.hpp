// The hyper-exponential TAGS model (Figure 5): job demands are H2 — short
// (rate mu1) with probability alpha, long (rate mu2) otherwise. Only the
// head job's class is tracked (classes are i.i.d., so sampling the class
// when a job reaches the head of a queue is distributionally exact); at
// node 2 the class of a timed-out job is sampled at the end of its repeat
// service with the residual-life probability alpha' of Section 3.2.
//
// State (q1, c1, j1, q2, p2):
//   q1, j1, q2 as in TagsModel;
//   c1 in {kShort, kLong} — class of the node-1 head (kShort when empty);
//   p2 in 0..n          — repeat phase (timer position),
//        n+1            — serving a short job (rate mu1),
//        n+2            — serving a long job (rate mu2);
//   empty node 2 pins p2 = n.
//
// Labels as in TagsModel plus service1/service2 covering both classes.
#pragma once

#include "models/generator_base.hpp"

namespace tags::models {

struct TagsH2Params {
  double lambda = 11.0;
  double alpha = 0.99;  ///< probability a job is short
  double mu1 = 19.9;    ///< short-job service rate
  double mu2 = 0.199;   ///< long-job service rate
  double t = 50.0;      ///< timer phase rate
  unsigned n = 6;
  unsigned k1 = 10;
  unsigned k2 = 10;

  /// Mean service demand alpha/mu1 + (1-alpha)/mu2.
  [[nodiscard]] double mean_demand() const;
  /// Residual-class probability alpha' after surviving the Erlang(n+1, t)
  /// timeout (paper Section 3.2).
  [[nodiscard]] double alpha_prime() const;
  /// Construct rates from a mean demand and ratio mu1 = ratio * mu2 — the
  /// parameterisation of Figures 9-12.
  static TagsH2Params from_ratio(double lambda, double alpha, double ratio,
                                 double mean_demand, double t, unsigned n = 6,
                                 unsigned k1 = 10, unsigned k2 = 10);
};

class TagsH2Model : public SolvableModel {
 public:
  explicit TagsH2Model(const TagsH2Params& params);

  enum Class : unsigned { kShort = 0, kLong = 1 };

  struct State {
    unsigned q1;
    unsigned c1;      ///< Class of node-1 head (kShort when q1 == 0)
    unsigned j1;
    unsigned q2;
    unsigned phase2;  ///< 0..n repeat, n+1 serving short, n+2 serving long
  };

  [[nodiscard]] const TagsH2Params& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// (K1*2(n+1)+1) * (K2(n+3)+1).
  [[nodiscard]] static ctmc::index_t state_count(const TagsH2Params& p) noexcept;

  /// Repopulate rates for new lambda/alpha/mu1/mu2/t (alpha' is
  /// recomputed); throws std::invalid_argument if n/k1/k2 changed.
  void rebind(const TagsH2Params& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  TagsH2Params params_;
  double alpha_prime_ = 0.0;  ///< cached residual-class probability
  unsigned node1_states_ = 0;
  unsigned node2_states_ = 0;
};

}  // namespace tags::models
