// Batched evaluation of a warm-started t-chain (see DESIGN.md "Batched
// multi-point sweeps"). A t-sweep rebinding rates on a frozen pattern can
// pack B adjacent grid points into one linalg::CsrValueBatch and solve them
// together: the direct solvers factor all B systems in SIMD lockstep, and
// per-lane results are bit-identical to the scalar chain's, so batch width
// — like thread count — stays outside the determinism contract on the
// direct-solver path. Warm-start bookkeeping is replayed per point in grid
// order after each batch, which reproduces the scalar WarmStartState
// counters (and the guess chain an escalated lane sees) exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "ctmc/steady_state.hpp"
#include "linalg/batch.hpp"
#include "obs/obs.hpp"

namespace tags::models {

/// Walk grid points [begin, end) of `t_values` in chunks of `batch`,
/// rebinding `Model` to each point, solving each chunk with
/// ctmc::steady_state_batch, and invoking
///   per_point(global_index, result, model)
/// once per point in grid order with the model re-bound to that point's
/// parameters (for metrics extraction). batch <= 1 degenerates to the
/// scalar rebind/solve loop the sweeps have always run.
template <class Model, class Params, class PerPoint>
void batched_t_chain(const Params& base, const std::vector<double>& t_values,
                     std::size_t begin, std::size_t end, std::size_t batch,
                     ctmc::WarmStartState& warm, PerPoint&& per_point) {
  std::optional<Model> model;
  const auto bind = [&](std::size_t i) {
    Params p = base;
    p.t = t_values[i];
    const obs::ScopedTimer build_timer("build");
    if (model) {
      // Only t moves within the sweep: the sparsity pattern is frozen, so
      // every point after the first is a rate rebind, not a rebuild.
      model->rebind(p);
    } else {
      model.emplace(p);
    }
  };
  if (batch <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      bind(i);
      warm.reconcile(model->n_states());
      const auto solved = [&] {
        const obs::ScopedTimer solve_timer("solve");
        return model->solve(warm.opts);
      }();
      warm.accept(solved);
      per_point(i, solved, *model);
    }
    return;
  }
  for (std::size_t i = begin; i < end;) {
    const std::size_t bw = std::min(batch, end - i);
    std::optional<linalg::CsrValueBatch> vals;
    for (std::size_t b = 0; b < bw; ++b) {
      bind(i + b);
      const linalg::CsrMatrix& q = model->chain().generator();
      if (!vals) vals.emplace(q, bw);
      vals->load_lane(b, q);
    }
    ctmc::SteadyStateOptions opts = warm.opts;
    // The scalar loop reconciles the guess before each solve; the size
    // check is hoisted here (n is constant across the chunk) and the
    // counter effects are replayed point by point below.
    if (opts.initial_guess &&
        opts.initial_guess->size() != static_cast<std::size_t>(model->n_states())) {
      opts.initial_guess.reset();
    }
    const std::vector<ctmc::SteadyStateResult> solved = [&] {
      const obs::ScopedTimer solve_timer("solve");
      return ctmc::steady_state_batch(*vals, opts);
    }();
    for (std::size_t b = 0; b < bw; ++b) {
      warm.reconcile(model->n_states());
      warm.accept(solved[b]);
      bind(i + b);  // re-bind for the point's own metric extraction
      per_point(i + b, solved[b], *model);
    }
    i += bw;
  }
}

}  // namespace tags::models
