#include "models/batch_example.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tags::models {

BatchResult tags_batch(std::span<const double> demands, double timeout,
                       double service_rate) {
  BatchResult r;
  r.response.assign(demands.size(), 0.0);
  double node1_clock = 0.0;
  double node2_free = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double service_time = demands[i] / service_rate;
    if (service_time <= timeout) {
      node1_clock += service_time;
      r.response[i] = node1_clock;
      ++r.completed_at_node1;
    } else {
      node1_clock += timeout;  // work done then thrown away
      // Restart from scratch at node 2, FCFS behind earlier restarts.
      const double start = std::max(node1_clock, node2_free);
      node2_free = start + service_time;
      r.response[i] = node2_free;
    }
  }
  for (double t : r.response) r.mean_response += t;
  r.mean_response /= static_cast<double>(demands.size());
  return r;
}

BatchOptimum optimise_batch_timeout(std::span<const double> demands,
                                    double service_rate) {
  // The mean response is piecewise linear in the timeout with breakpoints at
  // the (scaled) demand values; checking just above/below each breakpoint
  // plus "no timeout" covers all optima.
  std::vector<double> candidates;
  const double eps = 1e-9;
  for (double d : demands) {
    const double s = d / service_rate;
    candidates.push_back(s + eps);
    candidates.push_back(std::max(0.0, s - eps));
  }
  candidates.push_back(std::numeric_limits<double>::infinity());
  candidates.push_back(0.0);

  BatchOptimum best;
  best.mean_response = std::numeric_limits<double>::infinity();
  for (double c : candidates) {
    const BatchResult r = tags_batch(demands, c, service_rate);
    if (r.mean_response < best.mean_response) {
      best.mean_response = r.mean_response;
      best.timeout = c;
    }
  }
  return best;
}

}  // namespace tags::models
