// The M/M/1/K queue: closed-form formulas (validation oracle for every
// CTMC solver in the library) and a CTMC builder.
#pragma once

#include "ctmc/ctmc.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::models {

struct Mm1kParams {
  double lambda = 1.0;  ///< arrival rate
  double mu = 2.0;      ///< service rate
  unsigned k = 10;      ///< buffer size (max jobs in system)
};

/// Closed-form results.
struct Mm1kResult {
  linalg::Vec pi;           ///< state probabilities, size k+1
  double mean_jobs = 0.0;   ///< E[N]
  double loss_prob = 0.0;   ///< P(N = K), the blocking probability
  double loss_rate = 0.0;   ///< lambda * P(N = K)
  double throughput = 0.0;  ///< lambda * (1 - P(N = K))
  double utilisation = 0.0; ///< P(N >= 1)
  double response_time = 0.0;  ///< E[N] / throughput (accepted jobs)
};

[[nodiscard]] Mm1kResult mm1k_analytic(const Mm1kParams& p);

/// The same queue as a labelled CTMC ("arrival", "service", "loss").
[[nodiscard]] ctmc::Ctmc mm1k_ctmc(const Mm1kParams& p);

}  // namespace tags::models
