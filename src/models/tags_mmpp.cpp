#include "models/tags_mmpp.hpp"

#include <stdexcept>

namespace tags::models {

double MmppParams::burstiness_index() const {
  // Asymptotic index of dispersion of counts for an MMPP(2):
  //   IDC = 1 + 2 r01 r10 (l0 - l1)^2 / ((r01+r10)^2 (r10 l0 + r01 l1)).
  const double d = lambda0 - lambda1;
  const double s = r01 + r10;
  return 1.0 + 2.0 * r01 * r10 * d * d / (s * s * (r10 * lambda0 + r01 * lambda1));
}

namespace {

unsigned node1_index(unsigned q1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + (q1 - 1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 2) + phase2;
}

enum Label : ctmc::label_t {
  kArrival = 1,
  kService1,
  kTick1,
  kTimeout,
  kTimeoutLost,
  kTick2,
  kRepeat,
  kService2,
  kLoss1,
  kSwitch,
};

const std::vector<std::string> kLabels = {
    "tau",          "arrival", "service1",      "tick1",    "timeout",
    "timeout_lost", "tick2",   "repeatservice", "service2", "loss1",
    "modulate"};

}  // namespace

ctmc::index_t TagsMmppModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.base.q1, s.base.j1, params_.n);
  const unsigned i2 = node2_index(s.base.q2, s.base.phase2, params_.n);
  return (static_cast<ctmc::index_t>(i1) * node2_states_ + i2) * 2 + s.m;
}

TagsMmppModel::State TagsMmppModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  State s{};
  s.m = static_cast<unsigned>(idx % 2);
  const auto rest = idx / 2;
  const auto i1 = static_cast<unsigned>(rest / node2_states_);
  const auto i2 = static_cast<unsigned>(rest % node2_states_);
  if (i1 == 0) {
    s.base.q1 = 0;
    s.base.j1 = n;
  } else {
    s.base.q1 = 1 + (i1 - 1) / (n + 1);
    s.base.j1 = (i1 - 1) % (n + 1);
  }
  if (i2 == 0) {
    s.base.q2 = 0;
    s.base.phase2 = n;
  } else {
    s.base.q2 = 1 + (i2 - 1) / (n + 2);
    s.base.phase2 = (i2 - 1) % (n + 2);
  }
  return s;
}

TagsMmppModel::TagsMmppModel(const TagsMmppParams& params) : params_(params) {
  node1_states_ = params_.k1 * (params_.n + 1) + 1;
  node2_states_ = params_.k2 * (params_.n + 2) + 1;
  assemble();
}

void TagsMmppModel::rebind(const TagsMmppParams& params) {
  if (params.n != params_.n || params.k1 != params_.k1 || params.k2 != params_.k2) {
    throw std::invalid_argument(
        "TagsMmppModel::rebind: n/k1/k2 are structural; construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t TagsMmppModel::state_space_size() const {
  return static_cast<ctmc::index_t>(node1_states_) * node2_states_ * 2;
}

const std::vector<std::string>& TagsMmppModel::transition_labels() const {
  return kLabels;
}

void TagsMmppModel::for_each_transition(ctmc::index_t state,
                                        const TransitionSink& emit) const {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  const unsigned serving = n + 1;
  const State s = decode(state);
  const auto& bb = s.base;
  const double lambda = s.m == 0 ? params_.arrivals.lambda0 : params_.arrivals.lambda1;
  const double sw = s.m == 0 ? params_.arrivals.r01 : params_.arrivals.r10;

  // Modulation phase switch.
  emit(encode({bb, 1 - s.m}), sw, kSwitch);

  // --- Node 1 (as in TagsModel, with the phase-dependent arrival rate) ---
  if (bb.q1 < k1) {
    emit(encode({{bb.q1 + 1, bb.j1, bb.q2, bb.phase2}, s.m}), lambda, kArrival);
  } else {
    emit(state, lambda, kLoss1);
  }
  if (bb.q1 >= 1) {
    emit(encode({{bb.q1 - 1, n, bb.q2, bb.phase2}, s.m}), params_.mu, kService1);
    if (bb.j1 >= 1) {
      emit(encode({{bb.q1, bb.j1 - 1, bb.q2, bb.phase2}, s.m}), params_.t, kTick1);
    } else {
      if (bb.q2 < k2) {
        const unsigned p2 = bb.q2 == 0 ? n : bb.phase2;
        emit(encode({{bb.q1 - 1, n, bb.q2 + 1, p2}, s.m}), params_.t, kTimeout);
      } else {
        emit(encode({{bb.q1 - 1, n, bb.q2, bb.phase2}, s.m}), params_.t,
             kTimeoutLost);
      }
    }
  }

  // --- Node 2 ---
  if (bb.q2 >= 1) {
    if (bb.phase2 == serving) {
      emit(encode({{bb.q1, bb.j1, bb.q2 - 1, n}, s.m}), params_.mu, kService2);
    } else if (bb.phase2 >= 1) {
      emit(encode({{bb.q1, bb.j1, bb.q2, bb.phase2 - 1}, s.m}), params_.t, kTick2);
    } else {
      emit(encode({{bb.q1, bb.j1, bb.q2, serving}, s.m}), params_.t, kRepeat);
    }
  }
}

ctmc::MeasureSpec TagsMmppModel::measure_spec() const {
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) {
    return static_cast<double>(decode(i).base.q1);
  };
  spec.queue2 = [this](ctmc::index_t i) {
    return static_cast<double>(decode(i).base.q2);
  };
  spec.service_labels = {"service1", "service2"};
  spec.loss1_labels = {"loss1"};
  spec.loss2_labels = {"timeout_lost"};
  return spec;
}

}  // namespace tags::models
