#include "models/tags_mmpp.hpp"

#include <cassert>

#include "ctmc/builder.hpp"
#include "ctmc/measures.hpp"

namespace tags::models {

double MmppParams::burstiness_index() const {
  // Asymptotic index of dispersion of counts for an MMPP(2):
  //   IDC = 1 + 2 r01 r10 (l0 - l1)^2 / ((r01+r10)^2 (r10 l0 + r01 l1)).
  const double d = lambda0 - lambda1;
  const double s = r01 + r10;
  return 1.0 + 2.0 * r01 * r10 * d * d / (s * s * (r10 * lambda0 + r01 * lambda1));
}

namespace {

unsigned node1_index(unsigned q1, unsigned j1, unsigned n) {
  return q1 == 0 ? 0 : 1 + (q1 - 1) * (n + 1) + j1;
}

unsigned node2_index(unsigned q2, unsigned phase2, unsigned n) {
  return q2 == 0 ? 0 : 1 + (q2 - 1) * (n + 2) + phase2;
}

}  // namespace

ctmc::index_t TagsMmppModel::encode(const State& s) const noexcept {
  const unsigned i1 = node1_index(s.base.q1, s.base.j1, params_.n);
  const unsigned i2 = node2_index(s.base.q2, s.base.phase2, params_.n);
  return (static_cast<ctmc::index_t>(i1) * node2_states_ + i2) * 2 + s.m;
}

TagsMmppModel::State TagsMmppModel::decode(ctmc::index_t idx) const noexcept {
  const unsigned n = params_.n;
  State s{};
  s.m = static_cast<unsigned>(idx % 2);
  const auto rest = idx / 2;
  const auto i1 = static_cast<unsigned>(rest / node2_states_);
  const auto i2 = static_cast<unsigned>(rest % node2_states_);
  if (i1 == 0) {
    s.base.q1 = 0;
    s.base.j1 = n;
  } else {
    s.base.q1 = 1 + (i1 - 1) / (n + 1);
    s.base.j1 = (i1 - 1) % (n + 1);
  }
  if (i2 == 0) {
    s.base.q2 = 0;
    s.base.phase2 = n;
  } else {
    s.base.q2 = 1 + (i2 - 1) / (n + 2);
    s.base.phase2 = (i2 - 1) % (n + 2);
  }
  return s;
}

TagsMmppModel::TagsMmppModel(const TagsMmppParams& params) : params_(params) {
  const unsigned n = params_.n;
  const unsigned k1 = params_.k1;
  const unsigned k2 = params_.k2;
  node1_states_ = k1 * (n + 1) + 1;
  node2_states_ = k2 * (n + 2) + 1;
  const unsigned serving = n + 1;

  ctmc::CtmcBuilder b;
  const auto l_arrival = b.label("arrival");
  const auto l_service1 = b.label("service1");
  const auto l_tick1 = b.label("tick1");
  const auto l_timeout = b.label("timeout");
  const auto l_timeout_lost = b.label("timeout_lost");
  const auto l_tick2 = b.label("tick2");
  const auto l_repeat = b.label("repeatservice");
  const auto l_service2 = b.label("service2");
  const auto l_loss1 = b.label("loss1");
  const auto l_switch = b.label("modulate");

  const auto for_each_state = [&](auto&& fn) {
    for (unsigned q1 = 0; q1 <= k1; ++q1) {
      const unsigned j1_lo = q1 == 0 ? n : 0;
      for (unsigned j1 = j1_lo; j1 <= n; ++j1) {
        for (unsigned q2 = 0; q2 <= k2; ++q2) {
          const unsigned p2_lo = q2 == 0 ? n : 0;
          const unsigned p2_hi = q2 == 0 ? n : serving;
          for (unsigned p2 = p2_lo; p2 <= p2_hi; ++p2) {
            for (unsigned m = 0; m <= 1; ++m) {
              fn(State{{q1, j1, q2, p2}, m});
            }
          }
        }
      }
    }
  };

  for_each_state([&](const State& s) {
    const ctmc::index_t from = encode(s);
    const auto& bb = s.base;
    const double lambda = s.m == 0 ? params_.arrivals.lambda0 : params_.arrivals.lambda1;
    const double sw = s.m == 0 ? params_.arrivals.r01 : params_.arrivals.r10;

    // Modulation phase switch.
    b.add(from, encode({bb, 1 - s.m}), sw, l_switch);

    // --- Node 1 (as in TagsModel, with the phase-dependent arrival rate) ---
    if (bb.q1 < k1) {
      b.add(from, encode({{bb.q1 + 1, bb.j1, bb.q2, bb.phase2}, s.m}), lambda,
            l_arrival);
    } else {
      b.add(from, from, lambda, l_loss1);
    }
    if (bb.q1 >= 1) {
      b.add(from, encode({{bb.q1 - 1, n, bb.q2, bb.phase2}, s.m}), params_.mu,
            l_service1);
      if (bb.j1 >= 1) {
        b.add(from, encode({{bb.q1, bb.j1 - 1, bb.q2, bb.phase2}, s.m}), params_.t,
              l_tick1);
      } else {
        if (bb.q2 < k2) {
          const unsigned p2 = bb.q2 == 0 ? n : bb.phase2;
          b.add(from, encode({{bb.q1 - 1, n, bb.q2 + 1, p2}, s.m}), params_.t,
                l_timeout);
        } else {
          b.add(from, encode({{bb.q1 - 1, n, bb.q2, bb.phase2}, s.m}), params_.t,
                l_timeout_lost);
        }
      }
    }

    // --- Node 2 ---
    if (bb.q2 >= 1) {
      if (bb.phase2 == serving) {
        b.add(from, encode({{bb.q1, bb.j1, bb.q2 - 1, n}, s.m}), params_.mu,
              l_service2);
      } else if (bb.phase2 >= 1) {
        b.add(from, encode({{bb.q1, bb.j1, bb.q2, bb.phase2 - 1}, s.m}), params_.t,
              l_tick2);
      } else {
        b.add(from, encode({{bb.q1, bb.j1, bb.q2, serving}, s.m}), params_.t, l_repeat);
      }
    }
  });

  b.ensure_states(static_cast<ctmc::index_t>(node1_states_) * node2_states_ * 2);
  chain_ = b.build();
}

ctmc::SteadyStateResult TagsMmppModel::solve(const ctmc::SteadyStateOptions& opts) const {
  return ctmc::steady_state(chain_, opts);
}

Metrics TagsMmppModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  return metrics_from(result.pi);
}

Metrics TagsMmppModel::metrics_from(const linalg::Vec& pi) const {
  Metrics m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const State s = decode(static_cast<ctmc::index_t>(i));
    m.mean_q1 += pi[i] * s.base.q1;
    m.mean_q2 += pi[i] * s.base.q2;
    if (s.base.q1 >= 1) m.utilisation1 += pi[i];
    if (s.base.q2 >= 1) m.utilisation2 += pi[i];
  }
  m.throughput = ctmc::throughput(chain_, pi, "service1") +
                 ctmc::throughput(chain_, pi, "service2");
  m.loss1_rate = ctmc::throughput(chain_, pi, "loss1");
  m.loss2_rate = ctmc::throughput(chain_, pi, "timeout_lost");
  finalize(m);
  return m;
}

}  // namespace tags::models
