// Round-robin allocation — the third "obvious solution" in the paper's
// introduction: arrivals alternate between the two bounded queues, with a
// job lost when its designated queue is full. The router bit makes this a
// genuine CTMC (unlike random allocation, the queues are coupled).
#pragma once

#include "models/generator_base.hpp"

namespace tags::models {

struct RoundRobinParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned k = 10;  ///< buffer per queue
};

class RoundRobinModel : public SolvableModel {
 public:
  explicit RoundRobinModel(const RoundRobinParams& params);

  struct State {
    unsigned q1;
    unsigned q2;
    unsigned next;  ///< queue the next arrival is routed to (0 or 1)
  };

  [[nodiscard]] const RoundRobinParams& params() const noexcept { return params_; }

  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;

  /// Repopulate rates for new lambda/mu; throws std::invalid_argument if
  /// the structural buffer size k changed.
  void rebind(const RoundRobinParams& params);

  // GeneratorModel interface.
  [[nodiscard]] ctmc::index_t state_space_size() const override;
  [[nodiscard]] const std::vector<std::string>& transition_labels() const override;
  void for_each_transition(ctmc::index_t state,
                           const TransitionSink& emit) const override;

 protected:
  [[nodiscard]] ctmc::MeasureSpec measure_spec() const override;

 private:
  RoundRobinParams params_;
};

}  // namespace tags::models
