// Round-robin allocation — the third "obvious solution" in the paper's
// introduction: arrivals alternate between the two bounded queues, with a
// job lost when its designated queue is full. The router bit makes this a
// genuine CTMC (unlike random allocation, the queues are coupled).
#pragma once

#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "models/metrics.hpp"

namespace tags::models {

struct RoundRobinParams {
  double lambda = 5.0;
  double mu = 10.0;
  unsigned k = 10;  ///< buffer per queue
};

class RoundRobinModel {
 public:
  explicit RoundRobinModel(const RoundRobinParams& params);

  struct State {
    unsigned q1;
    unsigned q2;
    unsigned next;  ///< queue the next arrival is routed to (0 or 1)
  };

  [[nodiscard]] const ctmc::Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] ctmc::index_t encode(const State& s) const noexcept;
  [[nodiscard]] State decode(ctmc::index_t idx) const noexcept;
  [[nodiscard]] Metrics metrics(const ctmc::SteadyStateOptions& opts = {}) const;

 private:
  RoundRobinParams params_;
  ctmc::Ctmc chain_;
};

}  // namespace tags::models
