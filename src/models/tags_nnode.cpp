#include "models/tags_nnode.hpp"

#include <cassert>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

namespace tags::models {

// State layout (flattened ints):
//   node 0:            [q, j]         j = timeout-timer phase, pinned n when empty
//   node 1..N-2:       [q, hp, tm]    hp = 0..n repeat phase / n+1 serving,
//                                     tm = own timeout-timer phase
//   node N-1 (last):   [q, hp]
// All phase variables pinned to n when the queue is empty.

std::size_t TagsNNodeModel::VecIntHash::operator()(
    const std::vector<int>& v) const noexcept {
  std::size_t h = 0x9e3779b97f4a7c15ULL;
  for (int x : v) {
    h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

unsigned TagsNNodeModel::vars_per_node(unsigned node) const {
  if (node == 0 || node == params_.n_nodes() - 1) return 2;
  return 3;
}

template <class Fn>
void TagsNNodeModel::for_each_move(const std::vector<int>& v, Fn&& fn) const {
  const unsigned nn = params_.n_nodes();
  const int n = static_cast<int>(params_.n);
  const int serving = n + 1;

  std::vector<unsigned> offset(nn);
  for (unsigned i = 0, pos = 0; i < nn; ++i) {
    offset[i] = pos;
    pos += vars_per_node(i);
  }

  // Move a timed-out job into node `target`, mutating `next`; returns
  // false when the target buffer is full (job lost).
  const auto push_downstream = [&](std::vector<int>& next, unsigned target) -> bool {
    const unsigned off = offset[target];
    const int q = next[off];
    if (q >= static_cast<int>(params_.buffers[target])) return false;
    next[off] = q + 1;
    if (q == 0) {
      next[off + 1] = n;                                   // fresh repeat phase
      if (vars_per_node(target) == 3) next[off + 2] = n;   // fresh timer
    }
    return true;
  };

  for (unsigned i = 0; i < nn; ++i) {
    const unsigned off = offset[i];
    const int q = v[off];
    const bool last = i + 1 == nn;
    const double t_own = last ? 0.0 : params_.timeout_rates[i];
    const double t_prev = i == 0 ? 0.0 : params_.timeout_rates[i - 1];

    if (i == 0) {
      // Arrivals.
      if (q < static_cast<int>(params_.buffers[0])) {
        auto w = v;
        w[off] = q + 1;
        fn(std::move(w), params_.lambda, arrival_id_);
      } else {
        fn(std::vector<int>(v), params_.lambda, loss1_id_);
      }
      if (q >= 1) {
        const int j = v[off + 1];
        {  // service
          auto w = v;
          w[off] = q - 1;
          w[off + 1] = n;
          fn(std::move(w), params_.mu, service_id_[0]);
        }
        if (j >= 1) {
          auto w = v;
          w[off + 1] = j - 1;
          fn(std::move(w), t_own, ctmc::label_t{0});  // tau tick
        } else {
          auto w = v;
          w[off] = q - 1;
          w[off + 1] = n;
          const bool ok = push_downstream(w, 1);
          fn(std::move(w), t_own, ok ? timeout_id_[0] : timeout_lost_id_[0]);
        }
      }
      continue;
    }

    if (q < 1) continue;
    const int hp = v[off + 1];
    // Head progress: repeat phase ticks at the *previous* node's rate.
    if (hp == serving) {
      auto w = v;
      w[off] = q - 1;
      w[off + 1] = n;
      if (!last) w[off + 2] = n;
      fn(std::move(w), params_.mu, service_id_[i]);
    } else if (hp >= 1) {
      auto w = v;
      w[off + 1] = hp - 1;
      fn(std::move(w), t_prev, ctmc::label_t{0});
    } else {
      auto w = v;
      w[off + 1] = serving;
      fn(std::move(w), t_prev, repeat_id_[i]);
    }
    // Own timeout timer (middle nodes only).
    if (!last) {
      const int tm = v[off + 2];
      if (tm >= 1) {
        auto w = v;
        w[off + 2] = tm - 1;
        fn(std::move(w), t_own, ctmc::label_t{0});
      } else {
        auto w = v;
        w[off] = q - 1;
        w[off + 1] = n;
        w[off + 2] = n;
        const bool ok = push_downstream(w, i + 1);
        fn(std::move(w), t_own, ok ? timeout_id_[i] : timeout_lost_id_[i]);
      }
    }
  }
}

TagsNNodeModel::TagsNNodeModel(TagsNNodeParams params) : params_(std::move(params)) {
  const unsigned nn = params_.n_nodes();
  if (nn < 2 || params_.timeout_rates.size() != nn - 1) {
    throw std::invalid_argument(
        "TagsNNodeModel: need >= 2 nodes and N-1 timeout rates");
  }
  const int n = static_cast<int>(params_.n);

  // Label table: fixed deterministic order, looked up by name downstream.
  labels_ = {"tau", "arrival", "loss1"};
  arrival_id_ = 1;
  loss1_id_ = 2;
  const auto intern = [this](std::string name) {
    labels_.push_back(std::move(name));
    return static_cast<ctmc::label_t>(labels_.size() - 1);
  };
  service_id_.resize(nn);
  timeout_id_.resize(nn);
  timeout_lost_id_.resize(nn);
  repeat_id_.resize(nn);
  for (unsigned i = 0; i < nn; ++i) {
    service_id_[i] = intern("service_" + std::to_string(i + 1));
  }
  for (unsigned i = 0; i + 1 < nn; ++i) {
    timeout_id_[i] = intern("timeout_" + std::to_string(i + 1));
    timeout_lost_id_[i] = intern("timeout_lost_" + std::to_string(i + 1));
  }
  for (unsigned i = 1; i < nn; ++i) {
    repeat_id_[i] = intern("repeat_" + std::to_string(i + 1));
  }

  // Breadth-first enumeration of the reachable set (index 0 = empty
  // system), mirroring ctmc::explore's interning order.
  std::vector<int> init;
  unsigned total = 0;
  for (unsigned i = 0; i < nn; ++i) total += vars_per_node(i);
  init.assign(total, 0);
  for (unsigned i = 0, pos = 0; i < nn; ++i) {
    init[pos + 1] = n;                             // j or hp pinned to n
    if (vars_per_node(i) == 3) init[pos + 2] = n;  // tm pinned to n
    pos += vars_per_node(i);
  }

  states_.push_back(init);
  index_of_.emplace(std::move(init), 0);
  std::queue<ctmc::index_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const ctmc::index_t cur = frontier.front();
    frontier.pop();
    // Copy: states_ may reallocate while we push successors.
    const std::vector<int> state = states_[static_cast<std::size_t>(cur)];
    for_each_move(state, [&](std::vector<int> to, double rate, ctmc::label_t) {
      if (rate == 0.0) return;
      auto [it, inserted] =
          index_of_.emplace(std::move(to), static_cast<ctmc::index_t>(states_.size()));
      if (inserted) {
        states_.push_back(it->first);
        frontier.push(it->second);
      }
    });
  }

  assemble();
}

void TagsNNodeModel::rebind(const TagsNNodeParams& params) {
  if (params.n != params_.n || params.buffers != params_.buffers ||
      params.timeout_rates.size() != params_.timeout_rates.size()) {
    throw std::invalid_argument(
        "TagsNNodeModel::rebind: n/buffers/node-count are structural; "
        "construct a new model");
  }
  params_ = params;
  rebind_rates();
}

ctmc::index_t TagsNNodeModel::state_space_size() const {
  return static_cast<ctmc::index_t>(states_.size());
}

const std::vector<std::string>& TagsNNodeModel::transition_labels() const {
  return labels_;
}

void TagsNNodeModel::for_each_transition(ctmc::index_t state,
                                         const TransitionSink& emit) const {
  for_each_move(states_[static_cast<std::size_t>(state)],
                [&](std::vector<int> to, double rate, ctmc::label_t label) {
                  const auto it = index_of_.find(to);
                  assert(it != index_of_.end());  // BFS closed the space
                  emit(it->second, rate, label);
                });
}

unsigned TagsNNodeModel::queue_length(ctmc::index_t idx, unsigned node) const {
  unsigned off = 0;
  for (unsigned i = 0; i < node; ++i) off += vars_per_node(i);
  return static_cast<unsigned>(states_[static_cast<std::size_t>(idx)][off]);
}

ctmc::MeasureSpec TagsNNodeModel::measure_spec() const {
  const unsigned nn = params_.n_nodes();
  ctmc::MeasureSpec spec;
  spec.queue1 = [this](ctmc::index_t i) {
    return static_cast<double>(queue_length(i, 0));
  };
  spec.queue2 = [this, nn](ctmc::index_t i) {
    double total = 0.0;
    for (unsigned node = 1; node < nn; ++node) total += queue_length(i, node);
    return total;
  };
  for (unsigned i = 0; i < nn; ++i) {
    spec.service_labels.push_back("service_" + std::to_string(i + 1));
  }
  spec.loss1_labels = {"loss1"};
  for (unsigned i = 0; i + 1 < nn; ++i) {
    spec.loss2_labels.push_back("timeout_lost_" + std::to_string(i + 1));
  }
  return spec;
}

NNodeMetrics TagsNNodeModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = solve(opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  const unsigned nn = params_.n_nodes();

  NNodeMetrics m;
  m.mean_q.assign(nn, 0.0);
  m.utilisation.assign(nn, 0.0);
  m.loss_rate.assign(nn, 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    for (unsigned i = 0; i < nn; ++i) {
      const unsigned q = queue_length(static_cast<ctmc::index_t>(s), i);
      m.mean_q[i] += pi[s] * q;
      if (q >= 1) m.utilisation[i] += pi[s];
    }
  }
  for (unsigned i = 0; i < nn; ++i) {
    m.mean_total += m.mean_q[i];
    m.throughput += chain().throughput(pi, "service_" + std::to_string(i + 1));
  }
  m.loss_rate[0] = chain().throughput(pi, "loss1");
  m.total_loss = m.loss_rate[0];
  for (unsigned i = 1; i < nn; ++i) {
    m.loss_rate[i] = chain().throughput(pi, "timeout_lost_" + std::to_string(i));
    m.total_loss += m.loss_rate[i];
  }
  m.response_time = m.throughput > 0.0 ? m.mean_total / m.throughput : 0.0;
  return m;
}

}  // namespace tags::models
