#include "models/tags_nnode.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "ctmc/measures.hpp"
#include "ctmc/reachability.hpp"
#include "ctmc/steady_state.hpp"

namespace tags::models {
namespace {

/// Hashable flattened state for ctmc::explore.
struct NState {
  std::vector<int> v;
  bool operator==(const NState& o) const noexcept { return v == o.v; }
};

}  // namespace
}  // namespace tags::models

template <>
struct std::hash<tags::models::NState> {
  std::size_t operator()(const tags::models::NState& s) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (int x : s.v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

namespace tags::models {

namespace {

// State layout (flattened ints):
//   node 0:            [q, j]         j = timeout-timer phase, pinned n when empty
//   node 1..N-2:       [q, hp, tm]    hp = 0..n repeat phase / n+1 serving,
//                                     tm = own timeout-timer phase
//   node N-1 (last):   [q, hp]
// All phase variables pinned to n when the queue is empty.

struct Layout {
  unsigned n_nodes;
  std::vector<unsigned> offset;  // per-node start index in the flat vector

  explicit Layout(const TagsNNodeParams& p) : n_nodes(p.n_nodes()) {
    unsigned pos = 0;
    for (unsigned i = 0; i < n_nodes; ++i) {
      offset.push_back(pos);
      pos += vars(i);
    }
    total = pos;
  }
  [[nodiscard]] unsigned vars(unsigned node) const {
    if (node == 0 || node == n_nodes - 1) return 2;
    return 3;
  }
  unsigned total = 0;
};

}  // namespace

unsigned TagsNNodeModel::vars_per_node(unsigned node) const {
  if (node == 0 || node == params_.n_nodes() - 1) return 2;
  return 3;
}

TagsNNodeModel::TagsNNodeModel(TagsNNodeParams params) : params_(std::move(params)) {
  const unsigned nn = params_.n_nodes();
  if (nn < 2 || params_.timeout_rates.size() != nn - 1) {
    throw std::invalid_argument(
        "TagsNNodeModel: need >= 2 nodes and N-1 timeout rates");
  }
  const int n = static_cast<int>(params_.n);
  const int serving = n + 1;
  const Layout lay(params_);

  NState init;
  init.v.assign(lay.total, 0);
  for (unsigned i = 0; i < nn; ++i) {
    init.v[lay.offset[i] + 1] = n;                   // j or hp pinned to n
    if (lay.vars(i) == 3) init.v[lay.offset[i] + 2] = n;  // tm pinned to n
  }

  // Move a timed-out job from node `from_node` into node `from_node + 1`,
  // mutating `next`; returns false when the target buffer is full (job lost).
  const auto push_downstream = [&](std::vector<int>& next, unsigned target) -> bool {
    const unsigned off = lay.offset[target];
    const int q = next[off];
    if (q >= static_cast<int>(params_.buffers[target])) return false;
    next[off] = q + 1;
    if (q == 0) {
      next[off + 1] = n;                          // fresh repeat phase
      if (lay.vars(target) == 3) next[off + 2] = n;  // fresh timer
    }
    return true;
  };

  const auto succ = [&](const NState& s) {
    std::vector<ctmc::Move<NState>> moves;
    const auto emit = [&](std::vector<int> v, double rate, std::string label) {
      moves.push_back({NState{std::move(v)}, rate, std::move(label)});
    };

    for (unsigned i = 0; i < nn; ++i) {
      const unsigned off = lay.offset[i];
      const int q = s.v[off];
      const bool last = i + 1 == nn;
      const double t_own = last ? 0.0 : params_.timeout_rates[i];
      const double t_prev = i == 0 ? 0.0 : params_.timeout_rates[i - 1];

      if (i == 0) {
        // Arrivals.
        if (q < static_cast<int>(params_.buffers[0])) {
          auto v = s.v;
          v[off] = q + 1;
          emit(std::move(v), params_.lambda, "arrival");
        } else {
          emit(s.v, params_.lambda, "loss1");
        }
        if (q >= 1) {
          const int j = s.v[off + 1];
          {  // service
            auto v = s.v;
            v[off] = q - 1;
            v[off + 1] = n;
            emit(std::move(v), params_.mu, "service_1");
          }
          if (j >= 1) {
            auto v = s.v;
            v[off + 1] = j - 1;
            emit(std::move(v), t_own, "");
          } else {
            auto v = s.v;
            v[off] = q - 1;
            v[off + 1] = n;
            const bool ok = push_downstream(v, 1);
            emit(std::move(v), t_own, ok ? "timeout_1" : "timeout_lost_1");
          }
        }
        continue;
      }

      if (q < 1) continue;
      const int hp = s.v[off + 1];
      // Head progress: repeat phase ticks at the *previous* node's rate.
      if (hp == serving) {
        auto v = s.v;
        v[off] = q - 1;
        v[off + 1] = n;
        if (!last) v[off + 2] = n;
        emit(std::move(v), params_.mu, "service_" + std::to_string(i + 1));
      } else if (hp >= 1) {
        auto v = s.v;
        v[off + 1] = hp - 1;
        emit(std::move(v), t_prev, "");
      } else {
        auto v = s.v;
        v[off + 1] = serving;
        emit(std::move(v), t_prev, "repeat_" + std::to_string(i + 1));
      }
      // Own timeout timer (middle nodes only).
      if (!last) {
        const int tm = s.v[off + 2];
        if (tm >= 1) {
          auto v = s.v;
          v[off + 2] = tm - 1;
          emit(std::move(v), t_own, "");
        } else {
          auto v = s.v;
          v[off] = q - 1;
          v[off + 1] = n;
          v[off + 2] = n;
          const bool ok = push_downstream(v, i + 1);
          emit(std::move(v), t_own,
               (ok ? "timeout_" : "timeout_lost_") + std::to_string(i + 1));
        }
      }
    }
    return moves;
  };

  auto ex = ctmc::explore(init, succ);
  chain_ = ex.builder.build();
  states_.reserve(ex.states.size());
  for (auto& st : ex.states) states_.push_back(std::move(st.v));
}

unsigned TagsNNodeModel::queue_length(ctmc::index_t idx, unsigned node) const {
  unsigned off = 0;
  for (unsigned i = 0; i < node; ++i) off += vars_per_node(i);
  return static_cast<unsigned>(states_[static_cast<std::size_t>(idx)][off]);
}

NNodeMetrics TagsNNodeModel::metrics(const ctmc::SteadyStateOptions& opts) const {
  const auto result = ctmc::steady_state(chain_, opts);
  assert(result.converged);
  const linalg::Vec& pi = result.pi;
  const unsigned nn = params_.n_nodes();

  NNodeMetrics m;
  m.mean_q.assign(nn, 0.0);
  m.utilisation.assign(nn, 0.0);
  m.loss_rate.assign(nn, 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    for (unsigned i = 0; i < nn; ++i) {
      const unsigned q = queue_length(static_cast<ctmc::index_t>(s), i);
      m.mean_q[i] += pi[s] * q;
      if (q >= 1) m.utilisation[i] += pi[s];
    }
  }
  for (unsigned i = 0; i < nn; ++i) {
    m.mean_total += m.mean_q[i];
    m.throughput +=
        ctmc::throughput(chain_, pi, "service_" + std::to_string(i + 1));
  }
  m.loss_rate[0] = ctmc::throughput(chain_, pi, "loss1");
  m.total_loss = m.loss_rate[0];
  for (unsigned i = 1; i < nn; ++i) {
    m.loss_rate[i] =
        ctmc::throughput(chain_, pi, "timeout_lost_" + std::to_string(i));
    m.total_loss += m.loss_rate[i];
  }
  m.response_time = m.throughput > 0.0 ? m.mean_total / m.throughput : 0.0;
  return m;
}

}  // namespace tags::models
