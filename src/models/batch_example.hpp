// The worked example of the paper's introduction: a fixed batch of jobs,
// all present at time zero, processed by a two-node TAGS system with unit
// service rate and a *deterministic* timeout. Node 1 serves each job FCFS
// for min(demand, timeout); timed-out jobs restart from scratch at node 2,
// which runs in parallel and serves them FCFS to completion.
//
// Reproduces the paper's numbers: demands {4,5,6,7,3,2} give mean response
// 17 (no timeout), 18.5 (timeout 1.5), 16.67 (3.5), 15.67 (3+eps); demands
// {99,5,6,7,3,2} give 36.5 (7+eps) vs 112 (no timeout).
#pragma once

#include <span>
#include <vector>

namespace tags::models {

struct BatchResult {
  std::vector<double> response;  ///< completion time of each job (input order)
  double mean_response = 0.0;
  unsigned completed_at_node1 = 0;
};

/// Run the batch through TAGS with the given deterministic timeout (use
/// std::numeric_limits<double>::infinity() for "no timeout"). service_rate
/// scales demands into time.
[[nodiscard]] BatchResult tags_batch(std::span<const double> demands, double timeout,
                                     double service_rate = 1.0);

/// Exhaustive search (over the demand values +/- eps) for the timeout
/// minimising mean response; returns the best timeout found.
struct BatchOptimum {
  double timeout = 0.0;
  double mean_response = 0.0;
};
[[nodiscard]] BatchOptimum optimise_batch_timeout(std::span<const double> demands,
                                                  double service_rate = 1.0);

}  // namespace tags::models
