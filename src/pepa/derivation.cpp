#include "pepa/derivation.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "ctmc/builder.hpp"
#include "obs/obs.hpp"
#include "pepa/printer.hpp"

namespace tags::pepa {

// ---------------------------------------------------------------------------
// SeqSpace
// ---------------------------------------------------------------------------

namespace {

std::string rate_key(const ConcreteRate& r) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), r.value,
                                       std::chars_format::hex);
  (void)ec;
  return std::string(r.passive ? "p" : "a") + std::string(buf, ptr);
}

}  // namespace

SeqSpace::SeqSpace(Model model, ParamTable params, std::shared_ptr<ActionTable> actions)
    : model_(std::move(model)), params_(std::move(params)), actions_(std::move(actions)) {}

seq_id SeqSpace::intern(Term t, std::string key) {
  const auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  const seq_id id = static_cast<seq_id>(terms_.size());
  terms_.push_back(t);
  trans_memo_.emplace_back();
  interned_.emplace(std::move(key), id);
  return id;
}

seq_id SeqSpace::from_ast(const Process& p) {
  using K = Process::Kind;
  switch (p.kind) {
    case K::kConstant: {
      std::int32_t index = -1;
      for (std::size_t i = 0; i < model_.definitions.size(); ++i) {
        if (model_.definitions[i].name == p.name) {
          index = static_cast<std::int32_t>(i);
          break;
        }
      }
      if (index < 0) {
        throw SemanticError("undefined process constant '" + p.name + "'");
      }
      // Resolve alias chains (A = B;) so aliases share one derivative —
      // otherwise the alias would be a spurious transient state.
      const ProcessDef& def = model_.definitions[static_cast<std::size_t>(index)];
      if (def.body->kind == K::kConstant) {
        if (std::find(alias_stack_.begin(), alias_stack_.end(), p.name) !=
            alias_stack_.end()) {
          throw SemanticError("unguarded recursion through process constant '" +
                              p.name + "'");
        }
        alias_stack_.push_back(p.name);
        const seq_id resolved = from_ast(*def.body);
        alias_stack_.pop_back();
        return resolved;
      }
      Term t;
      t.kind = Term::Kind::kConst;
      t.def_index = index;
      return intern(t, "K" + std::to_string(index));
    }
    case K::kPrefix: {
      Term t;
      t.kind = Term::Kind::kPrefix;
      t.action = actions_->intern(p.action);
      t.rate = eval_rate(*p.rate, params_);
      t.cont = from_ast(*p.continuation);
      std::string key = "P" + std::to_string(t.action) + "|" + rate_key(t.rate) + "|" +
                        std::to_string(t.cont);
      return intern(t, std::move(key));
    }
    case K::kChoice: {
      Term t;
      t.kind = Term::Kind::kChoice;
      t.left = from_ast(*p.left);
      t.right = from_ast(*p.right);
      std::string key =
          "C" + std::to_string(t.left) + "," + std::to_string(t.right);
      return intern(t, std::move(key));
    }
    case K::kCoop:
    case K::kHide:
      throw SemanticError(
          "cooperation/hiding encountered inside a sequential component");
  }
  throw SemanticError("corrupt process term");
}

const std::vector<SeqSpace::LocalTrans>& SeqSpace::transitions(seq_id id) {
  std::vector<char> visiting(terms_.size(), 0);
  return transitions_impl(id, visiting);
}

const std::vector<SeqSpace::LocalTrans>& SeqSpace::transitions_impl(
    seq_id id, std::vector<char>& visiting) {
  auto& memo = trans_memo_[static_cast<std::size_t>(id)];
  if (memo.has_value()) return *memo;
  if (visiting.size() < terms_.size()) visiting.resize(terms_.size(), 0);
  if (visiting[static_cast<std::size_t>(id)]) {
    throw SemanticError("unguarded recursion through process constant '" + name(id) +
                        "'");
  }
  visiting[static_cast<std::size_t>(id)] = 1;

  const Term t = terms_[static_cast<std::size_t>(id)];  // copy: vector may grow
  std::vector<LocalTrans> result;
  switch (t.kind) {
    case Term::Kind::kPrefix:
      result.push_back({t.action, t.rate, t.cont});
      break;
    case Term::Kind::kChoice: {
      const auto l = transitions_impl(t.left, visiting);    // copies: recursion may
      const auto r = transitions_impl(t.right, visiting);   // invalidate references
      result = l;
      result.insert(result.end(), r.begin(), r.end());
      break;
    }
    case Term::Kind::kConst: {
      const ProcessDef& def = model_.definitions[static_cast<std::size_t>(t.def_index)];
      const seq_id body = from_ast(*def.body);
      result = transitions_impl(body, visiting);
      break;
    }
  }
  visiting[static_cast<std::size_t>(id)] = 0;
  auto& slot = trans_memo_[static_cast<std::size_t>(id)];
  slot = std::move(result);
  return *slot;
}

std::string SeqSpace::name(seq_id id) const {
  const Term& t = terms_[static_cast<std::size_t>(id)];
  switch (t.kind) {
    case Term::Kind::kConst:
      return model_.definitions[static_cast<std::size_t>(t.def_index)].name;
    case Term::Kind::kPrefix: {
      const std::string r =
          t.rate.passive
              ? (t.rate.value == 1.0 ? "infty" : std::to_string(t.rate.value) + "*infty")
              : format_rate(t.rate.value);
      return "(" + actions_->name(t.action) + ", " + r + ")." + name(t.cont);
    }
    case Term::Kind::kChoice:
      return name(t.left) + " + " + name(t.right);
  }
  return "?";
}

std::optional<std::string> SeqSpace::constant_name(seq_id id) const {
  const Term& t = terms_[static_cast<std::size_t>(id)];
  if (t.kind != Term::Kind::kConst) return std::nullopt;
  return model_.definitions[static_cast<std::size_t>(t.def_index)].name;
}

// ---------------------------------------------------------------------------
// Static structure tree
// ---------------------------------------------------------------------------

namespace {

struct CompNode {
  enum class Kind { kLeaf, kCoop, kHide } kind;
  // kLeaf
  std::size_t leaf_index = 0;
  seq_id initial = -1;
  // kCoop / kHide
  std::unique_ptr<CompNode> left, right;  // hide uses left only
  std::vector<std::uint32_t> action_set;  // sorted
};

struct TreeBuilder {
  const Model& model;
  SeqSpace& seq;
  ActionTable& actions;
  const std::unordered_map<std::string, ProcClass>& classes;
  std::size_t n_leaves = 0;
  std::vector<std::string> expansion_stack;  // composite-constant cycle guard

  std::unique_ptr<CompNode> build(const Process& p) {
    using K = Process::Kind;
    switch (p.kind) {
      case K::kCoop: {
        auto node = std::make_unique<CompNode>();
        node->kind = CompNode::Kind::kCoop;
        node->left = build(*p.left);
        node->right = build(*p.right);
        for (const std::string& a : p.action_set) {
          node->action_set.push_back(actions.intern(a));
        }
        std::sort(node->action_set.begin(), node->action_set.end());
        node->action_set.erase(
            std::unique(node->action_set.begin(), node->action_set.end()),
            node->action_set.end());
        return node;
      }
      case K::kHide: {
        auto node = std::make_unique<CompNode>();
        node->kind = CompNode::Kind::kHide;
        node->left = build(*p.left);
        for (const std::string& a : p.action_set) {
          node->action_set.push_back(actions.intern(a));
        }
        std::sort(node->action_set.begin(), node->action_set.end());
        return node;
      }
      case K::kConstant: {
        const auto it = classes.find(p.name);
        if (it != classes.end() && it->second == ProcClass::kComposite) {
          if (std::find(expansion_stack.begin(), expansion_stack.end(), p.name) !=
              expansion_stack.end()) {
            throw SemanticError("recursive composite constant '" + p.name + "'");
          }
          const ProcessDef* def = model.find_definition(p.name);
          assert(def != nullptr);
          expansion_stack.push_back(p.name);
          auto node = build(*def->body);
          expansion_stack.pop_back();
          return node;
        }
        return make_leaf(p);
      }
      case K::kPrefix:
      case K::kChoice:
        return make_leaf(p);
    }
    throw SemanticError("corrupt process term");
  }

  std::unique_ptr<CompNode> make_leaf(const Process& p) {
    auto node = std::make_unique<CompNode>();
    node->kind = CompNode::Kind::kLeaf;
    node->leaf_index = n_leaves++;
    node->initial = seq.from_ast(p);
    return node;
  }
};

// One global move: action + rate + the leaf updates it causes.
struct GlobalMove {
  std::uint32_t action;
  ConcreteRate rate;
  // (leaf index, new seq term) pairs; disjoint across a cooperation.
  std::vector<std::pair<std::size_t, seq_id>> updates;
};

struct LeafVec {
  std::vector<seq_id> v;
  bool operator==(const LeafVec& o) const noexcept { return v == o.v; }
};

struct LeafVecHash {
  std::size_t operator()(const LeafVec& s) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (seq_id x : s.v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class Deriver {
 public:
  Deriver(SeqSpace& seq, ActionTable& actions, const CompNode& root)
      : seq_(seq), actions_(actions), root_(root) {}

  std::vector<GlobalMove> moves(const std::vector<seq_id>& state) {
    return derive_node(root_, state);
  }

 private:
  std::vector<GlobalMove> derive_node(const CompNode& node,
                                      const std::vector<seq_id>& state) {
    switch (node.kind) {
      case CompNode::Kind::kLeaf: {
        std::vector<GlobalMove> out;
        const seq_id local = state[node.leaf_index];
        for (const SeqSpace::LocalTrans& t : seq_.transitions(local)) {
          out.push_back({t.action, t.rate, {{node.leaf_index, t.target}}});
        }
        return out;
      }
      case CompNode::Kind::kHide: {
        std::vector<GlobalMove> out = derive_node(*node.left, state);
        for (GlobalMove& m : out) {
          if (std::binary_search(node.action_set.begin(), node.action_set.end(),
                                 m.action)) {
            m.action = kTauAction;
          }
        }
        return out;
      }
      case CompNode::Kind::kCoop: {
        const std::vector<GlobalMove> l = derive_node(*node.left, state);
        const std::vector<GlobalMove> r = derive_node(*node.right, state);
        std::vector<GlobalMove> out;
        const auto synced = [&](std::uint32_t a) {
          return std::binary_search(node.action_set.begin(), node.action_set.end(), a);
        };
        // Independent moves interleave. (tau can never be in the set.)
        for (const GlobalMove& m : l) {
          if (!synced(m.action)) out.push_back(m);
        }
        for (const GlobalMove& m : r) {
          if (!synced(m.action)) out.push_back(m);
        }
        // Synchronised actions combine pairwise under the apparent-rate law.
        for (const std::uint32_t a : node.action_set) {
          combine(a, l, r, out);
        }
        return out;
      }
    }
    return {};
  }

  void combine(std::uint32_t action, const std::vector<GlobalMove>& l,
               const std::vector<GlobalMove>& r, std::vector<GlobalMove>& out) {
    double active_l = 0.0, passive_l = 0.0, active_r = 0.0, passive_r = 0.0;
    for (const GlobalMove& m : l) {
      if (m.action != action) continue;
      (m.rate.passive ? passive_l : active_l) += m.rate.value;
    }
    for (const GlobalMove& m : r) {
      if (m.action != action) continue;
      (m.rate.passive ? passive_r : active_r) += m.rate.value;
    }
    if ((active_l == 0.0 && passive_l == 0.0) || (active_r == 0.0 && passive_r == 0.0)) {
      return;  // one side cannot participate: the action is blocked
    }
    if ((active_l > 0.0 && passive_l > 0.0) || (active_r > 0.0 && passive_r > 0.0)) {
      throw SemanticError(
          "component enables both active and passive instances of synchronised "
          "action '" +
          actions_.name(action) + "' — the cooperation rate is undefined");
    }
    for (const GlobalMove& ml : l) {
      if (ml.action != action) continue;
      for (const GlobalMove& mr : r) {
        if (mr.action != action) continue;
        GlobalMove m;
        m.action = action;
        m.updates = ml.updates;
        m.updates.insert(m.updates.end(), mr.updates.begin(), mr.updates.end());
        if (!ml.rate.passive && !mr.rate.passive) {
          const double ra1 = active_l, ra2 = active_r;
          m.rate = ConcreteRate::active((ml.rate.value / ra1) * (mr.rate.value / ra2) *
                                        std::min(ra1, ra2));
        } else if (!ml.rate.passive && mr.rate.passive) {
          m.rate = ConcreteRate::active(ml.rate.value * (mr.rate.value / passive_r));
        } else if (ml.rate.passive && !mr.rate.passive) {
          m.rate = ConcreteRate::active(mr.rate.value * (ml.rate.value / passive_l));
        } else {
          // Both passive: stays passive; weights compose with min() on the
          // apparent weights, mirroring the active law.
          m.rate = ConcreteRate::make_passive((ml.rate.value / passive_l) *
                                              (mr.rate.value / passive_r) *
                                              std::min(passive_l, passive_r));
        }
        out.push_back(std::move(m));
      }
    }
  }

  SeqSpace& seq_;
  ActionTable& actions_;
  const CompNode& root_;
};

void collect_initial(const CompNode& node, std::vector<seq_id>& leaves) {
  switch (node.kind) {
    case CompNode::Kind::kLeaf:
      if (leaves.size() <= node.leaf_index) leaves.resize(node.leaf_index + 1, -1);
      leaves[node.leaf_index] = node.initial;
      break;
    case CompNode::Kind::kHide:
      collect_initial(*node.left, leaves);
      break;
    case CompNode::Kind::kCoop:
      collect_initial(*node.left, leaves);
      collect_initial(*node.right, leaves);
      break;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DerivedModel helpers
// ---------------------------------------------------------------------------

std::string DerivedModel::local_name(std::size_t state, std::size_t leaf) const {
  return seq->name(states[state][leaf]);
}

linalg::Vec DerivedModel::population_reward(std::string_view derivative) const {
  linalg::Vec reward(states.size(), 0.0);
  // Precompute which seq ids match the requested printable name.
  std::unordered_map<seq_id, double> match;
  for (std::size_t s = 0; s < states.size(); ++s) {
    for (seq_id id : states[s]) {
      const auto it = match.find(id);
      if (it == match.end()) {
        match.emplace(id, seq->name(id) == derivative ? 1.0 : 0.0);
      }
    }
  }
  for (std::size_t s = 0; s < states.size(); ++s) {
    double count = 0.0;
    for (seq_id id : states[s]) count += match[id];
    reward[s] = count;
  }
  return reward;
}

linalg::Vec DerivedModel::state_reward(
    const std::function<double(const std::vector<seq_id>&)>& f) const {
  linalg::Vec reward(states.size(), 0.0);
  for (std::size_t s = 0; s < states.size(); ++s) reward[s] = f(states[s]);
  return reward;
}

// ---------------------------------------------------------------------------
// derive()
// ---------------------------------------------------------------------------

DerivedModel derive(const Model& model, std::string_view system_name,
                    const DeriveOptions& opts) {
  const obs::ScopedTimer obs_timer("pepa/derive");
  const std::uint64_t obs_start_ns = obs::now_ns();
  if (model.definitions.empty()) {
    throw SemanticError("model has no process definitions");
  }
  const ProcessDef* system = system_name.empty()
                                 ? &model.definitions.back()
                                 : model.find_definition(system_name);
  if (system == nullptr) {
    throw SemanticError("unknown system equation '" + std::string(system_name) + "'");
  }

  const auto classes = classify_definitions(model);
  ParamTable params(model);
  for (const auto& [k, v] : opts.param_overrides) params.set(k, v);

  auto actions = std::make_shared<ActionTable>();
  auto seq = std::make_shared<SeqSpace>(model, params, actions);

  TreeBuilder tb{model, *seq, *actions, classes, 0, {}};
  // Root the tree at a *reference* to the system constant, not its body:
  // otherwise a sequential system equation would start in an interned copy
  // of its body, leaving the constant's own derivative as a distinct
  // (transient) state and breaking cyclicity.
  const ProcPtr system_ref = make_constant(system->name);
  const std::unique_ptr<CompNode> root = tb.build(*system_ref);

  std::vector<seq_id> initial;
  collect_initial(*root, initial);
  assert(initial.size() == tb.n_leaves);

  Deriver deriver(*seq, *actions, *root);

  // Breadth-first exploration over leaf vectors.
  std::vector<std::vector<seq_id>> states;
  std::unordered_map<LeafVec, ctmc::index_t, LeafVecHash> index_of;
  std::queue<ctmc::index_t> frontier;
  ctmc::CtmcBuilder builder;

  // Pre-intern labels so builder label ids == action ids.
  std::vector<ctmc::label_t> label_of_action;
  const auto label_for = [&](std::uint32_t a) {
    while (label_of_action.size() <= a) {
      const auto next = static_cast<std::uint32_t>(label_of_action.size());
      label_of_action.push_back(builder.label(actions->name(next)));
    }
    return label_of_action[a];
  };

  states.push_back(initial);
  index_of.emplace(LeafVec{initial}, 0);
  frontier.push(0);

  std::size_t n_transitions = 0;
  std::size_t dedup_hits = 0;
  std::size_t explored = 0;
  // Emit a progress event every 8192 explored states when tracing.
  constexpr std::size_t kProgressMask = 8191;

  while (!frontier.empty()) {
    const ctmc::index_t cur = frontier.front();
    frontier.pop();
    ++explored;
    if ((explored & kProgressMask) == 0 && obs::tracing_on()) {
      const double elapsed_s =
          static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
      obs::TraceEvent ev;
      ev.name = "derive.progress";
      ev.num.emplace_back("states", static_cast<double>(states.size()));
      ev.num.emplace_back("transitions", static_cast<double>(n_transitions));
      ev.num.emplace_back("states_per_sec",
                          elapsed_s > 0.0 ? static_cast<double>(explored) / elapsed_s
                                          : 0.0);
      obs::emit(std::move(ev));
    }
    const std::vector<seq_id> state = states[static_cast<std::size_t>(cur)];
    for (const GlobalMove& mv : deriver.moves(state)) {
      if (mv.rate.passive) {
        throw SemanticError(
            "passive action '" + actions->name(mv.action) +
            "' is enabled at the top level of the model — every synchronised "
            "passive activity needs an active partner");
      }
      std::vector<seq_id> next = state;
      for (const auto& [leaf, term] : mv.updates) next[leaf] = term;
      auto [it, inserted] =
          index_of.emplace(LeafVec{next}, static_cast<ctmc::index_t>(states.size()));
      if (inserted) {
        states.push_back(std::move(next));
        frontier.push(it->second);
        if (states.size() > opts.max_states) {
          throw SemanticError("derivation exceeded the state limit (" +
                              std::to_string(opts.max_states) + " states)");
        }
      } else {
        ++dedup_hits;
      }
      ++n_transitions;
      builder.add(cur, it->second, mv.rate.value, label_for(mv.action));
    }
  }
  builder.ensure_states(static_cast<ctmc::index_t>(states.size()));

  if (obs::metrics_on()) {
    obs::count("pepa.derive.runs");
    obs::count("pepa.derive.states", states.size());
    obs::count("pepa.derive.transitions", n_transitions);
    obs::count("pepa.derive.dedup_hits", dedup_hits);
    obs::gauge_set("pepa.derive.last_states", static_cast<double>(states.size()));
    obs::gauge_set("pepa.derive.last_transitions", static_cast<double>(n_transitions));
    obs::gauge_set(
        "pepa.derive.last_dedup_hit_rate",
        n_transitions > 0 ? static_cast<double>(dedup_hits) /
                                static_cast<double>(n_transitions)
                          : 0.0);
    const double elapsed_s = static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
    obs::gauge_set("pepa.derive.last_states_per_sec",
                   elapsed_s > 0.0 ? static_cast<double>(states.size()) / elapsed_s
                                   : 0.0);
  }

  DerivedModel out;
  out.chain = builder.build();
  out.states = std::move(states);
  out.seq = std::move(seq);
  out.actions = std::move(actions);
  out.n_components = tb.n_leaves;
  return out;
}

}  // namespace tags::pepa
