// State-space derivation: from a parsed PEPA model to a labelled CTMC.
//
// The derivation follows Hillston's operational semantics with apparent
// rates. A model state is the tuple of local derivatives of its sequential
// components (the static cooperation/hiding structure never changes), so we
//  1. intern every reachable sequential derivative ("seq term") once,
//  2. represent a global state as a fixed-length vector of seq-term ids,
//  3. breadth-first explore global states, deriving moves compositionally
//     up the static structure tree with the cooperation rate law
//        R = (r1/ra1) (r2/ra2) min(ra1, ra2),
//     passive rates acting as infinity with probabilistic weights.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "pepa/env.hpp"

namespace tags::pepa {

using seq_id = std::int32_t;

/// Registry of concrete (rate-evaluated) sequential terms. Terms are
/// interned structurally, so syntactically identical derivatives share ids.
class SeqSpace {
 public:
  /// Owns copies of the model and parameter table (and shares the action
  /// table) so a DerivedModel stays self-contained after derive() returns.
  SeqSpace(Model model, ParamTable params, std::shared_ptr<ActionTable> actions);

  struct LocalTrans {
    std::uint32_t action;
    ConcreteRate rate;
    seq_id target;
  };

  /// Concretise an AST term known to be sequential.
  seq_id from_ast(const Process& p);

  /// Enabled activities of a term (memoised; unfolds constants).
  const std::vector<LocalTrans>& transitions(seq_id id);

  /// Printable name: the defining constant's name when the term is a
  /// constant reference, otherwise a rendering of the term.
  [[nodiscard]] std::string name(seq_id id) const;

  /// If the term is exactly a reference to a named constant, that name.
  [[nodiscard]] std::optional<std::string> constant_name(seq_id id) const;

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }

 private:
  struct Term {
    enum class Kind { kPrefix, kChoice, kConst } kind;
    // kPrefix
    std::uint32_t action = 0;
    ConcreteRate rate;
    seq_id cont = -1;
    // kChoice
    seq_id left = -1, right = -1;
    // kConst
    std::int32_t def_index = -1;
  };

  seq_id intern(Term t, std::string key);
  const std::vector<LocalTrans>& transitions_impl(seq_id id, std::vector<char>& visiting);

  Model model_;
  ParamTable params_;
  std::shared_ptr<ActionTable> actions_;
  std::vector<Term> terms_;
  std::vector<std::optional<std::vector<LocalTrans>>> trans_memo_;
  std::unordered_map<std::string, seq_id> interned_;
  std::vector<std::string> alias_stack_;  // guards A = B; B = A; cycles
};

/// Options for derive().
struct DeriveOptions {
  std::size_t max_states = 5'000'000;
  /// Parameter overrides applied on top of the model's own definitions.
  std::vector<std::pair<std::string, double>> param_overrides;
};

/// The derived model: CTMC plus the state <-> local-derivative mapping.
struct DerivedModel {
  ctmc::Ctmc chain;
  /// states[i] = local derivative (seq-term id) of each sequential
  /// component, in left-to-right static order; state 0 is the initial state.
  std::vector<std::vector<seq_id>> states;
  std::shared_ptr<SeqSpace> seq;
  std::shared_ptr<ActionTable> actions;
  std::size_t n_components = 0;

  /// Printable local derivative of component `leaf` in state `state`.
  [[nodiscard]] std::string local_name(std::size_t state, std::size_t leaf) const;

  /// Reward vector: for each state, how many components are currently in a
  /// derivative whose printable name equals `derivative`. This implements
  /// the population counting the paper's Section 3.1 relies on.
  [[nodiscard]] linalg::Vec population_reward(std::string_view derivative) const;

  /// Reward vector from an arbitrary per-state function of local names.
  [[nodiscard]] linalg::Vec state_reward(
      const std::function<double(const std::vector<seq_id>&)>& f) const;
};

/// Derive the CTMC of `system_name` (or the model's last definition when
/// empty). Throws SemanticError on undefined names, passive actions
/// escaping to the top level, unguarded recursion, or state-space blowup.
[[nodiscard]] DerivedModel derive(const Model& model, std::string_view system_name = {},
                                  const DeriveOptions& opts = {});

}  // namespace tags::pepa
