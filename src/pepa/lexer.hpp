// Hand-written lexer for PEPA model text.
//
// Comment styles accepted: `//`, `#`, and `%` to end of line, plus
// `/* ... */` blocks (the PEPA Workbench uses `%`).
#pragma once

#include <stdexcept>
#include <string_view>
#include <vector>

#include "pepa/token.hpp"

namespace tags::pepa {

/// Raised on malformed input (bad characters, unterminated comments, bad
/// numbers). what() includes line/column.
class LexError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Tokenise the whole input. The result always ends with a kEof token.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace tags::pepa
