#include "pepa/printer.hpp"

#include <cmath>

#include "obs/numio.hpp"

namespace tags::pepa {

std::string format_rate(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // to_chars: same bytes as %.17g in the C locale, immune to LC_NUMERIC.
  return numio::format_g(v, 17);
}

namespace {

int precedence(RateExpr::Kind k) {
  switch (k) {
    case RateExpr::Kind::kAdd:
    case RateExpr::Kind::kSub: return 1;
    case RateExpr::Kind::kMul:
    case RateExpr::Kind::kDiv: return 2;
    case RateExpr::Kind::kNeg: return 3;
    default: return 4;
  }
}

std::string print_rate(const RateExpr& e, int parent_prec) {
  using K = RateExpr::Kind;
  std::string body;
  const int prec = precedence(e.kind);
  switch (e.kind) {
    case K::kNumber: body = format_rate(e.number); break;
    case K::kIdent: body = e.ident; break;
    case K::kInfty: body = "infty"; break;
    case K::kNeg: body = "-" + print_rate(*e.lhs, prec); break;
    case K::kAdd: body = print_rate(*e.lhs, prec) + " + " + print_rate(*e.rhs, prec + 1); break;
    case K::kSub: body = print_rate(*e.lhs, prec) + " - " + print_rate(*e.rhs, prec + 1); break;
    case K::kMul: body = print_rate(*e.lhs, prec) + " * " + print_rate(*e.rhs, prec + 1); break;
    case K::kDiv: body = print_rate(*e.lhs, prec) + " / " + print_rate(*e.rhs, prec + 1); break;
  }
  if (prec < parent_prec) return "(" + body + ")";
  return body;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

// Precedence for processes: coop (1) < choice (2) < prefix/hide/atom (3).
std::string print_proc(const Process& p, int parent_prec) {
  using K = Process::Kind;
  std::string body;
  int prec = 3;
  switch (p.kind) {
    case K::kConstant: body = p.name; break;
    case K::kPrefix:
      body = "(" + p.action + ", " + to_string(*p.rate) + ")." +
             print_proc(*p.continuation, 3);
      break;
    case K::kChoice:
      prec = 2;
      body = print_proc(*p.left, 2) + " + " + print_proc(*p.right, 2);
      break;
    case K::kCoop:
      prec = 1;
      body = print_proc(*p.left, 2) + " <" + join(p.action_set) + "> " +
             print_proc(*p.right, 2);
      break;
    case K::kHide:
      body = print_proc(*p.left, 3) + " / {" + join(p.action_set) + "}";
      break;
  }
  if (prec < parent_prec) return "(" + body + ")";
  return body;
}

}  // namespace

std::string to_string(const RateExpr& e) { return print_rate(e, 0); }

std::string to_string(const Process& p) { return print_proc(p, 0); }

std::string to_source(const Model& m) {
  std::string out;
  for (const ParamDef& p : m.params) {
    out += p.name + " = " + to_string(*p.value) + ";\n";
  }
  if (!m.params.empty()) out += "\n";
  for (const ProcessDef& d : m.definitions) {
    out += d.name + " = " + to_string(*d.body) + ";\n";
  }
  return out;
}

}  // namespace tags::pepa
