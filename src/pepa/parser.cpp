#include "pepa/parser.hpp"

#include <cctype>

#include "pepa/lexer.hpp"

namespace tags::pepa {

namespace {

[[nodiscard]] bool is_process_name(std::string_view name) noexcept {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name.front()));
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Model parse_model() {
    Model model;
    while (!at(TokenKind::kEof)) {
      const Token& name = expect(TokenKind::kIdent, "definition name");
      expect(TokenKind::kEquals, "'=' after definition name");
      if (is_process_name(name.text)) {
        model.definitions.push_back({name.text, parse_proc()});
      } else {
        model.params.push_back({name.text, parse_rate_expr()});
      }
      expect(TokenKind::kSemicolon, "';' terminating definition");
    }
    return model;
  }

  ProcPtr parse_single_process() {
    ProcPtr p = parse_proc();
    expect(TokenKind::kEof, "end of input after process expression");
    return p;
  }

 private:
  // -- token plumbing -------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const noexcept {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  [[nodiscard]] bool at(TokenKind k) const noexcept { return peek().kind == k; }
  const Token& advance() noexcept { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool accept(TokenKind k) noexcept {
    if (at(k)) {
      advance();
      return true;
    }
    return false;
  }
  const Token& expect(TokenKind k, const char* what) {
    if (!at(k)) fail(std::string("expected ") + what);
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = peek();
    throw ParseError("parse error at " + std::to_string(t.line) + ":" +
                     std::to_string(t.column) + ": " + msg + " (found " +
                     token_kind_name(t.kind) +
                     (t.text.empty() ? std::string() : " '" + t.text + "'") + ")");
  }

  // -- process grammar ------------------------------------------------------
  ProcPtr parse_proc() {
    ProcPtr left = parse_hideterm();
    for (;;) {
      if (at(TokenKind::kLAngle)) {
        advance();
        std::vector<std::string> set = parse_name_list(TokenKind::kRAngle);
        expect(TokenKind::kRAngle, "'>' closing cooperation set");
        left = make_coop(std::move(left), parse_hideterm(), std::move(set));
      } else if (at(TokenKind::kParallel)) {
        advance();
        left = make_coop(std::move(left), parse_hideterm(), {});
      } else {
        return left;
      }
    }
  }

  ProcPtr parse_hideterm() {
    ProcPtr p = parse_sum();
    while (at(TokenKind::kSlash) && peek(1).kind == TokenKind::kLBrace) {
      advance();  // '/'
      advance();  // '{'
      std::vector<std::string> set = parse_name_list(TokenKind::kRBrace);
      expect(TokenKind::kRBrace, "'}' closing hiding set");
      p = make_hide(std::move(p), std::move(set));
    }
    return p;
  }

  ProcPtr parse_sum() {
    ProcPtr left = parse_seq();
    while (accept(TokenKind::kPlus)) {
      left = make_choice(std::move(left), parse_seq());
    }
    return left;
  }

  ProcPtr parse_seq() {
    if (at(TokenKind::kLParen)) {
      // Two-token lookahead: "(ident ," is an activity prefix, anything else
      // is a parenthesised process expression.
      if (peek(1).kind == TokenKind::kIdent && peek(2).kind == TokenKind::kComma) {
        advance();  // '('
        const Token& action = expect(TokenKind::kIdent, "action name");
        if (is_process_name(action.text)) {
          fail("action names must start with a lowercase letter: '" + action.text + "'");
        }
        expect(TokenKind::kComma, "',' between action and rate");
        RateExprPtr rate = parse_rate_expr();
        expect(TokenKind::kRParen, "')' closing activity");
        expect(TokenKind::kDot, "'.' after activity");
        return make_prefix(action.text, std::move(rate), parse_seq());
      }
      advance();  // '('
      ProcPtr inner = parse_proc();
      expect(TokenKind::kRParen, "')' closing process group");
      return inner;
    }
    const Token& name = expect(TokenKind::kIdent, "process constant or activity");
    if (!is_process_name(name.text)) {
      fail("process constants must start with an uppercase letter: '" + name.text + "'");
    }
    return make_constant(name.text);
  }

  std::vector<std::string> parse_name_list(TokenKind terminator) {
    std::vector<std::string> names;
    if (at(terminator)) return names;  // empty set
    for (;;) {
      const Token& n = expect(TokenKind::kIdent, "action name in set");
      names.push_back(n.text);
      if (!accept(TokenKind::kComma)) break;
    }
    return names;
  }

  // -- rate expressions -----------------------------------------------------
  RateExprPtr parse_rate_expr() { return parse_additive(); }

  RateExprPtr parse_additive() {
    RateExprPtr left = parse_multiplicative();
    for (;;) {
      if (accept(TokenKind::kPlus)) {
        left = rate_binary(RateExpr::Kind::kAdd, std::move(left), parse_multiplicative());
      } else if (accept(TokenKind::kMinus)) {
        left = rate_binary(RateExpr::Kind::kSub, std::move(left), parse_multiplicative());
      } else {
        return left;
      }
    }
  }

  RateExprPtr parse_multiplicative() {
    RateExprPtr left = parse_unary();
    for (;;) {
      if (accept(TokenKind::kStar)) {
        left = rate_binary(RateExpr::Kind::kMul, std::move(left), parse_unary());
      } else if (accept(TokenKind::kSlash)) {
        left = rate_binary(RateExpr::Kind::kDiv, std::move(left), parse_unary());
      } else {
        return left;
      }
    }
  }

  RateExprPtr parse_unary() {
    if (accept(TokenKind::kMinus)) return rate_neg(parse_unary());
    if (at(TokenKind::kNumber)) return rate_number(advance().number);
    if (at(TokenKind::kInfty)) {
      advance();
      return rate_infty();
    }
    if (at(TokenKind::kIdent)) {
      const Token& t = advance();
      if (is_process_name(t.text)) {
        fail("process constant '" + t.text + "' used where a rate was expected");
      }
      return rate_ident(t.text);
    }
    if (accept(TokenKind::kLParen)) {
      RateExprPtr e = parse_additive();
      expect(TokenKind::kRParen, "')' in rate expression");
      return e;
    }
    fail("expected a rate expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Model parse_model(std::string_view source) { return Parser(source).parse_model(); }

ProcPtr parse_process(std::string_view source) {
  return Parser(source).parse_single_process();
}

}  // namespace tags::pepa
