#include "pepa/validate.hpp"

#include <set>
#include <unordered_set>

#include "ctmc/reachability.hpp"

namespace tags::pepa {

namespace {

/// Syntactic action alphabet of a process (through constants, to fixpoint).
void collect_alphabet(const Model& model, const Process& p,
                      std::set<std::string>& out,
                      std::unordered_set<std::string>& seen_consts) {
  using K = Process::Kind;
  switch (p.kind) {
    case K::kPrefix:
      out.insert(p.action);
      collect_alphabet(model, *p.continuation, out, seen_consts);
      break;
    case K::kChoice:
    case K::kCoop:
      collect_alphabet(model, *p.left, out, seen_consts);
      collect_alphabet(model, *p.right, out, seen_consts);
      break;
    case K::kHide:
      collect_alphabet(model, *p.left, out, seen_consts);
      break;
    case K::kConstant: {
      if (!seen_consts.insert(p.name).second) return;
      const ProcessDef* def = model.find_definition(p.name);
      if (def != nullptr) collect_alphabet(model, *def->body, out, seen_consts);
      break;
    }
  }
}

std::set<std::string> alphabet(const Model& model, const Process& p) {
  std::set<std::string> out;
  std::unordered_set<std::string> seen;
  collect_alphabet(model, p, out, seen);
  return out;
}

void check_coop_sets(const Model& model, const Process& p, ValidationReport& report) {
  using K = Process::Kind;
  switch (p.kind) {
    case K::kPrefix:
      check_coop_sets(model, *p.continuation, report);
      break;
    case K::kChoice:
      check_coop_sets(model, *p.left, report);
      check_coop_sets(model, *p.right, report);
      break;
    case K::kCoop: {
      const std::set<std::string> left = alphabet(model, *p.left);
      const std::set<std::string> right = alphabet(model, *p.right);
      for (const std::string& a : p.action_set) {
        if (!left.contains(a) && !right.contains(a)) {
          report.add("cooperation set names action '" + a +
                     "' which neither cooperand can ever perform");
        } else if (!left.contains(a) || !right.contains(a)) {
          // One-sided synchronisation permanently blocks the action — almost
          // always a modelling slip worth flagging.
          report.add("action '" + a +
                     "' is synchronised but only one cooperand can perform it; "
                     "it will be blocked forever");
        }
      }
      check_coop_sets(model, *p.left, report);
      check_coop_sets(model, *p.right, report);
      break;
    }
    case K::kHide:
      check_coop_sets(model, *p.left, report);
      break;
    case K::kConstant:
      break;  // handled when its definition is visited
  }
}

}  // namespace

ValidationReport check_model(const Model& model) {
  ValidationReport report;
  if (model.definitions.empty()) {
    report.add("model defines no processes");
    return report;
  }
  // Parameter evaluation + two-level discipline + defined constants.
  try {
    const ParamTable params(model);
    (void)params;
  } catch (const SemanticError& e) {
    report.add(e.what());
  }
  try {
    (void)classify_definitions(model);
  } catch (const SemanticError& e) {
    report.add(e.what());
    return report;  // further checks would cascade
  }
  for (const ProcessDef& d : model.definitions) {
    check_coop_sets(model, *d.body, report);
  }
  return report;
}

ValidationReport check_derived(const DerivedModel& dm) {
  ValidationReport report;
  if (dm.chain.n_states() == 0) {
    report.add("derived chain has no states");
    return report;
  }
  if (!dm.chain.is_valid_generator()) {
    report.add("generator matrix is malformed (row sums / signs)");
  }
  const auto dead = ctmc::absorbing_states(dm.chain);
  for (const auto s : dead) {
    std::string desc = "deadlock state #" + std::to_string(s) + ": (";
    for (std::size_t l = 0; l < dm.states[static_cast<std::size_t>(s)].size(); ++l) {
      if (l > 0) desc += ", ";
      desc += dm.local_name(static_cast<std::size_t>(s), l);
    }
    desc += ")";
    report.add(std::move(desc));
  }
  if (dead.empty() && !ctmc::is_irreducible(dm.chain)) {
    report.add("chain is not irreducible: the model is not cyclic "
               "(some derivative is transient)");
  }
  return report;
}

}  // namespace tags::pepa
