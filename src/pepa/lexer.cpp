#include "pepa/lexer.hpp"

#include <cctype>
#include <charconv>
#include <string>

namespace tags::pepa {

const char* token_kind_name(TokenKind k) noexcept {
  switch (k) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kInfty: return "infty";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kParallel: return "'||'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const noexcept {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

[[noreturn]] void fail(const Cursor& c, const std::string& msg) {
  throw LexError("lex error at " + std::to_string(c.line()) + ":" +
                 std::to_string(c.column()) + ": " + msg);
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor c(source);

  const auto push = [&](TokenKind k, std::string text = {}, double num = 0.0) {
    out.push_back({k, std::move(text), num, c.line(), c.column()});
  };

  while (!c.done()) {
    const char ch = c.peek();
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      continue;
    }
    // Comments.
    if (ch == '#' || ch == '%' || (ch == '/' && c.peek(1) == '/')) {
      while (!c.done() && c.peek() != '\n') c.advance();
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!(c.peek() == '*' && c.peek(1) == '/')) {
        if (c.done()) fail(c, "unterminated block comment");
        c.advance();
      }
      c.advance();
      c.advance();
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      const std::size_t start = c.pos();
      while (std::isalnum(static_cast<unsigned char>(c.peek())) || c.peek() == '_' ||
             c.peek() == '\'') {
        c.advance();
      }
      std::string text(c.slice(start));
      if (text == "infty" || text == "T") {
        push(TokenKind::kInfty, std::move(text));
      } else {
        push(TokenKind::kIdent, std::move(text));
      }
      continue;
    }
    // Numbers (digits, optional fraction and exponent).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      const std::size_t start = c.pos();
      while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
      if (c.peek() == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1)))) {
        c.advance();
        while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
      }
      if (c.peek() == 'e' || c.peek() == 'E') {
        const char sign = c.peek(1);
        const char digit = (sign == '+' || sign == '-') ? c.peek(2) : sign;
        if (std::isdigit(static_cast<unsigned char>(digit))) {
          c.advance();  // e
          if (c.peek() == '+' || c.peek() == '-') c.advance();
          while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
        }
      }
      const std::string_view text = c.slice(start);
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        fail(c, "bad number literal '" + std::string(text) + "'");
      }
      push(TokenKind::kNumber, std::string(text), value);
      continue;
    }
    // Operators.
    c.advance();
    switch (ch) {
      case '=': push(TokenKind::kEquals); break;
      case ';': push(TokenKind::kSemicolon); break;
      case '(': push(TokenKind::kLParen); break;
      case ')': push(TokenKind::kRParen); break;
      case ',': push(TokenKind::kComma); break;
      case '.': push(TokenKind::kDot); break;
      case '+': push(TokenKind::kPlus); break;
      case '-': push(TokenKind::kMinus); break;
      case '*': push(TokenKind::kStar); break;
      case '/': push(TokenKind::kSlash); break;
      case '<': push(TokenKind::kLAngle); break;
      case '>': push(TokenKind::kRAngle); break;
      case '{': push(TokenKind::kLBrace); break;
      case '}': push(TokenKind::kRBrace); break;
      case '|':
        if (c.peek() == '|') {
          c.advance();
          push(TokenKind::kParallel);
        } else {
          fail(c, "stray '|' (did you mean '||'?)");
        }
        break;
      default:
        fail(c, std::string("unexpected character '") + ch + "'");
    }
  }
  out.push_back({TokenKind::kEof, {}, 0.0, c.line(), c.column()});
  return out;
}

}  // namespace tags::pepa
