// Static and derived-model validation.
//
// The paper (Section 2) restricts attention to *cyclic* models: every
// derivative of the cooperating components remains reachable, i.e. the
// underlying CTMC is irreducible. check_derived() verifies that, plus
// deadlock freedom.
#pragma once

#include <string>
#include <vector>

#include "pepa/derivation.hpp"

namespace tags::pepa {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void add(std::string msg) {
    ok = false;
    problems.push_back(std::move(msg));
  }
};

/// Static checks on a parsed model: constants defined, parameters
/// evaluable, two-level grammar respected, cooperation sets only name
/// actions that the cooperands can perform (a common modelling slip).
[[nodiscard]] ValidationReport check_model(const Model& model);

/// Checks on a derived model: no deadlock states, irreducible chain,
/// generator well-formed.
[[nodiscard]] ValidationReport check_derived(const DerivedModel& dm);

}  // namespace tags::pepa
