// Token stream for the PEPA surface syntax.
#pragma once

#include <cstddef>
#include <string>

namespace tags::pepa {

enum class TokenKind {
  kIdent,     // names: lowercase = rates/actions, Uppercase = process constants
  kNumber,    // floating literal
  kInfty,     // the passive rate symbol ("infty" keyword or "T")
  kEquals,    // =
  kSemicolon, // ;
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kDot,       // .
  kPlus,      // +
  kMinus,     // -
  kStar,      // *
  kSlash,     // /
  kLAngle,    // <
  kRAngle,    // >
  kLBrace,    // {
  kRBrace,    // }
  kParallel,  // ||
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier text / raw number
  double number = 0.0;   // value when kind == kNumber
  std::size_t line = 0;  // 1-based
  std::size_t column = 0;
};

[[nodiscard]] const char* token_kind_name(TokenKind k) noexcept;

}  // namespace tags::pepa
