#include "pepa/env.hpp"

#include <cmath>

namespace tags::pepa {

namespace {

/// Rate values form a linear space over {1, infty}: v + w*infty. Products
/// may not multiply two infty terms; divisions may not divide by infty.
struct LinRate {
  double value = 0.0;
  double infty = 0.0;
};

LinRate eval_lin(const RateExpr& e, const ParamTable& params) {
  using K = RateExpr::Kind;
  switch (e.kind) {
    case K::kNumber: return {e.number, 0.0};
    case K::kIdent: return {params.value(e.ident), 0.0};
    case K::kInfty: return {0.0, 1.0};
    case K::kNeg: {
      const LinRate a = eval_lin(*e.lhs, params);
      return {-a.value, -a.infty};
    }
    case K::kAdd: {
      const LinRate a = eval_lin(*e.lhs, params);
      const LinRate b = eval_lin(*e.rhs, params);
      return {a.value + b.value, a.infty + b.infty};
    }
    case K::kSub: {
      const LinRate a = eval_lin(*e.lhs, params);
      const LinRate b = eval_lin(*e.rhs, params);
      return {a.value - b.value, a.infty - b.infty};
    }
    case K::kMul: {
      const LinRate a = eval_lin(*e.lhs, params);
      const LinRate b = eval_lin(*e.rhs, params);
      if (a.infty != 0.0 && b.infty != 0.0) {
        throw SemanticError("rate expression multiplies infty by infty");
      }
      if (a.infty != 0.0) return {0.0, a.infty * b.value};
      if (b.infty != 0.0) return {0.0, b.infty * a.value};
      return {a.value * b.value, 0.0};
    }
    case K::kDiv: {
      const LinRate a = eval_lin(*e.lhs, params);
      const LinRate b = eval_lin(*e.rhs, params);
      if (b.infty != 0.0) throw SemanticError("rate expression divides by infty");
      if (b.value == 0.0) throw SemanticError("rate expression divides by zero");
      return {a.value / b.value, a.infty / b.value};
    }
  }
  throw SemanticError("corrupt rate expression");
}

}  // namespace

ActionTable::ActionTable() {
  names_.emplace_back("tau");
  ids_.emplace("tau", 0);
}

std::uint32_t ActionTable::intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

std::int64_t ActionTable::find(std::string_view name) const noexcept {
  const auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : static_cast<std::int64_t>(it->second);
}

ParamTable::ParamTable(const Model& model) {
  // Evaluate in definition order so later parameters can use earlier ones.
  for (const ParamDef& p : model.params) {
    if (values_.contains(p.name)) {
      throw SemanticError("parameter '" + p.name + "' defined twice");
    }
    const ConcreteRate r = eval_rate(*p.value, *this);
    if (r.passive) {
      throw SemanticError("parameter '" + p.name + "' evaluates to a passive rate");
    }
    values_.emplace(p.name, r.value);
  }
}

double ParamTable::value(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  if (it == values_.end()) {
    throw SemanticError("unknown rate parameter '" + std::string(name) + "'");
  }
  return it->second;
}

bool ParamTable::contains(std::string_view name) const noexcept {
  return values_.contains(std::string(name));
}

void ParamTable::set(std::string name, double value) {
  values_[std::move(name)] = value;
}

ConcreteRate eval_rate(const RateExpr& expr, const ParamTable& params) {
  const auto lin = eval_lin(expr, params);
  if (lin.infty != 0.0) {
    if (lin.value != 0.0) {
      throw SemanticError("rate expression mixes a finite part with infty");
    }
    if (lin.infty <= 0.0 || !std::isfinite(lin.infty)) {
      throw SemanticError("passive weight must be positive and finite");
    }
    return ConcreteRate::make_passive(lin.infty);
  }
  if (!(lin.value > 0.0) || !std::isfinite(lin.value)) {
    throw SemanticError("activity rate must be positive and finite (got " +
                        std::to_string(lin.value) + ")");
  }
  return ConcreteRate::active(lin.value);
}

namespace {

enum class Mark { kInProgress, kSequential, kComposite };

class Classifier {
 public:
  explicit Classifier(const Model& model) : model_(model) {}

  ProcClass classify_def(const std::string& name) {
    const auto it = marks_.find(name);
    if (it != marks_.end()) {
      // Recursion through a definition under classification: legal only for
      // sequential components (e.g. P = (a,r).P). Assume sequential; a
      // composite body will override and be caught below.
      if (it->second == Mark::kInProgress) return ProcClass::kSequential;
      return it->second == Mark::kSequential ? ProcClass::kSequential
                                             : ProcClass::kComposite;
    }
    const ProcessDef* def = model_.find_definition(name);
    if (def == nullptr) {
      throw SemanticError("undefined process constant '" + name + "'");
    }
    marks_[name] = Mark::kInProgress;
    const ProcClass c = classify(*def->body);
    marks_[name] = c == ProcClass::kSequential ? Mark::kSequential : Mark::kComposite;
    return c;
  }

  ProcClass classify(const Process& p) {
    using K = Process::Kind;
    switch (p.kind) {
      case K::kPrefix: {
        const ProcClass c = classify(*p.continuation);
        if (c == ProcClass::kComposite) {
          throw SemanticError("cooperation/hiding under an activity prefix ('" +
                              p.action + "') violates PEPA's grammar");
        }
        return ProcClass::kSequential;
      }
      case K::kChoice: {
        if (classify(*p.left) == ProcClass::kComposite ||
            classify(*p.right) == ProcClass::kComposite) {
          throw SemanticError("cooperation/hiding under '+' violates PEPA's grammar");
        }
        return ProcClass::kSequential;
      }
      case K::kConstant: return classify_def(p.name);
      case K::kCoop: {
        classify(*p.left);
        classify(*p.right);
        return ProcClass::kComposite;
      }
      case K::kHide: {
        classify(*p.left);
        return ProcClass::kComposite;
      }
    }
    throw SemanticError("corrupt process term");
  }

  std::unordered_map<std::string, Mark> marks_;

 private:
  const Model& model_;
};

}  // namespace

std::unordered_map<std::string, ProcClass> classify_definitions(const Model& model) {
  Classifier cl(model);
  for (const ProcessDef& d : model.definitions) cl.classify_def(d.name);
  std::unordered_map<std::string, ProcClass> out;
  for (const auto& [name, mark] : cl.marks_) {
    out.emplace(name, mark == Mark::kComposite ? ProcClass::kComposite
                                               : ProcClass::kSequential);
  }
  return out;
}

}  // namespace tags::pepa
