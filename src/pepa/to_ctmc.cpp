#include "pepa/to_ctmc.hpp"

#include "obs/obs.hpp"
#include "pepa/parser.hpp"
#include "pepa/validate.hpp"

namespace tags::pepa {

double SolvedModel::population_mean(std::string_view derivative) const {
  const linalg::Vec reward = model.population_reward(derivative);
  return ctmc::expected_reward(pi, reward);
}

double SolvedModel::action_throughput(std::string_view action) const {
  return ctmc::throughput(model.chain, pi, action);
}

double SolvedModel::state_probability(
    const std::function<bool(const std::vector<seq_id>&)>& pred) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < model.states.size(); ++s) {
    if (pred(model.states[s])) acc += pi[s];
  }
  return acc;
}

SolvedModel solve(DerivedModel dm, const ctmc::SteadyStateOptions& opts) {
  const obs::ScopedTimer obs_timer("pepa/solve");
  {
    const obs::ScopedTimer validate_timer("validate");
    const ValidationReport report = check_derived(dm);
    if (!report.ok) {
      std::string msg = "model failed validation:";
      for (const std::string& p : report.problems) msg += "\n  - " + p;
      throw SemanticError(msg);
    }
  }
  SolvedModel out;
  out.solve_info = ctmc::steady_state(dm.chain, opts);
  if (!out.solve_info.converged) {
    throw SemanticError("steady-state solver failed to converge (residual " +
                        std::to_string(out.solve_info.residual) + ")");
  }
  out.pi = out.solve_info.pi;
  out.model = std::move(dm);
  return out;
}

SolvedModel solve_source(std::string_view source, std::string_view system_name,
                         const DeriveOptions& dopts,
                         const ctmc::SteadyStateOptions& sopts) {
  const Model model = [&] {
    const obs::ScopedTimer parse_timer("pepa/parse");
    return parse_model(source);
  }();
  return solve(derive(model, system_name, dopts), sopts);
}

}  // namespace tags::pepa
