// Semantic environment for a parsed PEPA model: parameter evaluation,
// action interning, rate evaluation (with passive arithmetic), and the
// sequential/composite classification that enforces PEPA's two-level
// grammar discipline.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pepa/ast.hpp"

namespace tags::pepa {

class SemanticError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A rate that is either active (finite value > 0) or passive (a weight on
/// the unspecified-rate symbol infty).
struct ConcreteRate {
  bool passive = false;
  double value = 0.0;  ///< active rate, or passive weight

  [[nodiscard]] static ConcreteRate active(double v) { return {false, v}; }
  [[nodiscard]] static ConcreteRate make_passive(double w) { return {true, w}; }
};

/// Interned action names. Id 0 is always "tau" (the hidden action).
class ActionTable {
 public:
  ActionTable();
  std::uint32_t intern(std::string_view name);
  [[nodiscard]] const std::string& name(std::uint32_t id) const { return names_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  /// -1 when unknown.
  [[nodiscard]] std::int64_t find(std::string_view name) const noexcept;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

inline constexpr std::uint32_t kTauAction = 0;

/// Evaluated parameter table. Parameters may reference earlier parameters;
/// cycles and unknown names raise SemanticError.
class ParamTable {
 public:
  explicit ParamTable(const Model& model);
  [[nodiscard]] double value(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Override a parameter after construction (used to re-derive a model at
  /// a different parameter point without reparsing).
  void set(std::string name, double value);

 private:
  std::unordered_map<std::string, double> values_;
};

/// Evaluate a rate expression to a concrete rate. Passive rates must be of
/// the form w * infty with w > 0; active rates must be > 0 and finite.
[[nodiscard]] ConcreteRate eval_rate(const RateExpr& expr, const ParamTable& params);

/// PEPA two-level classification.
enum class ProcClass { kSequential, kComposite };

/// Classify every process definition of the model and check discipline:
/// cooperation/hiding may not occur under prefix or choice, and recursion
/// through cooperation is rejected. Returns per-definition classes keyed by
/// definition name.
[[nodiscard]] std::unordered_map<std::string, ProcClass> classify_definitions(
    const Model& model);

}  // namespace tags::pepa
