// Fluid-flow (population/ODE) translation of PEPA models — the analysis
// route of Section 3.1 (Hillston, QEST 2005; the Dizzy tool): instead of
// deriving the CTMC, count how many components of each kind sit in each
// local derivative and integrate mean-field ODEs. State-space cost becomes
// independent of bank sizes, which is exactly why the paper introduces the
// place-per-slot model of Figure 4.
//
// Supported model shape (checked, SemanticError otherwise):
//   * the system equation is a cooperation tree whose leaves are sequential
//     components; leaves combined by "<>"/"||" with IDENTICAL initial
//     derivatives are merged into one population group;
//   * for every synchronised action, at most ONE group participates with
//     active rates — all other participants must be passive (this covers
//     the queueing idiom of Figure 4, where queue slots are passive and
//     servers/timers carry the rates).
//
// Semantics: for each action a the fluid rate is
//   rate_a(x) = R_act(a, x) * prod_{passive groups} min(1, enabled_a(x))
// where R_act is the active group's apparent rate (sum over enabled local
// transitions of rate * population) and enabled_a counts passive-enabled
// components. Flows distribute proportionally within each group. Gating
// passive participation with min(1, .) is the usual mean-field closure; it
// is exact for independent banks and an approximation under contention.
#pragma once

#include "fluid/ode.hpp"
#include "pepa/derivation.hpp"

namespace tags::pepa {

/// A population group: `count` identical sequential components, with
/// `derivatives` listing the reachable local states (seq ids).
struct FluidGroup {
  unsigned count = 1;
  std::vector<seq_id> derivatives;
  seq_id initial = -1;
};

class FluidModel {
 public:
  /// Translate. `system_name` empty = last definition.
  FluidModel(const Model& model, std::string_view system_name = {},
             const DeriveOptions& opts = {});

  [[nodiscard]] const std::vector<FluidGroup>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// Initial condition: each group's full population in its initial
  /// derivative.
  [[nodiscard]] fluid::Vec initial() const;

  /// The ODE right-hand side dx/dt = f(x).
  [[nodiscard]] fluid::OdeRhs rhs() const;

  /// Index of the population variable for (group, derivative), -1 if the
  /// derivative is not reachable in that group.
  [[nodiscard]] std::int64_t variable(std::size_t group, seq_id derivative) const;

  /// Total population over all groups currently in a derivative whose
  /// printable name equals `name` (mirrors DerivedModel::population_reward).
  [[nodiscard]] double population(const fluid::Vec& x, std::string_view name) const;

  /// Printable name of a local derivative.
  [[nodiscard]] std::string derivative_name(seq_id id) const { return seq_->name(id); }

  /// Fixed point by integration (thin wrapper over fluid::integrate_to_steady).
  [[nodiscard]] fluid::SteadyStateOde steady_state(double tol = 1e-6) const;

 private:
  struct LocalMove {
    std::size_t group;
    std::size_t var_from;   // variable indices
    std::size_t var_to;
    double rate_or_weight;  // active rate, or passive weight
    bool passive;
  };
  /// One fluid transition class per action id.
  struct ActionClass {
    std::uint32_t action;
    std::size_t active_group;              // the unique active participant
    std::vector<LocalMove> active_moves;   // its enabled local transitions
    std::vector<std::size_t> passive_groups;
    std::vector<LocalMove> passive_moves;  // all passive participants' moves
    /// Distinct source variables per passive group (for the min(1, .) gate).
    std::vector<std::vector<std::size_t>> passive_sources;
    bool synced = false;                   // false => purely local action
  };

  std::shared_ptr<ActionTable> actions_;
  std::shared_ptr<SeqSpace> seq_;
  std::vector<FluidGroup> groups_;
  std::vector<std::vector<std::pair<seq_id, std::size_t>>> var_index_;  // per group
  std::size_t dim_ = 0;
  std::vector<ActionClass> classes_;
};

}  // namespace tags::pepa
