// Pretty-printing of PEPA terms and models (debugging, round-trip tests,
// and generated model sources).
#pragma once

#include <string>

#include "pepa/ast.hpp"

namespace tags::pepa {

/// Compact numeric formatting: integers print without a decimal point,
/// everything else with enough digits to round-trip.
[[nodiscard]] std::string format_rate(double v);

[[nodiscard]] std::string to_string(const RateExpr& e);
[[nodiscard]] std::string to_string(const Process& p);

/// Full model source (parameters, then definitions, in order). The output
/// re-parses to an equivalent model.
[[nodiscard]] std::string to_source(const Model& m);

}  // namespace tags::pepa
