#include "pepa/ast.hpp"

namespace tags::pepa {

RateExprPtr rate_number(double v) {
  auto e = std::make_shared<RateExpr>();
  e->kind = RateExpr::Kind::kNumber;
  e->number = v;
  return e;
}

RateExprPtr rate_ident(std::string name) {
  auto e = std::make_shared<RateExpr>();
  e->kind = RateExpr::Kind::kIdent;
  e->ident = std::move(name);
  return e;
}

RateExprPtr rate_infty() {
  auto e = std::make_shared<RateExpr>();
  e->kind = RateExpr::Kind::kInfty;
  return e;
}

RateExprPtr rate_binary(RateExpr::Kind op, RateExprPtr l, RateExprPtr r) {
  auto e = std::make_shared<RateExpr>();
  e->kind = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

RateExprPtr rate_neg(RateExprPtr inner) {
  auto e = std::make_shared<RateExpr>();
  e->kind = RateExpr::Kind::kNeg;
  e->lhs = std::move(inner);
  return e;
}

ProcPtr make_prefix(std::string action, RateExprPtr rate, ProcPtr cont) {
  auto p = std::make_shared<Process>();
  p->kind = Process::Kind::kPrefix;
  p->action = std::move(action);
  p->rate = std::move(rate);
  p->continuation = std::move(cont);
  return p;
}

ProcPtr make_choice(ProcPtr l, ProcPtr r) {
  auto p = std::make_shared<Process>();
  p->kind = Process::Kind::kChoice;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

ProcPtr make_constant(std::string name) {
  auto p = std::make_shared<Process>();
  p->kind = Process::Kind::kConstant;
  p->name = std::move(name);
  return p;
}

ProcPtr make_coop(ProcPtr l, ProcPtr r, std::vector<std::string> set) {
  auto p = std::make_shared<Process>();
  p->kind = Process::Kind::kCoop;
  p->left = std::move(l);
  p->right = std::move(r);
  p->action_set = std::move(set);
  return p;
}

ProcPtr make_hide(ProcPtr inner, std::vector<std::string> set) {
  auto p = std::make_shared<Process>();
  p->kind = Process::Kind::kHide;
  p->left = std::move(inner);
  p->action_set = std::move(set);
  return p;
}

const ProcessDef* Model::find_definition(std::string_view name) const noexcept {
  for (const ProcessDef& d : definitions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const ParamDef* Model::find_param(std::string_view name) const noexcept {
  for (const ParamDef& d : params) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace tags::pepa
