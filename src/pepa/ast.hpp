// Abstract syntax for PEPA models.
//
// Rate expressions are symbolic (parameters are looked up at derivation
// time) and may be "passive": a linear multiple of the unspecified-rate
// symbol infty (the paper's ⊤). Process terms follow the PEPA grammar
//   P ::= (alpha, r).P | P + Q | P/L | P <L> Q | A
// with the usual two-level discipline (cooperation/hiding must not appear
// under prefix or choice) enforced semantically, not grammatically.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace tags::pepa {

// ---------------------------------------------------------------------------
// Rate expressions
// ---------------------------------------------------------------------------

struct RateExpr;
using RateExprPtr = std::shared_ptr<const RateExpr>;

struct RateExpr {
  enum class Kind { kNumber, kIdent, kInfty, kAdd, kSub, kMul, kDiv, kNeg };
  Kind kind;
  double number = 0.0;   // kNumber
  std::string ident;     // kIdent
  RateExprPtr lhs, rhs;  // binary ops; kNeg uses lhs only
};

[[nodiscard]] RateExprPtr rate_number(double v);
[[nodiscard]] RateExprPtr rate_ident(std::string name);
[[nodiscard]] RateExprPtr rate_infty();
[[nodiscard]] RateExprPtr rate_binary(RateExpr::Kind op, RateExprPtr l, RateExprPtr r);
[[nodiscard]] RateExprPtr rate_neg(RateExprPtr e);

// ---------------------------------------------------------------------------
// Process terms
// ---------------------------------------------------------------------------

struct Process;
using ProcPtr = std::shared_ptr<const Process>;

struct Process {
  enum class Kind { kPrefix, kChoice, kConstant, kCoop, kHide };
  Kind kind;

  // kPrefix
  std::string action;
  RateExprPtr rate;
  ProcPtr continuation;

  // kChoice / kCoop
  ProcPtr left, right;

  // kCoop (cooperation set) / kHide (hidden set)
  std::vector<std::string> action_set;

  // kConstant
  std::string name;
};

[[nodiscard]] ProcPtr make_prefix(std::string action, RateExprPtr rate, ProcPtr cont);
[[nodiscard]] ProcPtr make_choice(ProcPtr l, ProcPtr r);
[[nodiscard]] ProcPtr make_constant(std::string name);
[[nodiscard]] ProcPtr make_coop(ProcPtr l, ProcPtr r, std::vector<std::string> set);
[[nodiscard]] ProcPtr make_hide(ProcPtr p, std::vector<std::string> set);

// ---------------------------------------------------------------------------
// Whole model
// ---------------------------------------------------------------------------

struct ParamDef {
  std::string name;
  RateExprPtr value;  // may reference earlier parameters
};

struct ProcessDef {
  std::string name;  // Uppercase-initial identifier
  ProcPtr body;
};

/// A parsed model: parameters, process definitions, in source order. The
/// "system equation" is a process definition chosen by name at derivation
/// time (defaulting to the last definition, the Workbench convention).
struct Model {
  std::vector<ParamDef> params;
  std::vector<ProcessDef> definitions;

  [[nodiscard]] const ProcessDef* find_definition(std::string_view name) const noexcept;
  [[nodiscard]] const ParamDef* find_param(std::string_view name) const noexcept;
};

}  // namespace tags::pepa
