// Convenience layer: solve a derived PEPA model and query the measures the
// paper uses (population means, action throughputs, probabilities).
#pragma once

#include <functional>
#include <string_view>

#include "ctmc/measures.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/derivation.hpp"

namespace tags::pepa {

/// A derived model together with its stationary distribution.
struct SolvedModel {
  DerivedModel model;
  linalg::Vec pi;
  ctmc::SteadyStateResult solve_info;

  /// Mean number of components currently in the named local derivative.
  [[nodiscard]] double population_mean(std::string_view derivative) const;

  /// Steady-state throughput of an action (by name), counting self-loops.
  [[nodiscard]] double action_throughput(std::string_view action) const;

  /// Probability that the state satisfies a predicate over local
  /// derivatives (given as seq-term ids; use model.seq->name to match).
  [[nodiscard]] double state_probability(
      const std::function<bool(const std::vector<seq_id>&)>& pred) const;
};

/// Derive (if needed) and solve for the stationary distribution. Throws
/// SemanticError when the model fails validation (deadlock / reducible).
[[nodiscard]] SolvedModel solve(DerivedModel dm,
                                const ctmc::SteadyStateOptions& opts = {});

/// One-stop: parse text -> derive -> solve.
[[nodiscard]] SolvedModel solve_source(std::string_view source,
                                       std::string_view system_name = {},
                                       const DeriveOptions& dopts = {},
                                       const ctmc::SteadyStateOptions& sopts = {});

}  // namespace tags::pepa
