#include "pepa/fluid.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "pepa/parser.hpp"

namespace tags::pepa {

namespace {

/// Flatten the system equation into sequential leaves (with the composite
/// constants expanded) and the union of all cooperation-set action names.
struct Flattener {
  const Model& model;
  const std::unordered_map<std::string, ProcClass>& classes;
  std::vector<const Process*> leaves;
  std::set<std::string> coop_actions;
  std::vector<std::string> expansion_stack;

  void walk(const Process& p) {
    using K = Process::Kind;
    switch (p.kind) {
      case K::kCoop:
        for (const std::string& a : p.action_set) coop_actions.insert(a);
        walk(*p.left);
        walk(*p.right);
        return;
      case K::kHide:
        throw SemanticError("fluid translation does not support hiding");
      case K::kConstant: {
        const auto it = classes.find(p.name);
        if (it != classes.end() && it->second == ProcClass::kComposite) {
          if (std::find(expansion_stack.begin(), expansion_stack.end(), p.name) !=
              expansion_stack.end()) {
            throw SemanticError("recursive composite constant '" + p.name + "'");
          }
          const ProcessDef* def = model.find_definition(p.name);
          expansion_stack.push_back(p.name);
          walk(*def->body);
          expansion_stack.pop_back();
          return;
        }
        leaves.push_back(&p);
        return;
      }
      case K::kPrefix:
      case K::kChoice:
        leaves.push_back(&p);
        return;
    }
  }
};

}  // namespace

FluidModel::FluidModel(const Model& model, std::string_view system_name,
                       const DeriveOptions& opts) {
  if (model.definitions.empty()) {
    throw SemanticError("model has no process definitions");
  }
  const ProcessDef* system = system_name.empty() ? &model.definitions.back()
                                                 : model.find_definition(system_name);
  if (system == nullptr) {
    throw SemanticError("unknown system equation '" + std::string(system_name) + "'");
  }
  const auto classes = classify_definitions(model);
  ParamTable params(model);
  for (const auto& [k, v] : opts.param_overrides) params.set(k, v);
  actions_ = std::make_shared<ActionTable>();
  seq_ = std::make_shared<SeqSpace>(model, params, actions_);

  Flattener fl{model, classes, {}, {}, {}};
  const ProcPtr root = make_constant(system->name);
  fl.walk(classes.at(system->name) == ProcClass::kComposite ? *system->body : *root);

  // Merge identical leaves (same initial derivative) into population groups.
  std::vector<seq_id> initials;
  for (const Process* leaf : fl.leaves) initials.push_back(seq_->from_ast(*leaf));
  for (seq_id init : initials) {
    bool merged = false;
    for (FluidGroup& g : groups_) {
      if (g.initial == init) {
        ++g.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      FluidGroup g;
      g.initial = init;
      groups_.push_back(g);
    }
  }

  // Reachable local derivatives per group (BFS over local transitions).
  var_index_.resize(groups_.size());
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    FluidGroup& g = groups_[gi];
    std::queue<seq_id> frontier;
    std::set<seq_id> seen{g.initial};
    frontier.push(g.initial);
    while (!frontier.empty()) {
      const seq_id s = frontier.front();
      frontier.pop();
      g.derivatives.push_back(s);
      for (const SeqSpace::LocalTrans& tr : seq_->transitions(s)) {
        if (seen.insert(tr.target).second) frontier.push(tr.target);
      }
    }
    std::sort(g.derivatives.begin(), g.derivatives.end());
    for (seq_id s : g.derivatives) {
      var_index_[gi].emplace_back(s, dim_++);
    }
  }

  // Synced action ids.
  std::set<std::uint32_t> synced;
  for (const std::string& a : fl.coop_actions) synced.insert(actions_->intern(a));

  // Collect per-(group, action) moves.
  struct GroupMoves {
    std::vector<LocalMove> active;
    std::vector<LocalMove> passive;
  };
  // action -> group -> moves
  std::map<std::uint32_t, std::map<std::size_t, GroupMoves>> by_action;
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    for (seq_id s : groups_[gi].derivatives) {
      for (const SeqSpace::LocalTrans& tr : seq_->transitions(s)) {
        LocalMove mv;
        mv.group = gi;
        mv.var_from = static_cast<std::size_t>(variable(gi, s));
        mv.var_to = static_cast<std::size_t>(variable(gi, tr.target));
        mv.rate_or_weight = tr.rate.value;
        mv.passive = tr.rate.passive;
        auto& slot = by_action[tr.action][gi];
        (mv.passive ? slot.passive : slot.active).push_back(mv);
      }
    }
  }

  // Build the fluid transition classes.
  for (auto& [action, group_moves] : by_action) {
    const bool is_synced = synced.contains(action);
    if (!is_synced) {
      for (auto& [gi, moves] : group_moves) {
        if (!moves.passive.empty()) {
          throw SemanticError("passive action '" + actions_->name(action) +
                              "' is not synchronised with any active partner");
        }
        ActionClass cls;
        cls.action = action;
        cls.active_group = gi;
        cls.active_moves = moves.active;
        cls.synced = false;
        classes_.push_back(std::move(cls));
      }
      continue;
    }
    ActionClass cls;
    cls.action = action;
    cls.synced = true;
    std::size_t n_active_groups = 0;
    for (auto& [gi, moves] : group_moves) {
      if (!moves.active.empty() && !moves.passive.empty()) {
        throw SemanticError("group mixes active and passive '" +
                            actions_->name(action) + "' moves");
      }
      if (!moves.active.empty()) {
        ++n_active_groups;
        cls.active_group = gi;
        cls.active_moves = moves.active;
      } else {
        cls.passive_groups.push_back(gi);
        std::set<std::size_t> sources;
        for (const LocalMove& mv : moves.passive) {
          cls.passive_moves.push_back(mv);
          sources.insert(mv.var_from);
        }
        cls.passive_sources.emplace_back(sources.begin(), sources.end());
      }
    }
    if (n_active_groups == 0) {
      throw SemanticError("synchronised action '" + actions_->name(action) +
                          "' has no active participant");
    }
    if (n_active_groups > 1) {
      throw SemanticError(
          "fluid translation requires a unique active participant for '" +
          actions_->name(action) + "' (found " + std::to_string(n_active_groups) + ")");
    }
    classes_.push_back(std::move(cls));
  }
}

std::int64_t FluidModel::variable(std::size_t group, seq_id derivative) const {
  for (const auto& [s, idx] : var_index_[group]) {
    if (s == derivative) return static_cast<std::int64_t>(idx);
  }
  return -1;
}

fluid::Vec FluidModel::initial() const {
  fluid::Vec x(dim_, 0.0);
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    x[static_cast<std::size_t>(variable(gi, groups_[gi].initial))] =
        static_cast<double>(groups_[gi].count);
  }
  return x;
}

fluid::OdeRhs FluidModel::rhs() const {
  // Capture by value: the classes table is the whole semantics.
  const std::vector<ActionClass> classes = classes_;
  return [classes](double /*t*/, const fluid::Vec& x, fluid::Vec& dx) {
    std::fill(dx.begin(), dx.end(), 0.0);
    const auto pop = [&x](std::size_t v) { return std::max(x[v], 0.0); };
    for (const ActionClass& cls : classes) {
      // Passive gate: every passive participant must have someone enabled.
      double gate = 1.0;
      for (const auto& sources : cls.passive_sources) {
        double enabled = 0.0;
        for (std::size_t v : sources) enabled += pop(v);
        gate = std::min(gate, enabled);
        if (gate <= 0.0) break;
      }
      if (gate <= 0.0) continue;
      // Active flows: rate r * x_from, scaled by the gate.
      double total_rate = 0.0;
      for (const LocalMove& mv : cls.active_moves) {
        const double flow = gate * mv.rate_or_weight * pop(mv.var_from);
        if (flow <= 0.0) continue;
        total_rate += flow;
        dx[mv.var_from] -= flow;
        dx[mv.var_to] += flow;
      }
      if (total_rate <= 0.0 || cls.passive_moves.empty()) continue;
      // Passive flows: the total rate distributed over enabled passive
      // moves proportionally to weight * population, per passive group.
      for (std::size_t pg = 0; pg < cls.passive_groups.size(); ++pg) {
        double denom = 0.0;
        for (const LocalMove& mv : cls.passive_moves) {
          if (mv.group == cls.passive_groups[pg]) {
            denom += mv.rate_or_weight * pop(mv.var_from);
          }
        }
        if (denom <= 0.0) continue;
        for (const LocalMove& mv : cls.passive_moves) {
          if (mv.group != cls.passive_groups[pg]) continue;
          const double flow =
              total_rate * (mv.rate_or_weight * pop(mv.var_from)) / denom;
          dx[mv.var_from] -= flow;
          dx[mv.var_to] += flow;
        }
      }
    }
  };
}

double FluidModel::population(const fluid::Vec& x, std::string_view name) const {
  double acc = 0.0;
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    for (const auto& [s, idx] : var_index_[gi]) {
      if (seq_->name(s) == name) acc += x[idx];
    }
  }
  return acc;
}

fluid::SteadyStateOde FluidModel::steady_state(double tol) const {
  return fluid::integrate_to_steady(rhs(), initial(), tol, 1e5);
}

}  // namespace tags::pepa
