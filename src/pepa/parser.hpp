// Recursive-descent parser for PEPA model text.
//
// Naming convention (PEPA Workbench style): identifiers starting with a
// lowercase letter are rate parameters or action names; identifiers
// starting with an uppercase letter are process constants. A top-level
// definition `x = <expr>;` is a parameter when x is lowercase and a process
// definition when x is uppercase.
//
// Grammar (informal):
//   model    := definition*
//   defn     := IDENT '=' (rate_expr | proc) ';'
//   proc     := hideterm (coop_op hideterm)*          -- left associative
//   coop_op  := '<' [ names ] '>' | '||'
//   hideterm := sum ('/' '{' names '}')*
//   sum      := seq ('+' seq)*
//   seq      := '(' IDENT ',' rate_expr ')' '.' seq   -- prefix
//             | '(' proc ')'
//             | IDENT                                  -- constant
//   rate_expr: usual arithmetic on numbers/idents, with `infty` (or `T`)
//              usable so that the whole expression is w * infty for a
//              positive weight w (checked at evaluation time).
#pragma once

#include <stdexcept>
#include <string_view>

#include "pepa/ast.hpp"

namespace tags::pepa {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a whole model. Throws LexError / ParseError on bad input.
[[nodiscard]] Model parse_model(std::string_view source);

/// Parse a single process expression (for tests / tools).
[[nodiscard]] ProcPtr parse_process(std::string_view source);

}  // namespace tags::pepa
