#include "ctmc/measures.hpp"

#include "ctmc/generator.hpp"

namespace tags::ctmc {

double expected_reward(std::span<const double> pi, std::span<const double> reward) {
  return linalg::dot(pi, reward);
}

double expected_value(std::span<const double> pi,
                      const std::function<double(index_t)>& f) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    acc += pi[i] * f(static_cast<index_t>(i));
  }
  return acc;
}

double probability(std::span<const double> pi, const std::function<bool(index_t)>& pred) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pred(static_cast<index_t>(i))) acc += pi[i];
  }
  return acc;
}

double throughput(const Ctmc& chain, std::span<const double> pi, label_t label) {
  double acc = 0.0;
  for (const Transition& t : chain.transitions()) {
    if (t.label == label) acc += t.rate * pi[static_cast<std::size_t>(t.from)];
  }
  return acc;
}

double throughput(const Ctmc& chain, std::span<const double> pi,
                  std::string_view label_name) {
  const std::int64_t id = chain.find_label(label_name);
  if (id < 0) return 0.0;
  return throughput(chain, pi, static_cast<label_t>(id));
}

double throughput(const GeneratorCtmc& chain, std::span<const double> pi,
                  label_t label) {
  return chain.throughput(pi, label);
}

double throughput(const GeneratorCtmc& chain, std::span<const double> pi,
                  std::string_view label_name) {
  return chain.throughput(pi, label_name);
}

BasicMeasures evaluate(const GeneratorCtmc& chain, std::span<const double> pi,
                       const MeasureSpec& spec) {
  BasicMeasures m;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const index_t s = static_cast<index_t>(i);
    const double q1 = spec.queue1 ? spec.queue1(s) : 0.0;
    m.mean_q1 += pi[i] * q1;
    if (q1 >= 1.0) m.utilisation1 += pi[i];
    if (spec.queue2) {
      const double q2 = spec.queue2(s);
      m.mean_q2 += pi[i] * q2;
      if (q2 >= 1.0) m.utilisation2 += pi[i];
    }
  }
  for (const std::string& l : spec.service_labels) {
    m.throughput += chain.throughput(pi, l);
  }
  for (const std::string& l : spec.loss1_labels) {
    m.loss1_rate += chain.throughput(pi, l);
  }
  for (const std::string& l : spec.loss2_labels) {
    m.loss2_rate += chain.throughput(pi, l);
  }
  return m;
}

}  // namespace tags::ctmc
