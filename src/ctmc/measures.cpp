#include "ctmc/measures.hpp"

namespace tags::ctmc {

double expected_reward(std::span<const double> pi, std::span<const double> reward) {
  return linalg::dot(pi, reward);
}

double expected_value(std::span<const double> pi,
                      const std::function<double(index_t)>& f) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    acc += pi[i] * f(static_cast<index_t>(i));
  }
  return acc;
}

double probability(std::span<const double> pi, const std::function<bool(index_t)>& pred) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pred(static_cast<index_t>(i))) acc += pi[i];
  }
  return acc;
}

double throughput(const Ctmc& chain, std::span<const double> pi, label_t label) {
  double acc = 0.0;
  for (const Transition& t : chain.transitions()) {
    if (t.label == label) acc += t.rate * pi[static_cast<std::size_t>(t.from)];
  }
  return acc;
}

double throughput(const Ctmc& chain, std::span<const double> pi,
                  std::string_view label_name) {
  const std::int64_t id = chain.find_label(label_name);
  if (id < 0) return 0.0;
  return throughput(chain, pi, static_cast<label_t>(id));
}

}  // namespace tags::ctmc
