// Generic engine over a GeneratorModel: streams the successor function
// straight into a CSR generator, accumulating per-label sparse reward
// vectors on the way — no retained labelled-transition list. rebind()
// repopulates the rate values on the frozen sparsity pattern (see the
// rebinding contract in generator_model.hpp), which turns the per-point
// cost of a rate sweep from "re-enumerate the state space" into "one pass
// over the non-zeros".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/generator_model.hpp"

namespace tags::ctmc {

/// One entry of a per-label reward vector: total emission rate of the
/// label out of `state`, self-loops included. Entries are sorted by state
/// (assembly visits states in order) with one entry per emitting state.
struct StateRate {
  index_t state;
  double rate;
};

class GeneratorCtmc {
 public:
  GeneratorCtmc() = default;

  /// Enumerate the model into CSR + rewards. May be called again to
  /// rebuild from scratch (structural parameters changed).
  void assemble(const GeneratorModel& model);

  /// Repopulate rate values on the frozen pattern. Throws std::logic_error
  /// if the model emits a transition outside the assembled pattern or the
  /// state/label spaces changed — that means a structural parameter moved
  /// and the caller should assemble() instead.
  void rebind(const GeneratorModel& model);

  [[nodiscard]] index_t n_states() const noexcept { return n_; }
  [[nodiscard]] const linalg::CsrMatrix& generator() const noexcept { return q_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return q_.nnz(); }

  /// All interned label names; index = label_t. Entry 0 is "tau".
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept {
    return label_names_;
  }

  /// Label id for a name, or -1 if the model never declared it.
  [[nodiscard]] std::int64_t find_label(std::string_view name) const noexcept;

  /// Sparse reward vector of one label (empty span for out-of-range ids).
  [[nodiscard]] std::span<const StateRate> label_rewards(label_t label) const noexcept;

  /// Throughput of a label: sum over its reward entries of rate * pi[state].
  [[nodiscard]] double throughput(std::span<const double> pi, label_t label) const;
  [[nodiscard]] double throughput(std::span<const double> pi,
                                  std::string_view label_name) const;

  /// Exit rate of each state (= -Q(i,i), self-loops excluded).
  [[nodiscard]] linalg::Vec exit_rates() const;

  /// Largest exit rate; tracked during assembly/rebinding.
  [[nodiscard]] double max_exit_rate() const noexcept { return max_exit_rate_; }

  /// True if every row of Q sums to ~0 and off-diagonals are non-negative.
  [[nodiscard]] bool is_valid_generator(double tol = 1e-9) const;

 private:
  index_t n_ = 0;
  linalg::CsrMatrix q_;
  double max_exit_rate_ = 0.0;
  std::vector<std::string> label_names_;
  std::vector<std::vector<StateRate>> rewards_;  // indexed by label_t
};

/// Materialise the full labelled-transition representation (classic Ctmc)
/// of a generator model. Needed only by consumers of the transition list —
/// first-passage analysis, exporters; steady-state work should stay on
/// GeneratorCtmc.
[[nodiscard]] Ctmc materialize(const GeneratorModel& model);

}  // namespace tags::ctmc
