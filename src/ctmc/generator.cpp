#include "ctmc/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "ctmc/builder.hpp"
#include "linalg/csr_assembly.hpp"
#include "obs/obs.hpp"

namespace tags::ctmc {

namespace {

/// Per-row scratch shared by assemble() and rebind(): accumulates the
/// label rewards of one state and flushes them as coalesced StateRate
/// entries. Rates are non-negative, so a zero accumulator means "label not
/// seen yet for this state".
class RewardAccumulator {
 public:
  explicit RewardAccumulator(std::size_t n_labels) : acc_(n_labels, 0.0) {}

  void add(label_t label, double rate) {
    if (acc_[label] == 0.0) hit_.push_back(label);
    acc_[label] += rate;
  }

  void flush(index_t state, std::vector<std::vector<StateRate>>& rewards) {
    for (const label_t l : hit_) {
      rewards[l].push_back({state, acc_[l]});
      acc_[l] = 0.0;
    }
    hit_.clear();
  }

 private:
  std::vector<double> acc_;
  std::vector<label_t> hit_;
};

}  // namespace

void GeneratorCtmc::assemble(const GeneratorModel& model) {
  const obs::ScopedTimer timer("ctmc/generator_assemble");
  obs::Span span("ctmc/assemble");
  span.attr("n", static_cast<double>(model.state_space_size()));
  const index_t n = model.state_space_size();
  const std::vector<std::string>& labels = model.transition_labels();
  assert(n > 0 && !labels.empty() && labels[0] == "tau");

  std::vector<index_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  row_ptr.push_back(0);
  std::vector<index_t> col;
  std::vector<double> val;
  std::vector<std::vector<StateRate>> rewards(labels.size());
  RewardAccumulator reward(labels.size());
  std::vector<std::pair<index_t, double>> row;  // off-diagonals, emission order
  double max_exit = 0.0;

  for (index_t s = 0; s < n; ++s) {
    row.clear();
    double diag = 0.0;
    const auto sink = [&](index_t to, double rate, label_t label) {
      assert(rate >= 0.0 && to >= 0 && to < n &&
             static_cast<std::size_t>(label) < labels.size());
      if (rate == 0.0) return;
      reward.add(label, rate);
      if (to == s) return;  // self-loop: reward only, not in Q
      row.emplace_back(to, rate);
      diag -= rate;
    };
    model.for_each_transition(s, sink);
    reward.flush(s, rewards);

    // Coalesce duplicates column-wise; the stable sort keeps emission
    // order within a column so sums match the CtmcBuilder/from_coo path.
    std::stable_sort(row.begin(), row.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    bool diag_done = row.empty();  // no off-diagonals => no diagonal entry
    std::size_t k = 0;
    while (k < row.size()) {
      const index_t c = row[k].first;
      if (!diag_done && s < c) {
        col.push_back(s);
        val.push_back(diag);
        diag_done = true;
      }
      double sum = row[k].second;
      for (++k; k < row.size() && row[k].first == c; ++k) sum += row[k].second;
      col.push_back(c);
      val.push_back(sum);
    }
    if (!diag_done) {
      col.push_back(s);
      val.push_back(diag);
    }
    row_ptr.push_back(static_cast<index_t>(col.size()));
    max_exit = std::max(max_exit, -diag);
  }

  n_ = n;
  label_names_ = labels;
  rewards_ = std::move(rewards);
  max_exit_rate_ = max_exit;
  q_ = linalg::CsrBuilderAccess::adopt(n, n, std::move(row_ptr), std::move(col),
                                       std::move(val));
  obs::count("ctmc.generator.assembles");
}

void GeneratorCtmc::rebind(const GeneratorModel& model) {
  const obs::ScopedTimer timer("ctmc/generator_rebind");
  obs::Span span("ctmc/rebind");
  span.attr("n", static_cast<double>(n_));
  if (model.state_space_size() != n_ ||
      model.transition_labels().size() != label_names_.size()) {
    throw std::logic_error(
        "GeneratorCtmc::rebind: state or label space changed; a structural "
        "parameter moved — assemble() instead");
  }
  std::vector<double>& val = linalg::CsrBuilderAccess::values(q_);
  for (std::vector<StateRate>& r : rewards_) r.clear();
  RewardAccumulator reward(label_names_.size());
  double max_exit = 0.0;

  for (index_t s = 0; s < n_; ++s) {
    const std::span<const index_t> cs = q_.row_cols(s);
    double* vs = val.data() + (q_.row_vals(s).data() - val.data());
    std::fill(vs, vs + cs.size(), 0.0);
    double diag = 0.0;
    const auto sink = [&](index_t to, double rate, label_t label) {
      assert(rate >= 0.0 && to >= 0 && to < n_ &&
             static_cast<std::size_t>(label) < label_names_.size());
      if (rate == 0.0) return;
      reward.add(label, rate);
      if (to == s) return;
      const auto it = std::lower_bound(cs.begin(), cs.end(), to);
      if (it == cs.end() || *it != to) {
        throw std::logic_error(
            "GeneratorCtmc::rebind: emission outside the frozen sparsity "
            "pattern — the model violated the rebinding contract");
      }
      vs[it - cs.begin()] += rate;
      diag -= rate;
    };
    model.for_each_transition(s, sink);
    reward.flush(s, rewards_);
    if (!cs.empty()) {
      const auto it = std::lower_bound(cs.begin(), cs.end(), s);
      assert(it != cs.end() && *it == s);  // assemble() always placed it
      vs[it - cs.begin()] = diag;
    }
    max_exit = std::max(max_exit, -diag);
  }
  max_exit_rate_ = max_exit;
  obs::count("ctmc.generator.rebinds");
}

std::int64_t GeneratorCtmc::find_label(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < label_names_.size(); ++i) {
    if (label_names_[i] == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::span<const StateRate> GeneratorCtmc::label_rewards(label_t label) const noexcept {
  if (static_cast<std::size_t>(label) >= rewards_.size()) return {};
  return rewards_[label];
}

double GeneratorCtmc::throughput(std::span<const double> pi, label_t label) const {
  double acc = 0.0;
  for (const StateRate& r : label_rewards(label)) {
    acc += r.rate * pi[static_cast<std::size_t>(r.state)];
  }
  return acc;
}

double GeneratorCtmc::throughput(std::span<const double> pi,
                                 std::string_view label_name) const {
  const std::int64_t id = find_label(label_name);
  if (id < 0) return 0.0;
  return throughput(pi, static_cast<label_t>(id));
}

linalg::Vec GeneratorCtmc::exit_rates() const {
  linalg::Vec d = q_.diagonal();
  for (double& v : d) v = -v;
  return d;
}

bool GeneratorCtmc::is_valid_generator(double tol) const {
  if (q_.rows() != n_ || q_.cols() != n_) return false;
  for (index_t i = 0; i < n_; ++i) {
    const auto cs = q_.row_cols(i);
    const auto vs = q_.row_vals(i);
    double row_sum = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      row_sum += vs[k];
      if (cs[k] != i && vs[k] < 0.0) return false;
    }
    if (std::abs(row_sum) > tol * std::max(1.0, -q_.at(i, i))) return false;
  }
  return true;
}

Ctmc materialize(const GeneratorModel& model) {
  CtmcBuilder b;
  const std::vector<std::string>& names = model.transition_labels();
  assert(!names.empty() && names[0] == "tau");
  for (std::size_t i = 1; i < names.size(); ++i) b.label(names[i]);
  const index_t n = model.state_space_size();
  for (index_t s = 0; s < n; ++s) {
    const auto sink = [&](index_t to, double rate, label_t label) {
      b.add(s, to, rate, label);
    };
    model.for_each_transition(s, sink);
  }
  b.ensure_states(n);
  return b.build();
}

}  // namespace tags::ctmc
