// Transient analysis by uniformization (Jensen's method):
//   pi(t) = sum_k Poisson(Lambda t; k) * pi(0) P^k,  P = I + Q / Lambda.
//
// The Poisson series is truncated at relative mass 1e-13; large horizons are
// split into steps so each step's Lambda*t stays moderate (numerically safe
// without full Fox-Glynn machinery).
#pragma once

#include "ctmc/ctmc.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ctmc {

struct TransientOptions {
  double truncation_eps = 1e-13;  ///< tail mass dropped from the Poisson series
  double max_step_jumps = 512.0;  ///< split horizons so Lambda*step <= this
};

/// Distribution at time t starting from pi0 (must sum to 1).
[[nodiscard]] linalg::Vec transient_distribution(const Ctmc& chain,
                                                 const linalg::Vec& pi0, double t,
                                                 const TransientOptions& opts = {});

/// Distribution at each of the (ascending) time points. Reuses work across
/// points by stepping from one to the next.
[[nodiscard]] std::vector<linalg::Vec> transient_trajectory(
    const Ctmc& chain, const linalg::Vec& pi0, const std::vector<double>& times,
    const TransientOptions& opts = {});

}  // namespace tags::ctmc
