// Transient analysis by uniformization (Jensen's method):
//   pi(t) = sum_k Poisson(Lambda t; k) * pi(0) P^k,  P = I + Q / Lambda.
//
// Poisson weights come from the stable Fox-Glynn computation (fox_glynn.hpp):
// mode-centred with left/right truncation at relative mass truncation_eps,
// so Lambda*t up to ~1e6 is handled in one step without the underflow that
// breaks the naive e^{-q} recurrence past q ~ 745. Horizons beyond
// max_step_jumps are still split (bounding the weight window and the error
// accumulated by repeated SpMVs); every returned distribution is certified
// (finite, probability mass within bound) and failures are counted under
// numerics.uniformization.*.
#pragma once

#include "ctmc/ctmc.hpp"
#include "linalg/certify.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ctmc {

struct TransientOptions {
  double truncation_eps = 1e-13;  ///< tail mass dropped from the Poisson series
  /// Split horizons so Lambda*step <= this. With Fox-Glynn weights any step
  /// size is stable; the cap only bounds the per-step weight window.
  double max_step_jumps = 1.0e5;
};

/// Transient distribution plus its certificate. `steps` counts the
/// uniformization steps taken (splits included).
struct TransientResult {
  linalg::Vec pi;
  linalg::Certificate certificate;
  int steps = 0;
};

/// Distribution at time t starting from pi0 (must sum to 1), stamped with a
/// certification (finiteness + probability mass) and recorded in the obs
/// solve log as context "transient".
[[nodiscard]] TransientResult transient_distribution_certified(
    const Ctmc& chain, const linalg::Vec& pi0, double t,
    const TransientOptions& opts = {});

/// Distribution at time t starting from pi0 (must sum to 1). Convenience
/// wrapper over the certified variant; certification failures are still
/// counted/traced, the certificate is just not returned.
[[nodiscard]] linalg::Vec transient_distribution(const Ctmc& chain,
                                                 const linalg::Vec& pi0, double t,
                                                 const TransientOptions& opts = {});

/// Distribution at each of the (ascending) time points. Reuses work across
/// points by stepping from one to the next; every emitted point is
/// certified (counted under numerics.certify.*).
[[nodiscard]] std::vector<linalg::Vec> transient_trajectory(
    const Ctmc& chain, const linalg::Vec& pi0, const std::vector<double>& times,
    const TransientOptions& opts = {});

}  // namespace tags::ctmc
