// Stationary distribution of an irreducible CTMC: pi Q = 0, sum(pi) = 1.
//
// Methods:
//  * kDenseLu     — replace one balance equation with the normalisation row
//                   and solve the dense system; exact, O(n^3), reference.
//  * kGaussSeidel — sweeps on the transposed balance equations with
//                   periodic renormalisation; the default for the model
//                   sizes in this library (10^3..10^5 states).
//  * kPower       — power iteration on the uniformized DTMC
//                   P = I + Q/Lambda; slowest but unconditionally stable.
//  * kGmres       — restarted GMRES on the normalised system; robust when
//                   Gauss-Seidel stalls.
//  * kLevelQbd    — block-tridiagonal direct solve on the BFS level (QBD)
//                   structure of the generator (see ctmc/qbd.hpp); exact in
//                   one pass when the chain is level-structured with narrow
//                   levels, declined otherwise.
//  * kNcdAd       — iterative aggregation-disaggregation on a nearly-
//                   completely-decomposable block partition (see
//                   linalg/ncd.hpp); a handful of censored block sweeps plus
//                   a coarse dense solve per pass when inter-block coupling
//                   is weak, declined on strongly-coupled chains.
//  * kAuto        — level-QBD when detection and its cost gate succeed,
//                   then NCD aggregation-disaggregation when its coupling
//                   gate accepts, then LU for small chains, otherwise
//                   Gauss-Seidel with a GMRES fallback, then power iteration
//                   as a last resort. Escalation is certificate-driven: a
//                   structured result that fails the independent check falls
//                   through to the generic chain.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/batch.hpp"
#include "linalg/certify.hpp"
#include "linalg/ncd.hpp"
#include "linalg/solver.hpp"

namespace tags::ctmc {

enum class SteadyStateMethod {
  kAuto,
  kDenseLu,
  kGaussSeidel,
  kPower,
  kGmres,
  kLevelQbd,
  kNcdAd,
};

[[nodiscard]] std::string_view to_string(SteadyStateMethod m) noexcept;

/// Symmetric reordering applied around a solve (PermutedSolve): the system
/// P·Q·Pᵀ is solved and π unpermuted. kRcm shrinks bandwidth for the
/// iterative methods' cache locality; it is bandwidth-guarded (falls back
/// to the natural order when it would not help), so it is never worse.
enum class SteadyStateReorder { kNone, kRcm };

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  double tol = 1e-11;       ///< target on ||pi Q||_inf
  int max_iter = 200000;    ///< iteration budget for iterative methods
  /// Warm start (e.g. the solution at a nearby parameter point). Must have
  /// n_states entries; it is normalised internally.
  std::optional<linalg::Vec> initial_guess;
  /// Let kAuto try the structured (level/QBD) direct solver first when the
  /// detector finds narrow block-tridiagonal structure. Misdetection is
  /// safe — every structured result must pass certification or the chain
  /// falls through — so this is on by default.
  bool structured = true;
  /// Override for the detector's profitability gate (largest admissible
  /// level size); 0 keeps the built-in default. An explicit kLevelQbd
  /// request ignores the gate entirely.
  linalg::index_t structured_max_block = 0;
  /// Reordering for the solve (see SteadyStateReorder). Off by default:
  /// the structured path carries its own level permutation internally.
  SteadyStateReorder reorder = SteadyStateReorder::kNone;
  /// Stamp every attempt with a certificate (true-residual recompute,
  /// non-finite guard, probability-mass check, condition estimate on the
  /// dense-LU path). kAuto escalates on certification failure, not just on
  /// raw residual. Off only for overhead measurements.
  bool certify = true;
  /// Certification bounds. residual_bound is *relative*: it is multiplied
  /// by max(1, max exit rate), matching how solver tolerances scale.
  linalg::CertifyOptions certify_opts{.residual_bound = 1e-6};
  /// Let kAuto try NCD aggregation-disaggregation when the QBD gate
  /// declines. Same safety argument as `structured`: a stale or misjudged
  /// partition costs a fallthrough, never a wrong answer.
  bool ncd = true;
  /// Detection thresholds and the coupling/profitability gate for the NCD
  /// partition (see linalg/ncd.hpp). Chains below ncd_opts.min_states skip
  /// detection entirely — zero overhead on small systems.
  linalg::NcdOptions ncd_opts;
  /// Optional rebind-aware partition cache shared across a sweep's solves
  /// (WarmStartState::reconcile installs one). Solves without a cache
  /// detect afresh. Not thread-safe — one per shard, like the warm state.
  std::shared_ptr<linalg::NcdPartitionCache> ncd_cache;
};

/// One method tried by steady_state (kAuto runs several in sequence).
struct SteadyStateAttempt {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
  /// Why a gated fast path (kLevelQbd, kNcdAd) was declined without
  /// running: the detector's verdict, e.g. "level-too-wide" or
  /// "strong-coupling". Empty for attempts that actually executed. Makes
  /// "why didn't the fast path fire?" answerable from telemetry — gated
  /// methods used to vanish from the attempt list entirely.
  std::string gate_reason;
};

struct SteadyStateResult {
  linalg::Vec pi;           ///< stationary distribution (empty on failure)
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;    ///< final ||pi Q||_inf
  SteadyStateMethod method_used = SteadyStateMethod::kAuto;
  /// What was independently verified about pi (see linalg/certify.hpp).
  /// Default-false when options.certify was disabled; otherwise the
  /// recomputed-residual / finiteness / mass / condition verdict, which is
  /// the signal results tables should trust over `converged`.
  linalg::Certificate certificate;
  /// Every method attempted, in order; the last entry is method_used.
  /// A single-method request yields one entry; kAuto records its whole
  /// fallback chain (level-QBD, NCD-AD, LU, Gauss-Seidel, GMRES, power
  /// iteration), including gate-declined fast paths (entries with a
  /// non-empty gate_reason, which never count as executed methods).
  std::vector<SteadyStateAttempt> attempts;
};

/// Solve pi Q = 0 for an arbitrary CSR generator (rows = columns = states).
/// This is the primitive everything else forwards to; it only needs the
/// matrix — exit rates are read off the diagonal.
[[nodiscard]] SteadyStateResult steady_state(const linalg::CsrMatrix& q,
                                             const SteadyStateOptions& opts = {});

[[nodiscard]] SteadyStateResult steady_state(const Ctmc& chain,
                                             const SteadyStateOptions& opts = {});

/// Batched multi-point solve: W generators sharing one frozen sparsity
/// pattern (a linalg::CsrValueBatch) solved together. The direct solvers
/// (level-QBD, dense LU) factor all W systems in SIMD lockstep; lane b's
/// result — pi, residual, certificate, attempt list — is bit-identical to
/// `steady_state(<lane b's matrix>, <lane b's options>)`, where lane b's
/// initial guess chains through the batch exactly like a scalar sweep
/// (the last converged lane before b, starting from opts.initial_guess).
/// Certification stays per point: every lane gets its own independently
/// recomputed certificate, and any lane the batched direct path cannot
/// accept (singular block, failed certificate, iterative method requested)
/// falls back to the full scalar kAuto chain for that lane alone.
[[nodiscard]] std::vector<SteadyStateResult> steady_state_batch(
    const linalg::CsrValueBatch& vals, const SteadyStateOptions& opts = {});

/// Drop a warm-start guess whose dimension no longer matches the chain
/// about to be solved (sweeps that cross a structural-parameter boundary
/// would otherwise carry a stale guess that steady_state silently
/// discards). Counts hits/misses under "ctmc.steady_state.warm_start.*".
void reconcile_warm_start(SteadyStateOptions& opts, index_t n_states);

/// Warm-start bookkeeping for one sweep shard: the solver options carrying
/// the previous stationary vector plus local reuse counters. Each shard of
/// a parallel sweep owns its own instance, so warm starts can never leak
/// across shards (or threads) and the merged counters reproduce the serial
/// totals exactly. Replaces the ad-hoc single-dimension reconciliation the
/// sweep loops used to inline.
struct WarmStartState {
  SteadyStateOptions opts;
  std::uint64_t hits = 0;     ///< solves entered with a usable previous pi
  std::uint64_t misses = 0;   ///< solves entered cold
  std::uint64_t cleared = 0;  ///< stale guesses dropped on dimension change
  /// Solves accepted whose result failed certification (or never converged)
  /// — the sweep-level "did anything land in the table unchecked" signal.
  std::uint64_t uncertified = 0;

  /// Call before each solve: drops a guess whose dimension does not match
  /// the chain about to be solved (counting it in `cleared` and in the
  /// registry), then records whether this solve starts warm or cold.
  void reconcile(index_t n_states);

  /// Call after each solve: keeps pi as the next point's initial guess when
  /// the solve converged, otherwise leaves the current guess untouched.
  void accept(const SteadyStateResult& r);

  /// Fold another shard's counters into this one (grid-order merge).
  void merge(const WarmStartState& other) noexcept;
};

}  // namespace tags::ctmc
