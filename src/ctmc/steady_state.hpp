// Stationary distribution of an irreducible CTMC: pi Q = 0, sum(pi) = 1.
//
// Methods:
//  * kDenseLu     — replace one balance equation with the normalisation row
//                   and solve the dense system; exact, O(n^3), reference.
//  * kGaussSeidel — sweeps on the transposed balance equations with
//                   periodic renormalisation; the default for the model
//                   sizes in this library (10^3..10^5 states).
//  * kPower       — power iteration on the uniformized DTMC
//                   P = I + Q/Lambda; slowest but unconditionally stable.
//  * kGmres       — restarted GMRES on the normalised system; robust when
//                   Gauss-Seidel stalls.
//  * kAuto        — LU for small chains, otherwise Gauss-Seidel with a
//                   GMRES fallback, then power iteration as a last resort.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/solver.hpp"

namespace tags::ctmc {

enum class SteadyStateMethod { kAuto, kDenseLu, kGaussSeidel, kPower, kGmres };

[[nodiscard]] std::string_view to_string(SteadyStateMethod m) noexcept;

struct SteadyStateOptions {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  double tol = 1e-11;       ///< target on ||pi Q||_inf
  int max_iter = 200000;    ///< iteration budget for iterative methods
  /// Warm start (e.g. the solution at a nearby parameter point). Must have
  /// n_states entries; it is normalised internally.
  std::optional<linalg::Vec> initial_guess;
};

/// One method tried by steady_state (kAuto runs several in sequence).
struct SteadyStateAttempt {
  SteadyStateMethod method = SteadyStateMethod::kAuto;
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

struct SteadyStateResult {
  linalg::Vec pi;           ///< stationary distribution (empty on failure)
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;    ///< final ||pi Q||_inf
  SteadyStateMethod method_used = SteadyStateMethod::kAuto;
  /// Every method attempted, in order; the last entry is method_used.
  /// A single-method request yields one entry; kAuto records its whole
  /// fallback chain (LU, Gauss-Seidel, GMRES, power iteration).
  std::vector<SteadyStateAttempt> attempts;
};

/// Solve pi Q = 0 for an arbitrary CSR generator (rows = columns = states).
/// This is the primitive everything else forwards to; it only needs the
/// matrix — exit rates are read off the diagonal.
[[nodiscard]] SteadyStateResult steady_state(const linalg::CsrMatrix& q,
                                             const SteadyStateOptions& opts = {});

[[nodiscard]] SteadyStateResult steady_state(const Ctmc& chain,
                                             const SteadyStateOptions& opts = {});

/// Drop a warm-start guess whose dimension no longer matches the chain
/// about to be solved (sweeps that cross a structural-parameter boundary
/// would otherwise carry a stale guess that steady_state silently
/// discards). Counts hits/misses under "ctmc.steady_state.warm_start.*".
void reconcile_warm_start(SteadyStateOptions& opts, index_t n_states);

}  // namespace tags::ctmc
