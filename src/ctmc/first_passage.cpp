#include "ctmc/first_passage.hpp"

#include <vector>

#include "linalg/lu.hpp"
#include "linalg/solver.hpp"

namespace tags::ctmc {

FirstPassageResult mean_first_passage(const Ctmc& chain,
                                      const std::function<bool(index_t)>& target) {
  const index_t n = chain.n_states();
  FirstPassageResult res;

  // Index map: non-target states -> compact indices.
  std::vector<index_t> compact(static_cast<std::size_t>(n), -1);
  std::vector<index_t> expand;
  for (index_t i = 0; i < n; ++i) {
    if (!target(i)) {
      compact[static_cast<std::size_t>(i)] = static_cast<index_t>(expand.size());
      expand.push_back(i);
    }
  }
  const std::size_t na = expand.size();
  res.hitting_time.assign(static_cast<std::size_t>(n), 0.0);
  if (na == 0) {
    res.converged = true;  // every state is a target
    return res;
  }

  // Assemble -Q_AA (an M-matrix) and solve (-Q_AA) h = 1.
  linalg::CooMatrix coo(static_cast<linalg::index_t>(na),
                        static_cast<linalg::index_t>(na));
  const linalg::CsrMatrix& q = chain.generator();
  for (std::size_t row = 0; row < na; ++row) {
    const index_t i = expand[row];
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const index_t j = cs[k];
      if (j == i) {
        coo.add(static_cast<linalg::index_t>(row), static_cast<linalg::index_t>(row),
                -vs[k]);
      } else if (compact[static_cast<std::size_t>(j)] >= 0) {
        coo.add(static_cast<linalg::index_t>(row),
                compact[static_cast<std::size_t>(j)], -vs[k]);
      }
      // Transitions into the target set contribute nothing (h = 0 there).
    }
  }
  const linalg::CsrMatrix a = linalg::CsrMatrix::from_coo(coo);
  const linalg::Vec ones(na, 1.0);
  linalg::Vec h(na, 0.0);

  if (na <= 1500) {
    const linalg::LuFactorization f = linalg::lu_factor(a.to_dense());
    if (!f.singular()) {
      h = f.solve(ones);
      res.converged = true;
    }
  }
  if (!res.converged) {
    linalg::SolveOptions opts;
    opts.tol = 1e-9 * std::max(1.0, chain.max_exit_rate());
    opts.max_iter = 200000;
    const auto sr = linalg::gauss_seidel(a, ones, h, opts);
    res.converged = sr.converged;
  }
  if (res.converged) {
    for (std::size_t row = 0; row < na; ++row) {
      res.hitting_time[static_cast<std::size_t>(expand[row])] = h[row];
    }
  } else {
    res.hitting_time.clear();
  }
  return res;
}

double mean_first_passage_from(const Ctmc& chain,
                               const std::function<bool(index_t)>& target,
                               index_t from) {
  const FirstPassageResult r = mean_first_passage(chain, target);
  if (!r.converged) return -1.0;
  return r.hitting_time[static_cast<std::size_t>(from)];
}

FirstPassageResult mean_time_to_event(const Ctmc& chain, label_t label) {
  const index_t n = chain.n_states();
  FirstPassageResult res;
  // A = -Q', where Q' redirects every `label` transition to an (implicit)
  // absorbing state: for i != j the within-chain entry disappears (A_ij
  // gains +r); for self-loops the state gains exit rate r (A_ii gains +r).
  linalg::CooMatrix coo(n, n);
  const linalg::CsrMatrix& q = chain.generator();
  for (index_t i = 0; i < n; ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(i, cs[k], -vs[k]);
  }
  bool any = false;
  for (const Transition& tr : chain.transitions()) {
    if (tr.label != label) continue;
    any = true;
    if (tr.from == tr.to) {
      coo.add(tr.from, tr.from, tr.rate);
    } else {
      coo.add(tr.from, tr.to, tr.rate);
    }
  }
  if (!any) return res;  // the event can never happen: undefined (diverges)

  const linalg::CsrMatrix a = linalg::CsrMatrix::from_coo(coo);
  const linalg::Vec ones(static_cast<std::size_t>(n), 1.0);
  linalg::Vec h(static_cast<std::size_t>(n), 0.0);
  if (n <= 1500) {
    const linalg::LuFactorization f = linalg::lu_factor(a.to_dense());
    if (!f.singular()) {
      h = f.solve(ones);
      res.converged = true;
    }
  }
  if (!res.converged) {
    linalg::SolveOptions opts;
    opts.tol = 1e-9 * std::max(1.0, chain.max_exit_rate());
    opts.max_iter = 500000;
    const auto sr = linalg::gauss_seidel(a, ones, h, opts);
    res.converged = sr.converged;
  }
  if (res.converged) {
    res.hitting_time = std::move(h);
  }
  return res;
}

FirstPassageResult mean_time_to_event(const Ctmc& chain, std::string_view label_name) {
  const std::int64_t id = chain.find_label(label_name);
  if (id < 0) return {};
  return mean_time_to_event(chain, static_cast<label_t>(id));
}

}  // namespace tags::ctmc
