#include "ctmc/digest.hpp"

#include <cstdio>
#include <string>

namespace tags::ctmc {

std::uint64_t pattern_digest(const linalg::CsrMatrix& m) noexcept {
  std::uint64_t h = kFnv1aOffset;
  h = fnv1a64_u64(static_cast<std::uint64_t>(m.rows()), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(m.cols()), h);
  for (linalg::index_t i = 0; i < m.rows(); ++i) {
    const std::span<const linalg::index_t> cols = m.row_cols(i);
    h = fnv1a64_u64(cols.size(), h);
    for (const linalg::index_t c : cols) {
      h = fnv1a64_u64(static_cast<std::uint64_t>(c), h);
    }
  }
  return h;
}

std::uint64_t structure_digest(const GeneratorCtmc& engine) noexcept {
  std::uint64_t h = pattern_digest(engine.generator());
  h = fnv1a64_u64(engine.label_names().size(), h);
  for (const std::string& name : engine.label_names()) {
    h = fnv1a64_str(name, h);
  }
  return h;
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 16);
}

}  // namespace tags::ctmc
