#include "ctmc/fox_glynn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/vector_ops.hpp"
#include "obs/obs.hpp"

namespace tags::ctmc {

namespace {

/// log(e^{-q} q^k / k!) in extended precision: the three terms are each
/// O(q) and cancel to O(log q), so the anchor's absolute error is set by
/// lgamma's ulp at magnitude q — long double keeps that below ~1e-13 even
/// at q = 1e6.
long double log_poisson_pmf(long double q, long double k) {
  return -q + k * std::log(q) - std::lgamma(k + 1.0L);
}

}  // namespace

FoxGlynnWeights fox_glynn(double q, double eps) {
  assert(q >= 0.0 && std::isfinite(q));
  assert(eps > 0.0 && eps < 1.0);
  obs::count("numerics.fox_glynn.calls");
  FoxGlynnWeights fg;

  if (q == 0.0) {
    fg.left = fg.right = 0;
    fg.weights = {1.0};
    fg.total_weight = 1.0;
    fg.ok = true;
    return fg;
  }

  const auto mode = static_cast<std::size_t>(q);  // floor: q > 0
  const double w_mode = static_cast<double>(
      std::exp(log_poisson_pmf(static_cast<long double>(q),
                               static_cast<long double>(mode))));

  // Truncation threshold. Terms at the stopping point sit several standard
  // deviations out, where consecutive ratios are bounded away from 1, so
  // the dropped tail is a geometric series of effective length O(sqrt(q));
  // dividing eps by that width keeps the provable tail mass below eps at
  // the cost of a marginally wider window.
  const double cutoff = eps / (100.0 * (std::sqrt(q) + 1.0));

  // Walk down from the mode: w_{k-1} = w_k * k / q.
  std::vector<double> down;  // weights at mode, mode-1, ...
  double w = w_mode;
  std::size_t k = mode;
  for (;;) {
    down.push_back(w);
    if (k == 0 || w < cutoff) break;
    w *= static_cast<double>(k) / q;
    --k;
  }
  fg.left = k;

  // Walk up from the mode: w_{k+1} = w_k * q / (k+1).
  std::vector<double> up;  // weights at mode+1, mode+2, ...
  w = w_mode;
  k = mode;
  // Hard stop far outside any plausible window (guards eps ~ 1 misuse).
  const std::size_t k_max =
      mode + 20 + static_cast<std::size_t>(20.0 * std::sqrt(q) +
                                           10.0 * std::log1p(1.0 / eps));
  while (k < k_max) {
    ++k;
    w *= q / static_cast<double>(k);
    if (w < cutoff && k > static_cast<std::size_t>(q)) break;
    up.push_back(w);
  }
  fg.right = fg.left + (down.size() - 1) + up.size();

  fg.weights.resize(down.size() + up.size());
  std::copy(down.rbegin(), down.rend(), fg.weights.begin());
  std::copy(up.begin(), up.end(),
            fg.weights.begin() + static_cast<std::ptrdiff_t>(down.size()));

  // The raw total certifies the computation: truncation loses at most eps
  // and the anchor is good to ~1e-13, so anything outside the bound below
  // means underflow or a logic error, not rounding. The returned weights
  // are then normalised by the total (Fox-Glynn's W-division), which
  // cancels the anchor's common scale error — the weights are accurate to
  // the recurrence's accumulated rounding, and their mass is exactly the
  // window's.
  fg.total_weight = linalg::sum_compensated(fg.weights);
  fg.ok = std::isfinite(fg.total_weight) &&
          std::abs(1.0 - fg.total_weight) <= std::max(10.0 * eps, 1e-9);
  if (fg.ok) {
    const double inv = 1.0 / fg.total_weight;
    for (double& v : fg.weights) v *= inv;
  } else {
    obs::count("numerics.fox_glynn.mass_failures");
    if (obs::tracing_on()) {
      obs::TraceEvent ev;
      ev.name = "numerics.fox_glynn_mass_failure";
      ev.num.emplace_back("q", q);
      ev.num.emplace_back("total_weight", fg.total_weight);
      ev.num.emplace_back("window", static_cast<double>(fg.size()));
      obs::emit(std::move(ev));
    }
  }
  return fg;
}

}  // namespace tags::ctmc
