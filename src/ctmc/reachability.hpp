// State-space exploration from an implicit model, plus graph checks on an
// assembled chain (irreducibility / absorbing states).
//
// explore() is the bridge between a model written as "initial state +
// successor function" and a concrete CTMC: it breadth-first enumerates the
// reachable states, interning each distinct state, and fills a CtmcBuilder.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctmc/builder.hpp"

namespace tags::ctmc {

/// One outgoing move of an implicit model.
template <class State>
struct Move {
  State to;
  double rate;
  std::string label;  // empty => tau
};

/// Result of explore(): the builder holds all transitions; states[i] is the
/// model state with index i (index 0 = initial state).
template <class State>
struct Exploration {
  CtmcBuilder builder;
  std::vector<State> states;
  std::unordered_map<State, index_t> index_of;
};

/// Breadth-first exploration. `succ` maps a state to its moves; `State`
/// needs std::hash and operator==. Rates must be non-negative; zero-rate
/// moves are ignored. Self-loops are recorded (see CtmcBuilder::add).
template <class State, class SuccFn>
[[nodiscard]] Exploration<State> explore(const State& initial, SuccFn&& succ,
                                         std::size_t max_states = 50'000'000) {
  Exploration<State> ex;
  ex.states.push_back(initial);
  ex.index_of.emplace(initial, 0);
  std::queue<index_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const index_t cur = frontier.front();
    frontier.pop();
    // Copy: ex.states may reallocate while we push successors.
    const State state = ex.states[static_cast<std::size_t>(cur)];
    for (const Move<State>& mv : succ(state)) {
      if (mv.rate == 0.0) continue;
      auto [it, inserted] =
          ex.index_of.emplace(mv.to, static_cast<index_t>(ex.states.size()));
      if (inserted) {
        ex.states.push_back(mv.to);
        frontier.push(it->second);
        if (ex.states.size() > max_states) {
          // Deliberately hard-stop: the caller sized the model wrongly.
          throw std::runtime_error("ctmc::explore: state-space limit exceeded");
        }
      }
      if (mv.label.empty()) {
        ex.builder.add(cur, it->second, mv.rate, kTau);
      } else {
        ex.builder.add(cur, it->second, mv.rate, mv.label);
      }
    }
  }
  ex.builder.ensure_states(static_cast<index_t>(ex.states.size()));
  return ex;
}

/// True iff the chain is a single closed communicating class (strongly
/// connected transition graph). Steady-state solvers require this.
[[nodiscard]] bool is_irreducible(const Ctmc& chain);

/// Same check on a bare CSR generator (off-diagonal positive entries are
/// the edges); shared by Ctmc and GeneratorCtmc callers.
[[nodiscard]] bool is_irreducible(const linalg::CsrMatrix& q);

class GeneratorCtmc;
[[nodiscard]] bool is_irreducible(const GeneratorCtmc& chain);

/// States with no outgoing transitions (exit rate zero).
[[nodiscard]] std::vector<index_t> absorbing_states(const Ctmc& chain);

}  // namespace tags::ctmc
