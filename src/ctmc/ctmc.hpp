// Continuous-time Markov chain with labelled transitions.
//
// The chain is stored two ways:
//  * a CSR infinitesimal generator Q (row = source state, diagonal =
//    -sum of off-diagonal rates) used by the numerical solvers, and
//  * the full list of labelled transitions, used for action-throughput
//    measures. The transition list may contain self-loops (e.g. a lost
//    arrival in a bounded queue): these do not affect Q but do count
//    towards the throughput of their action label.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/csr.hpp"

namespace tags::ctmc {

using linalg::index_t;

/// Interned action label. kTau is the hidden/internal action.
using label_t = std::uint32_t;
inline constexpr label_t kTau = 0;

struct Transition {
  index_t from;
  index_t to;
  double rate;
  label_t label;
};

class Ctmc {
 public:
  Ctmc() = default;
  Ctmc(index_t n_states, linalg::CsrMatrix generator, std::vector<Transition> transitions,
       std::vector<std::string> label_names);

  [[nodiscard]] index_t n_states() const noexcept { return n_states_; }
  [[nodiscard]] const linalg::CsrMatrix& generator() const noexcept { return q_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  /// All interned label names; index = label_t. Entry 0 is "tau".
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept {
    return label_names_;
  }

  /// Label id for a name, or -1 if the chain never uses it.
  [[nodiscard]] std::int64_t find_label(std::string_view name) const noexcept;

  /// Exit rate of each state (= -Q(i,i), excluding self-loops).
  [[nodiscard]] linalg::Vec exit_rates() const;

  /// Largest exit rate; uniformization constant base.
  [[nodiscard]] double max_exit_rate() const;

  /// True if every row of Q sums to ~0 and off-diagonals are non-negative.
  [[nodiscard]] bool is_valid_generator(double tol = 1e-9) const;

 private:
  index_t n_states_ = 0;
  linalg::CsrMatrix q_;
  std::vector<Transition> transitions_;
  std::vector<std::string> label_names_;
};

}  // namespace tags::ctmc
