// Steady-state (or transient) measures over a solved chain.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ctmc {

class GeneratorCtmc;

/// E[r] = sum_i pi_i * reward_i.
[[nodiscard]] double expected_reward(std::span<const double> pi,
                                     std::span<const double> reward);

/// E[f(state)] with f supplied as a callback over state indices.
[[nodiscard]] double expected_value(std::span<const double> pi,
                                    const std::function<double(index_t)>& f);

/// P[pred(state)].
[[nodiscard]] double probability(std::span<const double> pi,
                                 const std::function<bool(index_t)>& pred);

/// Throughput of an action label: sum over transitions with that label of
/// rate * pi[from]. Self-loop transitions count — that is how bounded-queue
/// loss events are recorded by the model builders.
[[nodiscard]] double throughput(const Ctmc& chain, std::span<const double> pi,
                                label_t label);

/// Convenience overload by label name; returns 0 if the chain never uses it.
[[nodiscard]] double throughput(const Ctmc& chain, std::span<const double> pi,
                                std::string_view label_name);

/// Throughput over a generator-model engine's per-label reward vectors;
/// same semantics (self-loops count) without a transition list.
[[nodiscard]] double throughput(const GeneratorCtmc& chain, std::span<const double> pi,
                                label_t label);
[[nodiscard]] double throughput(const GeneratorCtmc& chain, std::span<const double> pi,
                                std::string_view label_name);

/// Declarative description of the standard queueing measures, evaluated in
/// one pass by evaluate(). This replaces the near-identical metrics
/// extraction loops the model classes used to carry: a model states *what*
/// its queues and event labels are, the ctmc layer does the arithmetic.
struct MeasureSpec {
  /// Queue-1 length of a state. Required.
  std::function<double(index_t)> queue1;
  /// Queue-2 length; leave empty for single-queue models.
  std::function<double(index_t)> queue2;
  /// Labels whose combined throughput is the system throughput.
  std::vector<std::string> service_labels;
  /// Labels counted as queue-1 / queue-2 loss events.
  std::vector<std::string> loss1_labels;
  std::vector<std::string> loss2_labels;
};

/// Raw measures produced from a spec; models map these into their Metrics
/// structs (adding derived quantities via Metrics::finalize).
struct BasicMeasures {
  double mean_q1 = 0.0;
  double mean_q2 = 0.0;
  double utilisation1 = 0.0;  ///< P(queue1 >= 1)
  double utilisation2 = 0.0;  ///< P(queue2 >= 1)
  double throughput = 0.0;
  double loss1_rate = 0.0;
  double loss2_rate = 0.0;
};

[[nodiscard]] BasicMeasures evaluate(const GeneratorCtmc& chain,
                                     std::span<const double> pi,
                                     const MeasureSpec& spec);

}  // namespace tags::ctmc
