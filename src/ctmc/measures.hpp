// Steady-state (or transient) measures over a solved chain.
#pragma once

#include <functional>
#include <span>
#include <string_view>

#include "ctmc/ctmc.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ctmc {

/// E[r] = sum_i pi_i * reward_i.
[[nodiscard]] double expected_reward(std::span<const double> pi,
                                     std::span<const double> reward);

/// E[f(state)] with f supplied as a callback over state indices.
[[nodiscard]] double expected_value(std::span<const double> pi,
                                    const std::function<double(index_t)>& f);

/// P[pred(state)].
[[nodiscard]] double probability(std::span<const double> pi,
                                 const std::function<bool(index_t)>& pred);

/// Throughput of an action label: sum over transitions with that label of
/// rate * pi[from]. Self-loop transitions count — that is how bounded-queue
/// loss events are recorded by the model builders.
[[nodiscard]] double throughput(const Ctmc& chain, std::span<const double> pi,
                                label_t label);

/// Convenience overload by label name; returns 0 if the chain never uses it.
[[nodiscard]] double throughput(const Ctmc& chain, std::span<const double> pi,
                                std::string_view label_name);

}  // namespace tags::ctmc
