#include "ctmc/uniformization.hpp"

#include <cassert>
#include <cmath>

#include "linalg/coo.hpp"

namespace tags::ctmc {

namespace {

using linalg::CsrMatrix;
using linalg::index_t;
using linalg::Vec;

/// Pt = (I + Q/lambda)^T so that row-vector iteration is a plain SpMV.
CsrMatrix uniformized_transposed(const Ctmc& chain, double lambda) {
  const CsrMatrix qt = chain.generator().transposed();
  linalg::CooMatrix coo(qt.rows(), qt.cols());
  for (index_t i = 0; i < qt.rows(); ++i) {
    const auto cs = qt.row_cols(i);
    const auto vs = qt.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(i, cs[k], vs[k] / lambda);
    coo.add(i, i, 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

/// One uniformization step of duration t (Lambda*t assumed moderate).
Vec step(const CsrMatrix& pt, const Vec& pi0, double lambda, double t, double eps) {
  const std::size_t n = pi0.size();
  const double q = lambda * t;
  Vec result(n, 0.0);
  Vec term = pi0;  // pi0 P^k as k grows
  Vec next(n);

  // Poisson(q) weights computed iteratively: w_0 = e^{-q}; w_k = w_{k-1} q/k.
  double w = std::exp(-q);
  double cumulative = 0.0;
  std::size_t k = 0;
  // For large q, e^{-q} underflows; the caller keeps q <= max_step_jumps so
  // the straightforward recurrence stays in range (exp(-512) ~ 1e-223, still
  // representable in double).
  while (cumulative < 1.0 - eps) {
    if (w > 0.0) {
      linalg::axpy(w, term, result);
      cumulative += w;
    }
    ++k;
    w *= q / static_cast<double>(k);
    if (k > static_cast<std::size_t>(q + 60.0 * std::sqrt(q + 1.0) + 60.0)) break;
    pt.multiply(term, next);
    term.swap(next);
  }
  // Renormalise the truncated series.
  linalg::normalize_l1(result);
  return result;
}

}  // namespace

linalg::Vec transient_distribution(const Ctmc& chain, const Vec& pi0, double t,
                                   const TransientOptions& opts) {
  assert(static_cast<index_t>(pi0.size()) == chain.n_states());
  assert(t >= 0.0);
  if (t == 0.0) return pi0;
  const double lambda = chain.max_exit_rate() * 1.02 + 1e-12;
  const CsrMatrix pt = uniformized_transposed(chain, lambda);
  const int n_steps =
      std::max(1, static_cast<int>(std::ceil(lambda * t / opts.max_step_jumps)));
  const double dt = t / n_steps;
  Vec pi = pi0;
  for (int s = 0; s < n_steps; ++s) {
    pi = step(pt, pi, lambda, dt, opts.truncation_eps);
  }
  return pi;
}

std::vector<linalg::Vec> transient_trajectory(const Ctmc& chain, const Vec& pi0,
                                              const std::vector<double>& times,
                                              const TransientOptions& opts) {
  std::vector<Vec> out;
  out.reserve(times.size());
  const double lambda = chain.max_exit_rate() * 1.02 + 1e-12;
  const CsrMatrix pt = uniformized_transposed(chain, lambda);
  Vec pi = pi0;
  double prev_t = 0.0;
  for (double t : times) {
    assert(t >= prev_t);
    const double gap = t - prev_t;
    if (gap > 0.0) {
      const int n_steps =
          std::max(1, static_cast<int>(std::ceil(lambda * gap / opts.max_step_jumps)));
      const double dt = gap / n_steps;
      for (int s = 0; s < n_steps; ++s) pi = step(pt, pi, lambda, dt, opts.truncation_eps);
    }
    out.push_back(pi);
    prev_t = t;
  }
  return out;
}

}  // namespace tags::ctmc
