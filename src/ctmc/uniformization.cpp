#include "ctmc/uniformization.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ctmc/fox_glynn.hpp"
#include "linalg/coo.hpp"
#include "obs/obs.hpp"

namespace tags::ctmc {

namespace {

using linalg::CsrMatrix;
using linalg::index_t;
using linalg::Vec;

/// Pt = (I + Q/lambda)^T so that row-vector iteration is a plain SpMV.
CsrMatrix uniformized_transposed(const Ctmc& chain, double lambda) {
  const CsrMatrix& qt = chain.generator().transpose_cache();
  linalg::CooMatrix coo(qt.rows(), qt.cols());
  for (index_t i = 0; i < qt.rows(); ++i) {
    const auto cs = qt.row_cols(i);
    const auto vs = qt.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(i, cs[k], vs[k] / lambda);
    coo.add(i, i, 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

/// One uniformization step of duration t on Fox-Glynn weights. Left
/// truncation skips the accumulate (not the power iteration — pi0 P^k must
/// still be advanced); right truncation ends the series with tail mass
/// below truncation_eps by construction. If the weights fail their own
/// mass certification (the underflow guard — unreachable on the Fox-Glynn
/// path for sane inputs) the step auto-splits in half and recurses.
Vec step(const CsrMatrix& pt, Vec pi, double lambda, double t,
         const TransientOptions& opts, int depth, int& steps_taken) {
  const double q = lambda * t;
  const FoxGlynnWeights fg = fox_glynn(q, opts.truncation_eps);
  if (!fg.ok && depth < 10) {
    obs::count("numerics.uniformization.step_splits");
    pi = step(pt, std::move(pi), lambda, t / 2.0, opts, depth + 1, steps_taken);
    return step(pt, std::move(pi), lambda, t / 2.0, opts, depth + 1, steps_taken);
  }
  obs::count("numerics.uniformization.steps");
  ++steps_taken;

  const std::size_t n = pi.size();
  Vec result(n, 0.0);
  Vec term = std::move(pi);  // pi0 P^k as k grows
  Vec next(n);
  for (std::size_t k = 0;; ++k) {
    const double w = fg.at(k);
    if (w > 0.0) linalg::axpy(w, term, result);
    if (k >= fg.right) break;
    pt.multiply(term, next);
    term.swap(next);
  }
  // Clean the truncation/rounding drift. A zero or non-finite mass here
  // means the step produced no distribution at all — the failure mode this
  // layer exists to surface; normalize_l1 leaves the vector untouched then,
  // and the caller's certification fails loudly instead of reading zeros.
  const double mass = linalg::normalize_l1(result);
  if (!(mass > 0.0) || !std::isfinite(mass)) {
    obs::count("numerics.uniformization.zero_mass_guards");
    if (obs::tracing_on()) {
      obs::TraceEvent ev;
      ev.name = "numerics.uniformization_zero_mass";
      ev.num.emplace_back("q", q);
      ev.num.emplace_back("mass", mass);
      obs::emit(std::move(ev));
    }
  }
  return result;
}

/// Advance pi over a gap of duration `gap`, splitting so each step's
/// Lambda*dt stays below max_step_jumps.
Vec advance(const CsrMatrix& pt, Vec pi, double lambda, double gap,
            const TransientOptions& opts, int& steps_taken) {
  const int n_steps =
      std::max(1, static_cast<int>(std::ceil(lambda * gap / opts.max_step_jumps)));
  const double dt = gap / n_steps;
  for (int s = 0; s < n_steps; ++s) {
    pi = step(pt, std::move(pi), lambda, dt, opts, 0, steps_taken);
  }
  return pi;
}

void record_transient_solve(const TransientResult& res, index_t n,
                            std::uint64_t start_ns) {
  if (!obs::metrics_on()) return;
  obs::SolveRecord rec;
  rec.context = "transient";
  rec.method = "uniformization";
  rec.n = n;
  rec.iterations = res.steps;
  rec.residual = res.certificate.mass_error;
  rec.relative_residual = res.certificate.mass_error;
  rec.converged = res.certificate.ok();
  rec.diverged = !res.certificate.finite;
  rec.certified = res.certificate.ok();
  rec.wall_ms = static_cast<double>(obs::now_ns() - start_ns) / 1e6;
  obs::record_solve(std::move(rec));
}

}  // namespace

TransientResult transient_distribution_certified(const Ctmc& chain, const Vec& pi0,
                                                 double t,
                                                 const TransientOptions& opts) {
  assert(static_cast<index_t>(pi0.size()) == chain.n_states());
  assert(t >= 0.0);
  const std::uint64_t start_ns = obs::now_ns();
  TransientResult res;
  if (t == 0.0) {
    res.pi = pi0;
    res.certificate = linalg::certify_distribution(res.pi, {});
    record_transient_solve(res, chain.n_states(), start_ns);
    return res;
  }
  const double lambda = chain.max_exit_rate() * 1.02 + 1e-12;
  const CsrMatrix pt = uniformized_transposed(chain, lambda);
  res.pi = advance(pt, pi0, lambda, t, opts, res.steps);
  res.certificate = linalg::certify_distribution(res.pi, {});
  record_transient_solve(res, chain.n_states(), start_ns);
  return res;
}

linalg::Vec transient_distribution(const Ctmc& chain, const Vec& pi0, double t,
                                   const TransientOptions& opts) {
  return transient_distribution_certified(chain, pi0, t, opts).pi;
}

std::vector<linalg::Vec> transient_trajectory(const Ctmc& chain, const Vec& pi0,
                                              const std::vector<double>& times,
                                              const TransientOptions& opts) {
  std::vector<Vec> out;
  out.reserve(times.size());
  const double lambda = chain.max_exit_rate() * 1.02 + 1e-12;
  const CsrMatrix pt = uniformized_transposed(chain, lambda);
  Vec pi = pi0;
  double prev_t = 0.0;
  int steps_taken = 0;
  for (double t : times) {
    assert(t >= prev_t);
    const double gap = t - prev_t;
    if (gap > 0.0) pi = advance(pt, std::move(pi), lambda, gap, opts, steps_taken);
    (void)linalg::certify_distribution(pi, {});
    out.push_back(pi);
    prev_t = t;
  }
  return out;
}

}  // namespace tags::ctmc
