// First-passage (hitting-time) analysis: expected time until the chain
// first enters a target set. Used here for "mean time to first job loss"
// — a finite-buffer metric the steady-state view cannot express.
//
// For non-target states A, the hitting times h solve
//     Q_AA h = -1      (h = 0 on the target set),
// where Q_AA is the generator restricted to A.
#pragma once

#include <functional>

#include "ctmc/ctmc.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::ctmc {

struct FirstPassageResult {
  /// Expected hitting time from every state (0 on the target set); empty
  /// on solver failure.
  linalg::Vec hitting_time;
  bool converged = false;
};

/// Expected time to reach {i : target(i)} from each state. The target set
/// must be reachable from every non-target state (guaranteed for
/// irreducible chains with a non-empty target).
[[nodiscard]] FirstPassageResult mean_first_passage(
    const Ctmc& chain, const std::function<bool(index_t)>& target);

/// Convenience: hitting time from one starting state.
[[nodiscard]] double mean_first_passage_from(const Ctmc& chain,
                                             const std::function<bool(index_t)>& target,
                                             index_t from);

/// Expected time until the first occurrence of an *event* (a labelled
/// transition, e.g. "loss1" — which may be a self-loop and therefore not a
/// state change at all). Internally the labelled transitions are redirected
/// to an absorbing state and its hitting time computed.
[[nodiscard]] FirstPassageResult mean_time_to_event(const Ctmc& chain, label_t label);

[[nodiscard]] FirstPassageResult mean_time_to_event(const Ctmc& chain,
                                                    std::string_view label_name);

}  // namespace tags::ctmc
