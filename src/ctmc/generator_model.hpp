// The lazy model abstraction behind the model zoo.
//
// A GeneratorModel describes a CTMC implicitly: a dense state space
// 0..size-1 (the model owns the encode/decode bijection to whatever
// structured state it likes) plus a successor function that emits the
// outgoing transitions of one state. The engine in ctmc/generator.hpp
// consumes it straight into CSR — no retained labelled-transition list.
//
// Contract for for_each_transition:
//  * Rates must be non-negative; zero-rate emissions are ignored.
//  * Self-loops are allowed. They never enter the generator Q but do
//    accumulate into the per-label reward vectors (that is how bounded
//    queues record loss throughput).
//  * Rebinding contract: the emission pattern — which (state, to, label)
//    triples are emitted with a non-zero rate — must depend only on the
//    model's *structural* parameters (queue bounds, Erlang stages,
//    phase-type zero structure). Numerical parameters (arrival/service/
//    timer rates) may only change the rate values. Under that contract
//    GeneratorCtmc::rebind repopulates a frozen CSR pattern instead of
//    re-enumerating, which is the hot path of the t-sweeps and the
//    timeout optimiser.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace tags::ctmc {

/// Non-owning, non-allocating reference to an emit callback
/// `(index_t to, double rate, label_t label)`. Cheap enough to pass by
/// const reference through a virtual call per state.
class TransitionSink {
 public:
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, TransitionSink>>>
  TransitionSink(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* obj, index_t to, double rate, label_t label) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(to, rate, label);
        }) {}

  void operator()(index_t to, double rate, label_t label) const {
    fn_(obj_, to, rate, label);
  }

 private:
  void* obj_;
  void (*fn_)(void*, index_t, double, label_t);
};

class GeneratorModel {
 public:
  virtual ~GeneratorModel() = default;

  /// Number of states; states are the dense indices 0..size-1.
  [[nodiscard]] virtual index_t state_space_size() const = 0;

  /// Interned label names; index = label_t. Entry 0 must be "tau".
  /// Must not change between assemble and rebind.
  [[nodiscard]] virtual const std::vector<std::string>& transition_labels() const = 0;

  /// Emit every outgoing transition of `state`, in a deterministic order.
  virtual void for_each_transition(index_t state, const TransitionSink& emit) const = 0;
};

}  // namespace tags::ctmc
