// Stable Poisson weights for uniformization, after Fox & Glynn ("Computing
// Poisson probabilities", CACM 31(4), 1988): mode-centred evaluation with
// left/right truncation, so q = Lambda*t up to ~1e6 is handled without the
// underflow that kills the naive recurrence w_0 = e^{-q}, w_k = w_{k-1} q/k
// (e^{-q} flushes to zero for q >~ 745, leaving every weight zero and the
// "distribution" silently empty).
//
// The weight at the mode m = floor(q) is computed in log space via lgamma
// (Stirling territory, |log w_m| ~ ln(2 pi q)/2 — always representable),
// then the two-sided recurrence walks outward until the neglected tails are
// provably below eps. Weights are true pmf values, not rescaled, so the
// compensated total is itself the mass check.
#pragma once

#include <cstddef>
#include <vector>

namespace tags::ctmc {

struct FoxGlynnWeights {
  std::size_t left = 0;          ///< smallest k kept
  std::size_t right = 0;         ///< largest k kept (inclusive)
  std::vector<double> weights;   ///< weights[k - left] ~= e^{-q} q^k / k!
  double total_weight = 0.0;     ///< compensated sum over the window
  /// Total weight within eps of 1 and every weight finite: the truncation
  /// really did capture the distribution. Counted under
  /// numerics.fox_glynn.{calls,mass_failures}.
  bool ok = false;

  [[nodiscard]] std::size_t size() const noexcept { return weights.size(); }
  /// Weight of k, 0 outside the window.
  [[nodiscard]] double at(std::size_t k) const noexcept {
    return k < left || k > right ? 0.0 : weights[k - left];
  }
};

/// Compute the truncated Poisson(q) weights with combined tail mass <= eps.
/// q must be >= 0 and finite; eps in (0, 1).
[[nodiscard]] FoxGlynnWeights fox_glynn(double q, double eps);

}  // namespace tags::ctmc
