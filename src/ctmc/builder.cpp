#include "ctmc/builder.hpp"

#include <cassert>

namespace tags::ctmc {

CtmcBuilder::CtmcBuilder() {
  label_names_.emplace_back("tau");
  label_ids_.emplace("tau", kTau);
}

label_t CtmcBuilder::label(std::string_view name) {
  const auto it = label_ids_.find(std::string(name));
  if (it != label_ids_.end()) return it->second;
  const label_t id = static_cast<label_t>(label_names_.size());
  label_names_.emplace_back(name);
  label_ids_.emplace(std::string(name), id);
  return id;
}

void CtmcBuilder::add(index_t from, index_t to, double rate, label_t label) {
  assert(from >= 0 && to >= 0);
  assert(rate >= 0.0);
  if (rate == 0.0) return;
  ensure_states(std::max(from, to) + 1);
  transitions_.push_back({from, to, rate, label});
}

void CtmcBuilder::add(index_t from, index_t to, double rate, std::string_view label_name) {
  add(from, to, rate, label(label_name));
}

void CtmcBuilder::ensure_states(index_t n) {
  if (n > n_states_) n_states_ = n;
}

Ctmc CtmcBuilder::build() const {
  linalg::CooMatrix coo(n_states_, n_states_);
  coo.reserve(transitions_.size() * 2);
  for (const Transition& t : transitions_) {
    if (t.from == t.to) continue;  // self-loop: no effect on the generator
    coo.add(t.from, t.to, t.rate);
    coo.add(t.from, t.from, -t.rate);
  }
  return Ctmc(n_states_, linalg::CsrMatrix::from_coo(coo), transitions_, label_names_);
}

}  // namespace tags::ctmc
