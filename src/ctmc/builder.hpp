// Incremental CTMC construction with interned action labels.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/coo.hpp"

namespace tags::ctmc {

class CtmcBuilder {
 public:
  CtmcBuilder();

  /// Intern an action name; returns a stable id. "tau" is pre-interned as 0.
  label_t label(std::string_view name);

  /// Record a transition. Self-loops (from == to) are kept in the labelled
  /// transition list (they matter for throughput/loss measures) but do not
  /// enter the generator. Zero-rate transitions are dropped entirely.
  void add(index_t from, index_t to, double rate, label_t label = kTau);
  void add(index_t from, index_t to, double rate, std::string_view label_name);

  /// Ensure the chain has at least n states (states are otherwise implied
  /// by the largest index seen).
  void ensure_states(index_t n);

  [[nodiscard]] index_t n_states() const noexcept { return n_states_; }
  [[nodiscard]] std::size_t n_transitions() const noexcept { return transitions_.size(); }

  /// Assemble the CTMC. The builder can be reused afterwards (it is left
  /// unchanged).
  [[nodiscard]] Ctmc build() const;

 private:
  index_t n_states_ = 0;
  std::vector<Transition> transitions_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, label_t> label_ids_;
};

}  // namespace tags::ctmc
