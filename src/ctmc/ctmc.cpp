#include "ctmc/ctmc.hpp"

#include <cmath>

namespace tags::ctmc {

Ctmc::Ctmc(index_t n_states, linalg::CsrMatrix generator,
           std::vector<Transition> transitions, std::vector<std::string> label_names)
    : n_states_(n_states),
      q_(std::move(generator)),
      transitions_(std::move(transitions)),
      label_names_(std::move(label_names)) {}

std::int64_t Ctmc::find_label(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < label_names_.size(); ++i) {
    if (label_names_[i] == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

linalg::Vec Ctmc::exit_rates() const {
  linalg::Vec d = q_.diagonal();
  for (double& v : d) v = -v;
  return d;
}

double Ctmc::max_exit_rate() const {
  double m = 0.0;
  for (double v : exit_rates()) m = std::max(m, v);
  return m;
}

bool Ctmc::is_valid_generator(double tol) const {
  if (q_.rows() != n_states_ || q_.cols() != n_states_) return false;
  for (index_t i = 0; i < n_states_; ++i) {
    const auto cs = q_.row_cols(i);
    const auto vs = q_.row_vals(i);
    double row_sum = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      row_sum += vs[k];
      if (cs[k] != i && vs[k] < 0.0) return false;
    }
    if (std::abs(row_sum) > tol * std::max(1.0, -q_.at(i, i))) return false;
  }
  return true;
}

}  // namespace tags::ctmc
