// Stable 64-bit FNV-1a digests over CTMC structure, the cache-key
// primitive of the analysis server (src/serve) and the durable results
// store. Two layers:
//
//  * fnv1a64 / mixers — the raw hash, byte-order-stable on every platform
//    we build for (the repo targets little-endian; digests are documented
//    as implementation identifiers, not portable checksums).
//  * structure_digest — the frozen CSR sparsity pattern (dimensions,
//    row extents, column indices) plus the interned label names of an
//    assembled GeneratorCtmc. By the rebinding contract in
//    generator_model.hpp this is invariant under rebind() (rates move on a
//    frozen pattern) and changes whenever a structural parameter moves the
//    state space or the emission pattern — exactly the property a
//    rebind-aware solve cache needs from its key.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "ctmc/generator.hpp"
#include "linalg/csr.hpp"

namespace tags::ctmc {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// Core FNV-1a: fold `len` bytes into `h`. Chain calls to digest
/// heterogeneous records; start from kFnv1aOffset.
[[nodiscard]] constexpr std::uint64_t fnv1a64(const void* data, std::size_t len,
                                              std::uint64_t h = kFnv1aOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Mix one unsigned 64-bit value (little-endian byte order, explicitly, so
/// the digest does not depend on the host's integer layout).
[[nodiscard]] constexpr std::uint64_t fnv1a64_u64(std::uint64_t v,
                                                  std::uint64_t h) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnv1aPrime;
  }
  return h;
}

/// Mix one double by bit pattern. -0.0 is normalised to +0.0 so the two
/// zero encodings of a rate cannot split the cache; NaNs are not expected
/// in parameters and hash by whatever payload they carry.
[[nodiscard]] inline std::uint64_t fnv1a64_double(double v, std::uint64_t h) noexcept {
  if (v == 0.0) v = 0.0;  // collapses -0.0
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a64_u64(bits, h);
}

/// Mix a string including its length (so {"ab","c"} and {"a","bc"} differ).
[[nodiscard]] inline std::uint64_t fnv1a64_str(std::string_view s,
                                               std::uint64_t h) noexcept {
  h = fnv1a64_u64(s.size(), h);
  return fnv1a64(s.data(), s.size(), h);
}

/// Digest of a CSR matrix's sparsity pattern only: dimensions, per-row
/// extents, and column indices — never the values. Rebinding rates on the
/// frozen pattern preserves it; any dimension or pattern change alters it.
[[nodiscard]] std::uint64_t pattern_digest(const linalg::CsrMatrix& m) noexcept;

/// Digest of an assembled engine's structure: the generator's sparsity
/// pattern plus the interned label names (two models with identical
/// patterns but different label sets must not share cached answers).
[[nodiscard]] std::uint64_t structure_digest(const GeneratorCtmc& engine) noexcept;

/// Hex rendering ("%016x") for protocol messages and logs.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace tags::ctmc
