#include "ctmc/reachability.hpp"

#include <vector>

#include "ctmc/generator.hpp"

namespace tags::ctmc {

namespace {

/// BFS cover check over a CSR adjacency (off-diagonal entries only).
bool bfs_covers_all(const linalg::CsrMatrix& adj, index_t start) {
  const index_t n = adj.rows();
  if (n == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<index_t> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  index_t covered = 1;
  while (!stack.empty()) {
    const index_t u = stack.back();
    stack.pop_back();
    const auto cs = adj.row_cols(u);
    const auto vs = adj.row_vals(u);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const index_t v = cs[k];
      if (v == u || vs[k] <= 0.0) continue;  // skip diagonal/non-edges
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++covered;
        stack.push_back(v);
      }
    }
  }
  return covered == n;
}

}  // namespace

bool is_irreducible(const linalg::CsrMatrix& q) {
  if (q.rows() == 0) return false;
  // Strong connectivity == BFS from state 0 covers all states in both the
  // forward and the reverse graph.
  return bfs_covers_all(q, 0) && bfs_covers_all(q.transpose_cache(), 0);
}

bool is_irreducible(const Ctmc& chain) {
  if (chain.n_states() == 0) return false;
  return is_irreducible(chain.generator());
}

bool is_irreducible(const GeneratorCtmc& chain) {
  if (chain.n_states() == 0) return false;
  return is_irreducible(chain.generator());
}

std::vector<index_t> absorbing_states(const Ctmc& chain) {
  std::vector<index_t> out;
  const linalg::Vec exits = chain.exit_rates();
  for (index_t i = 0; i < chain.n_states(); ++i) {
    if (exits[static_cast<std::size_t>(i)] == 0.0) out.push_back(i);
  }
  return out;
}

}  // namespace tags::ctmc
