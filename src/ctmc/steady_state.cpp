#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ctmc/qbd.hpp"
#include "linalg/lu.hpp"
#include "linalg/reorder.hpp"
#include "obs/obs.hpp"

namespace tags::ctmc {

std::string_view to_string(SteadyStateMethod m) noexcept {
  switch (m) {
    case SteadyStateMethod::kAuto: return "auto";
    case SteadyStateMethod::kDenseLu: return "dense-lu";
    case SteadyStateMethod::kGaussSeidel: return "gauss-seidel";
    case SteadyStateMethod::kPower: return "power";
    case SteadyStateMethod::kGmres: return "gmres";
    case SteadyStateMethod::kLevelQbd: return "level-qbd";
    case SteadyStateMethod::kNcdAd: return "ncd-ad";
  }
  return "unknown";
}

namespace {

/// Record the just-finished solve as this result's own attempt entry.
void note_attempt(SteadyStateResult& res) {
  SteadyStateAttempt a;
  a.method = res.method_used;
  a.iterations = res.iterations;
  a.residual = res.residual;
  a.converged = res.converged;
  res.attempts.push_back(std::move(a));
}

/// A fast path the profitability gate declined without running: zero
/// iterations, never converged, but present in the attempt list with the
/// detector's verdict so "why didn't it fire?" is answerable downstream.
[[nodiscard]] SteadyStateAttempt gated_attempt(SteadyStateMethod m, const char* reason) {
  SteadyStateAttempt a;
  a.method = m;
  a.gate_reason = reason;
  return a;
}

/// The SolveRecord rendering of an attempt list: method names joined by
/// commas, gate-declined entries suffixed "[gate:<reason>]".
void append_attempts(obs::SolveRecord& rec, const std::vector<SteadyStateAttempt>& attempts) {
  for (const SteadyStateAttempt& a : attempts) {
    if (!rec.attempts.empty()) rec.attempts += ',';
    rec.attempts += to_string(a.method);
    if (!a.gate_reason.empty()) {
      rec.attempts += "[gate:";
      rec.attempts += a.gate_reason;
      rec.attempts += ']';
    }
  }
}

/// Trace a kAuto transition from a failed method to the next one. `reason`
/// distinguishes a raw convergence failure from a converged-but-uncertified
/// result (certification escalation).
void trace_fallback(SteadyStateMethod from, SteadyStateMethod to, double residual,
                    const char* reason) {
  obs::count("ctmc.steady_state.fallbacks");
  if (std::string_view(reason) != "residual") {
    obs::count("numerics.certify.escalations");
  }
  if (!obs::tracing_on()) return;
  obs::TraceEvent ev;
  ev.name = "steady_state.fallback";
  ev.str.emplace_back("from", std::string(to_string(from)));
  ev.str.emplace_back("to", std::string(to_string(to)));
  ev.str.emplace_back("reason", reason);
  ev.num.emplace_back("residual", residual);
  obs::emit(std::move(ev));
}

using linalg::CooMatrix;
using linalg::CsrMatrix;
using linalg::index_t;
using linalg::Vec;

/// Everything the solvers need: the CSR generator plus exit-rate data
/// cached off its diagonal. Built once per public steady_state call, so
/// any representation that yields a CSR generator (classic Ctmc,
/// GeneratorCtmc, a raw matrix) solves through the same path.
struct System {
  const CsrMatrix& q;
  Vec exit;         // -diagonal
  double max_exit;  // largest exit rate

  explicit System(const CsrMatrix& gen) : q(gen), exit(gen.diagonal()), max_exit(0.0) {
    for (double& v : exit) {
      v = -v;
      max_exit = std::max(max_exit, v);
    }
  }
  [[nodiscard]] index_t n() const noexcept { return q.rows(); }
};

/// ||pi Q||_inf via y = Q^T pi.
double balance_residual(const CsrMatrix& qt, std::span<const double> pi, Vec& scratch) {
  qt.multiply(pi, scratch);
  return linalg::nrm_inf(scratch);
}

/// Stamp the result with an independent certificate: the residual is
/// recomputed from Q^T and pi (never trusted from the solver), entries are
/// checked finite, and probability mass is re-summed with compensation.
/// `condition` carries the dense-LU path's Hager estimate (0 elsewhere).
void certify_result(SteadyStateResult& res, const CsrMatrix& qt, const System& sys,
                    const SteadyStateOptions& opts, double condition = 0.0) {
  if (!opts.certify) return;
  if (res.pi.size() != static_cast<std::size_t>(sys.n())) return;  // no solution
  const obs::Span span("solve/certify");
  linalg::CertifyOptions c = opts.certify_opts;
  c.residual_bound *= std::max(1.0, sys.max_exit);
  const Vec zero(res.pi.size(), 0.0);
  res.certificate = linalg::certify_solution(qt, res.pi, zero, c, condition);
}

/// The acceptance test the kAuto chain escalates on: converged by the
/// solver's own criterion AND certified (when certification is enabled).
bool accepted(const SteadyStateResult& res, const SteadyStateOptions& opts) {
  return res.converged && (!opts.certify || res.certificate.ok());
}

/// Why the chain moved on — for the fallback trace.
const char* fallback_reason(const SteadyStateResult& res) {
  return res.converged ? "certification" : "residual";
}

Vec initial_vector(const System& sys, const SteadyStateOptions& opts) {
  const std::size_t n = static_cast<std::size_t>(sys.n());
  if (opts.initial_guess && opts.initial_guess->size() == n) {
    Vec pi = *opts.initial_guess;
    for (double& v : pi) v = std::max(v, 0.0);
    if (linalg::normalize_l1(pi) > 0.0) return pi;
  }
  return Vec(n, 1.0 / static_cast<double>(n));
}

/// Stamp the per-attempt span with the outcome every solver reports.
void close_attempt_span(obs::Span& span, const SteadyStateResult& res) {
  span.attr("iterations", static_cast<double>(res.iterations));
  span.attr("residual", res.residual);
  span.attr("converged", res.converged ? 1.0 : 0.0);
}

SteadyStateResult solve_dense_lu(const System& sys, const SteadyStateOptions& opts) {
  const obs::ScopedTimer timer("dense-lu");
  obs::Span span("solve/dense-lu");
  span.attr("n", static_cast<double>(sys.n()));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kDenseLu;
  const std::size_t n = static_cast<std::size_t>(sys.n());
  // A = Q^T with the last balance equation replaced by sum(pi) = 1.
  linalg::DenseMatrix a(n, n);
  const CsrMatrix& q = sys.q;
  for (index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      a(static_cast<std::size_t>(cs[k]), static_cast<std::size_t>(i)) = vs[k];
    }
  }
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  const double a_norm1 = opts.certify ? linalg::norm1(a) : 0.0;
  Vec b(n, 0.0);
  b[n - 1] = 1.0;
  const linalg::LuFactorization f = linalg::lu_factor(std::move(a));
  if (f.singular()) {
    note_attempt(res);
    close_attempt_span(span, res);
    return res;
  }
  // The direct path is the one place a condition estimate is nearly free:
  // Hager's iteration is a handful of O(n^2) triangular solves on a
  // factorization we already hold.
  const double condition = opts.certify ? linalg::condest_1(a_norm1, f) : 0.0;
  res.pi = f.solve(b);
  for (double& v : res.pi) v = std::max(v, 0.0);
  linalg::normalize_l1(res.pi);
  Vec scratch(n);
  const CsrMatrix& qt = q.transpose_cache();
  res.residual = balance_residual(qt, res.pi, scratch);
  res.converged = std::isfinite(res.residual) &&
                  res.residual <= 1e-6 * std::max(1.0, sys.max_exit);
  res.iterations = 1;
  certify_result(res, qt, sys, opts, condition);
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

SteadyStateResult solve_gauss_seidel(const System& sys, const SteadyStateOptions& opts) {
  const obs::ScopedTimer timer("gauss-seidel");
  obs::Span span("solve/gauss-seidel");
  span.attr("n", static_cast<double>(sys.n()));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kGaussSeidel;
  const std::size_t n = static_cast<std::size_t>(sys.n());
  const CsrMatrix& qt = sys.q.transpose_cache();
  const Vec& exit = sys.exit;
  // Residuals of pi*Q scale with the transition rates; make the tolerance
  // relative so stiff chains (huge timer rates) converge sensibly.
  const double tol = opts.tol * std::max(1.0, sys.max_exit);

  Vec pi = initial_vector(sys, opts);
  Vec scratch(n);
  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    // One sweep of pi_j = sum_{i != j} pi_i q_ij / exit_j.
    for (index_t j = 0; j < qt.rows(); ++j) {
      const std::size_t ju = static_cast<std::size_t>(j);
      if (exit[ju] == 0.0) continue;  // absorbing; caller should have checked
      const auto cs = qt.row_cols(j);
      const auto vs = qt.row_vals(j);
      double inflow = 0.0;
      for (std::size_t k = 0; k < cs.size(); ++k) {
        if (cs[k] != j) inflow += vs[k] * pi[static_cast<std::size_t>(cs[k])];
      }
      pi[ju] = inflow / exit[ju];
    }
    linalg::normalize_l1(pi);
    if ((res.iterations & 15) == 15 || res.iterations + 1 == opts.max_iter) {
      res.residual = balance_residual(qt, pi, scratch);
      obs::trace_iteration("steady.gauss-seidel", res.iterations, res.residual);
      if (res.residual <= tol) {
        res.converged = true;
        ++res.iterations;
        break;
      }
    }
  }
  res.residual = balance_residual(qt, pi, scratch);
  res.converged = res.residual <= tol;
  res.pi = std::move(pi);
  certify_result(res, qt, sys, opts);
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

SteadyStateResult solve_power(const System& sys, const SteadyStateOptions& opts) {
  const obs::ScopedTimer timer("power");
  obs::Span span("solve/power");
  span.attr("n", static_cast<double>(sys.n()));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kPower;
  const std::size_t n = static_cast<std::size_t>(sys.n());
  const CsrMatrix& q = sys.q;
  const CsrMatrix& qt = q.transpose_cache();
  // Strictly greater than the max exit rate so the DTMC is aperiodic.
  const double lambda = sys.max_exit * 1.05 + 1e-12;
  const double tol = opts.tol * std::max(1.0, sys.max_exit);

  // Pt = (I + Q/lambda)^T assembled directly from Q^T.
  CooMatrix coo(qt.rows(), qt.cols());
  for (index_t i = 0; i < qt.rows(); ++i) {
    const auto cs = qt.row_cols(i);
    const auto vs = qt.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(i, cs[k], vs[k] / lambda);
    coo.add(i, i, 1.0);
  }
  const CsrMatrix pt = CsrMatrix::from_coo(coo);

  Vec pi = initial_vector(sys, opts);
  Vec next(n);
  Vec scratch(n);
  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    pt.multiply(pi, next);
    linalg::normalize_l1(next);
    pi.swap(next);
    if ((res.iterations & 15) == 15 || res.iterations + 1 == opts.max_iter) {
      res.residual = balance_residual(qt, pi, scratch);
      obs::trace_iteration("steady.power", res.iterations, res.residual);
      if (res.residual <= tol) {
        res.converged = true;
        ++res.iterations;
        break;
      }
    }
  }
  res.residual = balance_residual(qt, pi, scratch);
  res.converged = res.residual <= tol;
  res.pi = std::move(pi);
  certify_result(res, qt, sys, opts);
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

SteadyStateResult solve_gmres(const System& sys, const SteadyStateOptions& opts) {
  const obs::ScopedTimer timer("gmres");
  obs::Span span("solve/gmres");
  span.attr("n", static_cast<double>(sys.n()));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kGmres;
  const std::size_t n = static_cast<std::size_t>(sys.n());
  const CsrMatrix& q = sys.q;
  // M = Q^T with the last row replaced by ones; M x = e_{n-1}.
  CooMatrix coo(static_cast<index_t>(n), static_cast<index_t>(n));
  for (index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] == static_cast<index_t>(n) - 1) continue;  // replaced row
      coo.add(cs[k], i, vs[k]);
    }
  }
  for (index_t j = 0; j < static_cast<index_t>(n); ++j)
    coo.add(static_cast<index_t>(n) - 1, j, 1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);

  Vec b(n, 0.0);
  b[n - 1] = 1.0;
  Vec x = initial_vector(sys, opts);
  const double tol = opts.tol * std::max(1.0, sys.max_exit);
  linalg::SolveOptions sopts;
  sopts.tol = tol;  // relative target, consistent with the balance check
  sopts.max_iter = opts.max_iter;
  sopts.restart = 120;
  // The D+L forward solve is the decisive preconditioner for these
  // nearly singular balance systems (plain Jacobi stagnates).
  sopts.precond = linalg::Preconditioner::kGaussSeidel;
  const linalg::SolveResult sr = linalg::gmres(m, b, x, sopts);
  res.iterations = sr.iterations;
  for (double& v : x) v = std::max(v, 0.0);
  linalg::normalize_l1(x);
  Vec scratch(n);
  const CsrMatrix& qt = q.transpose_cache();
  res.residual = balance_residual(qt, x, scratch);
  res.converged = res.residual <= tol * 10.0;  // allow slack vs linear tol
  res.pi = std::move(x);
  certify_result(res, qt, sys, opts);
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

/// Direct solve on the generator's BFS level (QBD) structure. Exact like
/// dense LU but with per-level dense blocks, so cost scales with the level
/// width, not the chain size. A structural failure (edge skipping a level,
/// singular Schur complement) yields an unconverged result with an
/// infinite residual — the kAuto chain treats it like any divergence.
SteadyStateResult solve_level_qbd(const System& sys, const SteadyStateOptions& opts,
                                  const QbdStructure& structure) {
  const obs::ScopedTimer timer("level-qbd");
  obs::Span span("solve/level-qbd");
  span.attr("n", static_cast<double>(sys.n()));
  span.attr("max_block", static_cast<double>(structure.max_block));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kLevelQbd;
  res.residual = std::numeric_limits<double>::infinity();
  Vec pi;
  if (structure.usable() && qbd_steady_state(sys.q, structure, pi)) {
    res.pi = std::move(pi);
    Vec scratch(res.pi.size());
    const CsrMatrix& qt = sys.q.transpose_cache();
    res.residual = balance_residual(qt, res.pi, scratch);
    res.converged = std::isfinite(res.residual) &&
                    res.residual <= 1e-6 * std::max(1.0, sys.max_exit);
    res.iterations = 1;
    certify_result(res, qt, sys, opts);
  }
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

/// NCD aggregation-disaggregation on a precomputed partition — the
/// iterative sibling of solve_level_qbd: the solver's own convergence
/// claim is re-checked against an independently recomputed balance
/// residual, and the certificate still decides acceptance in kAuto.
SteadyStateResult solve_ncd_ad(const System& sys, const SteadyStateOptions& opts,
                               const linalg::NcdPartition& part) {
  const obs::ScopedTimer timer("ncd-ad");
  obs::Span span("solve/ncd-ad");
  span.attr("n", static_cast<double>(sys.n()));
  span.attr("blocks", static_cast<double>(part.n_blocks()));
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kNcdAd;
  res.residual = std::numeric_limits<double>::infinity();
  linalg::NcdSolveOptions so;
  so.tol = opts.tol * std::max(1.0, sys.max_exit);  // relative, like the sweeps
  so.initial_guess = opts.initial_guess;
  linalg::NcdSolveResult r = linalg::ncd_steady_state(sys.q, part, so);
  if (!r.pi.empty()) {
    res.pi = std::move(r.pi);
    res.iterations = r.outer;
    Vec scratch(res.pi.size());
    const CsrMatrix& qt = sys.q.transpose_cache();
    res.residual = balance_residual(qt, res.pi, scratch);
    res.converged = std::isfinite(res.residual) && res.residual <= so.tol;
    certify_result(res, qt, sys, opts);
  }
  note_attempt(res);
  close_attempt_span(span, res);
  return res;
}

SteadyStateResult steady_state_impl(const System& sys, const SteadyStateOptions& opts) {
  switch (opts.method) {
    case SteadyStateMethod::kDenseLu: return solve_dense_lu(sys, opts);
    case SteadyStateMethod::kGaussSeidel: return solve_gauss_seidel(sys, opts);
    case SteadyStateMethod::kPower: return solve_power(sys, opts);
    case SteadyStateMethod::kGmres: return solve_gmres(sys, opts);
    case SteadyStateMethod::kLevelQbd: {
      // Explicit request: the profitability gate is the caller's problem;
      // only the structural requirement (connected block tridiagonal) and
      // the memory cap still apply.
      QbdOptions qo;
      qo.max_block = opts.structured_max_block > 0 ? opts.structured_max_block : sys.n();
      return solve_level_qbd(sys, opts, detect_qbd(sys.q, qo));
    }
    case SteadyStateMethod::kNcdAd: {
      // Explicit request: skip the profitability gate; the structural
      // requirement (>= 2 blocks) is enforced by ncd_steady_state itself,
      // which bails unconverged on a trivial partition.
      if (opts.ncd_cache) {
        return solve_ncd_ad(sys, opts, opts.ncd_cache->partition(sys.q, opts.ncd_opts));
      }
      const linalg::NcdPartition part = linalg::detect_ncd(sys.q, opts.ncd_opts);
      return solve_ncd_ad(sys, opts, part);
    }
    case SteadyStateMethod::kAuto: break;
  }
  // The kAuto chain escalates on the *certificate*, not on the raw residual
  // alone: a method that converged by its own bookkeeping but failed the
  // independent check (non-finite entries, mass drift, hopeless condition
  // estimate) falls through to the next method exactly like a divergence.
  std::vector<SteadyStateAttempt> chain_attempts;
  const auto finish = [&](SteadyStateResult r) {
    chain_attempts.insert(chain_attempts.end(), r.attempts.begin(), r.attempts.end());
    r.attempts = std::move(chain_attempts);
    return r;
  };
  // Structured fast path: when the generator is level-structured with
  // levels narrow enough to pay off, the block-tridiagonal direct solver
  // goes first. Its result is certified like every other attempt, so a
  // misdetection (or a surprise singular block) degrades to the generic
  // chain below rather than returning a wrong answer.
  if (opts.structured) {
    QbdOptions qo;
    qo.max_block = opts.structured_max_block;
    const QbdStructure structure = detect_qbd(sys.q, qo);
    if (structure.usable()) {
      SteadyStateResult res = solve_level_qbd(sys, opts, structure);
      if (accepted(res, opts)) {
        obs::count("ctmc.steady_state.structured.used");
        return finish(std::move(res));
      }
      obs::count("ctmc.steady_state.structured.fallthrough");
      trace_fallback(SteadyStateMethod::kLevelQbd,
                     sys.n() <= 1200 ? SteadyStateMethod::kDenseLu
                                     : SteadyStateMethod::kGaussSeidel,
                     res.residual, fallback_reason(res));
      chain_attempts.insert(chain_attempts.end(), res.attempts.begin(),
                            res.attempts.end());
    } else {
      obs::count("ctmc.steady_state.structured.declined");
      chain_attempts.push_back(
          gated_attempt(SteadyStateMethod::kLevelQbd, structure.gate_reason));
    }
  }
  // Second gated fast path: NCD aggregation-disaggregation, for the
  // weakly-coupled chains the QBD bandwidth guard rejects. Chains below
  // min_states skip even the detection — the dense/iterative chain is
  // already quick there and the no-op must cost nothing (and leave no
  // attempt-list trace, keeping small-chain behaviour bit-identical).
  if (opts.ncd && sys.n() >= opts.ncd_opts.min_states) {
    linalg::NcdPartition local;
    const linalg::NcdPartition* part;
    if (opts.ncd_cache) {
      part = &opts.ncd_cache->partition(sys.q, opts.ncd_opts);
    } else {
      local = linalg::detect_ncd(sys.q, opts.ncd_opts);
      part = &local;
    }
    if (part->profitable) {
      obs::count("ncd.gate.accepts");
      SteadyStateResult res = solve_ncd_ad(sys, opts, *part);
      if (accepted(res, opts)) {
        obs::count("ncd.solves");
        return finish(std::move(res));
      }
      obs::count("ncd.fallthroughs");
      trace_fallback(SteadyStateMethod::kNcdAd,
                     sys.n() <= 1200 ? SteadyStateMethod::kDenseLu
                                     : SteadyStateMethod::kGaussSeidel,
                     res.residual, fallback_reason(res));
      chain_attempts.insert(chain_attempts.end(), res.attempts.begin(),
                            res.attempts.end());
    } else {
      obs::count("ncd.gate.rejects");
      chain_attempts.push_back(
          gated_attempt(SteadyStateMethod::kNcdAd, part->gate_reason));
    }
  }
  if (sys.n() <= 1200) {
    SteadyStateResult res = solve_dense_lu(sys, opts);
    if (accepted(res, opts)) return finish(std::move(res));
    trace_fallback(SteadyStateMethod::kDenseLu, SteadyStateMethod::kGaussSeidel,
                   res.residual, fallback_reason(res));
    chain_attempts.insert(chain_attempts.end(), res.attempts.begin(),
                          res.attempts.end());
  }
  SteadyStateResult res = solve_gauss_seidel(sys, opts);
  if (accepted(res, opts)) return finish(std::move(res));
  trace_fallback(SteadyStateMethod::kGaussSeidel, SteadyStateMethod::kGmres,
                 res.residual, fallback_reason(res));
  chain_attempts.insert(chain_attempts.end(), res.attempts.begin(), res.attempts.end());
  SteadyStateOptions warm = opts;
  warm.initial_guess = res.pi;  // reuse partial progress
  SteadyStateResult res2 = solve_gmres(sys, warm);
  if (accepted(res2, opts)) return finish(std::move(res2));
  trace_fallback(SteadyStateMethod::kGmres, SteadyStateMethod::kPower, res2.residual,
                 fallback_reason(res2));
  chain_attempts.insert(chain_attempts.end(), res2.attempts.begin(),
                        res2.attempts.end());
  warm.initial_guess = res2.residual < res.residual ? res2.pi : res.pi;
  SteadyStateResult res3 = solve_power(sys, warm);
  chain_attempts.insert(chain_attempts.end(), res3.attempts.begin(),
                        res3.attempts.end());
  const auto with_chain = [&](SteadyStateResult r) {
    r.attempts = chain_attempts;
    if (!accepted(r, opts)) {
      // The whole chain is exhausted and nothing passed: the caller gets
      // the best attempt, flagged. This is the "nothing landed in a table
      // unchecked" guarantee — uncertified results are visible, not silent.
      obs::count("numerics.steady_state.uncertified_returns");
    }
    return r;
  };
  if (accepted(res3, opts)) return with_chain(std::move(res3));
  // Return the best attempt so callers can inspect the residual.
  if (res.residual <= res2.residual && res.residual <= res3.residual) {
    return with_chain(std::move(res));
  }
  return with_chain(std::move(res2.residual <= res3.residual ? res2 : res3));
}

}  // namespace

SteadyStateResult steady_state(const linalg::CsrMatrix& q, const SteadyStateOptions& opts) {
  assert(q.rows() > 0 && q.rows() == q.cols());
  obs::Span root_span("ctmc/steady_state");
  root_span.attr("n", static_cast<double>(q.rows()));
  root_span.attr("method", to_string(opts.method));
  // PermutedSolve wrapper: solve P·Q·Pᵀ and carry π back. The certificate
  // is computed on the permuted system, which is equivalent — residual
  // inf-norms and probability mass are permutation-invariant.
  if (opts.reorder == SteadyStateReorder::kRcm) {
    const linalg::Permutation p = [&q] {
      const obs::Span span("linalg/rcm_order");
      return linalg::rcm_order(q);
    }();
    if (!p.is_identity()) {
      obs::count("ctmc.steady_state.permuted_solves");
      const linalg::CsrMatrix qp = [&q, &p] {
        const obs::Span span("linalg/permute_symmetric");
        return linalg::permute_symmetric(q, p);
      }();
      SteadyStateOptions inner = opts;
      inner.reorder = SteadyStateReorder::kNone;
      // The NCD partition cache is keyed on (rows, nnz), which the RCM-
      // permuted system shares with the original; carrying it across the
      // two state orders would hand the solver a mismatched partition.
      // The permuted solve detects afresh instead.
      inner.ncd_cache.reset();
      if (inner.initial_guess &&
          inner.initial_guess->size() == static_cast<std::size_t>(q.rows())) {
        Vec guess(inner.initial_guess->size());
        linalg::permute_vector(p, *inner.initial_guess, guess);
        inner.initial_guess = std::move(guess);
      }
      SteadyStateResult res = steady_state(qp, inner);
      if (res.pi.size() == p.size()) {
        Vec orig(res.pi.size());
        linalg::unpermute_vector(p, res.pi, orig);
        res.pi = std::move(orig);
      }
      return res;
    }
  }
  const obs::ScopedTimer timer("ctmc/steady_state");
  const std::uint64_t start_ns = obs::now_ns();
  if (opts.initial_guess) {
    obs::count(opts.initial_guess->size() == static_cast<std::size_t>(q.rows())
                   ? "ctmc.steady_state.warm_start.hits"
                   : "ctmc.steady_state.warm_start.misses");
  }
  const System sys(q);
  SteadyStateResult res = steady_state_impl(sys, opts);
  root_span.attr("method_used", to_string(res.method_used));
  if (obs::metrics_on()) {
    obs::count("ctmc.steady_state.solves");
    obs::SolveRecord rec;
    rec.context = "steady_state";
    rec.method = to_string(res.method_used);
    rec.n = q.rows();
    rec.iterations = res.iterations;
    rec.residual = res.residual;
    rec.relative_residual = res.residual / std::max(1.0, sys.max_exit);
    rec.converged = res.converged;
    rec.diverged = !std::isfinite(res.residual);
    rec.certified = res.certificate.ok();
    rec.condition = res.certificate.condition;
    rec.wall_ms = static_cast<double>(obs::now_ns() - start_ns) / 1e6;
    append_attempts(rec, res.attempts);
    obs::record_solve(std::move(rec));
  }
  return res;
}

SteadyStateResult steady_state(const Ctmc& chain, const SteadyStateOptions& opts) {
  assert(chain.n_states() > 0);
  return steady_state(chain.generator(), opts);
}

namespace {

/// Finish one lane of a batched direct solve exactly the way the scalar
/// solver finishes: clamp/normalise, recompute the balance residual from
/// the lane's own transpose, apply the convergence test, stamp the
/// per-point certificate. `lane_q` is the lane's standalone matrix, so
/// every downstream bit equals the scalar path's.
void finish_direct_lane(SteadyStateResult& res, const CsrMatrix& lane_q,
                        const System& sys, const SteadyStateOptions& opts,
                        double condition) {
  Vec scratch(res.pi.size());
  const CsrMatrix& qt = lane_q.transpose_cache();
  res.residual = balance_residual(qt, res.pi, scratch);
  res.converged = std::isfinite(res.residual) &&
                  res.residual <= 1e-6 * std::max(1.0, sys.max_exit);
  res.iterations = 1;
  certify_result(res, qt, sys, opts, condition);
  note_attempt(res);
}

/// Mirror of the public steady_state()'s SolveRecord emission for one lane
/// of a batched solve; wall time covers the lane's own finishing work (the
/// shared factorisation is amortised across the batch and not attributed).
void record_batch_lane(const SteadyStateResult& res, index_t n, double max_exit,
                       std::uint64_t start_ns) {
  if (!obs::metrics_on()) return;
  obs::count("ctmc.steady_state.solves");
  obs::SolveRecord rec;
  rec.context = "steady_state";
  rec.method = to_string(res.method_used);
  rec.n = n;
  rec.iterations = res.iterations;
  rec.residual = res.residual;
  rec.relative_residual = res.residual / std::max(1.0, max_exit);
  rec.converged = res.converged;
  rec.diverged = !std::isfinite(res.residual);
  rec.certified = res.certificate.ok();
  rec.condition = res.certificate.condition;
  rec.wall_ms = static_cast<double>(obs::now_ns() - start_ns) / 1e6;
  append_attempts(rec, res.attempts);
  obs::record_solve(std::move(rec));
}

/// Storage cap for the batched dense factorisation (doubles). Above this
/// the lanes solve one by one through the scalar path instead — same bits,
/// just without the lockstep speedup.
constexpr std::size_t kDenseBatchCapDoubles = 16ull << 20;  // 128 MiB

}  // namespace

std::vector<SteadyStateResult> steady_state_batch(const linalg::CsrValueBatch& vals,
                                                  const SteadyStateOptions& opts) {
  const std::size_t w = vals.width();
  std::vector<SteadyStateResult> out(w);
  if (w == 0) return out;
  const CsrMatrix& pattern = vals.pattern();
  assert(pattern.rows() > 0 && pattern.rows() == pattern.cols());
  const std::size_t n = static_cast<std::size_t>(pattern.rows());
  obs::Span root_span("ctmc/steady_state_batch");
  root_span.attr("n", static_cast<double>(n));
  root_span.attr("width", static_cast<double>(w));
  root_span.attr("method", to_string(opts.method));

  // Warm-start chaining in lane order: lane b starts from the last
  // converged lane before it, exactly like consecutive points of a scalar
  // sweep. Direct solves ignore the guess, but a lane that escalates to
  // the iterative chain must see the guess the scalar sequence would have.
  std::optional<Vec> guess = opts.initial_guess;
  const auto scalar_lane = [&](std::size_t b) {
    const CsrMatrix lane_q = vals.lane_matrix(b);
    SteadyStateOptions lo = opts;
    lo.initial_guess = guess;
    SteadyStateResult r = steady_state(lane_q, lo);
    if (r.converged) guess = r.pi;
    return r;
  };

  // The batched path covers the direct solvers on the natural ordering;
  // anything else (explicit iterative method, RCM wrapping) is inherently
  // sequential per lane and simply runs the scalar solver lane by lane.
  const bool direct_eligible =
      opts.reorder == SteadyStateReorder::kNone &&
      (opts.method == SteadyStateMethod::kAuto ||
       opts.method == SteadyStateMethod::kLevelQbd ||
       opts.method == SteadyStateMethod::kDenseLu);
  if (!direct_eligible || w == 1) {
    for (std::size_t b = 0; b < w; ++b) out[b] = scalar_lane(b);
    return out;
  }

  std::vector<unsigned char> done(w, 0);

  // Structured (level-QBD) attempt. Detection and the elimination plan are
  // pattern-only, so one detect + one plan serve every lane; the scalar
  // solver would have reached the identical decision at each point.
  const bool try_qbd = opts.method == SteadyStateMethod::kLevelQbd ||
                       (opts.method == SteadyStateMethod::kAuto && opts.structured);
  bool qbd_structured = false;  // the scalar chain would attempt level-QBD
  const char* qbd_gate_reason = "";  // detector's verdict when it declined
  if (try_qbd) {
    QbdOptions qo;
    qo.max_block = opts.method == SteadyStateMethod::kLevelQbd
                       ? (opts.structured_max_block > 0 ? opts.structured_max_block
                                                        : pattern.rows())
                       : opts.structured_max_block;
    const QbdStructure structure = detect_qbd(pattern, qo);
    qbd_structured = structure.usable();
    qbd_gate_reason = structure.gate_reason;
    if (structure.usable() &&
        structure.factor_doubles * w <= QbdOptions{}.max_factor_doubles) {
      const QbdPlan plan = make_qbd_plan(pattern, structure);
      if (plan.ok) {
        std::vector<Vec> pis(w);
        const std::vector<unsigned char> ok =
            qbd_steady_state_batch(structure, plan, vals, pis);
        for (std::size_t b = 0; b < w; ++b) {
          if (!ok[b]) continue;  // scalar chain re-derives the failure
          const std::uint64_t lane_start = obs::now_ns();
          const CsrMatrix lane_q = vals.lane_matrix(b);
          const System sys(lane_q);
          SteadyStateResult res;
          res.method_used = SteadyStateMethod::kLevelQbd;
          res.pi = std::move(pis[b]);
          finish_direct_lane(res, lane_q, sys, opts, 0.0);
          // An explicit kLevelQbd request returns whatever the solver
          // produced; kAuto only keeps lanes that pass certification and
          // sends the rest through the scalar chain (which repeats the
          // identical failing attempt, preserving the attempt list).
          if (opts.method == SteadyStateMethod::kLevelQbd || accepted(res, opts)) {
            if (opts.method == SteadyStateMethod::kAuto)
              obs::count("ctmc.steady_state.structured.used");
            record_batch_lane(res, pattern.rows(), sys.max_exit, lane_start);
            out[b] = std::move(res);
            done[b] = 1;
          }
        }
      }
    }
  }

  // Dense-LU batch: kAuto reaches it only when the scalar chain would not
  // have attempted level-QBD first (a lane-level QBD failure escalates
  // through the scalar chain instead, so its attempt list keeps the failed
  // structured entry exactly like the scalar solver's), and only when the
  // scalar chain would also have skipped NCD detection (chains at or above
  // ncd_opts.min_states go through the scalar path so their attempt lists
  // carry the NCD gate verdict — with default options that bound exceeds
  // the 1200-state dense ceiling, so nothing changes here).
  const bool try_dense =
      opts.method == SteadyStateMethod::kDenseLu ||
      (opts.method == SteadyStateMethod::kAuto && n <= 1200 && !qbd_structured &&
       (!opts.ncd || pattern.rows() < opts.ncd_opts.min_states));
  if (try_dense && n * n * w <= kDenseBatchCapDoubles) {
    obs::Span span("solve/dense-lu-batch");
    span.attr("n", static_cast<double>(n));
    span.attr("width", static_cast<double>(w));
    // A_b = Q_b^T with the last balance row replaced by ones, assembled
    // lane-interleaved straight from the shared pattern.
    std::vector<double> a(n * n * w, 0.0);
    const double* v = vals.values().data();
    const index_t* cbase = pattern.row_cols(0).data();
    for (index_t i = 0; i < pattern.rows(); ++i) {
      const auto cs = pattern.row_cols(i);
      const std::size_t base = static_cast<std::size_t>(cs.data() - cbase);
      for (std::size_t k = 0; k < cs.size(); ++k) {
        double* dst =
            a.data() + (static_cast<std::size_t>(cs[k]) * n + static_cast<std::size_t>(i)) * w;
        const double* ev = v + (base + k) * w;
        for (std::size_t b = 0; b < w; ++b) dst[b] = ev[b];
      }
    }
    double* last = a.data() + (n - 1) * n * w;
    for (std::size_t j = 0; j < n * w; ++j) last[j] = 1.0;
    // Per-lane ||A||_1 before factoring, in linalg::norm1's exact
    // accumulation order (column-major sums, rows ascending).
    std::vector<double> a_norm1(w, 0.0);
    if (opts.certify) {
      std::vector<double> col(w);
      for (std::size_t j = 0; j < n; ++j) {
        std::fill(col.begin(), col.end(), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          const double* e = a.data() + (i * n + j) * w;
          for (std::size_t b = 0; b < w; ++b) col[b] += std::abs(e[b]);
        }
        for (std::size_t b = 0; b < w; ++b) a_norm1[b] = std::max(a_norm1[b], col[b]);
      }
    }
    linalg::BatchLuFactorization f;
    f.factor_packed(n, w, std::move(a));
    for (std::size_t b = 0; b < w; ++b) {
      if (done[b] || f.singular(b)) continue;  // singular: scalar chain re-derives
      const std::uint64_t lane_start = obs::now_ns();
      const CsrMatrix lane_q = vals.lane_matrix(b);
      const System sys(lane_q);
      SteadyStateResult res;
      if (opts.method == SteadyStateMethod::kAuto && opts.structured) {
        // The scalar chain records the declined level-QBD gate before the
        // dense solve; mirror it so lane attempt lists stay bit-identical.
        res.attempts.push_back(
            gated_attempt(SteadyStateMethod::kLevelQbd, qbd_gate_reason));
      }
      res.method_used = SteadyStateMethod::kDenseLu;
      // The extracted scalar factorization is bit-identical to lu_factor's,
      // so the scalar substitution and Hager condition code run verbatim.
      const linalg::LuFactorization lf = f.extract_lane(b);
      const double condition = opts.certify ? linalg::condest_1(a_norm1[b], lf) : 0.0;
      Vec rhs(n, 0.0);
      rhs[n - 1] = 1.0;
      res.pi = lf.solve(rhs);
      for (double& x : res.pi) x = std::max(x, 0.0);
      linalg::normalize_l1(res.pi);
      finish_direct_lane(res, lane_q, sys, opts, condition);
      if (opts.method == SteadyStateMethod::kDenseLu || accepted(res, opts)) {
        record_batch_lane(res, pattern.rows(), sys.max_exit, lane_start);
        out[b] = std::move(res);
        done[b] = 1;
      }
    }
  }

  // Sweep the lanes in ascending order: completed lanes feed the warm-start
  // chain, everything else runs the full scalar solver with the guess the
  // scalar sequence would have carried to that point.
  for (std::size_t b = 0; b < w; ++b) {
    if (done[b]) {
      if (out[b].converged) guess = out[b].pi;
      continue;
    }
    out[b] = scalar_lane(b);
  }
  return out;
}

void reconcile_warm_start(SteadyStateOptions& opts, index_t n_states) {
  if (!opts.initial_guess) return;
  if (opts.initial_guess->size() != static_cast<std::size_t>(n_states)) {
    opts.initial_guess.reset();
    obs::count("ctmc.steady_state.warm_start.cleared");
  }
}

void WarmStartState::reconcile(index_t n_states) {
  // Each shard's solves share one rebind-aware NCD partition cache: a sweep
  // rebinds values on a frozen pattern, so detection runs once per shard
  // and later points only re-evaluate the profitability gate. Created here
  // lazily so plain one-shot solves never pay for it.
  if (!opts.ncd_cache) opts.ncd_cache = std::make_shared<linalg::NcdPartitionCache>();
  const bool had_guess = opts.initial_guess.has_value();
  reconcile_warm_start(opts, n_states);
  if (had_guess && !opts.initial_guess) ++cleared;
  if (opts.initial_guess) {
    ++hits;
  } else {
    ++misses;
  }
}

void WarmStartState::accept(const SteadyStateResult& r) {
  if (!r.converged || (opts.certify && !r.certificate.ok())) ++uncertified;
  if (r.converged) opts.initial_guess = r.pi;
}

void WarmStartState::merge(const WarmStartState& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  cleared += other.cleared;
  uncertified += other.uncertified;
}

}  // namespace tags::ctmc
