#include "ctmc/steady_state.hpp"

#include <cassert>
#include <cmath>

#include "linalg/lu.hpp"

namespace tags::ctmc {

namespace {

using linalg::CooMatrix;
using linalg::CsrMatrix;
using linalg::index_t;
using linalg::Vec;

/// ||pi Q||_inf via y = Q^T pi.
double balance_residual(const CsrMatrix& qt, std::span<const double> pi, Vec& scratch) {
  qt.multiply(pi, scratch);
  return linalg::nrm_inf(scratch);
}

Vec initial_vector(const Ctmc& chain, const SteadyStateOptions& opts) {
  const std::size_t n = static_cast<std::size_t>(chain.n_states());
  if (opts.initial_guess && opts.initial_guess->size() == n) {
    Vec pi = *opts.initial_guess;
    for (double& v : pi) v = std::max(v, 0.0);
    if (linalg::normalize_l1(pi) > 0.0) return pi;
  }
  return Vec(n, 1.0 / static_cast<double>(n));
}

SteadyStateResult solve_dense_lu(const Ctmc& chain) {
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kDenseLu;
  const std::size_t n = static_cast<std::size_t>(chain.n_states());
  // A = Q^T with the last balance equation replaced by sum(pi) = 1.
  linalg::DenseMatrix a(n, n);
  const CsrMatrix& q = chain.generator();
  for (index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      a(static_cast<std::size_t>(cs[k]), static_cast<std::size_t>(i)) = vs[k];
    }
  }
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  Vec b(n, 0.0);
  b[n - 1] = 1.0;
  const linalg::LuFactorization f = linalg::lu_factor(std::move(a));
  if (f.singular()) return res;
  res.pi = f.solve(b);
  for (double& v : res.pi) v = std::max(v, 0.0);
  linalg::normalize_l1(res.pi);
  Vec scratch(n);
  res.residual = balance_residual(q.transposed(), res.pi, scratch);
  res.converged = std::isfinite(res.residual) &&
                  res.residual <= 1e-6 * std::max(1.0, chain.max_exit_rate());
  res.iterations = 1;
  return res;
}

SteadyStateResult solve_gauss_seidel(const Ctmc& chain, const SteadyStateOptions& opts) {
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kGaussSeidel;
  const std::size_t n = static_cast<std::size_t>(chain.n_states());
  const CsrMatrix qt = chain.generator().transposed();
  const Vec exit = chain.exit_rates();
  // Residuals of pi*Q scale with the transition rates; make the tolerance
  // relative so stiff chains (huge timer rates) converge sensibly.
  const double tol = opts.tol * std::max(1.0, chain.max_exit_rate());

  Vec pi = initial_vector(chain, opts);
  Vec scratch(n);
  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    // One sweep of pi_j = sum_{i != j} pi_i q_ij / exit_j.
    for (index_t j = 0; j < qt.rows(); ++j) {
      const std::size_t ju = static_cast<std::size_t>(j);
      if (exit[ju] == 0.0) continue;  // absorbing; caller should have checked
      const auto cs = qt.row_cols(j);
      const auto vs = qt.row_vals(j);
      double inflow = 0.0;
      for (std::size_t k = 0; k < cs.size(); ++k) {
        if (cs[k] != j) inflow += vs[k] * pi[static_cast<std::size_t>(cs[k])];
      }
      pi[ju] = inflow / exit[ju];
    }
    linalg::normalize_l1(pi);
    if ((res.iterations & 15) == 15 || res.iterations + 1 == opts.max_iter) {
      res.residual = balance_residual(qt, pi, scratch);
      if (res.residual <= tol) {
        res.converged = true;
        ++res.iterations;
        break;
      }
    }
  }
  res.residual = balance_residual(qt, pi, scratch);
  res.converged = res.residual <= tol;
  res.pi = std::move(pi);
  return res;
}

SteadyStateResult solve_power(const Ctmc& chain, const SteadyStateOptions& opts) {
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kPower;
  const std::size_t n = static_cast<std::size_t>(chain.n_states());
  const CsrMatrix& q = chain.generator();
  const CsrMatrix qt = q.transposed();
  // Strictly greater than the max exit rate so the DTMC is aperiodic.
  const double lambda = chain.max_exit_rate() * 1.05 + 1e-12;
  const double tol = opts.tol * std::max(1.0, chain.max_exit_rate());

  // Pt = (I + Q/lambda)^T assembled directly from Q^T.
  CooMatrix coo(qt.rows(), qt.cols());
  for (index_t i = 0; i < qt.rows(); ++i) {
    const auto cs = qt.row_cols(i);
    const auto vs = qt.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(i, cs[k], vs[k] / lambda);
    coo.add(i, i, 1.0);
  }
  const CsrMatrix pt = CsrMatrix::from_coo(coo);

  Vec pi = initial_vector(chain, opts);
  Vec next(n);
  Vec scratch(n);
  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    pt.multiply(pi, next);
    linalg::normalize_l1(next);
    pi.swap(next);
    if ((res.iterations & 15) == 15 || res.iterations + 1 == opts.max_iter) {
      res.residual = balance_residual(qt, pi, scratch);
      if (res.residual <= tol) {
        res.converged = true;
        ++res.iterations;
        break;
      }
    }
  }
  res.residual = balance_residual(qt, pi, scratch);
  res.converged = res.residual <= tol;
  res.pi = std::move(pi);
  return res;
}

SteadyStateResult solve_gmres(const Ctmc& chain, const SteadyStateOptions& opts) {
  SteadyStateResult res;
  res.method_used = SteadyStateMethod::kGmres;
  const std::size_t n = static_cast<std::size_t>(chain.n_states());
  const CsrMatrix& q = chain.generator();
  // M = Q^T with the last row replaced by ones; M x = e_{n-1}.
  CooMatrix coo(static_cast<index_t>(n), static_cast<index_t>(n));
  for (index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] == static_cast<index_t>(n) - 1) continue;  // replaced row
      coo.add(cs[k], i, vs[k]);
    }
  }
  for (index_t j = 0; j < static_cast<index_t>(n); ++j)
    coo.add(static_cast<index_t>(n) - 1, j, 1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);

  Vec b(n, 0.0);
  b[n - 1] = 1.0;
  Vec x = initial_vector(chain, opts);
  const double tol = opts.tol * std::max(1.0, chain.max_exit_rate());
  linalg::SolveOptions sopts;
  sopts.tol = tol;  // relative target, consistent with the balance check
  sopts.max_iter = opts.max_iter;
  sopts.restart = 120;
  // The D+L forward solve is the decisive preconditioner for these
  // nearly singular balance systems (plain Jacobi stagnates).
  sopts.precond = linalg::Preconditioner::kGaussSeidel;
  const linalg::SolveResult sr = linalg::gmres(m, b, x, sopts);
  res.iterations = sr.iterations;
  for (double& v : x) v = std::max(v, 0.0);
  linalg::normalize_l1(x);
  Vec scratch(n);
  res.residual = balance_residual(q.transposed(), x, scratch);
  res.converged = res.residual <= tol * 10.0;  // allow slack vs linear tol
  res.pi = std::move(x);
  return res;
}

}  // namespace

SteadyStateResult steady_state(const Ctmc& chain, const SteadyStateOptions& opts) {
  assert(chain.n_states() > 0);
  switch (opts.method) {
    case SteadyStateMethod::kDenseLu: return solve_dense_lu(chain);
    case SteadyStateMethod::kGaussSeidel: return solve_gauss_seidel(chain, opts);
    case SteadyStateMethod::kPower: return solve_power(chain, opts);
    case SteadyStateMethod::kGmres: return solve_gmres(chain, opts);
    case SteadyStateMethod::kAuto: break;
  }
  if (chain.n_states() <= 1200) {
    SteadyStateResult res = solve_dense_lu(chain);
    if (res.converged) return res;
  }
  SteadyStateResult res = solve_gauss_seidel(chain, opts);
  if (res.converged) return res;
  SteadyStateOptions warm = opts;
  warm.initial_guess = res.pi;  // reuse partial progress
  SteadyStateResult res2 = solve_gmres(chain, warm);
  if (res2.converged) return res2;
  warm.initial_guess = res2.residual < res.residual ? res2.pi : res.pi;
  SteadyStateResult res3 = solve_power(chain, warm);
  if (res3.converged) return res3;
  // Return the best attempt so callers can inspect the residual.
  if (res.residual <= res2.residual && res.residual <= res3.residual) return res;
  return res2.residual <= res3.residual ? res2 : res3;
}

}  // namespace tags::ctmc
