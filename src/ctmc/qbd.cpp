#include "ctmc/qbd.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace tags::ctmc {

using linalg::CsrMatrix;
using linalg::DenseMatrix;
using linalg::index_t;
using linalg::Vec;

QbdStructure detect_qbd(const CsrMatrix& q, const QbdOptions& opts) {
  const obs::ScopedTimer timer("ctmc/qbd_detect");
  obs::Span span("qbd/detect");
  span.attr("n", static_cast<double>(q.rows()));
  QbdStructure s;
  s.levels = linalg::bfs_levels(q);
  s.max_block = s.levels.max_block();
  for (std::size_t l = 0; l < s.levels.levels(); ++l) {
    const std::size_t m = static_cast<std::size_t>(s.levels.level_ptr[l + 1] -
                                                   s.levels.level_ptr[l]);
    s.factor_doubles += m * m;
  }
  // Undirected BFS levels differ by at most one across any edge, so the
  // permuted matrix is block tridiagonal exactly when every state was
  // reached (the solver still re-checks edge by edge, defensively).
  s.block_tridiagonal = s.levels.connected && q.rows() > 0;
  const index_t gate = opts.max_block > 0 ? opts.max_block : QbdOptions{}.max_block;
  s.profitable = s.block_tridiagonal && s.max_block <= gate &&
                 s.factor_doubles <= opts.max_factor_doubles;
  if (!s.block_tridiagonal) {
    s.gate_reason = "not-block-tridiagonal";
  } else if (s.max_block > gate) {
    s.gate_reason = "level-too-wide";
  } else if (s.factor_doubles > opts.max_factor_doubles) {
    s.gate_reason = "factor-storage";
  }
  span.attr("levels", static_cast<double>(s.levels.levels()));
  span.attr("max_block", static_cast<double>(s.max_block));
  span.attr("profitable", s.profitable ? 1.0 : 0.0);
  return s;
}

namespace {

struct Trip {
  index_t r, c;
  double v;
};

}  // namespace

bool qbd_steady_state(const CsrMatrix& q, const QbdStructure& s, Vec& pi_out) {
  const obs::ScopedTimer timer("ctmc/qbd_solve");
  if (!s.block_tridiagonal) return false;
  const linalg::LevelDecomposition& L = s.levels;
  const index_t n = q.rows();
  if (n == 0 || L.perm.order.size() != static_cast<std::size_t>(n)) return false;
  const std::size_t nlev = L.levels();
  const std::vector<index_t> pos = L.perm.inverse();
  const auto bs = [&](std::size_t l) {
    return static_cast<std::size_t>(L.level_ptr[l + 1] - L.level_ptr[l]);
  };

  // Split the generator into per-level triplet blocks in local coordinates:
  // A[l] within level l, B[l] level l -> l+1, C[l] level l -> l-1.
  std::vector<std::vector<Trip>> A(nlev), B(nlev), C(nlev);
  std::vector<linalg::LuFactorization> facts(nlev);
  {
  obs::Span factor_span("qbd/factor");
  factor_span.attr("levels", static_cast<double>(nlev));
  factor_span.attr("max_block", static_cast<double>(s.max_block));
  for (index_t u = 0; u < n; ++u) {
    const int l = L.level_of[static_cast<std::size_t>(u)];
    const index_t lr = pos[static_cast<std::size_t>(u)] - L.level_ptr[static_cast<std::size_t>(l)];
    const auto cs = q.row_cols(u);
    const auto vs = q.row_vals(u);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const int lc = L.level_of[static_cast<std::size_t>(cs[k])];
      const index_t cc =
          pos[static_cast<std::size_t>(cs[k])] - L.level_ptr[static_cast<std::size_t>(lc)];
      if (lc == l) {
        A[static_cast<std::size_t>(l)].push_back({lr, cc, vs[k]});
      } else if (lc == l + 1) {
        B[static_cast<std::size_t>(l)].push_back({lr, cc, vs[k]});
      } else if (lc == l - 1) {
        C[static_cast<std::size_t>(l)].push_back({lr, cc, vs[k]});
      } else {
        return false;  // an edge skips a level: not block tridiagonal
      }
    }
  }

  // Backward sweep: S_l = A_l - B_l X_{l+1} with X_l = S_l^{-1} C_l. The
  // LU of every S_l (l >= 1) is kept for the forward substitution; only
  // the current X survives the loop.
  DenseMatrix x_next;  // X_{l+1} while processing level l
  std::vector<index_t> nzcols;
  for (std::size_t l = nlev; l-- > 0;) {
    const std::size_t m = bs(l);
    DenseMatrix sl(m, m);
    for (const Trip& t : A[l])
      sl(static_cast<std::size_t>(t.r), static_cast<std::size_t>(t.c)) += t.v;
    if (l + 1 < nlev) {
      for (const Trip& t : B[l]) {
        const auto srow = sl.row(static_cast<std::size_t>(t.r));
        const auto xrow = x_next.row(static_cast<std::size_t>(t.c));
        for (std::size_t j = 0; j < m; ++j) srow[j] -= t.v * xrow[j];
      }
    }
    if (l == 0) {
      // pi_0 S_0 = 0 with one equation traded for sum(pi_0) = 1:
      // solve M x = e_last where M = S_0^T with its last row set to ones.
      DenseMatrix mt(m, m);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j) mt(j, i) = sl(i, j);
      for (std::size_t j = 0; j < m; ++j) mt(m - 1, j) = 1.0;
      facts[0] = linalg::lu_factor(std::move(mt));
      if (facts[0].singular()) return false;
      break;
    }
    facts[l] = linalg::lu_factor(std::move(sl));
    if (facts[l].singular()) return false;
    // X_l = S_l^{-1} C_l, solved only for the nonzero columns of C_l,
    // packed dense so the multi-RHS substitution vectorises across them.
    const std::size_t mprev = bs(l - 1);
    nzcols.assign(mprev, -1);
    index_t nnz_cols = 0;
    for (const Trip& t : C[l]) {
      if (nzcols[static_cast<std::size_t>(t.c)] < 0) nzcols[static_cast<std::size_t>(t.c)] = nnz_cols++;
    }
    DenseMatrix packed(m, static_cast<std::size_t>(nnz_cols));
    for (const Trip& t : C[l])
      packed(static_cast<std::size_t>(t.r),
             static_cast<std::size_t>(nzcols[static_cast<std::size_t>(t.c)])) += t.v;
    facts[l].solve_in_place_multi(packed);
    DenseMatrix x(m, mprev);
    for (std::size_t j = 0; j < mprev; ++j) {
      if (nzcols[j] < 0) continue;
      const std::size_t pj = static_cast<std::size_t>(nzcols[j]);
      for (std::size_t i = 0; i < m; ++i) x(i, j) = packed(i, pj);
    }
    x_next = std::move(x);
  }
  }  // qbd/factor

  obs::Span substitute_span("qbd/substitute");
  substitute_span.attr("levels", static_cast<double>(nlev));
  const std::size_t m0 = bs(0);
  Vec rhs(m0, 0.0);
  rhs[m0 - 1] = 1.0;
  Vec pil = facts[0].solve(rhs);

  // Forward: pi_{l+1} = -pi_l B_l S_{l+1}^{-1}, i.e. solve
  // S_{l+1}^T z = -(B_l^T pi_l).
  Vec pi(static_cast<std::size_t>(n), 0.0);
  const auto scatter = [&](std::size_t l, const Vec& block) {
    for (std::size_t i = 0; i < block.size(); ++i)
      pi[static_cast<std::size_t>(
          L.perm.order[static_cast<std::size_t>(L.level_ptr[l]) + i])] = block[i];
  };
  scatter(0, pil);
  for (std::size_t l = 0; l + 1 < nlev; ++l) {
    Vec w(bs(l + 1), 0.0);
    for (const Trip& t : B[l])
      w[static_cast<std::size_t>(t.c)] -= t.v * pil[static_cast<std::size_t>(t.r)];
    pil = facts[l + 1].solve_transpose(w);
    scatter(l + 1, pil);
  }
  for (double& v : pi) v = std::max(v, 0.0);
  if (linalg::normalize_l1(pi) <= 0.0) return false;
  pi_out = std::move(pi);
  return true;
}

QbdPlan make_qbd_plan(const CsrMatrix& q, const QbdStructure& s) {
  QbdPlan plan;
  if (!s.block_tridiagonal) return plan;
  const linalg::LevelDecomposition& L = s.levels;
  const index_t n = q.rows();
  if (n == 0 || L.perm.order.size() != static_cast<std::size_t>(n)) return plan;
  const std::size_t nlev = L.levels();
  const std::vector<index_t> pos = L.perm.inverse();
  plan.A.resize(nlev);
  plan.B.resize(nlev);
  plan.C.resize(nlev);
  // Same traversal as the scalar solver's triplet build: rows ascending,
  // entries within a row ascending. vidx is the entry's global offset into
  // the (contiguous) CSR value array.
  const double* vbase = n > 0 ? q.row_vals(0).data() : nullptr;
  for (index_t u = 0; u < n; ++u) {
    const int l = L.level_of[static_cast<std::size_t>(u)];
    const index_t lr =
        pos[static_cast<std::size_t>(u)] - L.level_ptr[static_cast<std::size_t>(l)];
    const auto cs = q.row_cols(u);
    const auto vs = q.row_vals(u);
    const std::size_t base = static_cast<std::size_t>(vs.data() - vbase);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const int lc = L.level_of[static_cast<std::size_t>(cs[k])];
      const index_t cc = pos[static_cast<std::size_t>(cs[k])] -
                         L.level_ptr[static_cast<std::size_t>(lc)];
      if (lc == l) {
        plan.A[static_cast<std::size_t>(l)].push_back({base + k, lr, cc});
      } else if (lc == l + 1) {
        plan.B[static_cast<std::size_t>(l)].push_back({base + k, lr, cc});
      } else if (lc == l - 1) {
        plan.C[static_cast<std::size_t>(l)].push_back({base + k, lr, cc});
      } else {
        return plan;  // ok stays false
      }
    }
  }
  // Pre-assign packed columns for each level's C block in first-appearance
  // order — identical to the scalar solver's per-call assignment, but the
  // assignment depends only on the pattern so it is shared by every lane.
  plan.nzcols.resize(nlev);
  plan.nnz_cols.assign(nlev, 0);
  for (std::size_t l = 1; l < nlev; ++l) {
    const std::size_t mprev =
        static_cast<std::size_t>(L.level_ptr[l] - L.level_ptr[l - 1]);
    plan.nzcols[l].assign(mprev, -1);
    index_t next = 0;
    for (const QbdPlan::Entry& e : plan.C[l]) {
      if (plan.nzcols[l][static_cast<std::size_t>(e.c)] < 0)
        plan.nzcols[l][static_cast<std::size_t>(e.c)] = next++;
    }
    plan.nnz_cols[l] = next;
  }
  plan.ok = true;
  return plan;
}

std::vector<unsigned char> qbd_steady_state_batch(const QbdStructure& s,
                                                  const QbdPlan& plan,
                                                  const linalg::CsrValueBatch& vals,
                                                  std::vector<Vec>& pis) {
  const std::size_t w = vals.width();
  std::vector<unsigned char> ok(w, 0);
  if (!plan.ok || !s.block_tridiagonal || w == 0) return ok;
  const obs::ScopedTimer timer("ctmc/qbd_solve_batch");
  const linalg::LevelDecomposition& L = s.levels;
  const index_t n = vals.pattern().rows();
  const std::size_t nlev = L.levels();
  const auto bs = [&](std::size_t l) {
    return static_cast<std::size_t>(L.level_ptr[l + 1] - L.level_ptr[l]);
  };
  const double* v = vals.values().data();
  if (pis.size() != w) pis.resize(w);
  std::fill(ok.begin(), ok.end(), 1);

  // Backward sweep, all lanes in lockstep: assemble S_l lane-interleaved,
  // factor with the batched LU, solve the packed multi-RHS X system. Every
  // per-lane arithmetic sequence (assembly += order, B-coupling update
  // order, substitutions) matches the scalar solver exactly.
  std::vector<linalg::BatchLuFactorization> facts(nlev);
  {
    obs::Span factor_span("qbd/factor_batch");
    factor_span.attr("levels", static_cast<double>(nlev));
    factor_span.attr("max_block", static_cast<double>(s.max_block));
    factor_span.attr("width", static_cast<double>(w));
    std::vector<double> x_next;  // X_{l+1}: bs(l+1) x bs(l) x w
    std::vector<double> x_buf;   // reused backing store for the next X
    for (std::size_t l = nlev; l-- > 0;) {
      const std::size_t m = bs(l);
      std::vector<double> sl(m * m * w, 0.0);
      for (const QbdPlan::Entry& e : plan.A[l]) {
        double* d = sl.data() + (static_cast<std::size_t>(e.r) * m +
                                 static_cast<std::size_t>(e.c)) *
                                    w;
        const double* ev = v + e.vidx * w;
        for (std::size_t b = 0; b < w; ++b) d[b] += ev[b];
      }
      if (l + 1 < nlev) {
        double evl[16];
        for (const QbdPlan::Entry& e : plan.B[l]) {
          double* srow = sl.data() + static_cast<std::size_t>(e.r) * m * w;
          const double* xrow =
              x_next.data() + static_cast<std::size_t>(e.c) * m * w;
          // Stack copy of the invariant multiplier lane group: a bare
          // pointer into the value batch cannot be proven disjoint from
          // the S stores, and a per-j reload defeats the vectoriser.
          const double* ev = v + e.vidx * w;
          if (w <= 16) {
            for (std::size_t b = 0; b < w; ++b) evl[b] = ev[b];
            ev = evl;
          }
          for (std::size_t j = 0; j < m; ++j) {
            double* d = srow + j * w;
            const double* xr = xrow + j * w;
            for (std::size_t b = 0; b < w; ++b) d[b] -= ev[b] * xr[b];
          }
        }
      }
      if (l == 0) {
        std::vector<double> mt(m * m * w);
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < m; ++j) {
            const double* srcv = sl.data() + (i * m + j) * w;
            double* dst = mt.data() + (j * m + i) * w;
            for (std::size_t b = 0; b < w; ++b) dst[b] = srcv[b];
          }
        double* last = mt.data() + (m - 1) * m * w;
        for (std::size_t j = 0; j < m * w; ++j) last[j] = 1.0;
        facts[0].factor_packed(m, w, std::move(mt));
        break;
      }
      facts[l].factor_packed(m, w, std::move(sl));
      const std::size_t mprev = bs(l - 1);
      const std::size_t nc = static_cast<std::size_t>(plan.nnz_cols[l]);
      std::vector<double> packed(m * nc * w, 0.0);
      for (const QbdPlan::Entry& e : plan.C[l]) {
        const std::size_t pj =
            static_cast<std::size_t>(plan.nzcols[l][static_cast<std::size_t>(e.c)]);
        double* d = packed.data() + (static_cast<std::size_t>(e.r) * nc + pj) * w;
        const double* ev = v + e.vidx * w;
        for (std::size_t b = 0; b < w; ++b) d[b] += ev[b];
      }
      facts[l].solve_in_place_multi_batch(packed, nc);
      // Unpack into the reused X buffer, i-outer so both the packed row
      // and the destination row stream contiguously (j-outer strides
      // nc*w per step and thrashes). Every entry is written — copies for
      // journalled columns, explicit zeros for the rest — so the buffer
      // never needs a fresh zero-filled allocation. The values are
      // identical to the scalar unpack, only the write order changes.
      x_buf.resize(m * mprev * w);
      const index_t* nz = plan.nzcols[l].data();
      for (std::size_t i = 0; i < m; ++i) {
        const double* prow = packed.data() + i * nc * w;
        double* xrow = x_buf.data() + i * mprev * w;
        for (std::size_t j = 0; j < mprev; ++j) {
          double* dst = xrow + j * w;
          if (nz[j] < 0) {
            for (std::size_t b = 0; b < w; ++b) dst[b] = 0.0;
          } else {
            const double* srcv = prow + static_cast<std::size_t>(nz[j]) * w;
            for (std::size_t b = 0; b < w; ++b) dst[b] = srcv[b];
          }
        }
      }
      std::swap(x_next, x_buf);
    }
  }
  // A singular Schur complement fails only its own lane (the scalar path
  // would have returned false there); the batched substitutions leave
  // garbage confined to singular lanes, which we never read back.
  for (std::size_t l = 0; l < nlev; ++l)
    for (std::size_t b = 0; b < w; ++b)
      if (facts[l].singular(b)) ok[b] = 0;

  obs::Span substitute_span("qbd/substitute_batch");
  substitute_span.attr("levels", static_cast<double>(nlev));
  substitute_span.attr("width", static_cast<double>(w));
  // All lanes run the forward pass in lockstep over lane-interleaved
  // blocks; per lane the arithmetic is solve_in_place / solve_transpose
  // verbatim, so each lane's bits equal the scalar forward pass. Failed
  // lanes ride along (their garbage stays in their own lanes) and are
  // simply never scattered out.
  const std::size_t m0 = bs(0);
  std::vector<Vec> pi_out(w);
  for (std::size_t b = 0; b < w; ++b)
    if (ok[b]) pi_out[b].assign(static_cast<std::size_t>(n), 0.0);
  const auto scatter = [&](std::size_t l, const std::vector<double>& block,
                           std::size_t bsz) {
    for (std::size_t b = 0; b < w; ++b) {
      if (!ok[b]) continue;
      Vec& pi = pi_out[b];
      for (std::size_t i = 0; i < bsz; ++i)
        pi[static_cast<std::size_t>(
            L.perm.order[static_cast<std::size_t>(L.level_ptr[l]) + i])] =
            block[i * w + b];
    }
  };
  std::vector<double> pil(m0 * w, 0.0);
  for (std::size_t b = 0; b < w; ++b) pil[(m0 - 1) * w + b] = 1.0;
  facts[0].solve_all_lanes(pil);
  scatter(0, pil, m0);
  for (std::size_t l = 0; l + 1 < nlev; ++l) {
    const std::size_t mn = bs(l + 1);
    std::vector<double> acc(mn * w, 0.0);
    for (const QbdPlan::Entry& e : plan.B[l]) {
      double* d = acc.data() + static_cast<std::size_t>(e.c) * w;
      const double* ev = v + e.vidx * w;
      const double* pr = pil.data() + static_cast<std::size_t>(e.r) * w;
      for (std::size_t b = 0; b < w; ++b) d[b] -= ev[b] * pr[b];
    }
    facts[l + 1].solve_transpose_all_lanes(acc);
    pil = std::move(acc);
    scatter(l + 1, pil, mn);
  }
  for (std::size_t b = 0; b < w; ++b) {
    if (!ok[b]) continue;
    Vec& pi = pi_out[b];
    for (double& x : pi) x = std::max(x, 0.0);
    if (linalg::normalize_l1(pi) <= 0.0) {
      ok[b] = 0;
      continue;
    }
    pis[b] = std::move(pi);
  }
  return ok;
}

}  // namespace tags::ctmc
