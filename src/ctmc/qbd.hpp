// Level-structured (quasi-birth-death) detection and direct solution.
//
// The paper's bounded-queue generators are level-structured: queue
// occupancy moves by at most one per transition, so a BFS level
// decomposition of the (symmetrised) transition graph permutes Q into
// block-tridiagonal form. On that form the stationary equations solve
// *directly* by block elimination (block-Thomas / linear level reduction):
//
//   S_L = A_L,   S_l = A_l - B_l S_{l+1}^{-1} C_{l+1}   (backward sweep)
//   pi_0 S_0 = 0 with normalisation,  pi_{l+1} = -pi_l B_l S_{l+1}^{-1}
//
// where A_l is the within-level block, B_l the level l -> l+1 block and
// C_l the level l -> l-1 block. Cost is sum_l O(m_l^3) for level sizes
// m_l — dramatically cheaper than relaxation sweeps when levels are narrow
// (birth-death chains, deep/narrow TAGS configurations), and hopeless when
// a level is as wide as the chain itself. detect_qbd() therefore gates on
// the largest block before the solver is allowed near the kAuto chain;
// results always pass the independent linalg::Certificate check, so a
// misdetection degrades to the generic chain instead of a wrong answer.
#pragma once

#include <vector>

#include "linalg/batch.hpp"
#include "linalg/csr.hpp"
#include "linalg/reorder.hpp"

namespace tags::ctmc {

struct QbdOptions {
  /// Largest admissible level size. Block elimination pays ~m^2 flops per
  /// state versus a few thousand for Gauss-Seidel sweeps; measured on the
  /// paper's chains the crossover sits between level width ~140 (3.8x
  /// faster than the generic chain) and ~230 (2x slower). 0 restores the
  /// default.
  linalg::index_t max_block = 160;
  /// Cap on the retained factor storage, sum_l m_l^2 doubles (the LU of
  /// every level's Schur complement is kept for the forward pass).
  std::size_t max_factor_doubles = 64ull << 20;  // 512 MiB
};

/// What the detector found. `block_tridiagonal` holds whenever the chain is
/// connected (undirected BFS levels cannot skip); `profitable` adds the
/// cost gate. The kAuto chain requires usable(); an explicit kLevelQbd
/// request skips the profitability gate but not the structural one.
struct QbdStructure {
  linalg::LevelDecomposition levels;
  linalg::index_t max_block = 0;
  std::size_t factor_doubles = 0;  // sum of level-size squares
  bool block_tridiagonal = false;
  bool profitable = false;
  /// Why the gate declined; "" when profitable. Static strings only, so
  /// the structure stays trivially copyable into solve attempts.
  const char* gate_reason = "";

  [[nodiscard]] bool usable() const noexcept { return block_tridiagonal && profitable; }
};

[[nodiscard]] QbdStructure detect_qbd(const linalg::CsrMatrix& q,
                                      const QbdOptions& opts = {});

/// Direct block-tridiagonal solve of pi Q = 0, sum(pi) = 1 on the level
/// structure `s` (from detect_qbd on the same matrix). Returns false —
/// leaving pi untouched — if an edge violates the tridiagonal assumption
/// or a Schur complement is singular; the caller falls back to the generic
/// chain. On success pi is the stationary vector in the ORIGINAL state
/// order (clamped nonnegative and L1-normalised); the caller still
/// certifies it independently.
[[nodiscard]] bool qbd_steady_state(const linalg::CsrMatrix& q, const QbdStructure& s,
                                    linalg::Vec& pi);

/// Pattern-only splitting of a level-structured generator into per-level
/// blocks. Because a sweep freezes the sparsity pattern and only rebinds
/// values, this can be built once per batch (from any lane) and replayed
/// against every lane's value array: each entry records WHERE a nonzero
/// lands (level list, local row/column) plus its index into the CSR value
/// array, in exactly the order the scalar solver visits it.
struct QbdPlan {
  struct Entry {
    std::size_t vidx;       // index into the CSR value array
    linalg::index_t r, c;   // local (within-block) coordinates
  };
  bool ok = false;  // false: an edge skips a level (not block tridiagonal)
  std::vector<std::vector<Entry>> A, B, C;  // per level, scalar trip order
  // Packing of the nonzero columns of C[l] (first-appearance order, exactly
  // as the scalar solver assigns them), for the X_l = S_l^{-1} C_l solve.
  std::vector<std::vector<linalg::index_t>> nzcols;  // size bs(l-1), -1 = zero col
  std::vector<linalg::index_t> nnz_cols;             // packed column count
};

[[nodiscard]] QbdPlan make_qbd_plan(const linalg::CsrMatrix& q, const QbdStructure& s);

/// Batched direct solve: one block-tridiagonal elimination over W value
/// lanes sharing the pattern `plan` was built from. Per-level Schur
/// complements are factored in SIMD lockstep (BatchLuFactorization) and the
/// X blocks solved as lane-interleaved multi-RHS systems; every arithmetic
/// step mirrors qbd_steady_state per lane, so lane b's pi is bit-identical
/// to a scalar solve of that lane's matrix. Returns one flag per lane
/// (0 = that lane failed: singular complement or zero mass; its pi slot is
/// untouched). Lane failures are independent — other lanes are unaffected.
[[nodiscard]] std::vector<unsigned char> qbd_steady_state_batch(
    const QbdStructure& s, const QbdPlan& plan, const linalg::CsrValueBatch& vals,
    std::vector<linalg::Vec>& pis);

}  // namespace tags::ctmc
