#include "approx/roots.hpp"

#include <cmath>

namespace tags::approx {

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double x_tol, int max_iter) {
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, true, 0};
  if (fhi == 0.0) return {hi, 0.0, true, 0};
  if (flo * fhi > 0.0) {
    r.x = lo;
    r.fx = flo;
    return r;  // no bracket
  }
  for (r.iterations = 0; r.iterations < max_iter; ++r.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || hi - lo < x_tol * std::max(1.0, std::abs(mid))) {
      r.x = mid;
      r.fx = fmid;
      r.converged = true;
      return r;
    }
    if (flo * fmid < 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.fx = f(r.x);
  r.converged = true;  // interval exhausted to max_iter halvings
  return r;
}

RootResult bracket_and_bisect(const std::function<double(double)>& f, double x0,
                              double x_tol) {
  double lo = x0, hi = x0;
  double flo = f(lo), fhi = f(hi);
  for (int i = 0; i < 80 && flo * fhi > 0.0; ++i) {
    lo = std::max(lo / 2.0, 1e-12);
    hi *= 2.0;
    flo = f(lo);
    fhi = f(hi);
  }
  if (flo * fhi > 0.0) {
    RootResult r;
    r.x = x0;
    r.fx = f(x0);
    return r;
  }
  return bisect(f, lo, hi, x_tol);
}

MinimizeResult golden_section(const std::function<double(double)>& f, double lo,
                              double hi, double x_tol, int max_iter) {
  constexpr double kInvPhi = 0.6180339887498949;
  MinimizeResult r;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  r.evaluations = 2;
  for (int i = 0; i < max_iter && (b - a) > x_tol * std::max(1.0, std::abs(a)); ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++r.evaluations;
  }
  if (f1 <= f2) {
    r.x = x1;
    r.fx = f1;
  } else {
    r.x = x2;
    r.fx = f2;
  }
  return r;
}

MinimizeResult grid_then_golden(const std::function<double(double)>& f, double lo,
                                double hi, int grid_points, double x_tol) {
  MinimizeResult best;
  best.fx = f(lo);
  best.x = lo;
  best.evaluations = 1;
  double best_i = 0;
  for (int i = 1; i <= grid_points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / grid_points;
    const double fx = f(x);
    ++best.evaluations;
    if (fx < best.fx) {
      best.fx = fx;
      best.x = x;
      best_i = i;
    }
  }
  const double step = (hi - lo) / grid_points;
  const double a = std::max(lo, lo + (best_i - 1) * step);
  const double b = std::min(hi, lo + (best_i + 1) * step);
  MinimizeResult refined = golden_section(f, a, b, x_tol);
  refined.evaluations += best.evaluations;
  if (refined.fx > best.fx) {
    refined.x = best.x;
    refined.fx = best.fx;
  }
  return refined;
}

}  // namespace tags::approx
