// Exact (CTMC-based) timeout optimisation. The paper optimises the integer
// timer rate t for minimum queue length (Figure 8) and notes that queue
// length, response time and throughput peak at slightly different t
// (Figures 9/10) — hence the Objective enum.
#pragma once

#include <cstddef>

#include "models/metrics.hpp"
#include "models/tags.hpp"
#include "models/tags_h2.hpp"

namespace tags::approx {

enum class Objective {
  kMinQueueLength,   ///< minimise E[N1 + N2]
  kMinResponseTime,  ///< minimise W
  kMaxThroughput,    ///< maximise successful completions
};

struct ExactOptimum {
  double t = 0.0;
  models::Metrics metrics;
  int solves = 0;
};

/// Scan integer t in [t_lo, t_hi] (warm-starting each solve from the
/// previous stationary vector) and return the best integer rate — the
/// paper's Figure 8 procedure. `batch > 1` packs that many adjacent scan
/// points per batched direct solve (same scan result at any width; see
/// DESIGN.md "Batched multi-point sweeps"); 0/1 keeps the scalar chain.
[[nodiscard]] ExactOptimum optimise_tags_t_integer(models::TagsParams p, Objective obj,
                                                   unsigned t_lo = 10,
                                                   unsigned t_hi = 120,
                                                   std::size_t batch = 1);

[[nodiscard]] ExactOptimum optimise_tags_h2_t_integer(models::TagsH2Params p,
                                                      Objective obj, unsigned t_lo = 2,
                                                      unsigned t_hi = 120,
                                                      std::size_t batch = 1);

/// Two-phase integer scan: stride over [t_lo, t_hi], then refine every
/// integer within +-(stride-1) of the coarse winner. ~stride-fold fewer
/// solves for unimodal objectives.
[[nodiscard]] ExactOptimum optimise_tags_h2_t_coarse(const models::TagsH2Params& p,
                                                     Objective obj, unsigned t_lo,
                                                     unsigned t_hi, unsigned stride,
                                                     std::size_t batch = 1);

/// Continuous refinement: golden-section around an initial guess.
[[nodiscard]] ExactOptimum optimise_tags_t(models::TagsParams p, Objective obj,
                                           double t_lo, double t_hi);

}  // namespace tags::approx
