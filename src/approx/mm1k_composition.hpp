// Bounded-queue composition estimate (Section 4, second half): approximate
// node 1 as an M/M/1/K1 queue with the effective head-occupancy rate, feed
// its timed-out flow into node 2 approximated as an M/M/1/K2 queue whose
// service time is the repeat period plus the residual demand. Cheap (no
// CTMC solve) and good enough to seed the timeout optimiser.
#pragma once

#include "models/metrics.hpp"
#include "models/tags.hpp"

namespace tags::models {
struct TagsParams;  // fwd (already included; kept for readability)
}

namespace tags::approx {

struct CompositionEstimate {
  double mu1_eff = 0.0;      ///< node-1 effective service rate
  double mu2_eff = 0.0;      ///< node-2 effective service rate
  double timeout_prob = 0.0; ///< P(head times out) = (t/(t+mu))^{n+1}
  double lambda2 = 0.0;      ///< arrival rate into node 2
  models::Metrics metrics;   ///< assembled approximate metrics
};

/// Evaluate the decomposition at the given TAGS parameters.
[[nodiscard]] CompositionEstimate estimate_tags(const models::TagsParams& p);

/// Approximate optimal timer rate t minimising the estimated mean total
/// queue length (paper's Figure 8 optimisation target).
[[nodiscard]] double estimate_optimal_t_queue_length(models::TagsParams p,
                                                     double t_lo = 1.0,
                                                     double t_hi = 400.0);

/// Approximate optimal timer rate t maximising the estimated throughput.
[[nodiscard]] double estimate_optimal_t_throughput(models::TagsParams p,
                                                   double t_lo = 1.0,
                                                   double t_hi = 400.0);

}  // namespace tags::approx
