#include "approx/optimizer.hpp"

#include <limits>
#include <optional>

#include "approx/roots.hpp"

namespace tags::approx {

namespace {

bool score_is_better(const models::Metrics& a, const models::Metrics& b,
                     Objective obj);

double score(const models::Metrics& m, Objective obj) {
  switch (obj) {
    case Objective::kMinQueueLength: return m.mean_total;
    case Objective::kMinResponseTime: return m.response_time;
    case Objective::kMaxThroughput: return -m.throughput;
  }
  return 0.0;
}

bool score_is_better(const models::Metrics& a, const models::Metrics& b,
                     Objective obj) {
  return score(a, obj) < score(b, obj);
}

/// Warm-started integer scan shared by both model families.
template <class Model, class Params>
ExactOptimum integer_scan(Params p, Objective obj, unsigned t_lo, unsigned t_hi,
                          unsigned stride = 1) {
  ExactOptimum best;
  double best_score = std::numeric_limits<double>::infinity();
  std::optional<Model> model;
  ctmc::WarmStartState warm;
  for (unsigned t = t_lo; t <= t_hi; t += stride) {
    p.t = static_cast<double>(t);
    // Only t varies: rebind rates onto the frozen pattern after the first
    // construction instead of re-enumerating the state space.
    if (model) {
      model->rebind(p);
    } else {
      model.emplace(p);
    }
    warm.reconcile(model->n_states());
    const auto solved = model->solve(warm.opts);
    ++best.solves;
    warm.accept(solved);
    if (!solved.converged) continue;
    const models::Metrics m = model->metrics_from(solved.pi);
    const double s = score(m, obj);
    if (s < best_score) {
      best_score = s;
      best.t = p.t;
      best.metrics = m;
    }
  }
  return best;
}

}  // namespace

ExactOptimum optimise_tags_t_integer(models::TagsParams p, Objective obj, unsigned t_lo,
                                     unsigned t_hi) {
  return integer_scan<models::TagsModel>(p, obj, t_lo, t_hi);
}

ExactOptimum optimise_tags_h2_t_integer(models::TagsH2Params p, Objective obj,
                                        unsigned t_lo, unsigned t_hi) {
  return integer_scan<models::TagsH2Model>(p, obj, t_lo, t_hi);
}

ExactOptimum optimise_tags_h2_t_coarse(const models::TagsH2Params& p, Objective obj,
                                       unsigned t_lo, unsigned t_hi, unsigned stride) {
  const ExactOptimum coarse =
      integer_scan<models::TagsH2Model>(p, obj, t_lo, t_hi, std::max(1u, stride));
  const auto center = static_cast<unsigned>(coarse.t);
  const unsigned lo = center > t_lo + stride ? center - stride + 1 : t_lo;
  const unsigned hi = std::min(t_hi, center + stride - 1);
  ExactOptimum fine = integer_scan<models::TagsH2Model>(p, obj, lo, hi);
  fine.solves += coarse.solves;
  if (score_is_better(coarse.metrics, fine.metrics, obj)) return coarse;
  return fine;
}

ExactOptimum optimise_tags_t(models::TagsParams p, Objective obj, double t_lo,
                             double t_hi) {
  ExactOptimum out;
  std::optional<models::TagsModel> model;
  ctmc::WarmStartState warm;
  const auto evaluate = [&](double t) {
    p.t = t;
    if (model) {
      model->rebind(p);
    } else {
      model.emplace(p);
    }
    warm.reconcile(model->n_states());
    const auto solved = model->solve(warm.opts);
    ++out.solves;
    warm.accept(solved);
    return model->metrics_from(solved.pi);
  };
  const auto objective = [&](double t) { return score(evaluate(t), obj); };
  const MinimizeResult r = grid_then_golden(objective, t_lo, t_hi, 24, 1e-3);
  out.t = r.x;
  out.metrics = evaluate(r.x);
  return out;
}

}  // namespace tags::approx
