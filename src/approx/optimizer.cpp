#include "approx/optimizer.hpp"

#include <limits>
#include <optional>
#include <vector>

#include "approx/roots.hpp"
#include "models/batch_sweep.hpp"

namespace tags::approx {

namespace {

bool score_is_better(const models::Metrics& a, const models::Metrics& b,
                     Objective obj);

double score(const models::Metrics& m, Objective obj) {
  switch (obj) {
    case Objective::kMinQueueLength: return m.mean_total;
    case Objective::kMinResponseTime: return m.response_time;
    case Objective::kMaxThroughput: return -m.throughput;
  }
  return 0.0;
}

bool score_is_better(const models::Metrics& a, const models::Metrics& b,
                     Objective obj) {
  return score(a, obj) < score(b, obj);
}

/// Warm-started integer scan shared by both model families. `batch > 1`
/// solves that many adjacent grid points per batched factorisation
/// (models::batched_t_chain); the scan result is identical at any width —
/// the scored metrics come out of the same per-point solves.
template <class Model, class Params>
ExactOptimum integer_scan(const Params& p, Objective obj, unsigned t_lo, unsigned t_hi,
                          unsigned stride = 1, std::size_t batch = 1) {
  ExactOptimum best;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> ts;
  for (unsigned t = t_lo; t <= t_hi; t += stride) ts.push_back(static_cast<double>(t));
  ctmc::WarmStartState warm;
  models::batched_t_chain<Model>(
      p, ts, 0, ts.size(), batch, warm,
      [&](std::size_t i, const ctmc::SteadyStateResult& solved, Model& model) {
        ++best.solves;
        if (!solved.converged) return;
        const models::Metrics m = model.metrics_from(solved.pi);
        const double s = score(m, obj);
        if (s < best_score) {
          best_score = s;
          best.t = ts[i];
          best.metrics = m;
        }
      });
  return best;
}

}  // namespace

ExactOptimum optimise_tags_t_integer(models::TagsParams p, Objective obj, unsigned t_lo,
                                     unsigned t_hi, std::size_t batch) {
  return integer_scan<models::TagsModel>(p, obj, t_lo, t_hi, 1, batch);
}

ExactOptimum optimise_tags_h2_t_integer(models::TagsH2Params p, Objective obj,
                                        unsigned t_lo, unsigned t_hi, std::size_t batch) {
  return integer_scan<models::TagsH2Model>(p, obj, t_lo, t_hi, 1, batch);
}

ExactOptimum optimise_tags_h2_t_coarse(const models::TagsH2Params& p, Objective obj,
                                       unsigned t_lo, unsigned t_hi, unsigned stride,
                                       std::size_t batch) {
  const ExactOptimum coarse = integer_scan<models::TagsH2Model>(
      p, obj, t_lo, t_hi, std::max(1u, stride), batch);
  const auto center = static_cast<unsigned>(coarse.t);
  const unsigned lo = center > t_lo + stride ? center - stride + 1 : t_lo;
  const unsigned hi = std::min(t_hi, center + stride - 1);
  ExactOptimum fine = integer_scan<models::TagsH2Model>(p, obj, lo, hi, 1, batch);
  fine.solves += coarse.solves;
  if (score_is_better(coarse.metrics, fine.metrics, obj)) return coarse;
  return fine;
}

ExactOptimum optimise_tags_t(models::TagsParams p, Objective obj, double t_lo,
                             double t_hi) {
  ExactOptimum out;
  std::optional<models::TagsModel> model;
  ctmc::WarmStartState warm;
  const auto evaluate = [&](double t) {
    p.t = t;
    if (model) {
      model->rebind(p);
    } else {
      model.emplace(p);
    }
    warm.reconcile(model->n_states());
    const auto solved = model->solve(warm.opts);
    ++out.solves;
    warm.accept(solved);
    return model->metrics_from(solved.pi);
  };
  const auto objective = [&](double t) { return score(evaluate(t), obj); };
  const MinimizeResult r = grid_then_golden(objective, t_lo, t_hi, 24, 1e-3);
  out.t = r.x;
  out.metrics = evaluate(r.x);
  return out;
}

}  // namespace tags::approx
