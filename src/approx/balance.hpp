// Section 4 of the paper: load-balance estimates of a good timeout rate.
//
// The idea: at the response-time optimum the *useful* service demand should
// split evenly across the two nodes, i.e. the expected demand served by
// jobs completing at node 1 equals the expected residual demand served at
// node 2. With an exponential timeout (rate T) racing an Exp(mu) service
// this gives T^2 + T mu = mu^2; with an Erlang(k, t) timeout the analogous
// race gives the equation solved by balance_timeout_rate_erlang().
#pragma once

namespace tags::approx {

/// Exponential-timeout balance: the positive root of T^2 + T mu - mu^2 = 0,
/// T = mu (sqrt(5) - 1) / 2. Paper: "approximately 6.17" for mu = 10.
[[nodiscard]] double balance_timeout_rate_exponential(double mu);

/// Erlang(k, t) timeout balance (k total phases; the paper's n = k). Solves
///   (t/(t+mu))^k / mu = mu/(t(t+mu)) * sum_{i=1..k} i (t/(t+mu))^i
/// for the per-phase rate t > 0. k = 1 reduces to the exponential case.
/// Paper: the *effective* timeout rate t/k tends to ~0.9*mu as k grows
/// (quoted as "around 9 when mu = 10").
[[nodiscard]] double balance_timeout_rate_erlang(double mu, unsigned k);

/// E[min(S, X)] for S ~ Exp(mu) and an independent X ~ Erlang(k, t):
/// (1 - (t/(t+mu))^k) / mu. This is the mean occupancy of the node-1
/// server per head job.
[[nodiscard]] double mean_occupancy_exp_vs_erlang(double mu, unsigned k, double t);

}  // namespace tags::approx
