#include "approx/mm1k_composition.hpp"

#include <algorithm>
#include <cmath>

#include "approx/balance.hpp"
#include "approx/roots.hpp"
#include "models/mm1k.hpp"
#include "phasetype/ph.hpp"

namespace tags::approx {

namespace {

/// Mean jobs in an M/G/1-like station with utilisation rho and service scv,
/// via Pollaczek-Khinchine, clamped into the bounded-buffer range [0, K].
/// The loss behaviour itself is taken from the matching M/M/1/K (losses are
/// dominated by the mean, variability second-order for the small loss
/// regimes the paper studies).
double pk_mean_jobs(double rho, double scv, unsigned k) {
  if (rho >= 0.999) return static_cast<double>(k);  // saturated
  const double en = rho + rho * rho * (1.0 + scv) / (2.0 * (1.0 - rho));
  return std::min(en, static_cast<double>(k));
}

}  // namespace

CompositionEstimate estimate_tags(const models::TagsParams& p) {
  const unsigned k_phases = p.n + 1;  // ticks + timeout phase
  CompositionEstimate e;
  e.timeout_prob = std::pow(p.t / (p.t + p.mu), static_cast<double>(k_phases));
  e.mu1_eff = 1.0 / mean_occupancy_exp_vs_erlang(p.mu, k_phases, p.t);

  // Loss/flow structure from the M/M/1/K with the effective rates; queue
  // lengths refined with the exact service-time variability through the
  // phase-type closure operations (node 1 serves min(Exp, Erlang); node 2
  // serves Erlang-repeat then Exp-residual).
  const models::Mm1kResult node1 =
      models::mm1k_analytic({.lambda = p.lambda, .mu = e.mu1_eff, .k = p.k1});
  e.lambda2 = node1.throughput * e.timeout_prob;

  const ph::PhaseType occupancy1 =
      ph::minimum(ph::exponential(p.mu), ph::erlang(k_phases, p.t));
  const ph::PhaseType service2 =
      ph::convolve(ph::erlang(k_phases, p.t), ph::exponential(p.mu));
  e.mu2_eff = 1.0 / service2.mean();
  const models::Mm1kResult node2 =
      models::mm1k_analytic({.lambda = e.lambda2, .mu = e.mu2_eff, .k = p.k2});

  models::Metrics& m = e.metrics;
  const double rho1 = std::min(node1.throughput / e.mu1_eff, 1.0);
  const double rho2 = std::min(node2.throughput / e.mu2_eff, 1.0);
  m.mean_q1 = pk_mean_jobs(rho1, occupancy1.scv(), p.k1);
  m.mean_q2 = pk_mean_jobs(rho2, service2.scv(), p.k2);
  m.loss1_rate = node1.loss_rate;
  m.loss2_rate = node2.loss_rate;
  m.utilisation1 = rho1;
  m.utilisation2 = rho2;
  // Successful completions: node-1 heads that finish + node-2 departures.
  m.throughput = node1.throughput * (1.0 - e.timeout_prob) + node2.throughput;
  models::finalize(m);
  return e;
}

double estimate_optimal_t_queue_length(models::TagsParams p, double t_lo, double t_hi) {
  const auto objective = [&p](double t) {
    p.t = t;
    return estimate_tags(p).metrics.mean_total;
  };
  return grid_then_golden(objective, t_lo, t_hi, 64).x;
}

double estimate_optimal_t_throughput(models::TagsParams p, double t_lo, double t_hi) {
  const auto objective = [&p](double t) {
    p.t = t;
    return -estimate_tags(p).metrics.throughput;
  };
  return grid_then_golden(objective, t_lo, t_hi, 64).x;
}

}  // namespace tags::approx
