// Scalar root finding and 1-D minimisation used by the Section 4
// approximations and the timeout optimisers.
#pragma once

#include <functional>

namespace tags::approx {

struct RootResult {
  double x = 0.0;
  double fx = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// Bisection on [lo, hi]; f(lo) and f(hi) must have opposite signs.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f, double lo,
                                double hi, double x_tol = 1e-12, int max_iter = 200);

/// Expand the bracket geometrically from an initial guess until the sign
/// changes, then bisect. Returns converged = false if no bracket is found.
[[nodiscard]] RootResult bracket_and_bisect(const std::function<double(double)>& f,
                                            double x0, double x_tol = 1e-12);

struct MinimizeResult {
  double x = 0.0;
  double fx = 0.0;
  int evaluations = 0;
};

/// Golden-section search on [lo, hi] (assumes unimodal f).
[[nodiscard]] MinimizeResult golden_section(const std::function<double(double)>& f,
                                            double lo, double hi, double x_tol = 1e-8,
                                            int max_iter = 200);

/// Coarse grid scan followed by golden-section refinement around the best
/// grid point — robust when f is not globally unimodal.
[[nodiscard]] MinimizeResult grid_then_golden(const std::function<double(double)>& f,
                                              double lo, double hi, int grid_points = 32,
                                              double x_tol = 1e-6);

}  // namespace tags::approx
