#include "approx/balance.hpp"

#include <cmath>
#include <stdexcept>

#include "approx/roots.hpp"

namespace tags::approx {

double balance_timeout_rate_exponential(double mu) {
  if (!(mu > 0.0)) throw std::invalid_argument("balance: mu must be > 0");
  return mu * (std::sqrt(5.0) - 1.0) / 2.0;
}

double balance_timeout_rate_erlang(double mu, unsigned k) {
  if (!(mu > 0.0) || k == 0) throw std::invalid_argument("balance: bad parameters");
  if (k == 1) return balance_timeout_rate_exponential(mu);
  // f(t) = success_prob/mu - E[elapsed | timeout branch weight], both sides
  // written with the numerically stable geometric-series closed form:
  //   sum_{i=1..k} i r^i = r (1 - (k+1) r^k + k r^{k+1}) / (1-r)^2.
  const auto f = [mu, k](double t) {
    const double r = t / (t + mu);
    const double lhs = std::pow(r, static_cast<double>(k)) / mu;
    const double one_minus_r = mu / (t + mu);
    const double rk = std::pow(r, static_cast<double>(k));
    const double series =
        r * (1.0 - (k + 1.0) * rk + k * rk * r) / (one_minus_r * one_minus_r);
    const double rhs = mu / (t * (t + mu)) * series;
    return lhs - rhs;
  };
  // lhs grows with t (success prob of the timeout side), rhs shrinks; the
  // root sits near k * mu for moderate k.
  const RootResult root = bracket_and_bisect(f, static_cast<double>(k) * mu);
  if (!root.converged) {
    throw std::runtime_error("balance_timeout_rate_erlang: no root found");
  }
  return root.x;
}

double mean_occupancy_exp_vs_erlang(double mu, unsigned k, double t) {
  const double r = t / (t + mu);
  return (1.0 - std::pow(r, static_cast<double>(k))) / mu;
}

}  // namespace tags::approx
