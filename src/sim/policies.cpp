#include "sim/policies.hpp"

#include <limits>

namespace tags::sim {

std::string_view to_string(DispatchPolicy p) noexcept {
  switch (p) {
    case DispatchPolicy::kRandom: return "random";
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kShortestQueue: return "shortest-queue";
    case DispatchPolicy::kLeastWork: return "least-work";
  }
  return "?";
}

int route(DispatchPolicy policy, std::span<const QueueView> queues, RouterState& state,
          Rng& rng) {
  const auto full = [&](std::size_t i) { return queues[i].length >= queues[i].capacity; };
  switch (policy) {
    case DispatchPolicy::kRandom: {
      const auto pick = static_cast<std::size_t>(rng.uniform_below(queues.size()));
      return full(pick) ? -1 : static_cast<int>(pick);
    }
    case DispatchPolicy::kRoundRobin: {
      const std::size_t pick = state.rr_cursor % queues.size();
      state.rr_cursor = (state.rr_cursor + 1) % queues.size();
      return full(pick) ? -1 : static_cast<int>(pick);
    }
    case DispatchPolicy::kShortestQueue: {
      unsigned best_len = std::numeric_limits<unsigned>::max();
      std::size_t n_best = 0;
      for (std::size_t i = 0; i < queues.size(); ++i) {
        if (queues[i].length < best_len) {
          best_len = queues[i].length;
          n_best = 1;
        } else if (queues[i].length == best_len) {
          ++n_best;
        }
      }
      // Random tie-break among the shortest (matches the PEPA model's even
      // split of the arrival stream).
      std::size_t which = static_cast<std::size_t>(rng.uniform_below(n_best));
      for (std::size_t i = 0; i < queues.size(); ++i) {
        if (queues[i].length == best_len && which-- == 0) {
          return full(i) ? -1 : static_cast<int>(i);
        }
      }
      return -1;
    }
    case DispatchPolicy::kLeastWork: {
      double best = std::numeric_limits<double>::infinity();
      int pick = -1;
      for (std::size_t i = 0; i < queues.size(); ++i) {
        if (full(i)) continue;
        if (queues[i].remaining_work < best) {
          best = queues[i].remaining_work;
          pick = static_cast<int>(i);
        }
      }
      return pick;
    }
  }
  return -1;
}

}  // namespace tags::sim
