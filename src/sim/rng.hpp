// Deterministic, seedable PRNG: xoshiro256++ seeded via splitmix64.
// Self-contained so simulation results are reproducible across platforms
// (std::mt19937 distributions are not specified bit-exactly).
#pragma once

#include <array>
#include <cstdint>

namespace tags::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in (0, 1] — safe for log().
  double uniform_open0() noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Exponential with the given rate.
  double exponential(double rate) noexcept;

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept;

  /// Split off an independently seeded stream (for parallel replications).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace tags::sim
