// Discrete-event simulators of the *actual* systems the CTMC models
// approximate:
//
//  * simulate_tags()     — an N-node TAGS pipeline with restart semantics
//    and genuinely deterministic (or any-distribution) timeouts. A job's
//    demand is sampled once at arrival and carried through every node — the
//    correlation the Markovian model deliberately forgets. Comparing this
//    simulator against the CTMC quantifies the paper's Erlang-timeout
//    approximation (its stated future work).
//  * simulate_dispatch() — parallel bounded queues under a dispatch policy
//    (random / round-robin / shortest-queue / clairvoyant least-work).
//
// Both report mean response time, mean slowdown (response / demand, the
// metric of Harchol-Balter [5]), throughput, losses, and time-averaged
// queue lengths, with batch-means confidence intervals.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/distributions.hpp"
#include "sim/policies.hpp"
#include "sim/stats.hpp"

namespace tags::sim {

struct SimResults {
  double mean_response = 0.0;
  double response_ci = 0.0;   ///< 95% half-width (batch means)
  double mean_slowdown = 0.0;
  double slowdown_ci = 0.0;
  double throughput = 0.0;    ///< completions per unit time (post-warmup)
  double loss_fraction = 0.0; ///< lost arrivals / all arrivals (post-warmup)
  double loss_rate = 0.0;
  std::vector<double> mean_queue;   ///< time-averaged jobs per node/queue
  std::vector<double> utilisation;  ///< time-averaged busy fraction
  double mean_total_queue = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;
  std::uint64_t arrivals = 0;
  /// Per-demand-bucket mean slowdown (see slowdown_buckets in the params;
  /// empty when no buckets were requested). Bucket i covers demands in
  /// (bounds[i-1], bounds[i]]; the last bucket is unbounded above.
  std::vector<double> bucket_mean_slowdown;
  std::vector<std::uint64_t> bucket_count;
};

/// Two-state Markov-modulated Poisson arrivals (the "bursty" arrivals of
/// the paper's conclusions): rate lambda0 in phase 0, lambda1 in phase 1,
/// switching 0->1 at r01 and 1->0 at r10.
struct MmppArrivals {
  double lambda0 = 2.0;
  double lambda1 = 20.0;
  double r01 = 0.1;
  double r10 = 1.0;

  /// Long-run average arrival rate.
  [[nodiscard]] double mean_rate() const {
    const double p1 = r01 / (r01 + r10);
    return (1.0 - p1) * lambda0 + p1 * lambda1;
  }
};

/// Dynamic-timeout rule (paper conclusions: "a dynamic timeout duration
/// that adapts to queue length"): at node i with queue length q, the
/// sampled timeout is scaled by 1 / (1 + gain * (q - 1)) — a crowded node
/// kills jobs sooner to drain the backlog.
struct DynamicTimeout {
  double gain = 0.0;  ///< 0 = the static TAGS of the paper
  [[nodiscard]] double scale(unsigned queue_length) const {
    return 1.0 / (1.0 + gain * (queue_length > 0 ? queue_length - 1 : 0));
  }
};

struct TagsSimParams {
  double lambda = 5.0;
  /// Optional modulated arrivals; when set, `lambda` is ignored.
  std::optional<MmppArrivals> mmpp;
  DynamicTimeout dynamic_timeout;
  Distribution service = Exponential{10.0};
  /// Timeout distribution per non-final node (size = nodes - 1). Use
  /// Deterministic for the real TAGS, Erlang{n+1, t} to mirror the CTMC.
  std::vector<Distribution> timeouts{Deterministic{0.14}};
  std::vector<unsigned> buffers{10, 10};
  double horizon = 2e5;          ///< simulated time units
  double warmup_fraction = 0.05; ///< statistics discarded before this point
  std::uint64_t seed = 1;
  /// Optional ascending demand boundaries for per-size slowdown stats (the
  /// "fairness" view of Harchol-Balter [5], footnote 1 of the paper).
  std::vector<double> slowdown_buckets;
};

[[nodiscard]] SimResults simulate_tags(const TagsSimParams& p);

struct DispatchSimParams {
  double lambda = 5.0;
  std::optional<MmppArrivals> mmpp;  ///< when set, `lambda` is ignored
  Distribution service = Exponential{10.0};
  unsigned n_queues = 2;
  unsigned buffer = 10;
  DispatchPolicy policy = DispatchPolicy::kRandom;
  double horizon = 2e5;
  double warmup_fraction = 0.05;
  std::uint64_t seed = 1;
  std::vector<double> slowdown_buckets;  ///< as in TagsSimParams
};

[[nodiscard]] SimResults simulate_dispatch(const DispatchSimParams& p);

}  // namespace tags::sim
