// EventQueue is header-only (template); this TU exists to give the target a
// compiled anchor and to instantiate the common payload for faster builds.
#include "sim/event_queue.hpp"

namespace tags::sim {

template class EventQueue<int>;

}  // namespace tags::sim
