// Online statistics for simulation output: Welford accumulators, batch
// means with a normal-approximation confidence interval, and time-weighted
// averages for queue-length processes.
#pragma once

#include <cstddef>
#include <vector>

namespace tags::sim {

/// Numerically stable mean/variance accumulator.
class Welford {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Batch-means estimator: observations are grouped into fixed-size batches;
/// the batch averages are treated as ~i.i.d. for the CI.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batch_size = 1000) : batch_size_(batch_size) {}

  void add(double x);
  [[nodiscard]] double mean() const noexcept;
  /// Half-width of the ~95% confidence interval over completed batches
  /// (0 when fewer than 2 batches are complete).
  [[nodiscard]] double ci_halfwidth() const noexcept;
  [[nodiscard]] std::size_t completed_batches() const noexcept {
    return batches_.count();
  }
  [[nodiscard]] std::size_t count() const noexcept { return total_n_; }

 private:
  std::size_t batch_size_;
  std::size_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  std::size_t total_n_ = 0;
  double total_sum_ = 0.0;
  Welford batches_;
};

/// Time-weighted average of a piecewise-constant process (queue length,
/// busy indicator). Call set(t, value) at every change point; finish with
/// close(t_end).
class TimeAverage {
 public:
  void set(double time, double value) noexcept;
  void close(double time) noexcept;
  [[nodiscard]] double average() const noexcept;

 private:
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
  bool started_ = false;
};

}  // namespace tags::sim
