// Discrete-event calendar: a binary min-heap keyed on (time, sequence) so
// simultaneous events fire in schedule order (deterministic replay).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tags::sim {

template <class Payload>
class EventQueue {
 public:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void schedule(double time, Payload payload) {
    heap_.push_back({time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  void clear() noexcept {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tags::sim
