#include "sim/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace tags::sim {

namespace {

double sample_phase_type(const ph::PhaseType& p, Rng& rng) {
  const std::size_t m = p.n_phases();
  // Choose the initial phase (or immediate absorption for deficient alpha).
  double u = rng.uniform();
  std::size_t phase = m;
  for (std::size_t i = 0; i < m; ++i) {
    if (u < p.alpha()[i]) {
      phase = i;
      break;
    }
    u -= p.alpha()[i];
  }
  double total = 0.0;
  const linalg::Vec t0 = p.exit_rates();
  while (phase < m) {
    const double exit_rate = -p.T()(phase, phase);
    total += rng.exponential(exit_rate);
    // Pick the next phase (or absorption) proportionally to the row.
    double v = rng.uniform() * exit_rate;
    std::size_t next = m;  // absorption by default
    for (std::size_t j = 0; j < m; ++j) {
      if (j == phase) continue;
      const double r = p.T()(phase, j);
      if (v < r) {
        next = j;
        break;
      }
      v -= r;
    }
    if (next == m && v >= t0[phase]) {
      // Numerical slack: fall through to absorption.
      next = m;
    }
    phase = next;
  }
  return total;
}

struct SampleVisitor {
  Rng& rng;
  double operator()(const Exponential& d) const { return rng.exponential(d.rate); }
  double operator()(const Erlang& d) const {
    double acc = 0.0;
    for (unsigned i = 0; i < d.k; ++i) acc += rng.exponential(d.rate);
    return acc;
  }
  double operator()(const Deterministic& d) const { return d.value; }
  double operator()(const HyperExp2& d) const {
    return rng.exponential(rng.bernoulli(d.p) ? d.mu1 : d.mu2);
  }
  double operator()(const Uniform& d) const {
    return d.lo + (d.hi - d.lo) * rng.uniform();
  }
  double operator()(const BoundedPareto& d) const {
    // Inverse-CDF: F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a).
    const double a = d.shape;
    const double tail = 1.0 - std::pow(d.lo / d.hi, a);
    const double u = rng.uniform() * tail;
    return d.lo / std::pow(1.0 - u, 1.0 / a);
  }
  double operator()(const PhaseTypeDist& d) const { return sample_phase_type(d.ph, rng); }
};

struct MeanVisitor {
  double operator()(const Exponential& d) const { return 1.0 / d.rate; }
  double operator()(const Erlang& d) const { return d.k / d.rate; }
  double operator()(const Deterministic& d) const { return d.value; }
  double operator()(const HyperExp2& d) const {
    return d.p / d.mu1 + (1.0 - d.p) / d.mu2;
  }
  double operator()(const Uniform& d) const { return 0.5 * (d.lo + d.hi); }
  double operator()(const BoundedPareto& d) const {
    const double a = d.shape;
    const double norm = 1.0 - std::pow(d.lo / d.hi, a);
    if (std::abs(a - 1.0) < 1e-12) {
      return std::log(d.hi / d.lo) * d.lo / norm;
    }
    return (a / (a - 1.0)) *
           (std::pow(d.lo, a) * (std::pow(d.lo, 1.0 - a) - std::pow(d.hi, 1.0 - a))) /
           norm;
  }
  double operator()(const PhaseTypeDist& d) const { return d.ph.mean(); }
};

struct M2Visitor {
  double operator()(const Exponential& d) const { return 2.0 / (d.rate * d.rate); }
  double operator()(const Erlang& d) const {
    return static_cast<double>(d.k) * (d.k + 1.0) / (d.rate * d.rate);
  }
  double operator()(const Deterministic& d) const { return d.value * d.value; }
  double operator()(const HyperExp2& d) const {
    return 2.0 * d.p / (d.mu1 * d.mu1) + 2.0 * (1.0 - d.p) / (d.mu2 * d.mu2);
  }
  double operator()(const Uniform& d) const {
    return (d.lo * d.lo + d.lo * d.hi + d.hi * d.hi) / 3.0;
  }
  double operator()(const BoundedPareto& d) const {
    const double a = d.shape;
    const double norm = 1.0 - std::pow(d.lo / d.hi, a);
    if (std::abs(a - 2.0) < 1e-12) {
      return 2.0 * std::pow(d.lo, 2.0) * std::log(d.hi / d.lo) / norm;
    }
    return (a / (a - 2.0)) *
           (std::pow(d.lo, a) * (std::pow(d.lo, 2.0 - a) - std::pow(d.hi, 2.0 - a))) /
           norm;
  }
  double operator()(const PhaseTypeDist& d) const { return d.ph.moment(2); }
};

}  // namespace

double sample(const Distribution& d, Rng& rng) {
  return std::visit(SampleVisitor{rng}, d);
}

double mean(const Distribution& d) { return std::visit(MeanVisitor{}, d); }

double second_moment(const Distribution& d) { return std::visit(M2Visitor{}, d); }

double scv(const Distribution& d) {
  const double m1 = mean(d);
  return (second_moment(d) - m1 * m1) / (m1 * m1);
}

}  // namespace tags::sim
