#include "sim/rng.hpp"

#include <cmath>

namespace tags::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : s_) word = splitmix64(seed);
  // Avoid the all-zero state (probability ~2^-256, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_open0() noexcept { return 1.0 - uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method.
  if (n == 0) return 0;
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
  return -std::log(uniform_open0()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept {
  std::uint64_t seed = next_u64();
  return Rng(seed);
}

}  // namespace tags::sim
