// Sampling distributions for the simulator: everything the paper's context
// needs — exponential / Erlang / H2 (the PEPA models), deterministic (the
// real TAGS timeout), and the bounded Pareto of Harchol-Balter's original
// evaluation — plus arbitrary phase-type sampling.
#pragma once

#include <variant>

#include "phasetype/ph.hpp"
#include "sim/rng.hpp"

namespace tags::sim {

struct Exponential {
  double rate;
};

struct Erlang {
  unsigned k;
  double rate;
};

struct Deterministic {
  double value;
};

struct HyperExp2 {
  double p;    ///< P(short branch)
  double mu1;  ///< short rate
  double mu2;  ///< long rate
};

struct Uniform {
  double lo;
  double hi;
};

/// Bounded Pareto B(lo, hi, shape): density ~ x^{-shape-1} on [lo, hi].
/// Harchol-Balter's web-workload model (shape ~ 1.1 in [5]).
struct BoundedPareto {
  double lo;
  double hi;
  double shape;
};

/// General phase-type sampling (walks the phases).
struct PhaseTypeDist {
  ph::PhaseType ph;
};

using Distribution = std::variant<Exponential, Erlang, Deterministic, HyperExp2,
                                  Uniform, BoundedPareto, PhaseTypeDist>;

[[nodiscard]] double sample(const Distribution& d, Rng& rng);
[[nodiscard]] double mean(const Distribution& d);
[[nodiscard]] double second_moment(const Distribution& d);
/// Squared coefficient of variation.
[[nodiscard]] double scv(const Distribution& d);

}  // namespace tags::sim
