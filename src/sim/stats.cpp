#include "sim/stats.hpp"

#include <cmath>

namespace tags::sim {

void Welford::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

void BatchMeans::add(double x) {
  ++total_n_;
  total_sum_ += x;
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batches_.add(batch_sum_ / static_cast<double>(batch_size_));
    in_batch_ = 0;
    batch_sum_ = 0.0;
  }
}

double BatchMeans::mean() const noexcept {
  return total_n_ > 0 ? total_sum_ / static_cast<double>(total_n_) : 0.0;
}

double BatchMeans::ci_halfwidth() const noexcept {
  const std::size_t b = batches_.count();
  if (b < 2) return 0.0;
  return 1.96 * batches_.stddev() / std::sqrt(static_cast<double>(b));
}

void TimeAverage::set(double time, double value) noexcept {
  if (started_) {
    const double dt = time - last_time_;
    if (dt > 0.0) {
      weighted_sum_ += last_value_ * dt;
      total_time_ += dt;
    }
  }
  last_time_ = time;
  last_value_ = value;
  started_ = true;
}

void TimeAverage::close(double time) noexcept { set(time, last_value_); }

double TimeAverage::average() const noexcept {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

}  // namespace tags::sim
