#include "sim/simulator.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"

namespace tags::sim {

namespace {

struct Job {
  double demand;        ///< total service requirement
  double arrival_time;  ///< first entry into the system
};

/// Poisson or 2-state MMPP interarrival sampling.
class ArrivalProcess {
 public:
  ArrivalProcess(double lambda, const std::optional<MmppArrivals>& mmpp)
      : lambda_(lambda), mmpp_(mmpp) {}

  double next_gap(Rng& rng) {
    if (!mmpp_) return rng.exponential(lambda_);
    // Competing exponentials: in phase p the next arrival (rate lambda_p)
    // races the phase switch; iterate until an arrival happens.
    double gap = 0.0;
    for (;;) {
      const double rate = phase_ == 0 ? mmpp_->lambda0 : mmpp_->lambda1;
      const double sw = phase_ == 0 ? mmpp_->r01 : mmpp_->r10;
      const double total = rate + sw;
      gap += rng.exponential(total);
      if (rng.uniform() * total < rate) return gap;
      phase_ = 1 - phase_;
    }
  }

 private:
  double lambda_;
  std::optional<MmppArrivals> mmpp_;
  int phase_ = 0;
};

/// Shared measurement plumbing.
struct Collector {
  Collector(std::size_t n_nodes, double warmup, std::vector<double> buckets)
      : warmup_time(warmup),
        queue_avg(n_nodes),
        busy_avg(n_nodes),
        bucket_bounds(std::move(buckets)),
        bucket_sum(bucket_bounds.size() + (bucket_bounds.empty() ? 0 : 1), 0.0),
        bucket_n(bucket_sum.size(), 0) {}

  double warmup_time;
  bool recording = false;
  BatchMeans response{2000};
  BatchMeans slowdown{2000};
  std::uint64_t completed = 0, lost = 0, arrivals = 0;
  std::vector<TimeAverage> queue_avg;
  std::vector<TimeAverage> busy_avg;
  std::vector<double> bucket_bounds;
  std::vector<double> bucket_sum;
  std::vector<std::uint64_t> bucket_n;
  double record_start = 0.0;

  void maybe_start(double now, const std::vector<unsigned>& lengths) {
    if (!recording && now >= warmup_time) {
      recording = true;
      record_start = now;
      for (std::size_t i = 0; i < lengths.size(); ++i) {
        queue_avg[i].set(now, lengths[i]);
        busy_avg[i].set(now, lengths[i] > 0 ? 1.0 : 0.0);
      }
    }
  }
  void on_queue_change(double now, std::size_t node, unsigned len) {
    if (!recording) return;
    queue_avg[node].set(now, len);
    busy_avg[node].set(now, len > 0 ? 1.0 : 0.0);
  }
  void on_completion(double now, const Job& job) {
    if (!recording) return;
    ++completed;
    const double resp = now - job.arrival_time;
    response.add(resp);
    const double sd = resp / job.demand;
    slowdown.add(sd);
    if (!bucket_bounds.empty()) {
      std::size_t idx = 0;
      while (idx < bucket_bounds.size() && job.demand > bucket_bounds[idx]) ++idx;
      bucket_sum[idx] += sd;
      ++bucket_n[idx];
    }
  }

  SimResults finish(double now) {
    SimResults r;
    r.mean_queue.resize(queue_avg.size());
    r.utilisation.resize(queue_avg.size());
    for (std::size_t i = 0; i < queue_avg.size(); ++i) {
      queue_avg[i].close(now);
      busy_avg[i].close(now);
      r.mean_queue[i] = queue_avg[i].average();
      r.utilisation[i] = busy_avg[i].average();
      r.mean_total_queue += r.mean_queue[i];
    }
    r.mean_response = response.mean();
    r.response_ci = response.ci_halfwidth();
    r.mean_slowdown = slowdown.mean();
    r.slowdown_ci = slowdown.ci_halfwidth();
    r.completed = completed;
    r.lost = lost;
    r.arrivals = arrivals;
    const double span = now - record_start;
    r.throughput = span > 0.0 ? static_cast<double>(completed) / span : 0.0;
    r.loss_rate = span > 0.0 ? static_cast<double>(lost) / span : 0.0;
    r.loss_fraction =
        arrivals > 0 ? static_cast<double>(lost) / static_cast<double>(arrivals) : 0.0;
    r.bucket_count = bucket_n;
    r.bucket_mean_slowdown.resize(bucket_sum.size(), 0.0);
    for (std::size_t i = 0; i < bucket_sum.size(); ++i) {
      if (bucket_n[i] > 0) {
        r.bucket_mean_slowdown[i] = bucket_sum[i] / static_cast<double>(bucket_n[i]);
      }
    }
    return r;
  }
};

}  // namespace

SimResults simulate_tags(const TagsSimParams& p) {
  const std::size_t n_nodes = p.buffers.size();
  if (n_nodes < 1 || p.timeouts.size() != n_nodes - 1) {
    throw std::invalid_argument("simulate_tags: buffers/timeouts sizes inconsistent");
  }
  Rng rng(p.seed);
  Collector col(n_nodes, p.horizon * p.warmup_fraction, p.slowdown_buckets);

  struct Departure {
    std::size_t node;
    bool success;  ///< head completes here vs times out to the next node
  };
  struct EventPayload {
    bool is_arrival;
    Departure dep;
  };
  EventQueue<EventPayload> calendar;

  std::vector<std::deque<Job>> queue(n_nodes);
  std::vector<unsigned> lengths(n_nodes, 0);
  std::vector<bool> busy(n_nodes, false);

  double now = 0.0;

  // Start serving the head of `node`, scheduling its departure. Real TAGS:
  // the node serves the job from scratch; it succeeds iff its demand fits
  // within this node's (sampled) timeout; the final node has no timeout.
  const auto start_head = [&](std::size_t node) {
    assert(!queue[node].empty() && !busy[node]);
    busy[node] = true;
    const Job& job = queue[node].front();
    double occupancy;
    bool success;
    if (node + 1 == n_nodes) {
      occupancy = job.demand;
      success = true;
    } else {
      const double theta =
          sample(p.timeouts[node], rng) * p.dynamic_timeout.scale(lengths[node]);
      if (job.demand <= theta) {
        occupancy = job.demand;
        success = true;
      } else {
        occupancy = theta;
        success = false;
      }
    }
    calendar.schedule(now + occupancy, {false, {node, success}});
  };

  const auto push_job = [&](std::size_t node, Job job) {
    if (lengths[node] >= p.buffers[node]) {
      if (col.recording) ++col.lost;
      return;
    }
    queue[node].push_back(job);
    ++lengths[node];
    col.on_queue_change(now, node, lengths[node]);
    if (!busy[node]) start_head(node);
  };

  const obs::ScopedTimer obs_timer("sim/tags");
  const std::uint64_t obs_start_ns = obs::now_ns();
  std::uint64_t n_events = 0;
  static obs::Histogram depth_hist("sim.tags.queue_depth",
                                   obs::Histogram::linear_bounds(0.0, 64.0, 32));

  ArrivalProcess arrivals(p.lambda, p.mmpp);
  calendar.schedule(arrivals.next_gap(rng), {true, {}});
  while (!calendar.empty() && calendar.top().time <= p.horizon) {
    const auto ev = calendar.pop();
    now = ev.time;
    col.maybe_start(now, lengths);
    ++n_events;
    if ((n_events & 1023) == 0 && obs::metrics_on()) {
      unsigned total = 0;
      for (const unsigned l : lengths) total += l;
      depth_hist.observe(static_cast<double>(total));
      if (obs::tracing_on() && (n_events & 65535) == 0) {
        obs::TraceEvent tev;
        tev.name = "sim.progress";
        tev.num.emplace_back("events", static_cast<double>(n_events));
        tev.num.emplace_back("sim_time", now);
        tev.num.emplace_back("total_queue", static_cast<double>(total));
        obs::emit(std::move(tev));
      }
    }
    if (ev.payload.is_arrival) {
      if (col.recording) ++col.arrivals;
      push_job(0, Job{sample(p.service, rng), now});
      calendar.schedule(now + arrivals.next_gap(rng), {true, {}});
    } else {
      const auto [node, success] = ev.payload.dep;
      Job job = queue[node].front();
      queue[node].pop_front();
      --lengths[node];
      busy[node] = false;
      col.on_queue_change(now, node, lengths[node]);
      if (success) {
        col.on_completion(now, job);
      } else {
        push_job(node + 1, job);  // restart from scratch downstream
      }
      if (!queue[node].empty()) start_head(node);
    }
  }
  if (obs::metrics_on()) {
    obs::count("sim.tags.runs");
    obs::count("sim.tags.events", n_events);
    const double wall_s = static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
    obs::gauge_set("sim.tags.last_events_per_sec",
                   wall_s > 0.0 ? static_cast<double>(n_events) / wall_s : 0.0);
  }
  return col.finish(std::min(now, p.horizon));
}

SimResults simulate_dispatch(const DispatchSimParams& p) {
  Rng rng(p.seed);
  Collector col(p.n_queues, p.horizon * p.warmup_fraction, p.slowdown_buckets);

  struct EventPayload {
    bool is_arrival;
    std::size_t queue_idx;
  };
  EventQueue<EventPayload> calendar;

  std::vector<std::deque<Job>> queue(p.n_queues);
  std::vector<unsigned> lengths(p.n_queues, 0);
  std::vector<double> remaining(p.n_queues, 0.0);
  std::vector<bool> busy(p.n_queues, false);
  RouterState router;

  double now = 0.0;

  const auto start_head = [&](std::size_t qi) {
    assert(!queue[qi].empty() && !busy[qi]);
    busy[qi] = true;
    calendar.schedule(now + queue[qi].front().demand, {false, qi});
  };

  const obs::ScopedTimer obs_timer("sim/dispatch");
  const std::uint64_t obs_start_ns = obs::now_ns();
  std::uint64_t n_events = 0;
  static obs::Histogram depth_hist("sim.dispatch.queue_depth",
                                   obs::Histogram::linear_bounds(0.0, 64.0, 32));

  ArrivalProcess arrivals(p.lambda, p.mmpp);
  calendar.schedule(arrivals.next_gap(rng), {true, 0});
  while (!calendar.empty() && calendar.top().time <= p.horizon) {
    const auto ev = calendar.pop();
    now = ev.time;
    col.maybe_start(now, lengths);
    ++n_events;
    if ((n_events & 1023) == 0 && obs::metrics_on()) {
      unsigned total = 0;
      for (const unsigned l : lengths) total += l;
      depth_hist.observe(static_cast<double>(total));
    }
    if (ev.payload.is_arrival) {
      if (col.recording) ++col.arrivals;
      const Job job{sample(p.service, rng), now};
      std::vector<QueueView> views(p.n_queues);
      for (std::size_t i = 0; i < p.n_queues; ++i) {
        views[i] = {lengths[i], p.buffer, remaining[i]};
      }
      const int pick = route(p.policy, views, router, rng);
      if (pick < 0) {
        if (col.recording) ++col.lost;
      } else {
        const auto qi = static_cast<std::size_t>(pick);
        queue[qi].push_back(job);
        ++lengths[qi];
        remaining[qi] += job.demand;
        col.on_queue_change(now, qi, lengths[qi]);
        if (!busy[qi]) start_head(qi);
      }
      calendar.schedule(now + arrivals.next_gap(rng), {true, 0});
    } else {
      const std::size_t qi = ev.payload.queue_idx;
      Job job = queue[qi].front();
      queue[qi].pop_front();
      --lengths[qi];
      remaining[qi] -= job.demand;
      busy[qi] = false;
      col.on_queue_change(now, qi, lengths[qi]);
      col.on_completion(now, job);
      if (!queue[qi].empty()) start_head(qi);
    }
  }
  if (obs::metrics_on()) {
    obs::count("sim.dispatch.runs");
    obs::count("sim.dispatch.events", n_events);
    const double wall_s = static_cast<double>(obs::now_ns() - obs_start_ns) / 1e9;
    obs::gauge_set("sim.dispatch.last_events_per_sec",
                   wall_s > 0.0 ? static_cast<double>(n_events) / wall_s : 0.0);
  }
  return col.finish(std::min(now, p.horizon));
}

}  // namespace tags::sim
