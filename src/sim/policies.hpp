// Dispatch policies for the parallel-queue simulator (the baselines the
// paper compares TAGS against, plus round-robin and the clairvoyant
// least-work policy as an upper bound).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "sim/rng.hpp"

namespace tags::sim {

enum class DispatchPolicy {
  kRandom,        ///< uniform random queue (the paper's random allocation)
  kRoundRobin,    ///< cyclic assignment
  kShortestQueue, ///< fewest jobs; ties split randomly
  kLeastWork,     ///< least remaining work (requires knowing demands — the
                  ///< clairvoyant baseline TAGS tries to approach blindly)
};

[[nodiscard]] std::string_view to_string(DispatchPolicy p) noexcept;

/// Per-queue view the router sees.
struct QueueView {
  unsigned length;       ///< jobs in queue (including in service)
  unsigned capacity;     ///< buffer size
  double remaining_work; ///< total remaining demand (kLeastWork only)
};

/// Mutable routing state (round-robin cursor).
struct RouterState {
  unsigned rr_cursor = 0;
};

/// Pick a queue for an arriving job; -1 means the job is lost (the chosen /
/// every eligible queue is full). Policies that do not inspect occupancy
/// (random, round-robin) lose the job when their chosen queue is full, as
/// in the paper's bounded models.
[[nodiscard]] int route(DispatchPolicy policy, std::span<const QueueView> queues,
                        RouterState& state, Rng& rng);

}  // namespace tags::sim
