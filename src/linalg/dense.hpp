// Row-major dense matrix. Intended for small systems (reference solvers,
// phase-type generators); sparse work goes through CsrMatrix.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace tags::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialised.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0) {}

  /// Square identity matrix of dimension n.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return a_.empty(); }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return a_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return a_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<double> row(std::size_t i) noexcept {
    assert(i < rows_);
    return {a_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    assert(i < rows_);
    return {a_.data() + i * cols_, cols_};
  }

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const noexcept;

  /// y = A^T x.
  void multiply_transpose(std::span<const double> x, std::span<double> y) const noexcept;

  /// Returns A^T as a new matrix.
  [[nodiscard]] DenseMatrix transposed() const;

  /// Returns A * B.
  [[nodiscard]] DenseMatrix matmul(const DenseMatrix& b) const;

  /// this += a * B (same shape).
  void add_scaled(double a, const DenseMatrix& b) noexcept;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max-abs entry.
  [[nodiscard]] double max_abs() const noexcept;

  /// Raw storage access (row-major).
  [[nodiscard]] std::span<const double> data() const noexcept { return a_; }
  [[nodiscard]] std::span<double> data() noexcept { return a_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
};

}  // namespace tags::linalg
