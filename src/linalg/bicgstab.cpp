// BiCGSTAB (van der Vorst 1992) with optional Jacobi preconditioning.
#include <cassert>
#include <cmath>

#include "linalg/solver.hpp"
#include "linalg/solver_internal.hpp"

namespace tags::linalg {

SolveResult bicgstab(const CsrMatrix& a, std::span<const double> b, Vec& x,
                     const SolveOptions& opts) {
  assert(a.rows() == a.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  assert(b.size() == n && x.size() == n);
  const std::uint64_t start_ns = obs::now_ns();
  obs::Span span("linalg/bicgstab");
  span.attr("n", static_cast<double>(n));

  Vec inv_diag;
  if (opts.precond != Preconditioner::kNone) {  // Jacobi (GS falls back to it)
    inv_diag = a.diagonal();
    for (double& d : inv_diag) {
      if (d == 0.0) {
        inv_diag.clear();
        break;
      }
      d = 1.0 / d;
    }
  }
  const auto precond = [&](const Vec& src, Vec& dst) {
    if (inv_diag.empty()) {
      copy(src, dst);
    } else {
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] * inv_diag[i];
    }
  };

  Vec r(n), r0(n), p(n, 0.0), vv(n, 0.0), s(n), t(n), phat(n), shat(n), scratch(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  copy(r, r0);
  const double initial_residual = nrm_inf(r);

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  SolveResult res;
  for (res.iterations = 1; res.iterations <= opts.max_iter; ++res.iterations) {
    if (obs::tracing_on()) obs::trace_iteration("bicgstab", res.iterations, nrm_inf(r));
    const double rho = dot(r0, r);
    if (rho == 0.0) break;  // breakdown
    if (res.iterations == 1) {
      copy(r, p);
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * vv[i]);
    }
    precond(p, phat);
    a.multiply(phat, vv);
    const double r0v = dot(r0, vv);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * vv[i];
    if (nrm_inf(s) <= opts.tol) {
      axpy(alpha, phat, x);
      break;
    }
    precond(s, shat);
    a.multiply(shat, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    if (nrm_inf(r) <= opts.tol) break;
    if (omega == 0.0) break;
    rho_prev = rho;
  }

  res.residual = a.residual_inf(x, b, scratch);
  res.converged = res.residual <= opts.tol;
  detail::finalize_solve(res, "bicgstab", a.rows(), nrm_inf(b), initial_residual,
                         start_ns,
                         inv_diag.empty() ? "precond=none" : "precond=jacobi");
  return res;
}

}  // namespace tags::linalg
