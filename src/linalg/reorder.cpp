#include "linalg/reorder.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/coo.hpp"

namespace tags::linalg {

std::vector<index_t> Permutation::inverse() const {
  std::vector<index_t> inv(order.size());
  for (std::size_t k = 0; k < order.size(); ++k)
    inv[static_cast<std::size_t>(order[k])] = static_cast<index_t>(k);
  return inv;
}

bool Permutation::is_identity() const noexcept {
  for (std::size_t k = 0; k < order.size(); ++k)
    if (order[k] != static_cast<index_t>(k)) return false;
  return true;
}

Permutation Permutation::identity(index_t n) {
  Permutation p;
  p.order.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p.order[static_cast<std::size_t>(i)] = i;
  return p;
}

index_t LevelDecomposition::max_block() const noexcept {
  index_t mx = 0;
  for (std::size_t l = 0; l + 1 < level_ptr.size(); ++l)
    mx = std::max(mx, level_ptr[l + 1] - level_ptr[l]);
  return mx;
}

LevelDecomposition bfs_levels(const CsrMatrix& q) {
  assert(q.rows() == q.cols());
  const index_t n = q.rows();
  const CsrMatrix& qt = q.transpose_cache();
  LevelDecomposition d;
  d.level_of.assign(static_cast<std::size_t>(n), -1);
  d.perm.order.reserve(static_cast<std::size_t>(n));
  d.level_ptr.push_back(0);
  if (n == 0) {
    d.connected = true;
    return d;
  }
  std::vector<index_t> frontier{0}, next;
  d.level_of[0] = 0;
  int lev = 0;
  while (!frontier.empty()) {
    // Sorted frontier: deterministic in-level order, independent of the
    // order in which neighbours were discovered.
    std::sort(frontier.begin(), frontier.end());
    for (const index_t u : frontier) d.perm.order.push_back(u);
    d.level_ptr.push_back(static_cast<index_t>(d.perm.order.size()));
    next.clear();
    for (const index_t u : frontier) {
      for (const index_t v : q.row_cols(u)) {
        if (d.level_of[static_cast<std::size_t>(v)] < 0) {
          d.level_of[static_cast<std::size_t>(v)] = lev + 1;
          next.push_back(v);
        }
      }
      for (const index_t v : qt.row_cols(u)) {
        if (d.level_of[static_cast<std::size_t>(v)] < 0) {
          d.level_of[static_cast<std::size_t>(v)] = lev + 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++lev;
  }
  d.connected = d.perm.order.size() == static_cast<std::size_t>(n);
  return d;
}

namespace {

/// Undirected adjacency (CSR of the symmetrised pattern, self-loops
/// dropped) — what both RCM and its bandwidth arguments are defined over.
struct SymGraph {
  std::vector<index_t> ptr, adj, degree;
};

SymGraph symmetrize(const CsrMatrix& q) {
  const index_t n = q.rows();
  const CsrMatrix& qt = q.transpose_cache();
  SymGraph g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  // Merge the sorted neighbour lists of q and qt per row, deduplicating.
  std::vector<index_t> merged;
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t u = 0; u < n; ++u) {
    const auto a = q.row_cols(u);
    const auto b = qt.row_cols(u);
    merged.clear();
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(merged));
    auto& row = rows[static_cast<std::size_t>(u)];
    for (const index_t v : merged)
      if (v != u) row.push_back(v);
    g.ptr[static_cast<std::size_t>(u) + 1] =
        g.ptr[static_cast<std::size_t>(u)] + static_cast<index_t>(row.size());
  }
  g.adj.reserve(static_cast<std::size_t>(g.ptr.back()));
  g.degree.resize(static_cast<std::size_t>(n));
  for (index_t u = 0; u < n; ++u) {
    const auto& row = rows[static_cast<std::size_t>(u)];
    g.degree[static_cast<std::size_t>(u)] = static_cast<index_t>(row.size());
    g.adj.insert(g.adj.end(), row.begin(), row.end());
  }
  return g;
}

std::span<const index_t> neighbours(const SymGraph& g, index_t u) {
  return {g.adj.data() + g.ptr[static_cast<std::size_t>(u)],
          static_cast<std::size_t>(g.ptr[static_cast<std::size_t>(u) + 1] -
                                   g.ptr[static_cast<std::size_t>(u)])};
}

/// BFS from `start` within the unvisited component; returns the visit order
/// and the last level (candidates for a more peripheral start).
struct BfsOut {
  std::vector<index_t> order;
  std::vector<index_t> last_level;
  int eccentricity = 0;
};

BfsOut bfs_component(const SymGraph& g, index_t start, std::vector<int>& mark, int tag) {
  BfsOut out;
  std::vector<index_t> frontier{start}, next;
  mark[static_cast<std::size_t>(start)] = tag;
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    out.order.insert(out.order.end(), frontier.begin(), frontier.end());
    out.last_level = frontier;
    next.clear();
    for (const index_t u : frontier) {
      for (const index_t v : neighbours(g, u)) {
        if (mark[static_cast<std::size_t>(v)] != tag) {
          mark[static_cast<std::size_t>(v)] = tag;
          next.push_back(v);
        }
      }
    }
    if (!next.empty()) ++out.eccentricity;
    frontier.swap(next);
  }
  return out;
}

/// George-Liu pseudo-peripheral node: walk to a min-degree node of the last
/// BFS level until the eccentricity stops growing.
index_t pseudo_peripheral(const SymGraph& g, index_t start, std::vector<int>& mark,
                          int& tag) {
  index_t node = start;
  BfsOut bfs = bfs_component(g, node, mark, ++tag);
  for (int rounds = 0; rounds < 8; ++rounds) {  // converges in 2-3 in practice
    index_t best = bfs.last_level.front();
    for (const index_t v : bfs.last_level) {
      if (g.degree[static_cast<std::size_t>(v)] < g.degree[static_cast<std::size_t>(best)] ||
          (g.degree[static_cast<std::size_t>(v)] == g.degree[static_cast<std::size_t>(best)] &&
           v < best)) {
        best = v;
      }
    }
    BfsOut trial = bfs_component(g, best, mark, ++tag);
    if (trial.eccentricity <= bfs.eccentricity) break;
    node = best;
    bfs = std::move(trial);
  }
  return node;
}

}  // namespace

Permutation rcm_order(const CsrMatrix& q) {
  assert(q.rows() == q.cols());
  const index_t n = q.rows();
  if (n == 0) return Permutation{};
  const SymGraph g = symmetrize(q);

  std::vector<int> mark(static_cast<std::size_t>(n), 0);
  int tag = 0;
  std::vector<index_t> cm;
  cm.reserve(static_cast<std::size_t>(n));
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  std::vector<index_t> nbrs;

  for (index_t seed = 0; seed < n; ++seed) {
    if (placed[static_cast<std::size_t>(seed)]) continue;
    // New component: Cuthill-McKee from a pseudo-peripheral start.
    const index_t start = pseudo_peripheral(g, seed, mark, tag);
    std::size_t head = cm.size();
    cm.push_back(start);
    placed[static_cast<std::size_t>(start)] = 1;
    while (head < cm.size()) {
      const index_t u = cm[head++];
      nbrs.clear();
      for (const index_t v : neighbours(g, u))
        if (!placed[static_cast<std::size_t>(v)]) nbrs.push_back(v);
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        const index_t da = g.degree[static_cast<std::size_t>(a)];
        const index_t db = g.degree[static_cast<std::size_t>(b)];
        return da != db ? da < db : a < b;
      });
      for (const index_t v : nbrs) {
        cm.push_back(v);
        placed[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  std::reverse(cm.begin(), cm.end());

  Permutation p;
  p.order = std::move(cm);
  // Bandwidth guard: keep the reordering only when it strictly helps, so
  // callers can rely on "never worse than the natural order".
  const CsrMatrix permuted = permute_symmetric(q, p);
  if (bandwidth(permuted) >= bandwidth(q)) return Permutation::identity(n);
  return p;
}

index_t bandwidth(const CsrMatrix& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (const index_t j : a.row_cols(i)) bw = std::max(bw, i < j ? j - i : i - j);
  return bw;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p) {
  assert(a.rows() == a.cols());
  assert(p.size() == static_cast<std::size_t>(a.rows()));
  const std::vector<index_t> inv = p.inverse();
  CooMatrix coo(a.rows(), a.cols());
  coo.reserve(a.nnz());
  for (index_t ni = 0; ni < a.rows(); ++ni) {
    const index_t oi = p.order[static_cast<std::size_t>(ni)];
    const auto cs = a.row_cols(oi);
    const auto vs = a.row_vals(oi);
    for (std::size_t k = 0; k < cs.size(); ++k)
      coo.add(ni, inv[static_cast<std::size_t>(cs[k])], vs[k]);
  }
  return CsrMatrix::from_coo(coo);
}

void permute_vector(const Permutation& p, std::span<const double> x, std::span<double> y) {
  assert(x.size() == p.size() && y.size() == p.size());
  for (std::size_t k = 0; k < p.size(); ++k)
    y[k] = x[static_cast<std::size_t>(p.order[k])];
}

void unpermute_vector(const Permutation& p, std::span<const double> x, std::span<double> y) {
  assert(x.size() == p.size() && y.size() == p.size());
  for (std::size_t k = 0; k < p.size(); ++k)
    y[static_cast<std::size_t>(p.order[k])] = x[k];
}

}  // namespace tags::linalg
