#include "linalg/batch.hpp"

#include <cassert>
#include <cmath>

#include "linalg/csr_assembly.hpp"

namespace tags::linalg {

namespace {

// The lane-interleaved layout makes every inner loop a contiguous run of
// W doubles, so the batched kernels are exactly the loops wide vector
// units want. The build targets the SSE2 baseline for portability;
// target_clones adds an AVX2 variant behind a runtime dispatch (an
// AVX-512 clone measured no faster here — these kernels have too few
// independent chains to cover the wider unit's latency — so it is left
// out to keep dispatch and code size down).
// Bit parity survives the wider clones because vector mul/sub/div are
// elementwise IEEE operations in the same per-lane order — the file is
// compiled with -ffp-contract=off (see src/CMakeLists.txt) so the FMA-
// capable clones cannot contract a*b+c into a differently-rounded fma.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__linux__)
#define TAGS_BATCH_KERNEL \
  __attribute__((target_clones("avx2", "default")))
#else
#define TAGS_BATCH_KERNEL
#endif

// Small lane-indexed temporaries. The W != 0 specialisation lives on the
// stack, which is what makes the hot loops vectorise: a heap-allocated
// temporary can alias the matrix being updated as far as the compiler
// knows, so every store forces the "invariant" lane values to be
// reloaded and the vectoriser gives up. A stack array whose address never
// escapes provably cannot alias, and the same loops compile to one or two
// wide ops per lane group.
template <class T, std::size_t N>
struct LaneBuf {
  explicit LaneBuf(std::size_t) {}
  T* data() noexcept { return v; }
  T& operator[](std::size_t i) noexcept { return v[i]; }
  const T& operator[](std::size_t i) const noexcept { return v[i]; }
  T v[N] = {};
};
template <class T>
struct LaneBuf<T, 0> {
  explicit LaneBuf(std::size_t n) : v(n) {}
  T* data() noexcept { return v.data(); }
  T& operator[](std::size_t i) noexcept { return v[i]; }
  const T& operator[](std::size_t i) const noexcept { return v[i]; }
  std::vector<T> v;
};

// Run-fused subtraction terms. Substitution and trailing-update loops all
// reduce to `dst -= l * src` streams over one destination row; with one
// store per term they are store-port-bound at exactly the scalar kernel's
// throughput, so lane-widening alone gains nothing. Fusing a run of kRun
// terms keeps the destination lane group in a stack accumulator across the
// run — one load+store of dst per kRun terms — which moves the loops to
// the mul/sub ALU limit instead. Bit parity holds because the terms still
// apply in append (ascending) order one subtraction at a time, and keeping
// the intermediate in a register rounds identically to storing it: SSE/AVX
// doubles have no extended precision, and -ffp-contract=off keeps the
// mul and sub separate.
constexpr std::size_t kRun = 4;

template <std::size_t W, std::size_t R>
[[gnu::always_inline]] inline void apply_run_r(double* dst,
                                               const double* const* src,
                                               const double* lv, std::size_t w_rt,
                                               std::size_t lo, std::size_t hi) {
  const std::size_t w = W != 0 ? W : w_rt;
  LaneBuf<double, W> acc(w);
  for (std::size_t j = lo; j < hi; ++j) {
    double* d = dst + j * w;
    for (std::size_t b = 0; b < w; ++b) acc[b] = d[b];
    for (std::size_t r = 0; r < R; ++r) {
      const double* s = src[r] + j * w;
      const double* l = lv + r * w;
      for (std::size_t b = 0; b < w; ++b) acc[b] -= l[b] * s[b];
    }
    for (std::size_t b = 0; b < w; ++b) d[b] = acc[b];
  }
}

template <std::size_t W>
[[gnu::always_inline]] inline void apply_run(double* dst,
                                             const double* const* src,
                                             const double* lv, std::size_t nrun,
                                             std::size_t w, std::size_t lo,
                                             std::size_t hi) {
  switch (nrun) {
    case 1: apply_run_r<W, 1>(dst, src, lv, w, lo, hi); break;
    case 2: apply_run_r<W, 2>(dst, src, lv, w, lo, hi); break;
    case 3: apply_run_r<W, 3>(dst, src, lv, w, lo, hi); break;
    case 4: apply_run_r<W, 4>(dst, src, lv, w, lo, hi); break;
    default: break;
  }
}

// A term whose multiplier is zero in some lanes cannot join a fused run:
// its skipped lanes must replicate the scalar `if (l == 0.0) continue`
// bit-for-bit (v - 0.0*u is NOT a no-op for signed zeros), so it applies
// alone as a branch-free select.
template <std::size_t W>
[[gnu::always_inline]] inline void apply_select(double* dst, const double* src,
                                                const double* lv,
                                                std::size_t w_rt, std::size_t lo,
                                                std::size_t hi) {
  const std::size_t w = W != 0 ? W : w_rt;
  for (std::size_t j = lo; j < hi; ++j) {
    double* d = dst + j * w;
    const double* s = src + j * w;
    for (std::size_t b = 0; b < w; ++b) {
      const double l = lv[b];
      d[b] = (l == 0.0) ? d[b] : d[b] - l * s[b];
    }
  }
}

// Panel-blocked right-looking elimination. The unblocked update at step k
// streams the whole (m-k)^2 x W trailing block, whose ~8x-scalar footprint
// lives in L3; deferring the trailing update until a panel of kPanel steps
// is factored divides that traffic by kPanel, and column-tiling the
// deferred update keeps the destination L2-resident. Bit parity with the
// unblocked (and hence scalar) elimination is exact: each trailing entry
// still receives its updates in ascending step order one subtraction at a
// time (no dot-product reassociation), and row interchanges are pure data
// movement, so applying a panel's swaps to the outside columns after the
// panel — the LAPACK getrf arrangement — permutes the same values through
// the same arithmetic.
// Each kernel is a width-templated impl behind a thin dispatching clone:
// with W fixed at compile time the lane loops unroll into single wide
// vector ops (a W=8 lane group is exactly one zmm register), where a
// runtime trip count would leave the vectorizer emitting prologue checks
// around every 8-iteration loop. Widths 1..8 are instantiated so odd
// batch tails stay on stack-buffer fast paths; W=0 is the runtime-width
// fallback for anything wider. always_inline pulls the impl into each
// clone so it is compiled at that clone's ISA.
template <std::size_t W>
[[gnu::always_inline]] inline void factor_impl(double* a, std::size_t m,
                                               std::size_t w_rt, std::size_t* piv,
                                               unsigned char* singular,
                                               bool& any_singular) {
  const std::size_t w = W != 0 ? W : w_rt;
  constexpr std::size_t kPanel = 16;
  LaneBuf<double, W> inv(w);
  LaneBuf<double, W> mult(w);
  LaneBuf<unsigned char, W> skip(w);
  LaneBuf<std::size_t, W> p(w);
  LaneBuf<double, W> best(w);
  LaneBuf<unsigned char, W ? kPanel * W : 0> panel_skip(kPanel * w);
  const auto at = [&](std::size_t i, std::size_t j) { return a + (i * m + j) * w; };

  for (std::size_t k0 = 0; k0 < m; k0 += kPanel) {
    const std::size_t k1 = std::min(m, k0 + kPanel);
    for (std::size_t k = k0; k < k1; ++k) {
      // Partial pivoting, all lanes in lockstep (the column scan streams
      // lane-contiguous rows): strict > keeps the first maximum, exactly
      // like lu_factor. A lane whose column is exactly zero from row k down
      // is singular (p stays k there) and sits this elimination step out.
      {
        const double* ck = at(k, k);
        for (std::size_t b = 0; b < w; ++b) {
          p[b] = k;
          best[b] = std::abs(ck[b]);
        }
      }
      for (std::size_t i = k + 1; i < m; ++i) {
        const double* ci = at(i, k);
        for (std::size_t b = 0; b < w; ++b) {
          const double v = std::abs(ci[b]);
          if (v > best[b]) {
            best[b] = v;
            p[b] = i;
          }
        }
      }
      bool any_swap = false;
      for (std::size_t b = 0; b < w; ++b) {
        piv[k * w + b] = p[b];
        if (best[b] == 0.0) {
          singular[b] = 1;
          any_singular = true;
          skip[b] = 1;
        } else {
          skip[b] = 0;
          any_swap |= p[b] != k;
        }
        panel_skip[(k - k0) * w + b] = skip[b];
      }
      if (any_swap) {
        // Panel columns swap immediately (later panel steps read them);
        // outside columns are swapped after the panel. j-outer so row k
        // streams; a zero-pivot lane has p == k and swaps nothing, exactly
        // like the scalar early-continue.
        for (std::size_t j = k0; j < k1; ++j) {
          double* rk = at(k, j);
          for (std::size_t b = 0; b < w; ++b) {
            if (p[b] != k) std::swap(rk[b], at(p[b], j)[b]);
          }
        }
      }
      {
        const double* pk = at(k, k);
        for (std::size_t b = 0; b < w; ++b) inv[b] = skip[b] ? 0.0 : 1.0 / pk[b];
      }
      for (std::size_t i = k + 1; i < m; ++i) {
        double* aik = at(i, k);
        bool all_zero = true;
        bool any_zero = false;
        for (std::size_t b = 0; b < w; ++b) {
          // Scalar code writes lik = a(i,k)/pivot then skips the row update
          // when lik == 0. A skipped (singular) lane leaves a(i,k) untouched
          // and multiplies by 0 below, which the select turns into a no-op.
          const double lik = aik[b] * inv[b];
          const double mb = skip[b] ? 0.0 : lik;
          mult[b] = mb;
          aik[b] = skip[b] ? aik[b] : lik;
          all_zero &= mb == 0.0;
          any_zero |= mb == 0.0;
        }
        // Lanes share the pattern's structural zeros, so whole rows of
        // multipliers are usually zero together — skipping them restores the
        // scalar kernel's sparsity advantage (each lane's skip is exactly
        // lu_factor's `if (lik == 0.0) continue`).
        if (all_zero) continue;
        for (std::size_t j = k + 1; j < k1; ++j) {
          const double* u = at(k, j);
          double* v = at(i, j);
          if (!any_zero) {
            for (std::size_t b = 0; b < w; ++b) v[b] -= mult[b] * u[b];
          } else {
            for (std::size_t b = 0; b < w; ++b) {
              // Select, not branch: replicates lu_factor's `if (lik == 0.0)
              // continue` bit-for-bit (computing v - 0.0*u is NOT a no-op
              // for signed zeros) while keeping the lane loop branch-free.
              const double l = mult[b];
              v[b] = (l == 0.0) ? v[b] : v[b] - l * u[b];
            }
          }
        }
      }
    }
    // Deferred row interchanges for the columns outside the panel, in step
    // order (pure permutation, no arithmetic).
    for (std::size_t k = k0; k < k1; ++k) {
      const std::size_t* pk = piv + k * w;
      bool any_swap = false;
      for (std::size_t b = 0; b < w; ++b) any_swap |= pk[b] != k;
      if (!any_swap) continue;
      const auto swap_range = [&](std::size_t jlo, std::size_t jhi) {
        for (std::size_t j = jlo; j < jhi; ++j) {
          double* rk = at(k, j);
          for (std::size_t b = 0; b < w; ++b) {
            if (pk[b] != k) std::swap(rk[b], at(pk[b], j)[b]);
          }
        }
      };
      swap_range(0, k0);
      swap_range(k1, m);
    }
    // Deferred trailing update, column-tiled so each destination tile is
    // L2-resident while the panel's L columns and U rows stream over it,
    // i-outer so each destination row takes its panel steps as fused runs.
    // Per entry the k-ascending subtraction sequence is the unblocked
    // kernel's, one step at a time; i ascending guarantees a source row k
    // inside the panel is itself fully updated (at iteration i == k)
    // before any row i > k consumes it, exactly as the k-outer order did.
    if (k1 < m) {
      const std::size_t tile =
          std::max<std::size_t>(8, (std::size_t{1} << 20) / (m * w * 8));
      LaneBuf<double, W ? kRun * W : 0> runl(kRun * w);
      const double* runsrc[kRun];
      for (std::size_t j0 = k1; j0 < m; j0 += tile) {
        const std::size_t j1 = std::min(m, j0 + tile);
        for (std::size_t i = k0 + 1; i < m; ++i) {
          const std::size_t kmax = std::min(i, k1);
          double* di = at(i, 0);
          std::size_t nrun = 0;
          for (std::size_t k = k0; k < kmax; ++k) {
            const unsigned char* skp = panel_skip.data() + (k - k0) * w;
            const double* aik = at(i, k);
            bool all_zero = true;
            bool any_zero = false;
            for (std::size_t b = 0; b < w; ++b) {
              const double mb = skp[b] ? 0.0 : aik[b];
              mult[b] = mb;
              all_zero &= mb == 0.0;
              any_zero |= mb == 0.0;
            }
            if (all_zero) continue;
            if (any_zero) {
              apply_run<W>(di, runsrc, runl.data(), nrun, w, j0, j1);
              nrun = 0;
              apply_select<W>(di, at(k, 0), mult.data(), w, j0, j1);
              continue;
            }
            for (std::size_t b = 0; b < w; ++b) runl[nrun * w + b] = mult[b];
            runsrc[nrun++] = at(k, 0);
            if (nrun == kRun) {
              apply_run<W>(di, runsrc, runl.data(), kRun, w, j0, j1);
              nrun = 0;
            }
          }
          apply_run<W>(di, runsrc, runl.data(), nrun, w, j0, j1);
        }
      }
    }
  }
}

TAGS_BATCH_KERNEL void factor_kernel(double* a, std::size_t m, std::size_t w,
                                     std::size_t* piv, unsigned char* singular,
                                     bool& any_singular) {
  switch (w) {
    case 1: factor_impl<1>(a, m, w, piv, singular, any_singular); break;
    case 2: factor_impl<2>(a, m, w, piv, singular, any_singular); break;
    case 3: factor_impl<3>(a, m, w, piv, singular, any_singular); break;
    case 4: factor_impl<4>(a, m, w, piv, singular, any_singular); break;
    case 5: factor_impl<5>(a, m, w, piv, singular, any_singular); break;
    case 6: factor_impl<6>(a, m, w, piv, singular, any_singular); break;
    case 7: factor_impl<7>(a, m, w, piv, singular, any_singular); break;
    case 8: factor_impl<8>(a, m, w, piv, singular, any_singular); break;
    default: factor_impl<0>(a, m, w, piv, singular, any_singular); break;
  }
}

template <std::size_t W>
[[gnu::always_inline]] inline void multi_rhs_impl(const double* a,
                                                  const std::size_t* piv,
                                                  std::size_t n, std::size_t w_rt,
                                                  double* bmat, std::size_t nc) {
  const std::size_t w = W != 0 ? W : w_rt;
  const auto row = [&](std::size_t i) { return bmat + i * nc * w; };
  // Per-lane row permutation (pivot choices differ across lanes).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < w; ++b) {
      const std::size_t p = piv[i * w + b];
      if (p == i) continue;
      double* ri = row(i);
      double* rp = row(p);
      for (std::size_t c = 0; c < nc; ++c) std::swap(ri[c * w + b], rp[c * w + b]);
    }
  }
  // The scalar kernel skips a whole RHS row when the multiplier is zero;
  // per lane that becomes a select on the lane's own multiplier, which
  // preserves its bits exactly. Lanes share the pattern's structural
  // zeros, so most multiplier rows are zero (or nonzero) in every lane at
  // once — the hoisted checks recover the scalar skip wholesale.
  const auto classify = [&](const double* lane_vals, bool& all_zero, bool& any_zero) {
    all_zero = true;
    any_zero = false;
    for (std::size_t b = 0; b < w; ++b) {
      all_zero &= lane_vals[b] == 0.0;
      any_zero |= lane_vals[b] == 0.0;
    }
  };
  // Column tiles keep the substituted RHS block L2-resident while the
  // factor streams over it (the whole n x nc x W block is ~8x the scalar
  // working set and would thrash from L3 otherwise). Columns substitute
  // independently with unchanged per-column operation order, so the tile
  // split cannot change any bits — the scalar kernel's own column chunks
  // rely on the same fact.
  const std::size_t tile =
      std::max<std::size_t>(4, (std::size_t{1} << 20) / (n * w * 8));
  // The factor's lane groups are copied into stack buffers before the
  // column streams: the compiler cannot prove a bare `a` pointer disjoint
  // from the `bmat` stores, so reading the multipliers through it would
  // force a reload per column and defeat the vectoriser (see LaneBuf
  // above). Rows whose multiplier is nonzero in every lane fuse into
  // kRun-term runs (ascending j, see apply_run_r); mixed rows apply alone
  // as selects between the runs, in their own j positions.
  LaneBuf<double, W> lv(w);
  LaneBuf<double, W> inv(w);
  LaneBuf<double, W ? kRun * W : 0> runl(kRun * w);
  const double* runsrc[kRun];
  for (std::size_t c0 = 0; c0 < nc; c0 += tile) {
    const std::size_t c1 = std::min(nc, c0 + tile);
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 1; i < n; ++i) {
      double* ri = row(i);
      std::size_t nrun = 0;
      for (std::size_t j = 0; j < i; ++j) {
        const double* lj = a + (i * n + j) * w;
        bool all_zero = false, any_zero = false;
        classify(lj, all_zero, any_zero);
        if (all_zero) continue;
        if (any_zero) {
          apply_run<W>(ri, runsrc, runl.data(), nrun, w, c0, c1);
          nrun = 0;
          for (std::size_t b = 0; b < w; ++b) lv[b] = lj[b];
          apply_select<W>(ri, row(j), lv.data(), w, c0, c1);
          continue;
        }
        for (std::size_t b = 0; b < w; ++b) runl[nrun * w + b] = lj[b];
        runsrc[nrun++] = row(j);
        if (nrun == kRun) {
          apply_run<W>(ri, runsrc, runl.data(), kRun, w, c0, c1);
          nrun = 0;
        }
      }
      apply_run<W>(ri, runsrc, runl.data(), nrun, w, c0, c1);
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      double* ri = row(ii);
      std::size_t nrun = 0;
      for (std::size_t j = ii + 1; j < n; ++j) {
        const double* uj = a + (ii * n + j) * w;
        bool all_zero = false, any_zero = false;
        classify(uj, all_zero, any_zero);
        if (all_zero) continue;
        if (any_zero) {
          apply_run<W>(ri, runsrc, runl.data(), nrun, w, c0, c1);
          nrun = 0;
          for (std::size_t b = 0; b < w; ++b) lv[b] = uj[b];
          apply_select<W>(ri, row(j), lv.data(), w, c0, c1);
          continue;
        }
        for (std::size_t b = 0; b < w; ++b) runl[nrun * w + b] = uj[b];
        runsrc[nrun++] = row(j);
        if (nrun == kRun) {
          apply_run<W>(ri, runsrc, runl.data(), kRun, w, c0, c1);
          nrun = 0;
        }
      }
      apply_run<W>(ri, runsrc, runl.data(), nrun, w, c0, c1);
      const double* d = a + (ii * n + ii) * w;
      for (std::size_t b = 0; b < w; ++b) inv[b] = 1.0 / d[b];
      for (std::size_t c = c0; c < c1; ++c) {
        double* vi = ri + c * w;
        for (std::size_t b = 0; b < w; ++b) vi[b] *= inv[b];
      }
    }
  }
}

TAGS_BATCH_KERNEL void multi_rhs_kernel(const double* a, const std::size_t* piv,
                                        std::size_t n, std::size_t w,
                                        double* bmat, std::size_t nc) {
  switch (w) {
    case 1: multi_rhs_impl<1>(a, piv, n, w, bmat, nc); break;
    case 2: multi_rhs_impl<2>(a, piv, n, w, bmat, nc); break;
    case 3: multi_rhs_impl<3>(a, piv, n, w, bmat, nc); break;
    case 4: multi_rhs_impl<4>(a, piv, n, w, bmat, nc); break;
    case 5: multi_rhs_impl<5>(a, piv, n, w, bmat, nc); break;
    case 6: multi_rhs_impl<6>(a, piv, n, w, bmat, nc); break;
    case 7: multi_rhs_impl<7>(a, piv, n, w, bmat, nc); break;
    case 8: multi_rhs_impl<8>(a, piv, n, w, bmat, nc); break;
    default: multi_rhs_impl<0>(a, piv, n, w, bmat, nc); break;
  }
}

template <std::size_t W>
[[gnu::always_inline]] inline void solve_lanes_impl(const double* a,
                                                    const std::size_t* piv,
                                                    std::size_t n,
                                                    std::size_t w_rt, double* xd) {
  const std::size_t w = W != 0 ? W : w_rt;
  // Per-lane row permutation (pivot choices differ across lanes).
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t b = 0; b < w; ++b) {
      const std::size_t p = piv[k * w + b];
      if (p != k) std::swap(xd[k * w + b], xd[p * w + b]);
    }
  }
  // Forward then backward substitution, all lanes in lockstep; per lane
  // this is LuFactorization::solve_in_place verbatim (local accumulator,
  // no zero skips), so each lane's bits equal the scalar solve. The W
  // accumulator chains are independent, which also breaks the scalar
  // kernel's one-FLOP-per-cycle latency chain. A singular lane divides by
  // its zero pivot and produces garbage in its own lane only.
  LaneBuf<double, W> acc(w);
  for (std::size_t i = 1; i < n; ++i) {
    double* xi = xd + i * w;
    for (std::size_t b = 0; b < w; ++b) acc[b] = xi[b];
    for (std::size_t j = 0; j < i; ++j) {
      const double* lij = a + (i * n + j) * w;
      const double* xj = xd + j * w;
      for (std::size_t b = 0; b < w; ++b) acc[b] -= lij[b] * xj[b];
    }
    for (std::size_t b = 0; b < w; ++b) xi[b] = acc[b];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = xd + ii * w;
    for (std::size_t b = 0; b < w; ++b) acc[b] = xi[b];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double* uij = a + (ii * n + j) * w;
      const double* xj = xd + j * w;
      for (std::size_t b = 0; b < w; ++b) acc[b] -= uij[b] * xj[b];
    }
    const double* d = a + (ii * n + ii) * w;
    for (std::size_t b = 0; b < w; ++b) xi[b] = acc[b] / d[b];
  }
}

TAGS_BATCH_KERNEL void solve_lanes_kernel(const double* a, const std::size_t* piv,
                                          std::size_t n, std::size_t w,
                                          double* xd) {
  switch (w) {
    case 1: solve_lanes_impl<1>(a, piv, n, w, xd); break;
    case 2: solve_lanes_impl<2>(a, piv, n, w, xd); break;
    case 3: solve_lanes_impl<3>(a, piv, n, w, xd); break;
    case 4: solve_lanes_impl<4>(a, piv, n, w, xd); break;
    case 5: solve_lanes_impl<5>(a, piv, n, w, xd); break;
    case 6: solve_lanes_impl<6>(a, piv, n, w, xd); break;
    case 7: solve_lanes_impl<7>(a, piv, n, w, xd); break;
    case 8: solve_lanes_impl<8>(a, piv, n, w, xd); break;
    default: solve_lanes_impl<0>(a, piv, n, w, xd); break;
  }
}

template <std::size_t W>
[[gnu::always_inline]] inline void solve_transpose_lanes_impl(
    const double* a, const std::size_t* piv, std::size_t n, std::size_t w_rt,
    double* xd) {
  const std::size_t w = W != 0 ? W : w_rt;
  LaneBuf<double, W> acc(w);
  // Mirrors LuFactorization::solve_transpose per lane: U^T forward with
  // diagonal divide, unit-L^T backward, inverse permutation last.
  for (std::size_t i = 0; i < n; ++i) {
    double* xi = xd + i * w;
    for (std::size_t b = 0; b < w; ++b) acc[b] = xi[b];
    for (std::size_t j = 0; j < i; ++j) {
      const double* uji = a + (j * n + i) * w;
      const double* xj = xd + j * w;
      for (std::size_t b = 0; b < w; ++b) acc[b] -= uji[b] * xj[b];
    }
    const double* d = a + (i * n + i) * w;
    for (std::size_t b = 0; b < w; ++b) xi[b] = acc[b] / d[b];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = xd + ii * w;
    for (std::size_t b = 0; b < w; ++b) acc[b] = xi[b];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double* lji = a + (j * n + ii) * w;
      const double* xj = xd + j * w;
      for (std::size_t b = 0; b < w; ++b) acc[b] -= lji[b] * xj[b];
    }
    for (std::size_t b = 0; b < w; ++b) xi[b] = acc[b];
  }
  for (std::size_t kk = n; kk-- > 0;) {
    for (std::size_t b = 0; b < w; ++b) {
      const std::size_t p = piv[kk * w + b];
      if (p != kk) std::swap(xd[kk * w + b], xd[p * w + b]);
    }
  }
}

TAGS_BATCH_KERNEL void solve_transpose_lanes_kernel(const double* a,
                                                    const std::size_t* piv,
                                                    std::size_t n, std::size_t w,
                                                    double* xd) {
  switch (w) {
    case 1: solve_transpose_lanes_impl<1>(a, piv, n, w, xd); break;
    case 2: solve_transpose_lanes_impl<2>(a, piv, n, w, xd); break;
    case 3: solve_transpose_lanes_impl<3>(a, piv, n, w, xd); break;
    case 4: solve_transpose_lanes_impl<4>(a, piv, n, w, xd); break;
    case 5: solve_transpose_lanes_impl<5>(a, piv, n, w, xd); break;
    case 6: solve_transpose_lanes_impl<6>(a, piv, n, w, xd); break;
    case 7: solve_transpose_lanes_impl<7>(a, piv, n, w, xd); break;
    case 8: solve_transpose_lanes_impl<8>(a, piv, n, w, xd); break;
    default: solve_transpose_lanes_impl<0>(a, piv, n, w, xd); break;
  }
}

#undef TAGS_BATCH_KERNEL

}  // namespace

void CsrValueBatch::load_lane(std::size_t b, const CsrMatrix& m) {
  assert(b < width_);
  assert(m.nnz() == pattern_->nnz());
  assert(m.rows() == pattern_->rows() && m.cols() == pattern_->cols());
  const std::size_t nnz = pattern_->nnz();
  const double* src = m.row_vals(0).data();
  for (std::size_t k = 0; k < nnz; ++k) values_[k * width_ + b] = src[k];
}

void CsrValueBatch::extract_lane(std::size_t b, std::span<double> out) const {
  assert(b < width_);
  assert(out.size() == pattern_->nnz());
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = values_[k * width_ + b];
}

CsrMatrix CsrValueBatch::lane_matrix(std::size_t b) const {
  const CsrMatrix& p = *pattern_;
  const std::size_t nnz = p.nnz();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(p.rows()) + 1, 0);
  for (index_t i = 0; i < p.rows(); ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<index_t>(p.row_cols(i).size());
  }
  std::vector<index_t> col(nnz);
  if (p.rows() > 0) {
    const index_t* cols = p.row_cols(0).data();
    col.assign(cols, cols + nnz);
  }
  std::vector<double> val(nnz);
  extract_lane(b, val);
  return CsrBuilderAccess::adopt(p.rows(), p.cols(), std::move(row_ptr),
                                 std::move(col), std::move(val));
}

void CsrValueBatch::multiply(std::span<const double> x, std::span<double> y) const noexcept {
  const CsrMatrix& p = *pattern_;
  const std::size_t w = width_;
  assert(x.size() == static_cast<std::size_t>(p.cols()) * w);
  assert(y.size() == static_cast<std::size_t>(p.rows()) * w);
  const index_t n = p.rows();
  for (index_t i = 0; i < n; ++i) {
    const auto cs = p.row_cols(i);
    const std::size_t lo =
        static_cast<std::size_t>(cs.data() - p.row_cols(0).data());
    double* yi = y.data() + static_cast<std::size_t>(i) * w;
    for (std::size_t b = 0; b < w; ++b) yi[b] = 0.0;
    // Same per-lane accumulation order as CsrMatrix::multiply: entries in
    // row order, one fused multiply-add... deliberately NOT fused — plain
    // a*b then += — matching the scalar kernel's rounding exactly.
    for (std::size_t k = 0; k < cs.size(); ++k) {
      const double* vk = values_.data() + (lo + k) * w;
      const double* xk = x.data() + static_cast<std::size_t>(cs[k]) * w;
      for (std::size_t b = 0; b < w; ++b) yi[b] += vk[b] * xk[b];
    }
  }
}

void BatchLuFactorization::factor_in_place() {
  piv_.assign(m_ * w_, 0);
  singular_.assign(w_, 0);
  any_singular_ = false;
  factor_kernel(a_.data(), m_, w_, piv_.data(), singular_.data(), any_singular_);
}

void BatchLuFactorization::solve_lane(std::size_t b, std::span<double> x) const {
  assert(b < w_ && !singular_[b]);
  const std::size_t n = m_;
  assert(x.size() == n);
  const double* a = a_.data();
  const std::size_t w = w_;
  const auto lu = [&](std::size_t i, std::size_t j) { return a[(i * n + j) * w + b]; };
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = piv_[k * w + b];
    if (p != k) std::swap(x[k], x[p]);
  }
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
}

Vec BatchLuFactorization::solve_transpose_lane(std::size_t b,
                                               std::span<const double> rhs) const {
  assert(b < w_ && !singular_[b]);
  const std::size_t n = m_;
  assert(rhs.size() == n);
  const double* a = a_.data();
  const std::size_t w = w_;
  const auto lu = [&](std::size_t i, std::size_t j) { return a[(i * n + j) * w + b]; };
  Vec x(rhs.begin(), rhs.end());
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(j, i) * x[j];
    x[i] = acc / lu(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(j, ii) * x[j];
    x[ii] = acc;
  }
  for (std::size_t kk = n; kk-- > 0;) {
    const std::size_t p = piv_[kk * w + b];
    if (p != kk) std::swap(x[kk], x[p]);
  }
  return x;
}

void BatchLuFactorization::solve_in_place_multi_batch(std::span<double> bm,
                                                      std::size_t nc) const {
  assert(bm.size() == m_ * nc * w_);
  if (nc == 0 || m_ == 0) return;
  multi_rhs_kernel(a_.data(), piv_.data(), m_, w_, bm.data(), nc);
}

void BatchLuFactorization::solve_all_lanes(std::span<double> x) const {
  assert(x.size() == m_ * w_);
  solve_lanes_kernel(a_.data(), piv_.data(), m_, w_, x.data());
}

void BatchLuFactorization::solve_transpose_all_lanes(std::span<double> x) const {
  assert(x.size() == m_ * w_);
  solve_transpose_lanes_kernel(a_.data(), piv_.data(), m_, w_, x.data());
}

LuFactorization BatchLuFactorization::extract_lane(std::size_t b) const {
  assert(b < w_);
  LuFactorization f;
  DenseMatrix lu(m_, m_);
  for (std::size_t i = 0; i < m_; ++i)
    for (std::size_t j = 0; j < m_; ++j) lu(i, j) = a_[(i * m_ + j) * w_ + b];
  f.lu_ = std::move(lu);
  f.piv_.resize(m_);
  for (std::size_t k = 0; k < m_; ++k) f.piv_[k] = piv_[k * w_ + b];
  f.singular_ = singular_[b] != 0;
  return f;
}

}  // namespace tags::linalg
