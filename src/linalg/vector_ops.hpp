// Basic dense vector kernels used throughout the library.
//
// All routines operate on std::span so they work with std::vector<double>,
// sub-ranges, and externally owned buffers alike. None of them allocate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tags::linalg {

/// Dense vector alias used across the library.
using Vec = std::vector<double>;

/// Dot product <x, y>. Requires x.size() == y.size().
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// y += a * x. Requires x.size() == y.size().
void axpy(double a, std::span<const double> x, std::span<double> y) noexcept;

/// x *= a.
void scale(double a, std::span<double> x) noexcept;

/// Euclidean norm ||x||_2.
[[nodiscard]] double nrm2(std::span<const double> x) noexcept;

/// Max norm ||x||_inf.
[[nodiscard]] double nrm_inf(std::span<const double> x) noexcept;

/// 1-norm ||x||_1 (sum of absolute values).
[[nodiscard]] double nrm1(std::span<const double> x) noexcept;

/// Plain sum of entries (no absolute values) — used to normalise
/// probability vectors.
[[nodiscard]] double sum(std::span<const double> x) noexcept;

/// Neumaier-compensated sum: exact to ~1 ulp of the result even when the
/// entries span many orders of magnitude (Poisson weight tails, stationary
/// vectors of stiff chains). ~2x the cost of sum(); used on certification
/// and measure paths, not in solver inner loops.
[[nodiscard]] double sum_compensated(std::span<const double> x) noexcept;

/// Compensated dot product <x, y> (Neumaier on the product terms).
[[nodiscard]] double dot_compensated(std::span<const double> x,
                                     std::span<const double> y) noexcept;

/// Overwrite x with zeros.
void set_zero(std::span<double> x) noexcept;

/// x = y (sizes must match).
void copy(std::span<const double> src, std::span<double> dst) noexcept;

/// Normalise x so its entries sum to one (compensated sum, so mass is not
/// lost when entries span many magnitudes). Returns the pre-normalisation
/// sum. If the sum is zero or non-finite the vector is left untouched and
/// the offending sum is returned — callers treating the output as a
/// distribution must check, or certify the result downstream.
double normalize_l1(std::span<double> x) noexcept;

/// ||x - y||_inf, the max absolute componentwise difference.
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y) noexcept;

}  // namespace tags::linalg
