// Basic dense vector kernels used throughout the library.
//
// All routines operate on std::span so they work with std::vector<double>,
// sub-ranges, and externally owned buffers alike. None of them allocate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tags::linalg {

/// Dense vector alias used across the library.
using Vec = std::vector<double>;

/// Dot product <x, y>. Requires x.size() == y.size().
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// y += a * x. Requires x.size() == y.size().
void axpy(double a, std::span<const double> x, std::span<double> y) noexcept;

/// x *= a.
void scale(double a, std::span<double> x) noexcept;

/// Euclidean norm ||x||_2.
[[nodiscard]] double nrm2(std::span<const double> x) noexcept;

/// Max norm ||x||_inf.
[[nodiscard]] double nrm_inf(std::span<const double> x) noexcept;

/// 1-norm ||x||_1 (sum of absolute values).
[[nodiscard]] double nrm1(std::span<const double> x) noexcept;

/// Plain sum of entries (no absolute values) — used to normalise
/// probability vectors.
[[nodiscard]] double sum(std::span<const double> x) noexcept;

/// Overwrite x with zeros.
void set_zero(std::span<double> x) noexcept;

/// x = y (sizes must match).
void copy(std::span<const double> src, std::span<double> dst) noexcept;

/// Normalise x so its entries sum to one. Returns the pre-normalisation sum.
/// If the sum is zero the vector is left untouched and 0 is returned.
double normalize_l1(std::span<double> x) noexcept;

/// ||x - y||_inf, the max absolute componentwise difference.
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y) noexcept;

}  // namespace tags::linalg
