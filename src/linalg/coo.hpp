// Coordinate-format sparse assembly buffer. Models are built by appending
// (row, col, value) triplets; duplicates are summed when converting to CSR.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace tags::linalg {

using index_t = std::int64_t;

struct Triplet {
  index_t row;
  index_t col;
  double value;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Triplet>& entries() const noexcept { return entries_; }

  /// Append a triplet; grows the logical dimensions if needed.
  void add(index_t row, index_t col, double value);

  /// Reserve triplet storage.
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Fix the logical dimensions (must not shrink below seen indices).
  void resize(index_t rows, index_t cols);

  void clear() noexcept { entries_.clear(); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace tags::linalg
