// Shared epilogue for the iterative solvers: classify the outcome
// (relative residual, divergence vs stagnation) and feed the observability
// layer. Internal to src/linalg.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "linalg/solver.hpp"
#include "obs/obs.hpp"

namespace tags::linalg::detail {

/// `initial_residual` is ||b - A x0||_inf for the entering guess; pass NaN
/// when unknown (divergence then only triggers on a non-finite residual).
inline void finalize_solve(SolveResult& res, const char* method, index_t n,
                           double b_norm_inf, double initial_residual,
                           std::uint64_t start_ns, const std::string& note = {}) {
  res.final_relative_residual =
      b_norm_inf > 0.0 ? res.residual / b_norm_inf : res.residual;
  res.diverged =
      !res.converged &&
      (!std::isfinite(res.residual) ||
       (std::isfinite(initial_residual) && res.residual > 10.0 * initial_residual &&
        res.residual > b_norm_inf));
  if (obs::metrics_on()) {
    const std::string prefix = "linalg." + std::string(method);
    obs::count((prefix + ".solves").c_str());
    obs::count((prefix + ".iterations").c_str(),
               static_cast<std::uint64_t>(res.iterations < 0 ? 0 : res.iterations));
    obs::SolveRecord rec;
    rec.context = "linear";
    rec.method = method;
    rec.n = n;
    rec.iterations = res.iterations;
    rec.residual = res.residual;
    rec.relative_residual = res.final_relative_residual;
    rec.converged = res.converged;
    rec.diverged = res.diverged;
    rec.wall_ms = static_cast<double>(obs::now_ns() - start_ns) / 1e6;
    rec.note = note;
    obs::record_solve(std::move(rec));
  }
}

}  // namespace tags::linalg::detail
