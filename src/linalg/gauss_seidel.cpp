#include <cassert>
#include <cmath>

#include "linalg/solver.hpp"
#include "linalg/solver_internal.hpp"
#include "linalg/sweep_kernel.hpp"

namespace tags::linalg {

SolveResult gauss_seidel(const CsrMatrix& a, std::span<const double> b, Vec& x,
                         const SolveOptions& opts) {
  assert(a.rows() == a.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  assert(b.size() == n && x.size() == n);
  const std::uint64_t start_ns = obs::now_ns();
  obs::Span span("linalg/gauss_seidel");
  span.attr("n", static_cast<double>(n));

  const Vec diag = a.diagonal();
  const double omega = opts.omega;
  Vec scratch(n);
  const double initial_residual = a.residual_inf(x, b, scratch);
  const double b_norm = nrm_inf(b);
  SolveResult res;

  // A structural zero on the diagonal makes the sweep divide by zero and
  // fill x with inf/NaN that then propagates through every later update.
  // Bail before touching x: the caller sees an explicit divergence instead
  // of a poisoned vector.
  if (const index_t bad = detail::find_zero_diagonal(diag, 0, a.rows()); bad >= 0) {
    obs::count("numerics.gauss_seidel.zero_diagonal");
    if (obs::tracing_on()) {
      obs::TraceEvent ev;
      ev.name = "numerics.gauss_seidel_zero_diagonal";
      ev.num.emplace_back("row", static_cast<double>(bad));
      ev.num.emplace_back("n", static_cast<double>(n));
      obs::emit(std::move(ev));
    }
    res.residual = initial_residual;
    detail::finalize_solve(res, "gauss-seidel", a.rows(), b_norm, initial_residual,
                           start_ns, "zero-diagonal");
    res.diverged = true;  // after finalize_solve, which re-derives the flag
    return res;
  }

  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    const double max_update = detail::gs_sweep_range(a, b, x, diag, omega, 0, a.rows());
    // The update norm is only a proxy; confirm with the true residual, but
    // not every sweep (it costs one SpMV).
    const bool check_now = max_update <= opts.tol || (res.iterations & 31) == 31;
    if (check_now) {
      res.residual = a.residual_inf(x, b, scratch);
      obs::trace_iteration("gauss-seidel", res.iterations, res.residual);
      if (res.residual <= opts.tol) {
        res.converged = true;
        ++res.iterations;
        detail::finalize_solve(res, "gauss-seidel", a.rows(), b_norm,
                               initial_residual, start_ns);
        return res;
      }
    }
  }
  res.residual = a.residual_inf(x, b, scratch);
  res.converged = res.residual <= opts.tol;
  detail::finalize_solve(res, "gauss-seidel", a.rows(), b_norm, initial_residual,
                         start_ns);
  return res;
}

}  // namespace tags::linalg
