#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>

namespace tags::linalg {

LuFactorization lu_factor(DenseMatrix a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  LuFactorization f;
  f.piv_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest entry in column k at/below row k.
    std::size_t p = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    f.piv_[k] = p;
    if (best == 0.0) {
      f.singular_ = true;
      // Leave the zero pivot in place; remaining columns are still processed
      // so the factor stays well-formed for diagnostics.
      continue;
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
    }
    const double inv_pivot = 1.0 / a(k, k);
    // Row updates are independent of each other (and the zero-multiplier
    // skip keeps banded matrices near-linear), so they parallelise with
    // bit-identical results at any thread count.
#pragma omp parallel for schedule(static) if (n - k > 256)
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = a(i, k) * inv_pivot;
      a(i, k) = lik;
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  f.lu_ = std::move(a);
  return f;
}

Vec LuFactorization::solve(std::span<const double> b) const {
  Vec x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void LuFactorization::solve_in_place(std::span<double> x) const {
  assert(!singular_);
  const std::size_t n = dim();
  assert(x.size() == n);
  // Apply the row permutation.
  for (std::size_t k = 0; k < n; ++k) {
    if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
  }
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
}

void LuFactorization::solve_in_place_multi(DenseMatrix& b) const {
  assert(!singular_);
  const std::size_t n = dim();
  assert(b.rows() == n);
  const std::size_t k = b.cols();
  if (k == 0 || n == 0) return;
  // Apply the row permutation to whole rows.
  for (std::size_t i = 0; i < n; ++i) {
    if (piv_[i] != i) {
      const auto ri = b.row(i);
      const auto rp = b.row(piv_[i]);
      for (std::size_t c = 0; c < k; ++c) std::swap(ri[c], rp[c]);
    }
  }
  // Column chunks substitute independently; the per-entry arithmetic does
  // not depend on the chunk boundaries, so any chunk count gives the same
  // bits. 16 chunks keeps all cores busy without re-reading lu_ too often.
  const std::size_t nchunks = (k >= 32 && n * k > 32768) ? 16 : 1;
#pragma omp parallel for schedule(static) if (nchunks > 1)
  for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
    const std::size_t c0 = chunk * k / nchunks;
    const std::size_t c1 = (chunk + 1) * k / nchunks;
    if (c0 == c1) continue;
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 1; i < n; ++i) {
      const auto ri = b.row(i);
      for (std::size_t j = 0; j < i; ++j) {
        const double l = lu_(i, j);
        if (l == 0.0) continue;
        const auto rj = b.row(j);
        for (std::size_t c = c0; c < c1; ++c) ri[c] -= l * rj[c];
      }
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
      const auto ri = b.row(ii);
      for (std::size_t j = ii + 1; j < n; ++j) {
        const double u = lu_(ii, j);
        if (u == 0.0) continue;
        const auto rj = b.row(j);
        for (std::size_t c = c0; c < c1; ++c) ri[c] -= u * rj[c];
      }
      const double inv = 1.0 / lu_(ii, ii);
      for (std::size_t c = c0; c < c1; ++c) ri[c] *= inv;
    }
  }
}

Vec LuFactorization::solve_transpose(std::span<const double> b) const {
  assert(!singular_);
  const std::size_t n = dim();
  assert(b.size() == n);
  Vec x(b.begin(), b.end());
  // A = P^{-1} L U  =>  A^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^{-1} z.
  // Forward substitution with U^T (lower triangular, non-unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * x[j];
    x[i] = acc / lu_(i, i);
  }
  // Back substitution with L^T (upper triangular, unit diagonal).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * x[j];
    x[ii] = acc;
  }
  // Undo pivoting: x = P^T z means applying swaps in reverse order.
  for (std::size_t kk = n; kk-- > 0;) {
    if (piv_[kk] != kk) std::swap(x[kk], x[piv_[kk]]);
  }
  return x;
}

double LuFactorization::log_abs_det() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) acc += std::log(std::abs(lu_(i, i)));
  return acc;
}

Vec lu_solve(const DenseMatrix& a, std::span<const double> b) {
  const LuFactorization f = lu_factor(a);
  assert(!f.singular());
  return f.solve(b);
}

DenseMatrix lu_inverse(const DenseMatrix& a) {
  const std::size_t n = a.rows();
  const LuFactorization f = lu_factor(a);
  assert(!f.singular());
  DenseMatrix inv(n, n);
  Vec e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const Vec col = f.solve(e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

}  // namespace tags::linalg
