#include "linalg/ncd.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "linalg/lu.hpp"
#include "linalg/sweep_kernel.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/obs.hpp"

namespace tags::linalg {

namespace {

/// Largest exit rate (-diagonal) of the generator.
double exit_scale(const CsrMatrix& q) {
  double scale = 0.0;
  for (index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] == i) scale = std::max(scale, -vs[k]);
    }
  }
  return scale;
}

}  // namespace

void evaluate_ncd_gate(const CsrMatrix& q, NcdPartition& p, const NcdOptions& opts) {
  const index_t n = q.rows();
  double scale = 0.0;
  double worst = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    const index_t bi = p.block_of[static_cast<std::size_t>(i)];
    double inter = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] == i) {
        scale = std::max(scale, -vs[k]);
      } else if (p.block_of[static_cast<std::size_t>(cs[k])] != bi) {
        inter += vs[k];
      }
    }
    worst = std::max(worst, inter);
  }
  p.scale = scale;
  p.coupling = scale > 0.0 ? worst / scale : 0.0;

  const auto blocks = static_cast<index_t>(p.n_blocks());
  p.profitable = false;
  if (n < opts.min_states) {
    p.gate_reason = "small-chain";
  } else if (!p.decomposable || blocks < 2) {
    p.gate_reason = "one-block";
  } else if (blocks < opts.min_blocks) {
    p.gate_reason = "too-few-blocks";
  } else if (blocks > opts.max_blocks) {
    p.gate_reason = "too-many-blocks";
  } else if (static_cast<double>(p.max_block) >
             opts.max_block_fraction * static_cast<double>(n)) {
    p.gate_reason = "dominant-block";
  } else if (p.coupling > opts.max_coupling) {
    p.gate_reason = "strong-coupling";
  } else {
    p.profitable = true;
    p.gate_reason = "";
  }
}

NcdPartition detect_ncd(const CsrMatrix& q, const NcdOptions& opts) {
  assert(q.rows() == q.cols());
  obs::Span span("ncd/detect");
  const index_t n = q.rows();
  span.attr("n", static_cast<double>(n));

  NcdPartition p;
  p.block_of.assign(static_cast<std::size_t>(n), index_t{-1});
  if (n == 0) {
    p.gate_reason = "empty";
    return p;
  }

  // Strong-edge components over the symmetrised pattern, like bfs_levels:
  // an edge in either direction with rate >= epsilon * scale connects two
  // states. Seeds scan ascending, so block ids are ordered by smallest
  // member and the traversal is deterministic.
  const double thresh = opts.epsilon * exit_scale(q);
  const CsrMatrix& qt = q.transpose_cache();
  std::vector<index_t> stack;
  index_t blocks = 0;
  for (index_t seed = 0; seed < n; ++seed) {
    if (p.block_of[static_cast<std::size_t>(seed)] >= 0) continue;
    p.block_of[static_cast<std::size_t>(seed)] = blocks;
    stack.push_back(seed);
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      const auto expand = [&](const CsrMatrix& m) {
        const auto cs = m.row_cols(u);
        const auto vs = m.row_vals(u);
        for (std::size_t k = 0; k < cs.size(); ++k) {
          const index_t v = cs[k];
          if (v == u || vs[k] < thresh) continue;
          auto& tag = p.block_of[static_cast<std::size_t>(v)];
          if (tag < 0) {
            tag = blocks;
            stack.push_back(v);
          }
        }
      };
      expand(q);
      expand(qt);
    }
    ++blocks;
  }

  // Blocks contiguous in the permutation, states ascending within each —
  // a counting sort by (block, original index).
  std::vector<index_t> sizes(static_cast<std::size_t>(blocks), 0);
  for (index_t i = 0; i < n; ++i) ++sizes[static_cast<std::size_t>(p.block_of[static_cast<std::size_t>(i)])];
  p.block_ptr.assign(static_cast<std::size_t>(blocks) + 1, 0);
  for (index_t b = 0; b < blocks; ++b) {
    p.block_ptr[static_cast<std::size_t>(b) + 1] =
        p.block_ptr[static_cast<std::size_t>(b)] + sizes[static_cast<std::size_t>(b)];
    p.max_block = std::max(p.max_block, sizes[static_cast<std::size_t>(b)]);
  }
  p.perm.order.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(p.block_ptr.begin(), p.block_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::size_t>(p.block_of[static_cast<std::size_t>(i)]);
    p.perm.order[static_cast<std::size_t>(cursor[b]++)] = i;
  }
  p.decomposable = blocks >= 2;

  evaluate_ncd_gate(q, p, opts);
  obs::count("ncd.partitions_built");
  span.attr("blocks", static_cast<double>(blocks));
  span.attr("max_block", static_cast<double>(p.max_block));
  span.attr("coupling", p.coupling);
  span.attr("profitable", p.profitable ? 1.0 : 0.0);
  return p;
}

const NcdPartition& NcdPartitionCache::partition(const CsrMatrix& q, const NcdOptions& opts) {
  if (valid_ && rows_ == q.rows() && nnz_ == q.nnz() && epsilon_ == opts.epsilon) {
    // Same frozen pattern, possibly rebound values: keep the partition,
    // refresh the gate verdict.
    obs::count("ncd.cache.hits");
    evaluate_ncd_gate(q, part_, opts);
    return part_;
  }
  if (valid_) obs::count("ncd.cache.invalidated");
  part_ = detect_ncd(q, opts);
  rows_ = q.rows();
  nnz_ = q.nnz();
  epsilon_ = opts.epsilon;
  valid_ = true;
  return part_;
}

NcdSolveResult ncd_steady_state(const CsrMatrix& q, const NcdPartition& p,
                                const NcdSolveOptions& opts) {
  NcdSolveResult res;
  const index_t n = q.rows();
  const auto nu = static_cast<std::size_t>(n);
  const auto blocks = static_cast<index_t>(p.n_blocks());
  if (n == 0 || blocks < 2 || p.perm.order.size() != nu) return res;

  obs::Span span("ncd/iterate");
  span.attr("n", static_cast<double>(n));
  span.attr("blocks", static_cast<double>(blocks));

  // All iteration state lives in the permuted system (blocks contiguous);
  // pi is carried back to original order at the end. The permuted copy is
  // O(nnz) — noise next to a single sweep, and it keeps every inner loop a
  // contiguous range. The sweeps run on Q^T (inflow form), the same
  // orientation the flat iterative chain solves.
  const CsrMatrix qp = permute_symmetric(q, p.perm);
  const CsrMatrix& qtp = qp.transpose_cache();
  const Vec diag = qtp.diagonal();

  // Shared zero-diagonal bailout: an absorbing state would poison the
  // censored sweeps with a divide by zero.
  if (detail::find_zero_diagonal(diag, 0, n) >= 0) {
    obs::count("ncd.zero_diagonal_bailouts");
    return res;
  }

  // Block id per PERMUTED index — needed to bin columns during aggregation.
  std::vector<index_t> blk(nu);
  for (index_t b = 0; b < blocks; ++b) {
    for (index_t i = p.block_ptr[static_cast<std::size_t>(b)];
         i < p.block_ptr[static_cast<std::size_t>(b) + 1]; ++i) {
      blk[static_cast<std::size_t>(i)] = b;
    }
  }

  Vec x(nu, 1.0 / static_cast<double>(n));
  if (opts.initial_guess && opts.initial_guess->size() == nu) {
    Vec guess = *opts.initial_guess;
    for (double& v : guess) {
      if (!std::isfinite(v) || v < 0.0) v = 0.0;
    }
    if (normalize_l1(guess) > 0.0) permute_vector(p.perm, guess, x);
  }

  const auto nb = static_cast<std::size_t>(blocks);
  Vec w(nu);            // within-block conditional distributions
  Vec rhs(nb);          // coarse right-hand side (normalization row)
  const Vec zero(nu, 0.0);
  Vec scratch(nu);
  const int inner = std::max(1, opts.inner_sweeps);

  for (res.outer = 0; res.outer < opts.max_outer; ++res.outer) {
    // --- Aggregation: coarse coupling chain from the current iterate. ---
    {
      obs::Span agg("ncd/aggregate");
      // w = x conditioned on its block (uniform where a block lost all
      // mass — keeps the coarse matrix a proper generator).
      for (index_t b = 0; b < blocks; ++b) {
        const index_t lo = p.block_ptr[static_cast<std::size_t>(b)];
        const index_t hi = p.block_ptr[static_cast<std::size_t>(b) + 1];
        double mass = 0.0;
        for (index_t i = lo; i < hi; ++i) mass += x[static_cast<std::size_t>(i)];
        if (mass > 0.0) {
          for (index_t i = lo; i < hi; ++i) w[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)] / mass;
        } else {
          const double u = 1.0 / static_cast<double>(hi - lo);
          for (index_t i = lo; i < hi; ++i) w[static_cast<std::size_t>(i)] = u;
        }
      }
      // A[I][J] = sum_{i in I} w_i * sum_{j in J} qp_ij is a generator on
      // blocks; build A^T directly and solve xi A = 0 the way the dense
      // steady-state solver does: replace the last equation of A^T xi = 0
      // with the normalization sum(xi) = 1.
      DenseMatrix at(nb, nb);
      for (index_t i = 0; i < n; ++i) {
        const double wi = w[static_cast<std::size_t>(i)];
        const auto bi = static_cast<std::size_t>(blk[static_cast<std::size_t>(i)]);
        const auto cs = qp.row_cols(i);
        const auto vs = qp.row_vals(i);
        for (std::size_t k = 0; k < cs.size(); ++k) {
          at(static_cast<std::size_t>(blk[static_cast<std::size_t>(cs[k])]), bi) += wi * vs[k];
        }
      }
      for (std::size_t j = 0; j < nb; ++j) at(nb - 1, j) = 1.0;
      const LuFactorization lu = lu_factor(std::move(at));
      if (lu.singular()) {
        obs::count("ncd.coarse_singular");
        break;  // bail unconverged; the kAuto chain escalates
      }
      std::fill(rhs.begin(), rhs.end(), 0.0);
      rhs[nb - 1] = 1.0;
      Vec xi = lu.solve(rhs);
      for (double& v : xi) {
        if (!std::isfinite(v) || v < 0.0) v = 0.0;
      }
      if (normalize_l1(xi) <= 0.0) break;
      // Redistribute: block masses from the coarse solve, shapes from w.
      for (index_t i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] =
            xi[static_cast<std::size_t>(blk[static_cast<std::size_t>(i)])] * w[static_cast<std::size_t>(i)];
      }
    }

    // --- Disaggregation: censored Gauss-Seidel per block. Blocks sweep in
    // ascending order; boundary inflow reads the latest global x, so later
    // blocks already see this pass's corrections (block Gauss-Seidel, not
    // Jacobi). Solving Q^T x = 0 censored to the block with omega = 1 is
    // bit-for-bit the flat solver's row update. ---
    {
      obs::Span dis("ncd/disaggregate");
      for (index_t b = 0; b < blocks; ++b) {
        const index_t lo = p.block_ptr[static_cast<std::size_t>(b)];
        const index_t hi = p.block_ptr[static_cast<std::size_t>(b) + 1];
        for (int s = 0; s < inner; ++s) {
          (void)detail::gs_sweep_range(qtp, zero, x, diag, 1.0, lo, hi);
        }
        res.sweeps += inner;
      }
    }

    if (normalize_l1(x) <= 0.0) break;
    qtp.multiply(x, scratch);  // (Q^T x)_i = (x Q)_i — the true balance residual
    res.residual = nrm_inf(scratch);
    obs::trace_iteration("ncd-ad", res.outer, res.residual);
    if (res.residual <= opts.tol) {
      res.converged = true;
      ++res.outer;
      break;
    }
  }

  obs::count("ncd.sweeps", static_cast<std::uint64_t>(res.sweeps));
  res.pi.assign(nu, 0.0);
  unpermute_vector(p.perm, x, res.pi);
  span.attr("outer", static_cast<double>(res.outer));
  span.attr("residual", res.residual);
  span.attr("converged", res.converged ? 1.0 : 0.0);
  return res;
}

}  // namespace tags::linalg
