// Restarted GMRES(m) with Givens rotations and optional left
// preconditioning (Jacobi or Gauss-Seidel/D+L forward solve). Reference:
// Saad, "Iterative Methods for Sparse Linear Systems", 2nd ed., Alg. 6.9.
#include <cassert>
#include <cmath>
#include <limits>

#include "linalg/dense.hpp"
#include "linalg/solver.hpp"
#include "linalg/solver_internal.hpp"

namespace tags::linalg {

namespace {

/// Left preconditioner application z = M^{-1} r.
class LeftPrecond {
 public:
  LeftPrecond(const CsrMatrix& a, Preconditioner kind) : a_(a), kind_(kind) {
    if (kind_ == Preconditioner::kJacobi || kind_ == Preconditioner::kGaussSeidel) {
      diag_ = a.diagonal();
      for (double d : diag_) {
        if (d == 0.0) {
          kind_ = Preconditioner::kNone;  // cannot precondition safely
          break;
        }
      }
    }
  }

  [[nodiscard]] Preconditioner kind() const noexcept { return kind_; }

  void apply(std::span<const double> r, std::span<double> z) const {
    switch (kind_) {
      case Preconditioner::kNone:
        copy(r, z);
        return;
      case Preconditioner::kJacobi:
        for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] / diag_[i];
        return;
      case Preconditioner::kGaussSeidel: {
        // Forward solve (D + L) z = r, exploiting column-sorted CSR rows.
        for (index_t i = 0; i < a_.rows(); ++i) {
          const auto cs = a_.row_cols(i);
          const auto vs = a_.row_vals(i);
          const std::size_t iu = static_cast<std::size_t>(i);
          double acc = r[iu];
          for (std::size_t k = 0; k < cs.size() && cs[k] < i; ++k) {
            acc -= vs[k] * z[static_cast<std::size_t>(cs[k])];
          }
          z[iu] = acc / diag_[iu];
        }
        return;
      }
    }
  }

 private:
  const CsrMatrix& a_;
  Preconditioner kind_;
  Vec diag_;
};

}  // namespace

SolveResult gmres(const CsrMatrix& a, std::span<const double> b, Vec& x,
                  const SolveOptions& opts) {
  assert(a.rows() == a.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  assert(b.size() == n && x.size() == n);
  const std::uint64_t start_ns = obs::now_ns();
  obs::Span span("linalg/gmres");
  span.attr("n", static_cast<double>(n));
  const int m = std::max(1, opts.restart);

  const LeftPrecond precond(a, opts.precond);
  const char* precond_name = "none";
  if (precond.kind() == Preconditioner::kJacobi) precond_name = "jacobi";
  if (precond.kind() == Preconditioner::kGaussSeidel) precond_name = "gauss-seidel";
  const std::string note =
      std::string("precond=") + precond_name + ",restart=" + std::to_string(m);
  double initial_residual = std::numeric_limits<double>::quiet_NaN();
  int restarts = 0;

  // Preconditioned right-hand side M^{-1} b.
  Vec pb(n);
  precond.apply(b, pb);

  SolveResult res;
  Vec scratch(n);
  Vec r(n), w(n), aw(n);
  std::vector<Vec> v(static_cast<std::size_t>(m) + 1, Vec(n, 0.0));
  DenseMatrix h(static_cast<std::size_t>(m) + 1, static_cast<std::size_t>(m));
  Vec cs(static_cast<std::size_t>(m), 0.0), sn(static_cast<std::size_t>(m), 0.0);
  Vec g(static_cast<std::size_t>(m) + 1, 0.0);

  const auto apply_op = [&](const Vec& in, Vec& out) {
    a.multiply(in, aw);
    precond.apply(aw, out);
  };

  int total_matvecs = 0;
  while (total_matvecs < opts.max_iter) {
    // r = M^{-1}(b - A x).
    apply_op(x, r);
    ++total_matvecs;
    for (std::size_t i = 0; i < n; ++i) r[i] = pb[i] - r[i];
    const double beta = nrm2(r);
    // True (unpreconditioned) residual decides convergence.
    res.residual = a.residual_inf(x, b, scratch);
    if (std::isnan(initial_residual)) initial_residual = res.residual;
    obs::trace_iteration("gmres", total_matvecs, res.residual);
    if (restarts > 0 && obs::tracing_on()) {
      obs::TraceEvent ev;
      ev.name = "gmres.restart";
      ev.num.emplace_back("restart", static_cast<double>(restarts));
      ev.num.emplace_back("matvecs", static_cast<double>(total_matvecs));
      ev.num.emplace_back("residual", res.residual);
      obs::emit(std::move(ev));
    }
    ++restarts;
    if (res.residual <= opts.tol) {
      res.converged = true;
      res.iterations = total_matvecs;
      detail::finalize_solve(res, "gmres", a.rows(), nrm_inf(b), initial_residual,
                             start_ns, note);
      return res;
    }
    if (beta == 0.0) break;  // preconditioned residual exactly zero but true
                             // residual above tol: cannot improve further

    copy(r, v[0]);
    scale(1.0 / beta, v[0]);
    set_zero(g);
    g[0] = beta;

    int k = 0;
    for (; k < m && total_matvecs < opts.max_iter; ++k) {
      const std::size_t ku = static_cast<std::size_t>(k);
      apply_op(v[ku], w);
      ++total_matvecs;
      // Modified Gram-Schmidt.
      for (int j = 0; j <= k; ++j) {
        const std::size_t ju = static_cast<std::size_t>(j);
        h(ju, ku) = dot(w, v[ju]);
        axpy(-h(ju, ku), v[ju], w);
      }
      h(ku + 1, ku) = nrm2(w);
      const double subdiag = h(ku + 1, ku);  // pre-rotation value, for the
                                             // lucky-breakdown test below
      if (h(ku + 1, ku) > 0.0) {
        copy(w, v[ku + 1]);
        scale(1.0 / h(ku + 1, ku), v[ku + 1]);
      }
      // Apply previous Givens rotations to the new column.
      for (int j = 0; j < k; ++j) {
        const std::size_t ju = static_cast<std::size_t>(j);
        const double t = cs[ju] * h(ju, ku) + sn[ju] * h(ju + 1, ku);
        h(ju + 1, ku) = -sn[ju] * h(ju, ku) + cs[ju] * h(ju + 1, ku);
        h(ju, ku) = t;
      }
      // New rotation to annihilate h(k+1, k).
      const double denom = std::hypot(h(ku, ku), h(ku + 1, ku));
      if (denom == 0.0) {
        cs[ku] = 1.0;
        sn[ku] = 0.0;
      } else {
        cs[ku] = h(ku, ku) / denom;
        sn[ku] = h(ku + 1, ku) / denom;
      }
      h(ku, ku) = cs[ku] * h(ku, ku) + sn[ku] * h(ku + 1, ku);
      h(ku + 1, ku) = 0.0;
      const double t = cs[ku] * g[ku];
      g[ku + 1] = -sn[ku] * g[ku];
      g[ku] = t;
      if (std::abs(g[ku + 1]) <= 0.1 * opts.tol * std::max(1.0, nrm_inf(b))) {
        ++k;
        break;  // inner residual estimate small; close out the cycle
      }
      if (subdiag == 0.0) {
        // Lucky breakdown: Krylov space is invariant; solve and exit cycle.
        ++k;
        break;
      }
    }
    // Back-substitute y from the k x k triangular system, update x.
    Vec y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      const std::size_t iu = static_cast<std::size_t>(i);
      double acc = g[iu];
      for (int j = i + 1; j < k; ++j)
        acc -= h(iu, static_cast<std::size_t>(j)) * y[static_cast<std::size_t>(j)];
      y[iu] = acc / h(iu, iu);
    }
    for (int j = 0; j < k; ++j)
      axpy(y[static_cast<std::size_t>(j)], v[static_cast<std::size_t>(j)], x);
  }

  res.residual = a.residual_inf(x, b, scratch);
  res.converged = res.residual <= opts.tol;
  res.iterations = total_matvecs;
  detail::finalize_solve(res, "gmres", a.rows(), nrm_inf(b), initial_residual,
                         start_ns, note);
  return res;
}

}  // namespace tags::linalg
