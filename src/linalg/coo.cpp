#include "linalg/coo.hpp"

#include <cassert>

namespace tags::linalg {

void CooMatrix::add(index_t row, index_t col, double value) {
  assert(row >= 0 && col >= 0);
  if (row >= rows_) rows_ = row + 1;
  if (col >= cols_) cols_ = col + 1;
  entries_.push_back({row, col, value});
}

void CooMatrix::resize(index_t rows, index_t cols) {
  assert(rows >= rows_ && cols >= cols_);
  rows_ = rows;
  cols_ = cols;
}

}  // namespace tags::linalg
