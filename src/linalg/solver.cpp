#include "linalg/solver.hpp"

namespace tags::linalg {

std::string_view to_string(IterativeMethod m) noexcept {
  switch (m) {
    case IterativeMethod::kJacobi: return "jacobi";
    case IterativeMethod::kGaussSeidel: return "gauss-seidel";
    case IterativeMethod::kGmres: return "gmres";
    case IterativeMethod::kBicgstab: return "bicgstab";
  }
  return "unknown";
}

SolveResult solve_iterative(IterativeMethod method, const CsrMatrix& a,
                            std::span<const double> b, Vec& x,
                            const SolveOptions& opts) {
  switch (method) {
    case IterativeMethod::kJacobi: return jacobi(a, b, x, opts);
    case IterativeMethod::kGaussSeidel: return gauss_seidel(a, b, x, opts);
    case IterativeMethod::kGmres: return gmres(a, b, x, opts);
    case IterativeMethod::kBicgstab: return bicgstab(a, b, x, opts);
  }
  return {};
}

}  // namespace tags::linalg
