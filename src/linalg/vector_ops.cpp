#include "linalg/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace tags::linalg {

namespace {

// Vectors shorter than this run the plain serial loops: below it the OpenMP
// fork/join overhead dwarfs the arithmetic. Above it, reductions switch to a
// fixed partition of kBlocks sub-ranges whose boundaries depend only on the
// vector length — each block is summed serially and the per-block partials
// are combined in block order, so the floating-point evaluation order (and
// therefore the result, bit for bit) is independent of the thread count.
constexpr std::size_t kParCutoff = 8192;
constexpr std::size_t kBlocks = 64;

struct BlockRange {
  std::size_t lo, hi;
};

inline BlockRange block_range(std::size_t n, std::size_t b) noexcept {
  // ceil-partition: the first (n % kBlocks) blocks get one extra element.
  const std::size_t base = n / kBlocks;
  const std::size_t extra = n % kBlocks;
  const std::size_t lo = b * base + (b < extra ? b : extra);
  return {lo, lo + base + (b < extra ? 1 : 0)};
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n <= kParCutoff) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
    return acc;
  }
  double partial[kBlocks];
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto [lo, hi] = block_range(n, b);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += x[i] * y[i];
    partial[b] = acc;
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) acc += partial[b];
  return acc;
}

void axpy(double a, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > kParCutoff)
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale(double a, std::span<double> x) noexcept {
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > kParCutoff)
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

double nrm2(std::span<const double> x) noexcept {
  // Two-pass scaled norm to avoid overflow on pathological inputs.
  const double maxabs = nrm_inf(x);
  if (maxabs == 0.0) return 0.0;
  const std::size_t n = x.size();
  if (n <= kParCutoff) {
    double acc = 0.0;
    for (const double v : x) {
      const double s = v / maxabs;
      acc += s * s;
    }
    return maxabs * std::sqrt(acc);
  }
  double partial[kBlocks];
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto [lo, hi] = block_range(n, b);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const double s = x[i] / maxabs;
      acc += s * s;
    }
    partial[b] = acc;
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) acc += partial[b];
  return maxabs * std::sqrt(acc);
}

double nrm_inf(std::span<const double> x) noexcept {
  // NaN entries must poison the norm: std::max would silently drop them
  // (NaN comparisons are false), reporting a zero "residual" for a vector
  // of NaNs — the exact failure certification exists to catch.
  const std::size_t n = x.size();
  if (n <= kParCutoff) {
    double m = 0.0;
    for (const double v : x) {
      const double a = std::abs(v);
      if (a > m || std::isnan(a)) m = a;
    }
    return m;
  }
  double partial[kBlocks];
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto [lo, hi] = block_range(n, b);
    double m = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const double a = std::abs(x[i]);
      if (a > m || std::isnan(a)) m = a;
    }
    partial[b] = m;
  }
  double m = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    if (partial[b] > m || std::isnan(partial[b])) m = partial[b];
  }
  return m;
}

double nrm1(std::span<const double> x) noexcept {
  const std::size_t n = x.size();
  if (n <= kParCutoff) {
    double acc = 0.0;
    for (const double v : x) acc += std::abs(v);
    return acc;
  }
  double partial[kBlocks];
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto [lo, hi] = block_range(n, b);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += std::abs(x[i]);
    partial[b] = acc;
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) acc += partial[b];
  return acc;
}

double sum(std::span<const double> x) noexcept {
  const std::size_t n = x.size();
  if (n <= kParCutoff) {
    double acc = 0.0;
    for (const double v : x) acc += v;
    return acc;
  }
  double partial[kBlocks];
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto [lo, hi] = block_range(n, b);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += x[i];
    partial[b] = acc;
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < kBlocks; ++b) acc += partial[b];
  return acc;
}

double sum_compensated(std::span<const double> x) noexcept {
  // Neumaier's variant of Kahan summation: the correction also covers the
  // case where the incoming term is larger than the running sum. Stays
  // serial — the compensation chain is order-dependent by design.
  double acc = 0.0;
  double comp = 0.0;
  for (double v : x) {
    const double t = acc + v;
    if (std::abs(acc) >= std::abs(v)) {
      comp += (acc - t) + v;
    } else {
      comp += (v - t) + acc;
    }
    acc = t;
  }
  return acc + comp;
}

double dot_compensated(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  double comp = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i] * y[i];
    const double t = acc + v;
    if (std::abs(acc) >= std::abs(v)) {
      comp += (acc - t) + v;
    } else {
      comp += (v - t) + acc;
    }
    acc = t;
  }
  return acc + comp;
}

void set_zero(std::span<double> x) noexcept {
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > kParCutoff)
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
}

void copy(std::span<const double> src, std::span<double> dst) noexcept {
  assert(src.size() == dst.size());
  const std::size_t n = src.size();
#pragma omp parallel for schedule(static) if (n > kParCutoff)
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

double normalize_l1(std::span<double> x) noexcept {
  const double s = sum_compensated(x);
  if (s != 0.0 && std::isfinite(s)) scale(1.0 / s, x);
  return s;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

}  // namespace tags::linalg
