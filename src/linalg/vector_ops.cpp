#include "linalg/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace tags::linalg {

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double a, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(double a, std::span<double> x) noexcept {
  for (double& v : x) v *= a;
}

double nrm2(std::span<const double> x) noexcept {
  // Two-pass scaled norm to avoid overflow on pathological inputs.
  double maxabs = nrm_inf(x);
  if (maxabs == 0.0) return 0.0;
  double acc = 0.0;
  for (double v : x) {
    const double s = v / maxabs;
    acc += s * s;
  }
  return maxabs * std::sqrt(acc);
}

double nrm_inf(std::span<const double> x) noexcept {
  // NaN entries must poison the norm: std::max would silently drop them
  // (NaN comparisons are false), reporting a zero "residual" for a vector
  // of NaNs — the exact failure certification exists to catch.
  double m = 0.0;
  for (double v : x) {
    const double a = std::abs(v);
    if (a > m || std::isnan(a)) m = a;
  }
  return m;
}

double nrm1(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double sum(std::span<const double> x) noexcept {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double sum_compensated(std::span<const double> x) noexcept {
  // Neumaier's variant of Kahan summation: the correction also covers the
  // case where the incoming term is larger than the running sum.
  double acc = 0.0;
  double comp = 0.0;
  for (double v : x) {
    const double t = acc + v;
    if (std::abs(acc) >= std::abs(v)) {
      comp += (acc - t) + v;
    } else {
      comp += (v - t) + acc;
    }
    acc = t;
  }
  return acc + comp;
}

double dot_compensated(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double acc = 0.0;
  double comp = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i] * y[i];
    const double t = acc + v;
    if (std::abs(acc) >= std::abs(v)) {
      comp += (acc - t) + v;
    } else {
      comp += (v - t) + acc;
    }
    acc = t;
  }
  return acc + comp;
}

void set_zero(std::span<double> x) noexcept {
  for (double& v : x) v = 0.0;
}

void copy(std::span<const double> src, std::span<double> dst) noexcept {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

double normalize_l1(std::span<double> x) noexcept {
  const double s = sum_compensated(x);
  if (s != 0.0 && std::isfinite(s)) scale(1.0 / s, x);
  return s;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

}  // namespace tags::linalg
