// Compressed sparse row matrix: the workhorse format for CTMC generators.
// Rows are column-sorted with duplicates summed, which the relaxation
// solvers (Jacobi/Gauss-Seidel) rely on for fast diagonal lookup.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;
  // The cached transpose (see transpose_cache below) is per-instance
  // scratch, not value state: copies start cold, moves steal it.
  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  CsrMatrix(CsrMatrix&& other) noexcept;
  CsrMatrix& operator=(CsrMatrix&& other) noexcept;
  ~CsrMatrix();

  /// Build from a COO buffer: sorts each row by column and sums duplicates.
  /// Entries that sum to exactly zero are kept (structural zeros are cheap
  /// and dropping them would complicate generator diagonals).
  [[nodiscard]] static CsrMatrix from_coo(const CooMatrix& coo);

  /// Build from a dense matrix, dropping exact zeros.
  [[nodiscard]] static CsrMatrix from_dense(const DenseMatrix& dense);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return val_.size(); }

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const noexcept;

  /// y = A^T x, through the cached transpose: a row-parallel gather instead
  /// of the serial scatter this used to be.
  void multiply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Explicit transpose (linear time). Fresh copy; solver loops should use
  /// transpose_cache() instead.
  [[nodiscard]] CsrMatrix transposed() const;

  /// The transpose of this matrix, built on first use and cached. Rate
  /// rebinding through CsrBuilderAccess::values invalidates only the cached
  /// *values* (the sparsity pattern is frozen), so a refresh is a single
  /// permuted gather, not a rebuild. Concurrent readers may race to build
  /// the cache (one wins, the others discard); refreshing after a rebind
  /// requires the same external synchronisation the rebind itself does.
  /// The reference stays valid for the lifetime of this matrix.
  [[nodiscard]] const CsrMatrix& transpose_cache() const;

  /// Vector of diagonal entries (zero where absent).
  [[nodiscard]] Vec diagonal() const;

  /// Row i as parallel spans of column indices and values.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const noexcept {
    return {col_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                     row_ptr_[static_cast<std::size_t>(i)])};
  }
  [[nodiscard]] std::span<const double> row_vals(index_t i) const noexcept {
    return {val_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                     row_ptr_[static_cast<std::size_t>(i)])};
  }

  /// Entry lookup by binary search within the row; zero if absent.
  [[nodiscard]] double at(index_t i, index_t j) const noexcept;

  /// Densify (testing/small matrices only).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Residual max-norm ||b - A x||_inf, allocation-free given scratch.
  [[nodiscard]] double residual_inf(std::span<const double> x,
                                    std::span<const double> b,
                                    std::span<double> scratch) const noexcept;

 private:
  struct TransposeCache;  // defined in csr.cpp

  /// Mark the cached transpose's values stale (pattern is unchanged). Called
  /// by CsrBuilderAccess when handing out the mutable value array.
  void invalidate_transpose_cache() const noexcept;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;  // size rows_+1
  std::vector<index_t> col_;
  std::vector<double> val_;
  mutable std::atomic<TransposeCache*> tcache_{nullptr};

  friend class CsrBuilderAccess;
};

}  // namespace tags::linalg
