// Compressed sparse row matrix: the workhorse format for CTMC generators.
// Rows are column-sorted with duplicates summed, which the relaxation
// solvers (Jacobi/Gauss-Seidel) rely on for fast diagonal lookup.
#pragma once

#include <span>
#include <vector>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a COO buffer: sorts each row by column and sums duplicates.
  /// Entries that sum to exactly zero are kept (structural zeros are cheap
  /// and dropping them would complicate generator diagonals).
  [[nodiscard]] static CsrMatrix from_coo(const CooMatrix& coo);

  /// Build from a dense matrix, dropping exact zeros.
  [[nodiscard]] static CsrMatrix from_dense(const DenseMatrix& dense);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return val_.size(); }

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const noexcept;

  /// y = A^T x (serial scatter).
  void multiply_transpose(std::span<const double> x, std::span<double> y) const noexcept;

  /// Explicit transpose (linear time).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Vector of diagonal entries (zero where absent).
  [[nodiscard]] Vec diagonal() const;

  /// Row i as parallel spans of column indices and values.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const noexcept {
    return {col_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                     row_ptr_[static_cast<std::size_t>(i)])};
  }
  [[nodiscard]] std::span<const double> row_vals(index_t i) const noexcept {
    return {val_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                                     row_ptr_[static_cast<std::size_t>(i)])};
  }

  /// Entry lookup by binary search within the row; zero if absent.
  [[nodiscard]] double at(index_t i, index_t j) const noexcept;

  /// Densify (testing/small matrices only).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Residual max-norm ||b - A x||_inf, allocation-free given scratch.
  [[nodiscard]] double residual_inf(std::span<const double> x,
                                    std::span<const double> b,
                                    std::span<double> scratch) const noexcept;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;  // size rows_+1
  std::vector<index_t> col_;
  std::vector<double> val_;

  friend class CsrBuilderAccess;
};

}  // namespace tags::linalg
