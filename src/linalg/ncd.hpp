// Near-complete-decomposability (NCD) detection and the iterative
// aggregation-disaggregation (IAD) steady-state solver.
//
// A CTMC is nearly completely decomposable when its states cluster into
// blocks whose internal transition rates dwarf the rates crossing between
// blocks (Courtois). On such chains the classic KMS iteration — censored
// per-block Gauss-Seidel sweeps feeding a dense solve of the block-count-
// sized coupling chain — contracts the error by roughly the coupling ratio
// per outer pass, orders of magnitude faster than sweeping the flat chain.
//
// Detection runs on the frozen CSR pattern: strongly-coupled components are
// the connected components of the symmetrised graph restricted to edges
// with rate >= epsilon * scale (scale = largest exit rate), the same
// undirected traversal bfs_levels uses. The partition is cached rebind-aware
// exactly like CsrMatrix's transpose cache: a value rebind on the frozen
// pattern reuses the partition and merely re-evaluates the profitability
// gate against the fresh rates.
//
// The ctmc layer registers this as SteadyStateMethod::kNcdAd behind the
// gate; everything here is plain linear algebra on a generator Q.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/reorder.hpp"

namespace tags::linalg {

/// Detection and profitability knobs. Thresholds are relative to the
/// chain's largest exit rate, so the gate is invariant under uniform
/// time rescaling.
struct NcdOptions {
  /// An edge is "strong" when its rate is >= epsilon * max exit rate;
  /// blocks are the connected components of the strong-edge graph.
  double epsilon = 0.05;
  /// Gate: largest per-state inter-block outflow divided by the max exit
  /// rate. Above this the chain is not meaningfully decomposable and the
  /// aggregation step stops paying for itself.
  double max_coupling = 0.12;
  /// Gate: below this many states the dense/iterative chain is already
  /// fast; the ctmc layer skips detection entirely (true zero overhead).
  index_t min_states = 1201;
  /// Gate: fewer blocks than this and the coarse solve corrects too little
  /// of the error to beat plain Gauss-Seidel.
  index_t min_blocks = 4;
  /// Gate: the coarse chain is solved by dense LU, cubic in block count.
  index_t max_blocks = 512;
  /// Gate: one block holding more than this fraction of all states means
  /// the sweeps are effectively flat Gauss-Seidel with extra bookkeeping.
  double max_block_fraction = 0.5;
};

/// A block partition of the chain plus the gate verdict for the rates it
/// was last evaluated against.
struct NcdPartition {
  /// New-to-old map placing blocks contiguously, ordered by their smallest
  /// original state, states ascending within each block (deterministic).
  Permutation perm;
  /// Block I occupies permuted rows [block_ptr[I], block_ptr[I+1]).
  std::vector<index_t> block_ptr;
  /// Block id per ORIGINAL state index.
  std::vector<index_t> block_of;
  index_t max_block = 0;
  /// Largest exit rate — the scale the thresholds are relative to.
  double scale = 0.0;
  /// max over states of (inter-block outflow / scale) — the NCD coupling
  /// estimate deciding profitability.
  double coupling = 0.0;
  /// At least two blocks under the epsilon threshold.
  bool decomposable = false;
  /// Decomposable AND every gate bound holds for the current rates.
  bool profitable = false;
  /// Why not profitable; "" when profitable. Static strings only.
  const char* gate_reason = "";

  [[nodiscard]] std::size_t n_blocks() const noexcept {
    return block_ptr.empty() ? 0 : block_ptr.size() - 1;
  }
};

/// Partition q's states into strongly-coupled components and evaluate the
/// profitability gate. Deterministic; O(n + nnz).
[[nodiscard]] NcdPartition detect_ncd(const CsrMatrix& q, const NcdOptions& opts = {});

/// Re-evaluate scale, coupling, profitable and gate_reason against q's
/// CURRENT values, keeping the partition itself. This is the rebind path:
/// the strong/weak split is a property of the operating point, but a sweep
/// moving one rate slightly rarely changes the component structure, and a
/// stale partition only costs convergence speed — never correctness, since
/// every solve is certified against the true residual downstream.
void evaluate_ncd_gate(const CsrMatrix& q, NcdPartition& p, const NcdOptions& opts);

/// Rebind-aware partition cache, modelled on CsrMatrix's transpose cache:
/// keyed on (rows, nnz, epsilon). A hit reuses the partition and re-runs
/// only the O(nnz) gate evaluation; any key change re-detects. One cache
/// per sweep shard / warm-start slot — not thread-safe, by design, like
/// the warm-start state it travels with.
class NcdPartitionCache {
 public:
  const NcdPartition& partition(const CsrMatrix& q, const NcdOptions& opts);

 private:
  NcdPartition part_;
  index_t rows_ = -1;
  std::size_t nnz_ = 0;
  double epsilon_ = 0.0;
  bool valid_ = false;
};

struct NcdSolveOptions {
  /// Absolute target on ||pi Q||_inf — callers pre-scale by their own
  /// max-exit convention.
  double tol = 1e-11;
  /// Outer aggregation/disaggregation passes before giving up.
  int max_outer = 120;
  /// Censored Gauss-Seidel sweeps per block per outer pass.
  int inner_sweeps = 2;
  /// Warm start in ORIGINAL state order; ignored unless it has q.rows()
  /// entries with positive mass. Carries the previous operating point's
  /// block solutions and coarse vector implicitly.
  std::optional<Vec> initial_guess;
};

struct NcdSolveResult {
  /// Stationary distribution in ORIGINAL state order; empty on bailout.
  Vec pi;
  int outer = 0;
  /// Total censored block sweeps performed.
  int sweeps = 0;
  double residual = std::numeric_limits<double>::infinity();
  bool converged = false;
};

/// KMS iterative aggregation-disaggregation for pi Q = 0, sum(pi) = 1.
/// Requires a partition of q with >= 2 blocks (profitability is the
/// caller's policy; correctness only needs the block structure). Bails out
/// unconverged — never poisons — on zero diagonals, singular coarse
/// matrices, or vanishing mass.
[[nodiscard]] NcdSolveResult ncd_steady_state(const CsrMatrix& q, const NcdPartition& p,
                                              const NcdSolveOptions& opts = {});

}  // namespace tags::linalg
