// The Gauss-Seidel relaxation sweep as a reusable row-range kernel, shared
// by the full-matrix solver (linalg/gauss_seidel.cpp) and the NCD
// disaggregation phase (linalg/ncd.cpp). Restricting the sweep to rows
// [lo, hi) while reading the whole of x is exactly the censored block
// update the aggregation-disaggregation solver needs: entries outside the
// range act as fixed boundary inflow. Internal to src/linalg.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "linalg/csr.hpp"

namespace tags::linalg::detail {

/// First row in [lo, hi) whose diagonal entry is exactly zero, or -1 when
/// none. The shared zero-diagonal bailout: a sweep through such a row
/// divides by zero and the resulting inf/NaN poisons every later update,
/// so callers must check before the first sweep and fail explicitly.
[[nodiscard]] inline index_t find_zero_diagonal(std::span<const double> diag,
                                                index_t lo, index_t hi) noexcept {
  for (index_t i = lo; i < hi; ++i) {
    if (diag[static_cast<std::size_t>(i)] == 0.0) return i;
  }
  return -1;
}

/// One Gauss-Seidel sweep over rows [lo, hi) of A (CSR) for the system
/// A x = b with relaxation `omega`, updating x in place. Entries of x
/// outside [lo, hi) are read but never written — updated rows see each
/// other's new values (classic GS), boundary rows keep their current
/// values. Returns the largest absolute update, the solver's cheap
/// stagnation proxy. The arithmetic (accumulation order, relaxation blend)
/// is the historical gauss_seidel loop verbatim, so the full-matrix solver
/// is bit-identical through this kernel.
inline double gs_sweep_range(const CsrMatrix& a, std::span<const double> b,
                             std::span<double> x, std::span<const double> diag,
                             double omega, index_t lo, index_t hi) noexcept {
  double max_update = 0.0;
  for (index_t i = lo; i < hi; ++i) {
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    const std::size_t ii = static_cast<std::size_t>(i);
    double off = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      if (cs[k] != i) off += vs[k] * x[static_cast<std::size_t>(cs[k])];
    }
    const double gs = (b[ii] - off) / diag[ii];
    const double next = (1.0 - omega) * x[ii] + omega * gs;
    max_update = std::max(max_update, std::abs(next - x[ii]));
    x[ii] = next;
  }
  return max_update;
}

}  // namespace tags::linalg::detail
