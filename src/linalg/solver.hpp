// Common types for the iterative solvers plus a dispatching front-end.
//
// All solvers solve A x = b for general (square, nonsingular) A in CSR form,
// starting from the caller-supplied initial guess in x. Convergence is
// declared on the max-norm residual ||b - A x||_inf <= tol.
#pragma once

#include <span>
#include <string_view>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::linalg {

enum class IterativeMethod {
  kJacobi,
  kGaussSeidel,  // forward sweeps; omega != 1 gives SOR
  kGmres,        // restarted, optional Jacobi (diagonal) preconditioning
  kBicgstab,
};

[[nodiscard]] std::string_view to_string(IterativeMethod m) noexcept;

/// Left preconditioner for the Krylov methods.
enum class Preconditioner {
  kNone,
  kJacobi,       ///< scale rows by 1/diag
  kGaussSeidel,  ///< forward solve with D+L (needs nonzero diagonal)
};

struct SolveOptions {
  double tol = 1e-12;       ///< max-norm residual target
  int max_iter = 50000;     ///< sweeps (relaxation) or total inner steps (Krylov)
  double omega = 1.0;       ///< SOR relaxation factor (Gauss-Seidel only)
  int restart = 60;         ///< GMRES restart length
  Preconditioner precond = Preconditioner::kJacobi;  ///< Krylov methods only
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;       ///< sweeps or matrix-vector products performed
  double residual = 0.0;    ///< final ||b - A x||_inf
  /// residual / ||b||_inf (equals `residual` when b = 0).
  double final_relative_residual = 0.0;
  /// True when the residual blew up (non-finite, or grew well past the
  /// initial residual), as opposed to mere stagnation short of tol.
  bool diverged = false;
};

[[nodiscard]] SolveResult jacobi(const CsrMatrix& a, std::span<const double> b,
                                 Vec& x, const SolveOptions& opts);

[[nodiscard]] SolveResult gauss_seidel(const CsrMatrix& a, std::span<const double> b,
                                       Vec& x, const SolveOptions& opts);

[[nodiscard]] SolveResult gmres(const CsrMatrix& a, std::span<const double> b,
                                Vec& x, const SolveOptions& opts);

[[nodiscard]] SolveResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                                   Vec& x, const SolveOptions& opts);

/// Dispatch on method enum.
[[nodiscard]] SolveResult solve_iterative(IterativeMethod method, const CsrMatrix& a,
                                          std::span<const double> b, Vec& x,
                                          const SolveOptions& opts);

}  // namespace tags::linalg
