// Result certification: every solve that feeds a results table carries a
// Certificate stating what was actually verified — entries finite, true
// residual recomputed and bounded, probability mass within tolerance, and
// (on the dense-LU path) a Hager-style 1-norm condition estimate. A
// certificate is evidence, not a convergence flag: the residual is
// recomputed from the matrix and the returned vector, never copied from
// the solver's own bookkeeping, so a solver that silently lost error
// control fails certification even when its internal state says converged.
//
// Certification failures are counted under "numerics.certify.*" and, when
// tracing is on, emitted as "numerics.certification_failed" events naming
// the failed check.
#pragma once

#include <span>
#include <string>

#include "linalg/csr.hpp"
#include "linalg/lu.hpp"
#include "linalg/vector_ops.hpp"

namespace tags::linalg {

struct CertifyOptions {
  /// Bound on the recomputed residual ||b - A x||_inf (caller pre-scales by
  /// the natural problem scale, e.g. the max exit rate of a generator).
  double residual_bound = 1e-8;
  /// Bound on |1 - sum(x)| for probability vectors.
  double mass_bound = 1e-9;
  /// Check probability mass at all (off for general linear systems).
  bool check_mass = true;
  /// Condition estimates above this fail certification: at ~1e14 a double
  /// solve retains no trustworthy digits. 0 disables the check.
  double condition_limit = 1e14;
};

/// What was verified about one solution vector. Produced by the certify_*
/// passes below; stamped onto SteadyStateResult / TransientResult by the
/// ctmc layer.
struct Certificate {
  bool finite = false;       ///< every entry finite (and non-negative slack for pi)
  bool residual_ok = false;  ///< recomputed residual within bound
  bool mass_ok = false;      ///< |1 - sum(x)| within bound (true when unchecked)
  bool condition_ok = true;  ///< condition estimate within limit (true when not estimated)
  double residual = 0.0;     ///< the recomputed ||b - A x||_inf
  double mass_error = 0.0;   ///< |1 - sum(x)| (compensated sum)
  /// Hager 1-norm condition estimate cond_1(A); 0 when not computed (the
  /// estimate needs a factorization, so only the dense-LU path fills it).
  double condition = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return finite && residual_ok && mass_ok && condition_ok;
  }
  /// Name of the first failed check ("" when ok) — for trace events.
  [[nodiscard]] const char* failed_check() const noexcept;
};

/// Certify x as a solution of A x = b: recompute the true residual with one
/// SpMV, guard non-finite entries, and (optionally) check probability mass.
/// `condition` is a pre-computed condition estimate for A (0 when none was
/// computed) — it is recorded on the certificate and checked against
/// condition_limit. Counts numerics.certify.checks / .failures and traces
/// failures.
[[nodiscard]] Certificate certify_solution(const CsrMatrix& a, std::span<const double> x,
                                           std::span<const double> b,
                                           const CertifyOptions& opts,
                                           double condition = 0.0);

/// Certify a probability vector alone (no residual available): finiteness
/// plus mass. Used for transient distributions, where the "residual" is the
/// truncation error already bounded by Fox-Glynn.
[[nodiscard]] Certificate certify_distribution(std::span<const double> pi,
                                               const CertifyOptions& opts);

/// ||A||_1 (max absolute column sum).
[[nodiscard]] double norm1(const DenseMatrix& a) noexcept;
[[nodiscard]] double norm1(const CsrMatrix& a);

/// Hager's 1-norm estimator for ||A^{-1}||_1 (Hager 1984, as refined by
/// Higham's CONDEST): a few forward/transpose solves on the factorization,
/// never forming the inverse. Exact for diagonal matrices; a lower bound in
/// general, in practice within a small factor of the truth. Returns +inf
/// for a singular factorization.
[[nodiscard]] double inverse_norm1_estimate(const LuFactorization& f);

/// cond_1(A) ~= ||A||_1 * est(||A^{-1}||_1) given the factorization of A.
/// Counts numerics.condest.evaluations.
[[nodiscard]] double condest_1(double a_norm1, const LuFactorization& f);

}  // namespace tags::linalg
