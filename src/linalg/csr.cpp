#include "linalg/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tags::linalg {

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  CsrMatrix m;
  m.rows_ = coo.rows();
  m.cols_ = coo.cols();
  const auto& tri = coo.entries();
  const std::size_t n_rows = static_cast<std::size_t>(m.rows_);

  // Counting sort by row.
  std::vector<index_t> count(n_rows + 1, 0);
  for (const Triplet& t : tri) ++count[static_cast<std::size_t>(t.row) + 1];
  for (std::size_t i = 0; i < n_rows; ++i) count[i + 1] += count[i];

  std::vector<index_t> cols(tri.size());
  std::vector<double> vals(tri.size());
  {
    std::vector<index_t> cursor(count.begin(), count.end() - 1);
    for (const Triplet& t : tri) {
      const std::size_t pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(t.row)]++);
      cols[pos] = t.col;
      vals[pos] = t.value;
    }
  }

  // Sort within each row by column and sum duplicates, compacting in place.
  m.row_ptr_.assign(n_rows + 1, 0);
  std::size_t write = 0;
  std::vector<std::size_t> perm;
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::size_t lo = static_cast<std::size_t>(count[r]);
    const std::size_t hi = static_cast<std::size_t>(count[r + 1]);
    perm.resize(hi - lo);
    for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = lo + k;
    std::sort(perm.begin(), perm.end(),
              [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    std::size_t k = 0;
    while (k < perm.size()) {
      const index_t c = cols[perm[k]];
      double acc = 0.0;
      while (k < perm.size() && cols[perm[k]] == c) {
        acc += vals[perm[k]];
        ++k;
      }
      m.col_.push_back(c);
      m.val_.push_back(acc);
      ++write;
    }
    m.row_ptr_[r + 1] = static_cast<index_t>(write);
  }
  return m;
}

CsrMatrix CsrMatrix::from_dense(const DenseMatrix& dense) {
  CooMatrix coo(static_cast<index_t>(dense.rows()), static_cast<index_t>(dense.cols()));
  for (std::size_t i = 0; i < dense.rows(); ++i)
    for (std::size_t j = 0; j < dense.cols(); ++j)
      if (dense(i, j) != 0.0)
        coo.add(static_cast<index_t>(i), static_cast<index_t>(j), dense(i, j));
  return from_coo(coo);
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const noexcept {
  assert(static_cast<index_t>(x.size()) == cols_);
  assert(static_cast<index_t>(y.size()) == rows_);
  const index_t n = rows_;
#pragma omp parallel for schedule(static) if (n > 4096)
  for (index_t i = 0; i < n; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) acc += vs[k] * x[static_cast<std::size_t>(cs[k])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const noexcept {
  assert(static_cast<index_t>(x.size()) == rows_);
  assert(static_cast<index_t>(y.size()) == cols_);
  set_zero(y);
  for (index_t i = 0; i < rows_; ++i) {
    const double xi = x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k)
      y[static_cast<std::size_t>(cs[k])] += vs[k] * xi;
  }
}

CsrMatrix CsrMatrix::transposed() const {
  CooMatrix coo(cols_, rows_);
  coo.reserve(nnz());
  for (index_t i = 0; i < rows_; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(cs[k], i, vs[k]);
  }
  return from_coo(coo);
}

Vec CsrMatrix::diagonal() const {
  const std::size_t n = static_cast<std::size_t>(std::min(rows_, cols_));
  Vec d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(static_cast<index_t>(i), static_cast<index_t>(i));
  return d;
}

double CsrMatrix::at(index_t i, index_t j) const noexcept {
  const auto cs = row_cols(i);
  const auto it = std::lower_bound(cs.begin(), cs.end(), j);
  if (it == cs.end() || *it != j) return 0.0;
  return row_vals(i)[static_cast<std::size_t>(it - cs.begin())];
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(rows_), static_cast<std::size_t>(cols_));
  for (index_t i = 0; i < rows_; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k)
      d(static_cast<std::size_t>(i), static_cast<std::size_t>(cs[k])) = vs[k];
  }
  return d;
}

double CsrMatrix::residual_inf(std::span<const double> x, std::span<const double> b,
                               std::span<double> scratch) const noexcept {
  assert(static_cast<index_t>(scratch.size()) == rows_);
  multiply(x, scratch);
  // NaN-propagating max: a poisoned row must surface as a NaN residual,
  // not vanish under std::max's NaN-discarding comparison.
  double m = 0.0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const double a = std::abs(b[i] - scratch[i]);
    if (a > m || std::isnan(a)) m = a;
  }
  return m;
}

}  // namespace tags::linalg
