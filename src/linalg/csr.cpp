#include "linalg/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "obs/obs.hpp"

namespace tags::linalg {

/// Explicit transpose plus the gather permutation that maps each transposed
/// entry back to its source slot in the parent's value array. The parent's
/// sparsity pattern is frozen once built (rate rebinding rewrites values
/// only), so invalidation just flips `fresh` and the next reader refreshes
/// values through `src` without touching structure.
struct CsrMatrix::TransposeCache {
  CsrMatrix t;                    // the transpose, rows sorted by column
  std::vector<std::size_t> src;   // t.val_[k] == parent.val_[src[k]]
  std::mutex refresh_mu;          // serialises the value refresh
  std::atomic<bool> fresh{true};  // false after a rebind, until refreshed
};

CsrMatrix::CsrMatrix(const CsrMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      col_(other.col_),
      val_(other.val_) {}

CsrMatrix& CsrMatrix::operator=(const CsrMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_ = other.col_;
  val_ = other.val_;
  delete tcache_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

CsrMatrix::CsrMatrix(CsrMatrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      col_(std::move(other.col_)),
      val_(std::move(other.val_)),
      tcache_(other.tcache_.exchange(nullptr, std::memory_order_acq_rel)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  col_ = std::move(other.col_);
  val_ = std::move(other.val_);
  other.rows_ = 0;
  other.cols_ = 0;
  delete tcache_.exchange(other.tcache_.exchange(nullptr, std::memory_order_acq_rel),
                          std::memory_order_acq_rel);
  return *this;
}

CsrMatrix::~CsrMatrix() { delete tcache_.load(std::memory_order_acquire); }

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  CsrMatrix m;
  m.rows_ = coo.rows();
  m.cols_ = coo.cols();
  const auto& tri = coo.entries();
  const std::size_t n_rows = static_cast<std::size_t>(m.rows_);

  // Counting sort by row.
  std::vector<index_t> count(n_rows + 1, 0);
  for (const Triplet& t : tri) ++count[static_cast<std::size_t>(t.row) + 1];
  for (std::size_t i = 0; i < n_rows; ++i) count[i + 1] += count[i];

  std::vector<index_t> cols(tri.size());
  std::vector<double> vals(tri.size());
  {
    std::vector<index_t> cursor(count.begin(), count.end() - 1);
    for (const Triplet& t : tri) {
      const std::size_t pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(t.row)]++);
      cols[pos] = t.col;
      vals[pos] = t.value;
    }
  }

  // Sort within each row by column and sum duplicates, compacting in place.
  m.row_ptr_.assign(n_rows + 1, 0);
  std::size_t write = 0;
  std::vector<std::size_t> perm;
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::size_t lo = static_cast<std::size_t>(count[r]);
    const std::size_t hi = static_cast<std::size_t>(count[r + 1]);
    perm.resize(hi - lo);
    for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = lo + k;
    std::sort(perm.begin(), perm.end(),
              [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    std::size_t k = 0;
    while (k < perm.size()) {
      const index_t c = cols[perm[k]];
      double acc = 0.0;
      while (k < perm.size() && cols[perm[k]] == c) {
        acc += vals[perm[k]];
        ++k;
      }
      m.col_.push_back(c);
      m.val_.push_back(acc);
      ++write;
    }
    m.row_ptr_[r + 1] = static_cast<index_t>(write);
  }
  return m;
}

CsrMatrix CsrMatrix::from_dense(const DenseMatrix& dense) {
  CooMatrix coo(static_cast<index_t>(dense.rows()), static_cast<index_t>(dense.cols()));
  std::size_t nnz = 0;
  for (const double v : dense.data()) nnz += (v != 0.0);
  coo.reserve(nnz);
  for (std::size_t i = 0; i < dense.rows(); ++i)
    for (std::size_t j = 0; j < dense.cols(); ++j)
      if (dense(i, j) != 0.0)
        coo.add(static_cast<index_t>(i), static_cast<index_t>(j), dense(i, j));
  return from_coo(coo);
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const noexcept {
  assert(static_cast<index_t>(x.size()) == cols_);
  assert(static_cast<index_t>(y.size()) == rows_);
  const index_t n = rows_;
#pragma omp parallel for schedule(static) if (n > 4096)
  for (index_t i = 0; i < n; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) acc += vs[k] * x[static_cast<std::size_t>(cs[k])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  assert(static_cast<index_t>(x.size()) == rows_);
  assert(static_cast<index_t>(y.size()) == cols_);
  // Row-parallel gather on the cached transpose; per-row partitioning is
  // deterministic, so the result is bit-identical at any thread count.
  transpose_cache().multiply(x, y);
}

const CsrMatrix& CsrMatrix::transpose_cache() const {
  static obs::Counter hits("numerics.transpose_cache.hits");
  static obs::Counter misses("numerics.transpose_cache.misses");
  static obs::Counter refreshes("numerics.transpose_cache.refreshes");

  TransposeCache* c = tcache_.load(std::memory_order_acquire);
  if (c == nullptr) {
    // First use: build the transpose by counting sort over columns, keeping
    // the source index of every entry so later refreshes are value-only.
    obs::Span span("linalg/transpose_fill");
    span.attr("nnz", static_cast<double>(nnz()));
    auto built = std::make_unique<TransposeCache>();
    CsrMatrix& t = built->t;
    t.rows_ = cols_;
    t.cols_ = rows_;
    const std::size_t nc = static_cast<std::size_t>(cols_);
    t.row_ptr_.assign(nc + 1, 0);
    for (const index_t j : col_) ++t.row_ptr_[static_cast<std::size_t>(j) + 1];
    for (std::size_t j = 0; j < nc; ++j) t.row_ptr_[j + 1] += t.row_ptr_[j];
    t.col_.resize(nnz());
    t.val_.resize(nnz());
    built->src.resize(nnz());
    std::vector<index_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
    for (index_t i = 0; i < rows_; ++i) {
      const std::size_t lo = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
      const std::size_t hi = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]);
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(col_[k])]++);
        t.col_[pos] = i;  // ascending i within each bucket: rows come out sorted
        t.val_[pos] = val_[k];
        built->src[pos] = k;
      }
    }
    TransposeCache* expected = nullptr;
    if (tcache_.compare_exchange_strong(expected, built.get(), std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      c = built.release();
      misses.add();
    } else {
      c = expected;  // another thread installed first; ours is discarded
      hits.add();
    }
  } else {
    hits.add();
  }
  if (!c->fresh.load(std::memory_order_acquire)) {
    // Values went stale through a rate rebind; the pattern did not. Gather
    // the new values through the stored source permutation.
    const std::lock_guard<std::mutex> lock(c->refresh_mu);
    if (!c->fresh.load(std::memory_order_relaxed)) {
      const obs::Span span("linalg/transpose_refresh");
      for (std::size_t k = 0; k < c->src.size(); ++k) c->t.val_[k] = val_[c->src[k]];
      c->fresh.store(true, std::memory_order_release);
      refreshes.add();
    }
  }
  return c->t;
}

void CsrMatrix::invalidate_transpose_cache() const noexcept {
  if (TransposeCache* c = tcache_.load(std::memory_order_acquire)) {
    c->fresh.store(false, std::memory_order_release);
  }
}

CsrMatrix CsrMatrix::transposed() const {
  CooMatrix coo(cols_, rows_);
  coo.reserve(nnz());
  for (index_t i = 0; i < rows_; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) coo.add(cs[k], i, vs[k]);
  }
  return from_coo(coo);
}

Vec CsrMatrix::diagonal() const {
  const std::size_t n = static_cast<std::size_t>(std::min(rows_, cols_));
  Vec d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(static_cast<index_t>(i), static_cast<index_t>(i));
  return d;
}

double CsrMatrix::at(index_t i, index_t j) const noexcept {
  const auto cs = row_cols(i);
  const auto it = std::lower_bound(cs.begin(), cs.end(), j);
  if (it == cs.end() || *it != j) return 0.0;
  return row_vals(i)[static_cast<std::size_t>(it - cs.begin())];
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(rows_), static_cast<std::size_t>(cols_));
  for (index_t i = 0; i < rows_; ++i) {
    const auto cs = row_cols(i);
    const auto vs = row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k)
      d(static_cast<std::size_t>(i), static_cast<std::size_t>(cs[k])) = vs[k];
  }
  return d;
}

double CsrMatrix::residual_inf(std::span<const double> x, std::span<const double> b,
                               std::span<double> scratch) const noexcept {
  assert(static_cast<index_t>(scratch.size()) == rows_);
  multiply(x, scratch);
  // NaN-propagating max: a poisoned row must surface as a NaN residual,
  // not vanish under std::max's NaN-discarding comparison.
  double m = 0.0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const double a = std::abs(b[i] - scratch[i]);
    if (a > m || std::isnan(a)) m = a;
  }
  return m;
}

}  // namespace tags::linalg
