// Symmetric permutations of sparse matrices: BFS level sets and reverse
// Cuthill-McKee. Two consumers: the structured steady-state path uses the
// BFS level decomposition to expose the block-tridiagonal (QBD) shape of
// bounded-queue generators, and the iterative chain can solve the RCM
// reordering P·Q·Pᵀ for bandwidth (cache locality) and unpermute π.
//
// All orderings are deterministic: ties break on state index, never on
// traversal or thread interleaving, so permutations — and everything solved
// through them — are reproducible bit for bit.
#pragma once

#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace tags::linalg {

/// A permutation of 0..n-1 as its new-to-old map: position k of the
/// permuted system holds original index order[k].
struct Permutation {
  std::vector<index_t> order;  // new position -> original index

  [[nodiscard]] std::size_t size() const noexcept { return order.size(); }

  /// The old-to-new map: inverse()[order[k]] == k.
  [[nodiscard]] std::vector<index_t> inverse() const;

  /// True when order[k] == k for all k.
  [[nodiscard]] bool is_identity() const noexcept;

  [[nodiscard]] static Permutation identity(index_t n);
};

/// BFS level decomposition over the *symmetrised* pattern of q (an edge in
/// either direction connects two states), started from state 0. Because the
/// traversal is undirected, |level(u) - level(v)| <= 1 for every edge: the
/// permuted matrix is block tridiagonal by construction whenever the chain
/// is connected. Levels are contiguous in `perm`, states sorted ascending
/// within each level.
struct LevelDecomposition {
  Permutation perm;
  std::vector<index_t> level_ptr;  // level l occupies [level_ptr[l], level_ptr[l+1])
  std::vector<int> level_of;       // per original state; -1 if unreachable
  bool connected = false;          // every state reached from state 0

  [[nodiscard]] std::size_t levels() const noexcept {
    return level_ptr.empty() ? 0 : level_ptr.size() - 1;
  }
  /// Largest level size — the dense block dimension a QBD solve pays for.
  [[nodiscard]] index_t max_block() const noexcept;
};

[[nodiscard]] LevelDecomposition bfs_levels(const CsrMatrix& q);

/// Reverse Cuthill-McKee ordering on the symmetrised pattern: BFS from a
/// pseudo-peripheral start, neighbours visited in increasing-degree order
/// (ties by index), then reversed. Guarded: if the reordering does not
/// strictly shrink the bandwidth, the identity is returned instead — the
/// result is never worse than no reordering.
[[nodiscard]] Permutation rcm_order(const CsrMatrix& q);

/// max |i - j| over stored entries (0 for diagonal/empty matrices).
[[nodiscard]] index_t bandwidth(const CsrMatrix& a);

/// B = P A P^T under the new-to-old convention: B(i, j) = A(order[i], order[j]).
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& p);

/// y[k] = x[order[k]] — carry a vector into the permuted system.
void permute_vector(const Permutation& p, std::span<const double> x, std::span<double> y);

/// y[order[k]] = x[k] — carry a permuted-system vector (e.g. π) back.
void unpermute_vector(const Permutation& p, std::span<const double> x, std::span<double> y);

}  // namespace tags::linalg
