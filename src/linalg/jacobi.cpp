#include <cassert>
#include <cmath>

#include "linalg/solver.hpp"
#include "linalg/solver_internal.hpp"

namespace tags::linalg {

SolveResult jacobi(const CsrMatrix& a, std::span<const double> b, Vec& x,
                   const SolveOptions& opts) {
  assert(a.rows() == a.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  assert(b.size() == n && x.size() == n);
  const std::uint64_t start_ns = obs::now_ns();
  obs::Span span("linalg/jacobi");
  span.attr("n", static_cast<double>(n));

  const Vec diag = a.diagonal();
  Vec x_next(n, 0.0);
  Vec scratch(n);
  const double initial_residual = a.residual_inf(x, b, scratch);
  SolveResult res;

  for (res.iterations = 0; res.iterations < opts.max_iter; ++res.iterations) {
    double max_resid = 0.0;
    const index_t rows = a.rows();
#pragma omp parallel for schedule(static) reduction(max : max_resid) if (rows > 4096)
    for (index_t i = 0; i < rows; ++i) {
      const auto cs = a.row_cols(i);
      const auto vs = a.row_vals(i);
      const std::size_t ii = static_cast<std::size_t>(i);
      double off = 0.0;
      for (std::size_t k = 0; k < cs.size(); ++k) {
        if (cs[k] != i) off += vs[k] * x[static_cast<std::size_t>(cs[k])];
      }
      const double resid = b[ii] - off - diag[ii] * x[ii];
      max_resid = std::max(max_resid, std::abs(resid));
      x_next[ii] = (b[ii] - off) / diag[ii];
    }
    x.swap(x_next);
    res.residual = max_resid;
    obs::trace_iteration("jacobi", res.iterations, max_resid);
    if (max_resid <= opts.tol) {
      res.converged = true;
      ++res.iterations;
      break;
    }
  }
  // Report the true residual of the final iterate.
  res.residual = a.residual_inf(x, b, scratch);
  res.converged = res.residual <= opts.tol;
  detail::finalize_solve(res, "jacobi", a.rows(), nrm_inf(b), initial_residual,
                         start_ns);
  return res;
}

}  // namespace tags::linalg
