// Back door for streaming CSR assembly.
//
// CsrMatrix::from_coo materialises a COO buffer first; the generator-model
// engine (ctmc/generator.cpp) builds rows in final order and does not want
// the intermediate copy, and rate rebinding needs to overwrite values in
// place on a frozen sparsity pattern. CsrBuilderAccess is the single,
// narrow friend through which both happen; everything else keeps going
// through the public CsrMatrix API.
#pragma once

#include <utility>
#include <vector>

#include "linalg/csr.hpp"

namespace tags::linalg {

class CsrBuilderAccess {
 public:
  /// Adopt pre-assembled CSR arrays. Invariants the caller must uphold
  /// (the engine's row-streaming assembly does by construction):
  /// row_ptr.size() == rows + 1, row_ptr.front() == 0, row_ptr.back() ==
  /// col.size() == val.size(), and each row's columns sorted ascending
  /// with no duplicates.
  [[nodiscard]] static CsrMatrix adopt(index_t rows, index_t cols,
                                       std::vector<index_t> row_ptr,
                                       std::vector<index_t> col,
                                       std::vector<double> val) {
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_ = std::move(row_ptr);
    m.col_ = std::move(col);
    m.val_ = std::move(val);
    return m;
  }

  /// Mutable view of the value array, parallel to the (frozen) column
  /// array. Used by rate rebinding to repopulate numerics without touching
  /// structure. Marks the cached transpose stale: its pattern stays valid
  /// (the caller's contract is pattern-preserving mutation), so the next
  /// transpose_cache() reader refreshes values through the stored gather
  /// permutation instead of rebuilding.
  [[nodiscard]] static std::vector<double>& values(CsrMatrix& m) noexcept {
    m.invalidate_transpose_cache();
    return m.val_;
  }
};

}  // namespace tags::linalg
