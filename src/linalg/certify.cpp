#include "linalg/certify.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "obs/obs.hpp"

namespace tags::linalg {

namespace {

bool all_finite(std::span<const double> x) noexcept {
  for (double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Shared epilogue: count the check, trace the first failed predicate.
void bookkeep(const Certificate& cert) {
  obs::count("numerics.certify.checks");
  if (cert.ok()) return;
  obs::count("numerics.certify.failures");
  if (!obs::tracing_on()) return;
  obs::TraceEvent ev;
  ev.name = "numerics.certification_failed";
  ev.str.emplace_back("check", cert.failed_check());
  ev.num.emplace_back("residual", cert.residual);
  ev.num.emplace_back("mass_error", cert.mass_error);
  ev.num.emplace_back("condition", cert.condition);
  obs::emit(std::move(ev));
}

}  // namespace

const char* Certificate::failed_check() const noexcept {
  if (!finite) return "finite";
  if (!residual_ok) return "residual";
  if (!mass_ok) return "mass";
  if (!condition_ok) return "condition";
  return "";
}

Certificate certify_solution(const CsrMatrix& a, std::span<const double> x,
                             std::span<const double> b, const CertifyOptions& opts,
                             double condition) {
  Certificate cert;
  cert.condition = condition;
  cert.condition_ok =
      opts.condition_limit <= 0.0 || condition == 0.0
          ? true
          : std::isfinite(condition) && condition <= opts.condition_limit;
  cert.finite = all_finite(x);
  if (cert.finite) {
    Vec scratch(x.size());
    cert.residual = a.residual_inf(x, b, scratch);
  } else {
    cert.residual = std::numeric_limits<double>::quiet_NaN();
  }
  cert.residual_ok = std::isfinite(cert.residual) && cert.residual <= opts.residual_bound;
  if (opts.check_mass) {
    cert.mass_error = std::abs(1.0 - sum_compensated(x));
    cert.mass_ok = cert.mass_error <= opts.mass_bound;
  } else {
    cert.mass_ok = true;
  }
  bookkeep(cert);
  return cert;
}

Certificate certify_distribution(std::span<const double> pi, const CertifyOptions& opts) {
  Certificate cert;
  cert.finite = all_finite(pi);
  // No linear system here: the residual check is vacuous by construction
  // (the caller bounds truncation error separately), so it passes iff the
  // entries are usable at all.
  cert.residual_ok = cert.finite;
  cert.residual = 0.0;
  cert.mass_error = cert.finite ? std::abs(1.0 - sum_compensated(pi)) : 1.0;
  cert.mass_ok = opts.check_mass ? cert.mass_error <= opts.mass_bound : true;
  bookkeep(cert);
  return cert;
}

double norm1(const DenseMatrix& a) noexcept {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) col += std::abs(a(i, j));
    best = std::max(best, col);
  }
  return best;
}

double norm1(const CsrMatrix& a) {
  Vec col_abs(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cs = a.row_cols(i);
    const auto vs = a.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      col_abs[static_cast<std::size_t>(cs[k])] += std::abs(vs[k]);
    }
  }
  return nrm_inf(col_abs);
}

double inverse_norm1_estimate(const LuFactorization& f) {
  if (f.singular()) return std::numeric_limits<double>::infinity();
  const std::size_t n = f.dim();
  if (n == 0) return 0.0;

  // Hager's iteration: maximise ||A^{-1} x||_1 over the unit 1-ball. Each
  // round costs one solve with A and one with A^T; the gradient step moves
  // to the unit vector e_j of the steepest coordinate. Converges in a
  // handful of rounds; 5 is Higham's recommended cap.
  Vec x(n, 1.0 / static_cast<double>(n));
  double est = 0.0;
  std::size_t last_j = n;  // sentinel: no unit vector tried yet
  for (int round = 0; round < 5; ++round) {
    const Vec y = f.solve(x);              // y = A^{-1} x
    const double y_norm = nrm1(y);
    if (!std::isfinite(y_norm)) return std::numeric_limits<double>::infinity();
    if (y_norm <= est && round > 0) break;  // no further progress
    est = std::max(est, y_norm);
    Vec xi(n);
    for (std::size_t i = 0; i < n; ++i) {
      xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;     // subgradient of ||.||_1 at y
    }
    const Vec z = f.solve_transpose(xi);    // z = A^{-T} sign(y)
    std::size_t j = 0;
    double z_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = std::abs(z[i]);
      if (v > z_max) {
        z_max = v;
        j = i;
      }
    }
    if (!std::isfinite(z_max)) return std::numeric_limits<double>::infinity();
    // Optimality test: the steepest coordinate no longer beats the current
    // point (or we are about to revisit the same unit vector).
    if (z_max <= dot(z, x) || j == last_j) break;
    x.assign(n, 0.0);
    x[j] = 1.0;
    last_j = j;
  }
  return est;
}

double condest_1(double a_norm1, const LuFactorization& f) {
  obs::count("numerics.condest.evaluations");
  return a_norm1 * inverse_norm1_estimate(f);
}

}  // namespace tags::linalg
