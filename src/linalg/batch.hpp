// Batched multi-point kernels over a shared frozen sparsity pattern.
//
// A rate sweep solves the same CSR structure at many nearby parameter
// points: the pattern never changes, only the values. CsrValueBatch packs
// the value arrays of W adjacent points lane-interleaved (entry k of point
// b lives at values[k*W + b]), so a kernel that walks the pattern once can
// process all W points with stride-1 SIMD lanes across the batch. The
// batched LU factorisation mirrors linalg::lu_factor per lane — same
// pivot choice, same elimination order, same zero-multiplier skip
// semantics (implemented as a select so the lanes stay in lockstep) — and
// extract_lane() hands back a scalar LuFactorization whose bits equal what
// lu_factor would have produced for that lane's matrix alone. That
// equality is what lets the batched direct solvers promise bit-identical
// results at any batch width (see DESIGN.md "Batched multi-point sweeps").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/lu.hpp"

namespace tags::linalg {

/// W value columns over one frozen CSR pattern. The pattern matrix must
/// outlive the batch; its own values are not read unless a lane loads them.
class CsrValueBatch {
 public:
  CsrValueBatch(const CsrMatrix& pattern, std::size_t width)
      : pattern_(&pattern), width_(width), values_(pattern.nnz() * width, 0.0) {}

  [[nodiscard]] const CsrMatrix& pattern() const noexcept { return *pattern_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  /// Copy the value array of `m` (same pattern as pattern()) into lane b.
  void load_lane(std::size_t b, const CsrMatrix& m);

  /// Entry k of lane b.
  [[nodiscard]] double at(std::size_t k, std::size_t b) const noexcept {
    return values_[k * width_ + b];
  }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Scatter lane b back out as a contiguous value array (size nnz).
  void extract_lane(std::size_t b, std::span<double> out) const;

  /// Materialise lane b as a standalone CsrMatrix (pattern arrays copied,
  /// values from the lane). The result behaves exactly like the matrix the
  /// scalar path would have solved at that point — transpose cache,
  /// diagonal, residuals all included.
  [[nodiscard]] CsrMatrix lane_matrix(std::size_t b) const;

  /// y[:,b] = A_b x[:,b] for every lane at once; x and y are
  /// lane-interleaved (n x W). Per-lane accumulation order equals
  /// CsrMatrix::multiply exactly, so each lane's result is bit-identical
  /// to a scalar SpMV with that lane's values.
  void multiply(std::span<const double> x, std::span<double> y) const noexcept;

 private:
  const CsrMatrix* pattern_;
  std::size_t width_;
  std::vector<double> values_;  // nnz x W, lane-interleaved
};

/// Batched dense LU with partial pivoting: W independent m x m systems
/// eliminated in lockstep, lane-interleaved storage a[(i*m + j)*W + b].
/// Pivoting decisions are per lane; a lane that hits an exactly zero pivot
/// is flagged singular and (like lu_factor) keeps processing so the other
/// lanes are unaffected.
class BatchLuFactorization {
 public:
  BatchLuFactorization() = default;

  /// Factor W matrices given by `get` (get(i, j, b) returns entry (i,j) of
  /// lane b). Eliminations mirror linalg::lu_factor lane by lane.
  template <class Get>
  void factor(std::size_t m, std::size_t width, Get&& get) {
    m_ = m;
    w_ = width;
    a_.resize(m * m * width);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        for (std::size_t b = 0; b < width; ++b)
          a_[(i * m + j) * width + b] = get(i, j, b);
    factor_in_place();
  }

  /// Factor from pre-filled lane-interleaved storage (moved in).
  void factor_packed(std::size_t m, std::size_t width, std::vector<double> a) {
    m_ = m;
    w_ = width;
    a_ = std::move(a);
    factor_in_place();
  }

  [[nodiscard]] std::size_t dim() const noexcept { return m_; }
  [[nodiscard]] std::size_t width() const noexcept { return w_; }
  [[nodiscard]] bool singular(std::size_t b) const noexcept { return singular_[b]; }
  [[nodiscard]] bool any_singular() const noexcept { return any_singular_; }

  /// Scalar factorization of lane b: bit-identical to
  /// lu_factor(<lane b's matrix>) by construction. Substitutions on the
  /// extracted object therefore reuse the scalar code paths verbatim.
  [[nodiscard]] LuFactorization extract_lane(std::size_t b) const;

  /// In-place solve of lane b's system (mirrors
  /// LuFactorization::solve_in_place — permutation, unit-L forward, U
  /// backward, no zero skips). Lane-local: safe to call on any
  /// non-singular lane of a batch with singular lanes elsewhere.
  void solve_lane(std::size_t b, std::span<double> x) const;

  /// Solve A_b^T x = rhs for lane b (mirrors solve_transpose).
  [[nodiscard]] Vec solve_transpose_lane(std::size_t b,
                                         std::span<const double> rhs) const;

  /// In-place solve for every lane at once over a lane-interleaved RHS
  /// (m x W, entry i of lane b at x[i*W + b]). Per lane this is
  /// solve_in_place verbatim — the lockstep loop just streams the
  /// lane-contiguous factor storage once for all W systems. Singular
  /// lanes produce garbage in their own lanes only.
  void solve_all_lanes(std::span<double> x) const;

  /// Lockstep transpose solve over a lane-interleaved RHS (m x W),
  /// mirroring solve_transpose per lane.
  void solve_transpose_all_lanes(std::span<double> x) const;

  /// Multi-RHS substitution for every lane at once: bm is lane-interleaved
  /// (m x nc x W, entry (i, c) of lane b at bm[(i*nc + c)*W + b]) and is
  /// overwritten with the per-lane solutions. Extends the scalar
  /// solve_in_place_multi (chunked multi-RHS) across the batch: per-lane
  /// row permutation, then forward/backward sweeps whose zero-multiplier
  /// skip is a per-lane select, so each lane's bits equal the scalar
  /// kernel's. Singular lanes produce garbage in their own lanes only.
  void solve_in_place_multi_batch(std::span<double> bm, std::size_t nc) const;

 private:
  void factor_in_place();

  std::size_t m_ = 0;
  std::size_t w_ = 0;
  std::vector<double> a_;                  // (m x m) x W lane-interleaved
  std::vector<std::size_t> piv_;           // m x W lane-interleaved
  std::vector<unsigned char> singular_;    // per lane
  bool any_singular_ = false;
};

}  // namespace tags::linalg
