#include "linalg/dense.hpp"

#include <cmath>

namespace tags::linalg {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const noexcept {
  assert(x.size() == cols_ && y.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    y[i] = dot(row(i), x);
  }
}

void DenseMatrix::multiply_transpose(std::span<const double> x,
                                     std::span<double> y) const noexcept {
  assert(x.size() == rows_ && y.size() == cols_);
  set_zero(y);
  for (std::size_t i = 0; i < rows_; ++i) {
    axpy(x[i], row(i), y);
  }
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

DenseMatrix DenseMatrix::matmul(const DenseMatrix& b) const {
  assert(cols_ == b.rows());
  DenseMatrix c(rows_, b.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k), c.row(i));
    }
  }
  return c;
}

void DenseMatrix::add_scaled(double a, const DenseMatrix& b) noexcept {
  assert(rows_ == b.rows() && cols_ == b.cols());
  axpy(a, b.data(), data());
}

double DenseMatrix::frobenius_norm() const noexcept { return nrm2(a_); }

double DenseMatrix::max_abs() const noexcept { return nrm_inf(a_); }

}  // namespace tags::linalg
