// LU factorisation with partial pivoting. Used as the reference direct
// solver for small CTMCs and for phase-type moment computations.
#pragma once

#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace tags::linalg {

/// Result of lu_factor(). Holds L and U packed in one matrix plus the pivot
/// permutation; solve() does the forward/back substitution.
class LuFactorization {
 public:
  LuFactorization() = default;

  [[nodiscard]] bool singular() const noexcept { return singular_; }
  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solve A x = b. Returns the solution; b is untouched.
  [[nodiscard]] Vec solve(std::span<const double> b) const;

  /// In-place variant: x holds b on entry, the solution on exit.
  void solve_in_place(std::span<double> x) const;

  /// Solve A X = B for every column of B at once; B is row-major (n x k)
  /// and is overwritten with X. Much faster than k solve() calls: the
  /// substitution sweeps stream contiguous rows, vectorising across the
  /// right-hand sides, and column chunks run in parallel (each entry's
  /// arithmetic is independent of the chunking, so results are
  /// bit-identical at any thread count).
  void solve_in_place_multi(DenseMatrix& b) const;

  /// Solve A^T x = b (useful for stationary distributions pi A = 0).
  [[nodiscard]] Vec solve_transpose(std::span<const double> b) const;

  /// log|det A|; meaningful only when not singular.
  [[nodiscard]] double log_abs_det() const noexcept;

  friend LuFactorization lu_factor(DenseMatrix a);
  // The batched factorisation (linalg/batch.hpp) eliminates W matrices in
  // lockstep and hands back per-lane scalar factorizations; extraction
  // needs to populate the private state directly.
  friend class BatchLuFactorization;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> piv_;  // piv_[k] = row swapped into position k
  bool singular_ = false;
};

/// Factor a (copied) square matrix. Singular inputs are flagged rather than
/// throwing; callers must check singular() before solve().
[[nodiscard]] LuFactorization lu_factor(DenseMatrix a);

/// Convenience: solve A x = b directly (factors internally).
[[nodiscard]] Vec lu_solve(const DenseMatrix& a, std::span<const double> b);

/// Dense inverse via LU; asserts on singular input. Small matrices only.
[[nodiscard]] DenseMatrix lu_inverse(const DenseMatrix& a);

}  // namespace tags::linalg
