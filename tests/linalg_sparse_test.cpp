// COO assembly and CSR matrix tests.
#include <gtest/gtest.h>

#include <random>

#include "linalg/csr.hpp"

namespace {

using namespace tags::linalg;

TEST(Coo, GrowsDimensionsAndStoresTriplets) {
  CooMatrix coo;
  coo.add(2, 5, 1.5);
  coo.add(0, 0, -2.0);
  EXPECT_EQ(coo.rows(), 3);
  EXPECT_EQ(coo.cols(), 6);
  EXPECT_EQ(coo.nnz(), 2u);
}

TEST(Coo, ResizeKeepsEntries) {
  CooMatrix coo(2, 2);
  coo.add(1, 1, 3.0);
  coo.resize(5, 7);
  EXPECT_EQ(coo.rows(), 5);
  EXPECT_EQ(coo.cols(), 7);
}

TEST(Csr, FromCooSumsDuplicatesAndSortsColumns) {
  CooMatrix coo(2, 3);
  coo.add(0, 2, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(0, 2, 3.0);  // duplicate of (0,2)
  coo.add(1, 1, 5.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 3u);
  const auto cols = m.row_cols(0);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(Csr, EmptyRowsAreHandled) {
  CooMatrix coo(4, 4);
  coo.add(2, 2, 1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.row_cols(0).size(), 0u);
  EXPECT_EQ(m.row_cols(3).size(), 0u);
  EXPECT_EQ(m.row_cols(2).size(), 1u);
}

TEST(Csr, DiagonalExtraction) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(2, 2, 3.0);
  coo.add(1, 0, 9.0);
  const Vec d = CsrMatrix::from_coo(coo).diagonal();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

class CsrPropertyTest : public ::testing::TestWithParam<std::size_t> {};

CooMatrix random_coo(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  CooMatrix coo(static_cast<index_t>(n), static_cast<index_t>(n));
  for (std::size_t e = 0; e < 5 * n; ++e) {
    coo.add(static_cast<index_t>(pick(gen)), static_cast<index_t>(pick(gen)), dist(gen));
  }
  return coo;
}

TEST_P(CsrPropertyTest, MultiplyMatchesDense) {
  const std::size_t n = GetParam();
  const CsrMatrix m = CsrMatrix::from_coo(random_coo(n, 10 + static_cast<unsigned>(n)));
  const DenseMatrix d = m.to_dense();
  std::mt19937 gen(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Vec x(n);
  for (auto& v : x) v = dist(gen);
  Vec y1(n), y2(n);
  m.multiply(x, y1);
  d.multiply(x, y2);
  EXPECT_NEAR(max_abs_diff(y1, y2), 0.0, 1e-11);
  m.multiply_transpose(x, y1);
  d.multiply_transpose(x, y2);
  EXPECT_NEAR(max_abs_diff(y1, y2), 0.0, 1e-11);
}

TEST_P(CsrPropertyTest, TransposeRoundTrip) {
  const std::size_t n = GetParam();
  const CsrMatrix m = CsrMatrix::from_coo(random_coo(n, 90 + static_cast<unsigned>(n)));
  const CsrMatrix mtt = m.transposed().transposed();
  ASSERT_EQ(mtt.nnz(), m.nnz());
  for (index_t i = 0; i < m.rows(); ++i) {
    const auto c1 = m.row_cols(i);
    const auto c2 = mtt.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]);
      EXPECT_DOUBLE_EQ(m.row_vals(i)[k], mtt.row_vals(i)[k]);
    }
  }
}

TEST_P(CsrPropertyTest, FromDenseRoundTrip) {
  const std::size_t n = GetParam();
  const CsrMatrix m = CsrMatrix::from_coo(random_coo(n, 50 + static_cast<unsigned>(n)));
  const CsrMatrix m2 = CsrMatrix::from_dense(m.to_dense());
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m2.at(i, j));
    }
  }
}

TEST_P(CsrPropertyTest, ResidualInfOfExactSolutionIsZero) {
  const std::size_t n = GetParam();
  const CsrMatrix m = CsrMatrix::from_coo(random_coo(n, 70 + static_cast<unsigned>(n)));
  std::mt19937 gen(4);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Vec x(n);
  for (auto& v : x) v = dist(gen);
  Vec b(n), scratch(n);
  m.multiply(x, b);
  EXPECT_NEAR(m.residual_inf(x, b, scratch), 0.0, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsrPropertyTest, ::testing::Values(1, 2, 5, 17, 64, 200));

}  // namespace
