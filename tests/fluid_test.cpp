// ODE integrators and the fluid TAGS approximation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "fluid/fluid_tags.hpp"
#include "fluid/ode.hpp"
#include "models/tags.hpp"
#include "obs/obs.hpp"

namespace {

using namespace tags;
using namespace tags::fluid;

TEST(Rk4, ExponentialDecay) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = -2.0 * y[0]; };
  const Vec y = rk4_integrate(f, {1.0}, 0.0, 1.0, {.dt = 1e-3});
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-9);
}

TEST(Rk4, HarmonicOscillatorEnergyConserved) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) {
    dy[0] = y[1];
    dy[1] = -y[0];
  };
  const Vec y = rk4_integrate(f, {1.0, 0.0}, 0.0, 2.0 * M_PI, {.dt = 1e-3});
  EXPECT_NEAR(y[0], 1.0, 1e-8);
  EXPECT_NEAR(y[1], 0.0, 1e-8);
}

TEST(Rk4, TrajectorySamplesMatchDirectIntegration) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = -y[0]; };
  const auto traj = rk4_trajectory(f, {2.0}, 0.0, {0.5, 1.0, 2.0});
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_NEAR(traj[0][0], 2.0 * std::exp(-0.5), 1e-8);
  EXPECT_NEAR(traj[2][0], 2.0 * std::exp(-2.0), 1e-8);
}

TEST(Rkf45, MatchesClosedFormWithLooseSteps) {
  const OdeRhs f = [](double t, const Vec&, Vec& dy) { dy[0] = std::cos(t); };
  const Vec y = rkf45_integrate(f, {0.0}, 0.0, 3.0, {.dt = 0.1});
  EXPECT_NEAR(y[0], std::sin(3.0), 1e-6);
}

TEST(Rkf45, StiffDecayStaysStable) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = -500.0 * y[0]; };
  const Vec y = rkf45_integrate(f, {1.0}, 0.0, 1.0, {.dt = 0.01});
  EXPECT_NEAR(y[0], 0.0, 1e-6);
}

TEST(SteadyOde, RelaxationFindsFixedPoint) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = 3.0 - y[0]; };
  const auto ss = integrate_to_steady(f, {0.0});
  EXPECT_TRUE(ss.converged);
  EXPECT_NEAR(ss.y[0], 3.0, 1e-7);
}

TEST(FluidTags, MassInvariantsConserved) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.t = 50.0;
  p.n = 6;
  const OdeRhs rhs = make_tags_fluid_rhs(p);
  Vec y = tags_fluid_initial(p);
  y = rk4_integrate(rhs, std::move(y), 0.0, 10.0, {.dt = 1e-3});
  double tau_sum = 0.0;
  for (unsigned j = 0; j <= p.n; ++j) tau_sum += y[1 + j];
  EXPECT_NEAR(tau_sum, 1.0, 1e-7);
  double head_sum = y[2 * p.n + 4];
  for (unsigned j = 0; j <= p.n; ++j) head_sum += y[p.n + 3 + j];
  EXPECT_NEAR(head_sum, 1.0, 1e-7);
  EXPECT_GE(y[0], 0.0);
  EXPECT_LE(y[0], p.k1 + 1e-9);
}

TEST(FluidTags, SteadyStateNearCtmcAtModerateLoad) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.t = 50.0;
  p.n = 6;
  p.k1 = p.k2 = 10;
  const auto fluid = tags_fluid_steady(p);
  EXPECT_TRUE(fluid.converged);
  const auto exact = models::TagsModel(p).metrics();
  // Mean-field closure error: accept a generous band but require the right
  // scale and ordering.
  EXPECT_NEAR(fluid.mean_q1, exact.mean_q1, 0.5 * exact.mean_q1 + 0.15);
  EXPECT_NEAR(fluid.mean_q2, exact.mean_q2, 0.5 * exact.mean_q2 + 0.15);
}

TEST(FluidTags, TransientStartsEmptyAndSettles) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.t = 50.0;
  p.n = 4;
  const auto traj = tags_fluid_transient(p, {0.0, 0.5, 2.0, 50.0});
  ASSERT_EQ(traj.size(), 4u);
  EXPECT_NEAR(traj[0].first, 0.0, 1e-12);
  EXPECT_GT(traj[1].first, 0.0);  // fills up from empty
  // The trajectory may overshoot, but by t = 50 it must sit at the fixed
  // point found by the steady-state integrator.
  const auto fixed = tags_fluid_steady(p);
  EXPECT_NEAR(traj[3].first, fixed.mean_q1, 1e-3);
  EXPECT_NEAR(traj[3].second, fixed.mean_q2, 1e-3);
}

TEST(FluidTags, HighLoadSaturatesBelowBuffers) {
  models::TagsParams p;
  p.lambda = 40.0;  // way above capacity
  p.mu = 10.0;
  p.t = 50.0;
  p.n = 4;
  p.k1 = 6;
  p.k2 = 6;
  const auto fluid = tags_fluid_steady(p);
  EXPECT_LE(fluid.mean_q1, p.k1 + 1e-6);
  EXPECT_GE(fluid.mean_q1, 0.8 * p.k1);  // node 1 should be nearly full
}

// Regression: when t_end - t is below one ulp of t, t += h is a no-op and
// the stepper used to spin forever. At t ~ 1e16 the ulp is 2.0, so no step
// the controller can take (max_dt = 1.0 here) ever advances t.
TEST(Rkf45, TerminatesWhenStepFallsBelowUlpOfT) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = -y[0]; };
#if TAGS_OBS_ENABLED
  tags::obs::Counter stalls("numerics.rkf45.stall_terminations");
  const std::uint64_t before = stalls.value();
#endif
  const double t0 = 1e16;
  const double t_end = std::nextafter(std::nextafter(t0, 2e16), 2e16);
  ASSERT_GT(t_end, t0);  // a real, positive gap — just unreachable by stepping
  const Vec y = rkf45_integrate(f, {1.0}, t0, t_end, {.dt = 0.5});
  EXPECT_TRUE(std::isfinite(y[0]));
#if TAGS_OBS_ENABLED
  EXPECT_GE(stalls.value(), before + 1);
#endif
}

#if TAGS_OBS_ENABLED
// Forced acceptance at the min_dt floor loses error control; every such
// step must be counted so stiff runs are auditable after the fact.
TEST(Rkf45, CountsForcedMinDtStepsWithErrorAboveOne) {
  const OdeRhs f = [](double, const Vec& y, Vec& dy) { dy[0] = -1e6 * y[0]; };
  tags::obs::Counter forced("numerics.rkf45.forced_min_dt_steps");
  const std::uint64_t before = forced.value();
  OdeOptions opts;
  opts.dt = 0.1;
  opts.min_dt = 0.1;  // far too coarse for the stiffness: err > 1 every step
  opts.max_dt = 0.1;
  const Vec y = rkf45_integrate(f, {1.0}, 0.0, 0.5, opts);
  (void)y;  // the trajectory is garbage by construction; the count is the point
  EXPECT_GE(forced.value(), before + 1);
}
#endif

}  // namespace
