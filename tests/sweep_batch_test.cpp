// Batched-vs-unbatched differential coverage (see DESIGN.md "Batched
// multi-point sweeps"): on the direct-solver paths the batch width — like
// the thread count — must stay outside the determinism contract, so every
// sweep, optimizer scan and journal replay here is compared byte for byte
// against the scalar (batch = 1) run. The batched LU kernel itself is
// pinned bitwise against linalg::lu_factor, including a singular lane
// sharing a batch with healthy ones.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "approx/optimizer.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "ctmc/steady_state.hpp"
#include "linalg/batch.hpp"
#include "linalg/dense.hpp"
#include "linalg/lu.hpp"
#include "models/tags.hpp"
#include "models/tags_h2.hpp"
#include "store/store.hpp"

namespace {

using namespace tags;

/// The reduced model the determinism suites use: fast enough to run the
/// grid several times per test, big enough for several shards and batches.
models::TagsParams reduced_model() {
  models::TagsParams base;
  base.n = 3;
  base.k1 = base.k2 = 4;
  return base;
}

models::TagsH2Params reduced_h2_model() {
  models::TagsH2Params base;
  base.n = 3;
  base.k1 = base.k2 = 4;
  return base;
}

const std::vector<double>& grid() {
  static const std::vector<double> ts = core::linspace(10.0, 150.0, 29);
  return ts;
}

bool same_bytes(const std::vector<models::Metrics>& a,
                const std::vector<models::Metrics>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(models::Metrics)) == 0);
}

bool same_bits(const linalg::Vec& a, const linalg::Vec& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_counters_equal(const core::SweepStats& scalar,
                           const core::SweepStats& batched) {
  EXPECT_EQ(scalar.warm.hits, batched.warm.hits);
  EXPECT_EQ(scalar.warm.misses, batched.warm.misses);
  EXPECT_EQ(scalar.warm.cleared, batched.warm.cleared);
  EXPECT_EQ(scalar.warm.uncertified, batched.warm.uncertified);
  EXPECT_EQ(scalar.points, batched.points);
  EXPECT_EQ(scalar.shards, batched.shards);
}

std::string fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(testing::TempDir()) / ("tags_sweep_batch_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The scalar reference chain for one model family: warm-started
/// rebind/solve point by point, exactly what eval_t_chain does at batch 1.
template <class Model, class Params>
std::vector<ctmc::SteadyStateResult> scalar_chain(
    const Params& base, const std::vector<double>& ts,
    const ctmc::SteadyStateOptions& opts0 = {}) {
  std::vector<ctmc::SteadyStateResult> out;
  ctmc::WarmStartState warm;
  warm.opts = opts0;
  std::optional<Model> model;
  for (const double t : ts) {
    Params p = base;
    p.t = t;
    if (model) {
      model->rebind(p);
    } else {
      model.emplace(p);
    }
    warm.reconcile(model->n_states());
    auto r = model->solve(warm.opts);
    warm.accept(r);
    out.push_back(std::move(r));
  }
  return out;
}

/// The batched path over the same points: one CsrValueBatch, one call.
template <class Model, class Params>
std::vector<ctmc::SteadyStateResult> batch_solve(
    const Params& base, const std::vector<double>& ts,
    const ctmc::SteadyStateOptions& opts = {}) {
  std::optional<Model> model;
  std::optional<linalg::CsrValueBatch> vals;
  for (std::size_t b = 0; b < ts.size(); ++b) {
    Params p = base;
    p.t = ts[b];
    if (model) {
      model->rebind(p);
    } else {
      model.emplace(p);
    }
    const linalg::CsrMatrix& q = model->chain().generator();
    if (!vals) vals.emplace(q, ts.size());
    vals->load_lane(b, q);
  }
  return ctmc::steady_state_batch(*vals, opts);
}

void expect_results_identical(const std::vector<ctmc::SteadyStateResult>& scalar,
                              const std::vector<ctmc::SteadyStateResult>& batched) {
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t b = 0; b < scalar.size(); ++b) {
    SCOPED_TRACE("lane " + std::to_string(b));
    EXPECT_EQ(scalar[b].converged, batched[b].converged);
    EXPECT_EQ(scalar[b].method_used, batched[b].method_used);
    EXPECT_EQ(scalar[b].iterations, batched[b].iterations);
    EXPECT_EQ(scalar[b].attempts.size(), batched[b].attempts.size());
    EXPECT_TRUE(same_bits(scalar[b].pi, batched[b].pi));
    std::uint64_t ra = 0;
    std::uint64_t rb = 0;
    std::memcpy(&ra, &scalar[b].residual, sizeof ra);
    std::memcpy(&rb, &batched[b].residual, sizeof rb);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(scalar[b].certificate.ok(), batched[b].certificate.ok());
  }
}

TEST(SweepBatch, TagsSweepBitIdenticalAcrossBatchWidths) {
  core::SweepStats scalar_stats;
  const auto scalar = core::tags_t_sweep(
      reduced_model(), grid(), {.threads = 1, .shard_size = 5, .batch = 1},
      &scalar_stats);
  ASSERT_EQ(scalar.size(), grid().size());
  for (const std::size_t batch : {std::size_t{4}, std::size_t{7}}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    core::SweepStats stats;
    const auto batched = core::tags_t_sweep(
        reduced_model(), grid(), {.threads = 1, .shard_size = 5, .batch = batch},
        &stats);
    EXPECT_TRUE(same_bytes(scalar, batched));
    expect_counters_equal(scalar_stats, stats);
  }
}

TEST(SweepBatch, H2SweepBitIdenticalAcrossBatchWidths) {
  core::SweepStats scalar_stats;
  const auto scalar = core::tags_h2_t_sweep(
      reduced_h2_model(), grid(), {.threads = 1, .shard_size = 5, .batch = 1},
      &scalar_stats);
  for (const std::size_t batch : {std::size_t{4}, std::size_t{7}}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    core::SweepStats stats;
    const auto batched = core::tags_h2_t_sweep(
        reduced_h2_model(), grid(), {.threads = 1, .shard_size = 5, .batch = batch},
        &stats);
    EXPECT_TRUE(same_bytes(scalar, batched));
    expect_counters_equal(scalar_stats, stats);
  }
}

TEST(SweepBatch, BatchComposesWithThreads) {
  // Thread count and batch width are both outside the determinism
  // contract; together they must still reproduce the serial scalar bytes.
  core::SweepStats ref_stats;
  const auto reference = core::tags_t_sweep(
      reduced_model(), grid(), {.threads = 1, .shard_size = 3, .batch = 1},
      &ref_stats);
  core::SweepStats stats;
  const auto combined = core::tags_t_sweep(
      reduced_model(), grid(), {.threads = 4, .shard_size = 3, .batch = 4}, &stats);
  EXPECT_TRUE(same_bytes(reference, combined));
  expect_counters_equal(ref_stats, stats);
}

TEST(SweepBatch, SteadyStateBatchMatchesScalarChainWithCertificates) {
  // Direct API differential: one batched call vs the warm-started scalar
  // chain, lane by lane. Every lane must also carry its own accepted
  // certificate — certification stays per point in a batched solve.
  const std::vector<double> ts = {20.0, 45.0, 70.0, 95.0, 110.0};
  const auto scalar = scalar_chain<models::TagsModel>(reduced_model(), ts);
  const auto batched = batch_solve<models::TagsModel>(reduced_model(), ts);
  expect_results_identical(scalar, batched);
  for (std::size_t b = 0; b < batched.size(); ++b) {
    EXPECT_TRUE(batched[b].converged) << "lane " << b;
    EXPECT_TRUE(batched[b].certificate.ok()) << "lane " << b;
  }
}

TEST(SweepBatch, DenseLuBatchBitIdentical) {
  ctmc::SteadyStateOptions opts;
  opts.method = ctmc::SteadyStateMethod::kDenseLu;
  const std::vector<double> ts = {15.0, 40.0, 65.0, 90.0};
  const auto scalar =
      scalar_chain<models::TagsModel>(reduced_model(), ts, opts);
  const auto batched = batch_solve<models::TagsModel>(reduced_model(), ts, opts);
  expect_results_identical(scalar, batched);
  for (const auto& r : batched) {
    EXPECT_EQ(r.method_used, ctmc::SteadyStateMethod::kDenseLu);
  }
}

TEST(SweepBatch, LevelQbdBatchBitIdentical) {
  ctmc::SteadyStateOptions opts;
  opts.method = ctmc::SteadyStateMethod::kLevelQbd;
  const std::vector<double> ts = {15.0, 40.0, 65.0, 90.0};
  const auto scalar =
      scalar_chain<models::TagsModel>(reduced_model(), ts, opts);
  const auto batched = batch_solve<models::TagsModel>(reduced_model(), ts, opts);
  expect_results_identical(scalar, batched);
}

TEST(SweepBatch, IterativeFallbackMatchesScalarSequence) {
  // An iterative method has no batched kernel: steady_state_batch must
  // reproduce the scalar warm-start chain exactly (same guesses, same
  // iteration counts), not just within tolerance.
  ctmc::SteadyStateOptions opts;
  opts.method = ctmc::SteadyStateMethod::kGaussSeidel;
  const std::vector<double> ts = {25.0, 50.0, 75.0};
  const auto scalar =
      scalar_chain<models::TagsModel>(reduced_model(), ts, opts);
  const auto batched = batch_solve<models::TagsModel>(reduced_model(), ts, opts);
  expect_results_identical(scalar, batched);
}

TEST(SweepBatch, BatchedLuMatchesScalarFactorization) {
  constexpr std::size_t m = 7;
  constexpr std::size_t w = 3;
  constexpr std::size_t singular_lane = 1;
  // Deterministic, diagonally dominant per lane; lane 1 is all-zero so it
  // hits an exactly-zero pivot immediately and must not disturb the others.
  const auto entry = [](std::size_t i, std::size_t j, std::size_t b) {
    if (b == singular_lane) return 0.0;
    const double off = static_cast<double>((i * 7 + j * 3 + b * 11) % 13) - 6.0;
    return i == j ? 50.0 + static_cast<double>(b) : off;
  };
  linalg::BatchLuFactorization bf;
  bf.factor(m, w, entry);
  EXPECT_TRUE(bf.singular(singular_lane));
  EXPECT_TRUE(bf.any_singular());

  std::vector<double> rhs(m);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = static_cast<double>(i) + 1.0;

  for (const std::size_t b : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE("lane " + std::to_string(b));
    EXPECT_FALSE(bf.singular(b));
    linalg::DenseMatrix a(m, m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) a(i, j) = entry(i, j, b);
    const linalg::LuFactorization scalar = linalg::lu_factor(a);

    // extract_lane hands back the scalar object bit for bit.
    const linalg::LuFactorization lane = bf.extract_lane(b);
    EXPECT_TRUE(same_bits(scalar.solve(rhs), lane.solve(rhs)));
    EXPECT_TRUE(same_bits(scalar.solve_transpose(rhs), lane.solve_transpose(rhs)));

    // The in-batch substitutions reproduce the scalar kernels too.
    linalg::Vec x(rhs.begin(), rhs.end());
    bf.solve_lane(b, x);
    EXPECT_TRUE(same_bits(scalar.solve(rhs), x));
    EXPECT_TRUE(same_bits(scalar.solve_transpose(rhs), bf.solve_transpose_lane(b, rhs)));
  }
}

TEST(SweepBatch, BatchedMultiRhsMatchesScalarMultiRhs) {
  constexpr std::size_t m = 6;
  constexpr std::size_t w = 4;
  constexpr std::size_t nc = 3;
  const auto entry = [](std::size_t i, std::size_t j, std::size_t b) {
    const double off = static_cast<double>((i * 5 + j * 9 + b * 7) % 11) - 5.0;
    return i == j ? 40.0 + 2.0 * static_cast<double>(b) : off;
  };
  const auto rhs_entry = [](std::size_t i, std::size_t c, std::size_t b) {
    return static_cast<double>((i * 3 + c * 13 + b) % 17) - 8.0;
  };
  linalg::BatchLuFactorization bf;
  bf.factor(m, w, entry);
  ASSERT_FALSE(bf.any_singular());

  std::vector<double> bm(m * nc * w);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t c = 0; c < nc; ++c)
      for (std::size_t b = 0; b < w; ++b)
        bm[(i * nc + c) * w + b] = rhs_entry(i, c, b);
  bf.solve_in_place_multi_batch(bm, nc);

  for (std::size_t b = 0; b < w; ++b) {
    SCOPED_TRACE("lane " + std::to_string(b));
    linalg::DenseMatrix a(m, m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) a(i, j) = entry(i, j, b);
    const linalg::LuFactorization scalar = linalg::lu_factor(a);
    linalg::DenseMatrix rhs(m, nc);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t c = 0; c < nc; ++c) rhs(i, c) = rhs_entry(i, c, b);
    scalar.solve_in_place_multi(rhs);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t c = 0; c < nc; ++c) {
        const double got = bm[(i * nc + c) * w + b];
        const double want = rhs(i, c);
        EXPECT_EQ(std::memcmp(&got, &want, sizeof got), 0)
            << "entry (" << i << ", " << c << ")";
      }
    }
  }
}

TEST(SweepBatch, OptimizerScanIdenticalAcrossBatchWidths) {
  const auto p = reduced_model();
  const auto scalar =
      approx::optimise_tags_t_integer(p, approx::Objective::kMinQueueLength, 10, 40, 1);
  for (const std::size_t batch : {std::size_t{4}, std::size_t{5}}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    const auto batched = approx::optimise_tags_t_integer(
        p, approx::Objective::kMinQueueLength, 10, 40, batch);
    EXPECT_EQ(scalar.t, batched.t);
    EXPECT_EQ(scalar.solves, batched.solves);
    EXPECT_EQ(std::memcmp(&scalar.metrics, &batched.metrics, sizeof scalar.metrics), 0);
  }
}

TEST(SweepBatch, CoarseOptimizerIdenticalAcrossBatchWidths) {
  const auto p = reduced_h2_model();
  const auto scalar = approx::optimise_tags_h2_t_coarse(
      p, approx::Objective::kMinResponseTime, 4, 60, 6, 1);
  const auto batched = approx::optimise_tags_h2_t_coarse(
      p, approx::Objective::kMinResponseTime, 4, 60, 6, 7);
  EXPECT_EQ(scalar.t, batched.t);
  EXPECT_EQ(scalar.solves, batched.solves);
  EXPECT_EQ(std::memcmp(&scalar.metrics, &batched.metrics, sizeof scalar.metrics), 0);
}

TEST(SweepBatch, JournalReplayAcrossBatchWidths) {
  // Batch width stays out of the sweep digest: a journal written at one
  // width must replay byte-identically at another, in both directions.
  const auto round = [&](const std::string& tag, std::size_t write_batch,
                         std::size_t replay_batch) {
    SCOPED_TRACE(tag);
    const auto dir = fresh_dir(tag);
    core::SweepStats write_stats;
    std::vector<models::Metrics> written;
    {
      store::SolveStore store(dir);
      written = core::tags_t_sweep(
          reduced_model(), grid(),
          {.threads = 1, .shard_size = 3, .batch = write_batch}, &write_stats,
          &store);
    }
    EXPECT_EQ(write_stats.resumed, 0u);
    core::SweepStats replay_stats;
    std::vector<models::Metrics> replayed;
    {
      store::SolveStore store(dir);
      replayed = core::tags_t_sweep(
          reduced_model(), grid(),
          {.threads = 1, .shard_size = 3, .batch = replay_batch}, &replay_stats,
          &store);
    }
    EXPECT_TRUE(same_bytes(written, replayed));
    EXPECT_EQ(replay_stats.resumed, replay_stats.shards);
    expect_counters_equal(write_stats, replay_stats);
  };
  round("w1_r7", 1, 7);
  round("w7_r1", 7, 1);
}

}  // namespace
