// The prioritized admission queue: priority/deadline/FIFO ordering,
// admission-time and dequeue-time shedding, eviction under overload, and
// drain(). Suite name matters: "Serve" keeps these under the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/pool.hpp"
#include "serve/job_queue.hpp"

namespace {

using namespace tags;
using serve::Job;
using serve::JobQueue;
using serve::Priority;
using serve::ShedReason;
using Clock = std::chrono::steady_clock;

Job job_named(std::vector<std::string>& ran, std::vector<std::string>& shed,
              std::string name, Priority priority = Priority::kNormal) {
  Job j;
  j.priority = priority;
  j.run = [&ran, name] { ran.push_back(name); };
  j.shed = [&shed, name](ShedReason) { shed.push_back(name); };
  return j;
}

TEST(ServeQueue, RunsHighestPriorityFirstThenFifo) {
  JobQueue q(16);
  std::vector<std::string> ran, shed;
  ASSERT_TRUE(q.submit(job_named(ran, shed, "low", Priority::kLow)));
  ASSERT_TRUE(q.submit(job_named(ran, shed, "n1", Priority::kNormal)));
  ASSERT_TRUE(q.submit(job_named(ran, shed, "high", Priority::kHigh)));
  ASSERT_TRUE(q.submit(job_named(ran, shed, "n2", Priority::kNormal)));
  EXPECT_EQ(q.depth(), 4u);
  while (q.run_next()) {
  }
  EXPECT_EQ(ran, (std::vector<std::string>{"high", "n1", "n2", "low"}));
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeQueue, EarlierDeadlineWinsWithinPriority) {
  JobQueue q(16);
  std::vector<std::string> ran, shed;
  const auto now = Clock::now();
  Job late = job_named(ran, shed, "late");
  late.deadline = now + std::chrono::hours(2);
  Job soon = job_named(ran, shed, "soon");
  soon.deadline = now + std::chrono::hours(1);
  ASSERT_TRUE(q.submit(std::move(late)));
  ASSERT_TRUE(q.submit(std::move(soon)));
  while (q.run_next()) {
  }
  EXPECT_EQ(ran, (std::vector<std::string>{"soon", "late"}));
}

TEST(ServeQueue, ShedsExpiredJobAtAdmission) {
  JobQueue q(16);
  std::vector<std::string> ran, shed;
  std::vector<ShedReason> reasons;
  Job stale = job_named(ran, shed, "stale");
  stale.deadline = Clock::now() - std::chrono::milliseconds(1);
  stale.shed = [&](ShedReason r) {
    shed.push_back("stale");
    reasons.push_back(r);
  };
  EXPECT_FALSE(q.submit(std::move(stale)));
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(shed, (std::vector<std::string>{"stale"}));
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], ShedReason::kDeadline);
  EXPECT_EQ(q.shed_total(), 1u);
  EXPECT_EQ(q.deadline_missed(), 1u);
}

TEST(ServeQueue, ShedsExpiredJobAtDequeue) {
  JobQueue q(16);
  std::vector<std::string> ran, shed;
  Job brief = job_named(ran, shed, "brief");
  brief.deadline = Clock::now() + std::chrono::milliseconds(5);
  ASSERT_TRUE(q.submit(std::move(brief)));
  ASSERT_TRUE(q.submit(job_named(ran, shed, "steady")));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  while (q.run_next()) {
  }
  EXPECT_EQ(ran, (std::vector<std::string>{"steady"}));
  EXPECT_EQ(shed, (std::vector<std::string>{"brief"}));
  EXPECT_EQ(q.deadline_missed(), 1u);
}

TEST(ServeQueue, FullQueueShedsIncomingUnlessItOutranks) {
  JobQueue q(1);
  std::vector<std::string> ran, shed;
  ASSERT_TRUE(q.submit(job_named(ran, shed, "first", Priority::kNormal)));

  // Equal priority does not displace: the incoming job is shed.
  EXPECT_FALSE(q.submit(job_named(ran, shed, "equal", Priority::kNormal)));
  EXPECT_EQ(shed, (std::vector<std::string>{"equal"}));

  // Lower priority is shed too.
  EXPECT_FALSE(q.submit(job_named(ran, shed, "lesser", Priority::kLow)));
  EXPECT_EQ(shed, (std::vector<std::string>{"equal", "lesser"}));

  // Strictly higher priority evicts the queued job instead.
  EXPECT_TRUE(q.submit(job_named(ran, shed, "urgent", Priority::kHigh)));
  EXPECT_EQ(shed, (std::vector<std::string>{"equal", "lesser", "first"}));
  EXPECT_EQ(q.depth(), 1u);
  while (q.run_next()) {
  }
  EXPECT_EQ(ran, (std::vector<std::string>{"urgent"}));
  EXPECT_EQ(q.shed_total(), 3u);
}

TEST(ServeQueue, RunNextOnEmptyQueueIsANoOp) {
  JobQueue q(4);
  EXPECT_FALSE(q.run_next());
  EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeQueue, DrainWaitsForPoolWorkers) {
  JobQueue q(64);
  core::ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kJobs = 32;
  for (int i = 0; i < kJobs; ++i) {
    Job j;
    j.run = [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    };
    j.shed = [](ShedReason) {};
    ASSERT_TRUE(q.submit(std::move(j)));
    pool.post([&q] { q.run_next(); });
  }
  q.drain();
  EXPECT_EQ(done.load(), kJobs);
  EXPECT_EQ(q.depth(), 0u);
  pool.wait_idle();
}

TEST(ServeQueue, ConcurrentSubmitAndRunKeepsEveryJobAccountedFor) {
  JobQueue q(256);
  core::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> shed{0};
  constexpr int kPerThread = 64;
  constexpr int kThreads = 4;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Job j;
        j.priority = static_cast<Priority>(i % 3);
        j.run = [&ran] { ran.fetch_add(1, std::memory_order_relaxed); };
        j.shed = [&shed](ShedReason) {
          shed.fetch_add(1, std::memory_order_relaxed);
        };
        if (q.submit(std::move(j))) {
          pool.post([&q] { q.run_next(); });
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  q.drain();
  pool.wait_idle();
  // Exactly-once semantics: every submitted job either ran or was shed.
  EXPECT_EQ(ran.load() + shed.load(), kThreads * kPerThread);
  EXPECT_EQ(static_cast<std::uint64_t>(shed.load()), q.shed_total());
}

}  // namespace
