// The worked example from the paper's introduction, reproduced exactly.
#include <gtest/gtest.h>

#include <limits>

#include "models/batch_example.hpp"

namespace {

using namespace tags::models;

constexpr double kInf = std::numeric_limits<double>::infinity();
const std::vector<double> kJobs{4, 5, 6, 7, 3, 2};
const std::vector<double> kJobsHeavy{99, 5, 6, 7, 3, 2};

TEST(BatchExample, NoTimeoutGives17) {
  EXPECT_NEAR(tags_batch(kJobs, kInf).mean_response, 17.0, 1e-9);
}

TEST(BatchExample, ZeroTimeoutAlsoGives17) {
  // "if the timeout was zero, all the jobs would be served at the second
  // node and the average response time would be the same."
  EXPECT_NEAR(tags_batch(kJobs, 0.0).mean_response, 17.0, 1e-9);
}

TEST(BatchExample, Timeout15Gives185) {
  EXPECT_NEAR(tags_batch(kJobs, 1.5).mean_response, 18.5, 1e-9);
}

TEST(BatchExample, Timeout35Gives1667) {
  EXPECT_NEAR(tags_batch(kJobs, 3.5).mean_response, 100.0 / 6.0, 1e-9);
}

TEST(BatchExample, TimeoutJustAbove3Gives1567) {
  EXPECT_NEAR(tags_batch(kJobs, 3.0 + 1e-9).mean_response, 94.0 / 6.0, 1e-6);
}

TEST(BatchExample, OptimalTimeoutIsJustAbove3) {
  const auto best = optimise_batch_timeout(kJobs);
  EXPECT_NEAR(best.mean_response, 94.0 / 6.0, 1e-6);
  EXPECT_NEAR(best.timeout, 3.0, 1e-6);
}

TEST(BatchExample, HeavyJobNoTimeoutGives112) {
  EXPECT_NEAR(tags_batch(kJobsHeavy, kInf).mean_response, 112.0, 1e-9);
}

TEST(BatchExample, HeavyJobTimeout7Gives365) {
  // "the optimal timeout is (predictably) fractionally above 7 seconds,
  // where the average response time is 36.5 seconds".
  EXPECT_NEAR(tags_batch(kJobsHeavy, 7.0 + 1e-9).mean_response, 36.5, 1e-6);
  const auto best = optimise_batch_timeout(kJobsHeavy);
  EXPECT_NEAR(best.timeout, 7.0, 1e-6);
  EXPECT_NEAR(best.mean_response, 36.5, 1e-6);
}

TEST(BatchExample, CompletedAtNode1Counted) {
  const auto r = tags_batch(kJobs, 3.5);
  EXPECT_EQ(r.completed_at_node1, 2u);  // the 3- and 2-second jobs
  const auto all = tags_batch(kJobs, kInf);
  EXPECT_EQ(all.completed_at_node1, 6u);
}

TEST(BatchExample, ServiceRateScalesTime) {
  const auto slow = tags_batch(kJobs, kInf, 1.0);
  const auto fast = tags_batch(kJobs, kInf, 2.0);
  EXPECT_NEAR(fast.mean_response, slow.mean_response / 2.0, 1e-9);
}

TEST(BatchExample, PerJobResponsesOrdered) {
  const auto r = tags_batch(kJobs, 3.0 + 1e-9);
  // Node-2 jobs (the four large ones) finish at 7, 12, 18, 25.
  EXPECT_NEAR(r.response[0], 7.0, 1e-6);
  EXPECT_NEAR(r.response[1], 12.0, 1e-6);
  EXPECT_NEAR(r.response[2], 18.0, 1e-6);
  EXPECT_NEAR(r.response[3], 25.0, 1e-6);
  EXPECT_NEAR(r.response[4], 15.0, 1e-6);
  EXPECT_NEAR(r.response[5], 17.0, 1e-6);
}

}  // namespace
