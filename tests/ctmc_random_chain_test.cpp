// Property tests on randomly generated irreducible CTMCs: all steady-state
// solvers must agree with the dense-LU reference, measures must be
// consistent, and first-passage times must satisfy the one-step equations.
#include <gtest/gtest.h>

#include <random>

#include "ctmc/builder.hpp"
#include "ctmc/first_passage.hpp"
#include "ctmc/measures.hpp"
#include "ctmc/reachability.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/uniformization.hpp"

namespace {

using namespace tags;

/// Random chain guaranteed irreducible: a Hamiltonian cycle plus random
/// extra edges with random rates.
ctmc::Ctmc random_chain(unsigned n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> rate(0.1, 20.0);
  std::uniform_int_distribution<unsigned> pick(0, n - 1);
  ctmc::CtmcBuilder b;
  for (unsigned i = 0; i < n; ++i) {
    b.add(i, (i + 1) % n, rate(gen), "cycle");
  }
  for (unsigned e = 0; e < 3 * n; ++e) {
    const unsigned from = pick(gen);
    const unsigned to = pick(gen);
    if (from == to) continue;
    b.add(from, to, rate(gen), "extra");
  }
  return b.build();
}

class RandomChainTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomChainTest, AllSolversAgreeWithDenseLu) {
  const unsigned n = 5 + 7 * GetParam();
  const auto chain = random_chain(n, 1000 + GetParam());
  ASSERT_TRUE(ctmc::is_irreducible(chain));

  ctmc::SteadyStateOptions lu_opts;
  lu_opts.method = ctmc::SteadyStateMethod::kDenseLu;
  const auto reference = ctmc::steady_state(chain, lu_opts);
  ASSERT_TRUE(reference.converged);

  for (const auto method :
       {ctmc::SteadyStateMethod::kGaussSeidel, ctmc::SteadyStateMethod::kGmres,
        ctmc::SteadyStateMethod::kPower}) {
    ctmc::SteadyStateOptions opts;
    opts.method = method;
    opts.tol = 1e-11;
    const auto r = ctmc::steady_state(chain, opts);
    ASSERT_TRUE(r.converged) << "method " << static_cast<int>(method);
    EXPECT_NEAR(linalg::max_abs_diff(r.pi, reference.pi), 0.0, 1e-7)
        << "method " << static_cast<int>(method);
  }
}

TEST_P(RandomChainTest, StationarityUnderTransientEvolution) {
  const unsigned n = 5 + 7 * GetParam();
  const auto chain = random_chain(n, 2000 + GetParam());
  const auto ss = ctmc::steady_state(chain);
  ASSERT_TRUE(ss.converged);
  // pi is a fixed point of the transient operator.
  const auto evolved = ctmc::transient_distribution(chain, ss.pi, 0.37);
  EXPECT_NEAR(linalg::max_abs_diff(evolved, ss.pi), 0.0, 1e-8);
}

TEST_P(RandomChainTest, ThroughputsSumToTotalFlow) {
  const unsigned n = 5 + 7 * GetParam();
  const auto chain = random_chain(n, 3000 + GetParam());
  const auto ss = ctmc::steady_state(chain);
  ASSERT_TRUE(ss.converged);
  // Sum of per-label throughputs == expected total exit rate.
  double by_label = 0.0;
  for (std::size_t a = 0; a < chain.label_names().size(); ++a) {
    by_label += ctmc::throughput(chain, ss.pi, static_cast<ctmc::label_t>(a));
  }
  const auto exits = chain.exit_rates();
  const double total = ctmc::expected_reward(ss.pi, exits);
  EXPECT_NEAR(by_label, total, 1e-8 * (1.0 + total));
}

TEST_P(RandomChainTest, FirstPassageSatisfiesOneStepEquations) {
  const unsigned n = 5 + 7 * GetParam();
  const auto chain = random_chain(n, 4000 + GetParam());
  const auto target = [n](ctmc::index_t i) {
    return i == static_cast<ctmc::index_t>(n - 1);
  };
  const auto fp = ctmc::mean_first_passage(chain, target);
  ASSERT_TRUE(fp.converged);
  // For non-target i: sum_j q_ij h_j = -1 (h extended by 0 on the target).
  const auto& q = chain.generator();
  for (ctmc::index_t i = 0; i + 1 < static_cast<ctmc::index_t>(n); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    double acc = 0.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      acc += vs[k] * fp.hitting_time[static_cast<std::size_t>(cs[k])];
    }
    EXPECT_NEAR(acc, -1.0, 1e-7) << "state " << i;
  }
}

TEST_P(RandomChainTest, TransientMassConserved) {
  const unsigned n = 5 + 7 * GetParam();
  const auto chain = random_chain(n, 5000 + GetParam());
  linalg::Vec pi0(n, 0.0);
  pi0[0] = 1.0;
  for (double t : {0.01, 0.3, 2.0}) {
    const auto pit = ctmc::transient_distribution(chain, pi0, t);
    EXPECT_NEAR(linalg::sum(pit), 1.0, 1e-10);
    for (double v : pit) EXPECT_GE(v, -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomChainTest, ::testing::Range(0u, 8u));

}  // namespace
