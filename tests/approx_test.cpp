// Section 4 approximations: root finders, balance equations, and the
// M/M/1/K decomposition estimate checked against the exact model.
#include <gtest/gtest.h>

#include <cmath>

#include "approx/balance.hpp"
#include "approx/mm1k_composition.hpp"
#include "approx/optimizer.hpp"
#include "approx/roots.hpp"
#include "models/tags.hpp"

namespace {

using namespace tags;
using namespace tags::approx;

TEST(Roots, BisectFindsSqrt2) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Roots, BisectRequiresBracket) {
  const auto r = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Roots, BracketAndBisectExpands) {
  const auto r = bracket_and_bisect([](double x) { return std::log(x) - 3.0; }, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::exp(3.0), 1e-6);
}

TEST(Roots, GoldenSectionOnParabola) {
  const auto r = golden_section([](double x) { return (x - 3.5) * (x - 3.5); }, 0.0, 10.0);
  EXPECT_NEAR(r.x, 3.5, 1e-6);
}

TEST(Roots, GridThenGoldenEscapesLocalStructure) {
  // Bimodal: global minimum at x ~ 8.
  const auto f = [](double x) {
    return std::min((x - 2.0) * (x - 2.0) + 1.0, (x - 8.0) * (x - 8.0));
  };
  const auto r = grid_then_golden(f, 0.0, 10.0, 40);
  EXPECT_NEAR(r.x, 8.0, 1e-4);
}

TEST(Balance, ExponentialGoldenRatio) {
  // T = mu (sqrt(5)-1)/2: "approximately 6.17" for mu = 10.
  EXPECT_NEAR(balance_timeout_rate_exponential(10.0), 6.180339887, 1e-8);
  EXPECT_NEAR(balance_timeout_rate_exponential(1.0), 0.6180339887, 1e-9);
}

TEST(Balance, ErlangK1MatchesExponential) {
  EXPECT_NEAR(balance_timeout_rate_erlang(10.0, 1),
              balance_timeout_rate_exponential(10.0), 1e-9);
}

TEST(Balance, EffectiveRateIncreasesWithOrderTowardsNine) {
  // Paper: "the total timeout rate will increase, tending to a value of
  // around 9 when mu = 10".
  double prev = 0.0;
  for (unsigned k : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const double t = balance_timeout_rate_erlang(10.0, k);
    const double effective = t / k;
    EXPECT_GT(effective, prev);
    prev = effective;
  }
  EXPECT_NEAR(prev, 8.7, 0.2);  // k = 64 is already close to the limit
}

TEST(Balance, OccupancyClosedFormLimits) {
  // t -> 0: never times out, E[min] = 1/mu. Large t: -> 0.
  EXPECT_NEAR(mean_occupancy_exp_vs_erlang(10.0, 7, 1e-9), 0.1, 1e-6);
  EXPECT_LT(mean_occupancy_exp_vs_erlang(10.0, 7, 1e6), 1e-4);
  // Monotone decreasing in t.
  double prev = 1.0;
  for (double t : {1.0, 5.0, 20.0, 80.0, 300.0}) {
    const double occ = mean_occupancy_exp_vs_erlang(10.0, 7, t);
    EXPECT_LT(occ, prev);
    prev = occ;
  }
}

TEST(Composition, EstimateTracksExactModel) {
  // The decomposition is an approximation; require agreement within 20% on
  // the total queue length over the interesting t range.
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.n = 6;
  p.k1 = p.k2 = 10;
  for (double t : {30.0, 50.0, 70.0, 100.0}) {
    p.t = t;
    const auto est = estimate_tags(p);
    const auto exact = models::TagsModel(p).metrics();
    EXPECT_NEAR(est.metrics.mean_total, exact.mean_total,
                0.2 * exact.mean_total + 0.05)
        << "t=" << t;
    EXPECT_NEAR(est.metrics.throughput, exact.throughput, 0.05 * p.lambda);
  }
}

TEST(Composition, EstimatedOptimumNearExactOptimum) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.n = 6;
  p.k1 = p.k2 = 10;
  const double t_est = estimate_optimal_t_queue_length(p, 5.0, 200.0);
  const auto exact = optimise_tags_t_integer(p, Objective::kMinQueueLength, 20, 90);
  // The estimate should land in the right neighbourhood (the paper's whole
  // point: a cheap way to seed the timeout choice).
  EXPECT_NEAR(t_est, exact.t, 0.5 * exact.t);
  // Using the estimated t must cost little vs the true optimum.
  p.t = t_est;
  const auto at_est = models::TagsModel(p).metrics();
  EXPECT_LT(at_est.mean_total, exact.metrics.mean_total * 1.1);
}

TEST(Optimizer, IntegerScanFindsInteriorOptimum) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.n = 4;
  p.k1 = p.k2 = 6;
  const auto best = optimise_tags_t_integer(p, Objective::kMinQueueLength, 10, 100);
  EXPECT_GT(best.t, 10.0);
  EXPECT_LT(best.t, 100.0);
  // Neighbours must not beat the reported optimum.
  for (double dt : {-1.0, 1.0}) {
    p.t = best.t + dt;
    EXPECT_GE(models::TagsModel(p).metrics().mean_total,
              best.metrics.mean_total - 1e-9);
  }
}

TEST(Optimizer, ObjectivesDiffer) {
  // The paper notes different metrics optimise at different t.
  models::TagsParams p;
  p.lambda = 9.0;
  p.mu = 10.0;
  p.n = 4;
  p.k1 = p.k2 = 5;
  const auto q = optimise_tags_t_integer(p, Objective::kMinQueueLength, 5, 120);
  const auto thr = optimise_tags_t_integer(p, Objective::kMaxThroughput, 5, 120);
  EXPECT_GE(thr.metrics.throughput, q.metrics.throughput - 1e-9);
  EXPECT_LE(q.metrics.mean_total, thr.metrics.mean_total + 1e-9);
}

TEST(Optimizer, ContinuousRefinementConsistent) {
  models::TagsParams p;
  p.lambda = 5.0;
  p.mu = 10.0;
  p.n = 3;
  p.k1 = p.k2 = 4;
  const auto cont = optimise_tags_t(p, Objective::kMinQueueLength, 10.0, 120.0);
  const auto integer = optimise_tags_t_integer(p, Objective::kMinQueueLength, 10, 120);
  EXPECT_NEAR(cont.t, integer.t, 2.0);
  EXPECT_LE(cont.metrics.mean_total, integer.metrics.mean_total + 1e-6);
}

}  // namespace
