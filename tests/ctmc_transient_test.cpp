// Uniformization (transient analysis) against closed-form two-state chains
// and convergence to the stationary distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/builder.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/uniformization.hpp"

namespace {

using namespace tags;

ctmc::Ctmc two_state(double a, double b) {
  ctmc::CtmcBuilder builder;
  builder.add(0, 1, a);
  builder.add(1, 0, b);
  return builder.build();
}

/// Closed form for the 0->1 rate a, 1->0 rate b chain started in state 0:
/// p0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
double p0_analytic(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

class TwoStateTransient : public ::testing::TestWithParam<double> {};

TEST_P(TwoStateTransient, MatchesClosedForm) {
  const double t = GetParam();
  const double a = 2.0, b = 5.0;
  const auto chain = two_state(a, b);
  const linalg::Vec pi0{1.0, 0.0};
  const linalg::Vec pit = ctmc::transient_distribution(chain, pi0, t);
  EXPECT_NEAR(pit[0], p0_analytic(a, b, t), 1e-10) << "t=" << t;
  EXPECT_NEAR(pit[0] + pit[1], 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Horizons, TwoStateTransient,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0, 3.0, 10.0, 100.0));

TEST(Transient, LongHorizonReachesSteadyState) {
  ctmc::CtmcBuilder b;
  b.add(0, 1, 1.0);
  b.add(1, 2, 2.0);
  b.add(2, 0, 3.0);
  const auto chain = b.build();
  const auto ss = ctmc::steady_state(chain);
  linalg::Vec pi0{1.0, 0.0, 0.0};
  const auto pit = ctmc::transient_distribution(chain, pi0, 200.0);
  EXPECT_NEAR(linalg::max_abs_diff(pit, ss.pi), 0.0, 1e-9);
}

TEST(Transient, TrajectoryIsConsistentWithSingleShots) {
  const auto chain = two_state(1.0, 4.0);
  const linalg::Vec pi0{0.3, 0.7};
  const std::vector<double> times{0.1, 0.5, 2.0};
  const auto traj = ctmc::transient_trajectory(chain, pi0, times);
  ASSERT_EQ(traj.size(), 3u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto direct = ctmc::transient_distribution(chain, pi0, times[i]);
    EXPECT_NEAR(linalg::max_abs_diff(traj[i], direct), 0.0, 1e-9);
  }
}

TEST(Transient, LargeRatesAreStable) {
  // Stiff chain: uniformization must split the horizon.
  const auto chain = two_state(5000.0, 3000.0);
  const linalg::Vec pi0{1.0, 0.0};
  const auto pit = ctmc::transient_distribution(chain, pi0, 2.0);
  EXPECT_NEAR(pit[0], 3000.0 / 8000.0, 1e-8);
}

TEST(Transient, ZeroHorizonIsIdentity) {
  const auto chain = two_state(1.0, 1.0);
  const linalg::Vec pi0{0.25, 0.75};
  const auto pit = ctmc::transient_distribution(chain, pi0, 0.0);
  EXPECT_EQ(pit, pi0);
}

}  // namespace
