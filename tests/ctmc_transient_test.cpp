// Uniformization (transient analysis) against closed-form two-state chains,
// convergence to the stationary distribution, a dense matrix-exponential
// differential oracle, and the large-Lambda*t underflow regression.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ctmc/builder.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/uniformization.hpp"
#include "linalg/dense.hpp"

namespace {

using namespace tags;

ctmc::Ctmc two_state(double a, double b) {
  ctmc::CtmcBuilder builder;
  builder.add(0, 1, a);
  builder.add(1, 0, b);
  return builder.build();
}

/// Closed form for the 0->1 rate a, 1->0 rate b chain started in state 0:
/// p0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
double p0_analytic(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

class TwoStateTransient : public ::testing::TestWithParam<double> {};

TEST_P(TwoStateTransient, MatchesClosedForm) {
  const double t = GetParam();
  const double a = 2.0, b = 5.0;
  const auto chain = two_state(a, b);
  const linalg::Vec pi0{1.0, 0.0};
  const linalg::Vec pit = ctmc::transient_distribution(chain, pi0, t);
  EXPECT_NEAR(pit[0], p0_analytic(a, b, t), 1e-10) << "t=" << t;
  EXPECT_NEAR(pit[0] + pit[1], 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Horizons, TwoStateTransient,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0, 3.0, 10.0, 100.0));

TEST(Transient, LongHorizonReachesSteadyState) {
  ctmc::CtmcBuilder b;
  b.add(0, 1, 1.0);
  b.add(1, 2, 2.0);
  b.add(2, 0, 3.0);
  const auto chain = b.build();
  const auto ss = ctmc::steady_state(chain);
  linalg::Vec pi0{1.0, 0.0, 0.0};
  const auto pit = ctmc::transient_distribution(chain, pi0, 200.0);
  EXPECT_NEAR(linalg::max_abs_diff(pit, ss.pi), 0.0, 1e-9);
}

TEST(Transient, TrajectoryIsConsistentWithSingleShots) {
  const auto chain = two_state(1.0, 4.0);
  const linalg::Vec pi0{0.3, 0.7};
  const std::vector<double> times{0.1, 0.5, 2.0};
  const auto traj = ctmc::transient_trajectory(chain, pi0, times);
  ASSERT_EQ(traj.size(), 3u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto direct = ctmc::transient_distribution(chain, pi0, times[i]);
    EXPECT_NEAR(linalg::max_abs_diff(traj[i], direct), 0.0, 1e-9);
  }
}

TEST(Transient, LargeRatesAreStable) {
  // Stiff chain: uniformization must split the horizon.
  const auto chain = two_state(5000.0, 3000.0);
  const linalg::Vec pi0{1.0, 0.0};
  const auto pit = ctmc::transient_distribution(chain, pi0, 2.0);
  EXPECT_NEAR(pit[0], 3000.0 / 8000.0, 1e-8);
}

TEST(Transient, ZeroHorizonIsIdentity) {
  const auto chain = two_state(1.0, 1.0);
  const linalg::Vec pi0{0.25, 0.75};
  const auto pit = ctmc::transient_distribution(chain, pi0, 0.0);
  EXPECT_EQ(pit, pi0);
}

// Regression: Lambda*t ~ 1.6e6 in one horizon. The naive Poisson recurrence
// starts from exp(-Lambda*dt), which underflows to 0 for Lambda*dt > ~745
// and silently returned an all-zero "distribution"; Fox-Glynn weights keep
// the full mass.
TEST(Transient, HugeLambdaTKeepsProbabilityMass) {
  const double a = 5e5, b = 3e5;
  const auto chain = two_state(a, b);
  const linalg::Vec pi0{1.0, 0.0};
  const auto res = ctmc::transient_distribution_certified(chain, pi0, 2.0);
  EXPECT_TRUE(res.certificate.ok()) << res.certificate.failed_check();
  EXPECT_NEAR(res.pi[0] + res.pi[1], 1.0, 1e-12);
  EXPECT_NEAR(res.pi[0], b / (a + b), 1e-8);
}

// Same regression at the single-step level: cap max_step_jumps well above
// the exp underflow threshold so one step must absorb Lambda*dt ~ 2000.
TEST(Transient, SingleStepBeyondExpUnderflowIsExact) {
  const double a = 800.0, b = 1200.0;
  const auto chain = two_state(a, b);
  const linalg::Vec pi0{1.0, 0.0};
  ctmc::TransientOptions opts;
  opts.max_step_jumps = 5000.0;  // one step, q ~ 2080 > 745
  const auto pit = ctmc::transient_distribution(chain, pi0, 1.0, opts);
  EXPECT_NEAR(pit[0] + pit[1], 1.0, 1e-12);
  EXPECT_NEAR(pit[0], p0_analytic(a, b, 1.0), 1e-9);
}

TEST(Transient, CertifiedResultReportsSteps) {
  const auto chain = two_state(2.0, 5.0);
  const linalg::Vec pi0{1.0, 0.0};
  const auto res = ctmc::transient_distribution_certified(chain, pi0, 1.5);
  EXPECT_TRUE(res.certificate.ok());
  EXPECT_GE(res.steps, 1);
  EXPECT_NEAR(res.certificate.mass_error, 0.0, 1e-12);
}

/// Dense exp(Q t) by scaling-and-squaring on a Taylor series — an oracle
/// independent of uniformization, viable for the <= 6-state chains below.
linalg::DenseMatrix dense_expm(const linalg::CsrMatrix& q, double t) {
  const std::size_t n = static_cast<std::size_t>(q.rows());
  linalg::DenseMatrix a(n, n);
  double max_abs = 0.0;
  for (linalg::index_t i = 0; i < q.rows(); ++i) {
    const auto cs = q.row_cols(i);
    const auto vs = q.row_vals(i);
    for (std::size_t k = 0; k < cs.size(); ++k) {
      a(static_cast<std::size_t>(i), static_cast<std::size_t>(cs[k])) = vs[k] * t;
      max_abs = std::max(max_abs, std::abs(vs[k] * t));
    }
  }
  int squarings = 0;
  while (max_abs > 0.5) {
    max_abs /= 2.0;
    ++squarings;
  }
  const double scale = std::ldexp(1.0, -squarings);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) *= scale;
  }
  // exp(A) = sum A^k / k! — converges fast once ||A|| <= 0.5.
  linalg::DenseMatrix result(n, n), term(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    result(i, i) = 1.0;
    term(i, i) = 1.0;
  }
  for (int k = 1; k <= 40; ++k) {
    linalg::DenseMatrix next(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t m = 0; m < n; ++m) s += term(i, m) * a(m, j);
        next(i, j) = s / static_cast<double>(k);
      }
    }
    term = next;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) result(i, j) += term(i, j);
    }
  }
  for (int s = 0; s < squarings; ++s) {
    linalg::DenseMatrix sq(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t m = 0; m < n; ++m) acc += result(i, m) * result(m, j);
        sq(i, j) = acc;
      }
    }
    result = sq;
  }
  return result;
}

TEST(Transient, MatchesDenseMatrixExponentialOnRandomSmallChains) {
  std::mt19937 gen(777);
  std::uniform_real_distribution<double> rate(0.1, 8.0);
  std::uniform_real_distribution<double> horizon(0.05, 4.0);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 2 + static_cast<int>(gen() % 5);  // 2..6 states
    ctmc::CtmcBuilder b;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && (gen() % 3u) != 0u) b.add(i, j, rate(gen));
      }
      b.add(i, (i + 1) % n, rate(gen));  // keep it irreducible
    }
    const auto chain = b.build();
    const double t = horizon(gen);
    linalg::Vec pi0(static_cast<std::size_t>(n), 0.0);
    pi0[gen() % static_cast<unsigned>(n)] = 1.0;

    const auto pit = ctmc::transient_distribution(chain, pi0, t);
    const auto p = dense_expm(chain.generator(), t);
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
      double expected = 0.0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
        expected += pi0[i] * p(i, j);
      }
      EXPECT_NEAR(pit[j], expected, 1e-10) << "trial " << trial << " state " << j;
    }
  }
}

}  // namespace
