// CtmcBuilder edge cases: duplicate (from, to) pairs must coalesce into a
// single summed CSR entry, and self-loops must stay out of the generator
// while still contributing to label throughput.
#include <gtest/gtest.h>

#include "ctmc/builder.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/measures.hpp"

namespace {

using namespace tags;

TEST(CtmcBuilder, DuplicateTransitionsCoalesceIntoSummedRate) {
  ctmc::CtmcBuilder b;
  const auto a = b.label("a");
  const auto c = b.label("c");
  b.add(0, 1, 1.25, a);
  b.add(0, 1, 2.50, c);  // same edge, different label
  b.add(0, 1, 0.25, a);  // same edge, same label
  b.add(1, 0, 3.0, a);
  const ctmc::Ctmc chain = b.build();

  // The labelled transition list keeps all three records...
  ASSERT_EQ(chain.transitions().size(), 4u);
  // ...but the generator has one coalesced off-diagonal per (from, to).
  const auto& q = chain.generator();
  EXPECT_EQ(q.row_cols(0).size(), 2u);  // diagonal + coalesced (0,1)
  EXPECT_DOUBLE_EQ(q.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(q.at(0, 0), -4.0);
  EXPECT_DOUBLE_EQ(q.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(q.at(1, 1), -3.0);
}

TEST(CtmcBuilder, SelfLoopsStayOutOfGeneratorButCountTowardThroughput) {
  ctmc::CtmcBuilder b;
  const auto loss = b.label("loss");
  const auto step = b.label("step");
  b.add(0, 1, 2.0, step);
  b.add(1, 0, 5.0, step);
  b.add(1, 1, 7.0, loss);  // e.g. a blocked arrival
  const ctmc::Ctmc chain = b.build();

  const auto& q = chain.generator();
  // Row 1 holds only the (1,0) off-diagonal and its balancing diagonal:
  // the self-loop contributes no generator mass (it would cancel anyway).
  EXPECT_DOUBLE_EQ(q.at(1, 1), -5.0);
  EXPECT_DOUBLE_EQ(q.at(1, 0), 5.0);

  // But the event still has a rate: throughput sees the self-loop.
  const std::vector<double> pi = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(ctmc::throughput(chain, pi, "loss"), 0.7 * 7.0);
  EXPECT_DOUBLE_EQ(ctmc::throughput(chain, pi, "step"), 0.3 * 2.0 + 0.7 * 5.0);
}

}  // namespace
