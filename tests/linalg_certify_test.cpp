// Result certification: certificates must reflect the actual state of a
// solution vector (finiteness, true residual, probability mass), and the
// Hager 1-norm condition estimator must agree with exactly computable
// cases and lower-bound the truth in general.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "linalg/certify.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace {

using namespace tags::linalg;

CsrMatrix identity_csr(std::size_t n) {
  CooMatrix coo(static_cast<index_t>(n), static_cast<index_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(static_cast<index_t>(i), static_cast<index_t>(i), 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Certify, ExactSolutionPasses) {
  const CsrMatrix a = identity_csr(4);
  const Vec x{0.1, 0.2, 0.3, 0.4};
  const Certificate cert = certify_solution(a, x, x, {});
  EXPECT_TRUE(cert.ok()) << cert.failed_check();
  EXPECT_TRUE(cert.finite);
  EXPECT_DOUBLE_EQ(cert.residual, 0.0);
  EXPECT_NEAR(cert.mass_error, 0.0, 1e-15);
}

TEST(Certify, NonFiniteEntriesFail) {
  const CsrMatrix a = identity_csr(3);
  const Vec x{0.5, std::numeric_limits<double>::quiet_NaN(), 0.5};
  const Vec b(3, 0.0);
  const Certificate cert = certify_solution(a, x, b, {});
  EXPECT_FALSE(cert.ok());
  EXPECT_FALSE(cert.finite);
  EXPECT_STREQ(cert.failed_check(), "finite");
}

TEST(Certify, ResidualAboveBoundFails) {
  const CsrMatrix a = identity_csr(2);
  const Vec x{0.9, 0.1};  // mass fine, but A x != b
  const Vec b{0.5, 0.5};
  CertifyOptions opts;
  opts.residual_bound = 1e-3;
  const Certificate cert = certify_solution(a, x, b, opts);
  EXPECT_FALSE(cert.ok());
  EXPECT_STREQ(cert.failed_check(), "residual");
  EXPECT_NEAR(cert.residual, 0.4, 1e-15);
}

TEST(Certify, MassDriftFails) {
  const CsrMatrix a = identity_csr(2);
  const Vec x{0.6, 0.6};
  const Certificate cert = certify_solution(a, x, x, {});
  EXPECT_FALSE(cert.ok());
  EXPECT_STREQ(cert.failed_check(), "mass");
  EXPECT_NEAR(cert.mass_error, 0.2, 1e-15);
}

TEST(Certify, MassCheckCanBeDisabled) {
  const CsrMatrix a = identity_csr(2);
  const Vec x{2.0, 3.0};  // a general linear system, not a distribution
  CertifyOptions opts;
  opts.check_mass = false;
  const Certificate cert = certify_solution(a, x, x, opts);
  EXPECT_TRUE(cert.ok()) << cert.failed_check();
}

TEST(Certify, ConditionLimitRejectsHopelessSystems) {
  const CsrMatrix a = identity_csr(2);
  const Vec x{0.5, 0.5};
  CertifyOptions opts;
  EXPECT_FALSE(certify_solution(a, x, x, opts, 1e20).ok());
  EXPECT_STREQ(certify_solution(a, x, x, opts, 1e20).failed_check(), "condition");
  // 0 means "not estimated": never a failure.
  EXPECT_TRUE(certify_solution(a, x, x, opts, 0.0).ok());
  // NaN estimates must fail, not slip through a comparison.
  EXPECT_FALSE(
      certify_solution(a, x, x, opts, std::numeric_limits<double>::quiet_NaN()).ok());
  // limit <= 0 disables the check entirely.
  opts.condition_limit = 0.0;
  EXPECT_TRUE(certify_solution(a, x, x, opts, 1e20).ok());
}

TEST(CertifyDistribution, FlagsZeroAndNonFiniteVectors) {
  const Vec zeros(4, 0.0);
  EXPECT_FALSE(certify_distribution(zeros, {}).ok());
  const Vec good{0.25, 0.25, 0.25, 0.25};
  EXPECT_TRUE(certify_distribution(good, {}).ok());
  Vec bad = good;
  bad[2] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(certify_distribution(bad, {}).ok());
}

TEST(Norm1, DenseAndCsrAgree) {
  DenseMatrix d(2, 2);
  d(0, 0) = 1.0;
  d(0, 1) = -3.0;
  d(1, 0) = 2.0;
  d(1, 1) = 0.5;
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, -3.0);
  coo.add(1, 0, 2.0);
  coo.add(1, 1, 0.5);
  const CsrMatrix s = CsrMatrix::from_coo(coo);
  EXPECT_DOUBLE_EQ(norm1(d), 3.5);  // max column sum: |-3| + |0.5|
  EXPECT_DOUBLE_EQ(norm1(s), 3.5);
}

TEST(Condest, ExactOnDiagonalMatrices) {
  // cond_1(diag(d)) = max|d| / min|d|, and Hager is exact for diagonal A.
  const Vec d{4.0, 0.5, 2.0, 1e-3};
  const std::size_t n = d.size();
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = d[i];
  const double a_norm = norm1(a);
  const LuFactorization f = lu_factor(std::move(a));
  ASSERT_FALSE(f.singular());
  EXPECT_NEAR(inverse_norm1_estimate(f), 1.0 / 1e-3, 1e-9);
  EXPECT_NEAR(condest_1(a_norm, f), 4.0 / 1e-3, 1e-6);
}

TEST(Condest, LowerBoundsAndTracksTrueConditionOnRandomMatrices) {
  std::mt19937 gen(1234);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8;
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(gen);
      a(i, i) += 4.0;  // keep it comfortably nonsingular
    }
    DenseMatrix a_copy = a;
    const LuFactorization f = lu_factor(std::move(a_copy));
    ASSERT_FALSE(f.singular());
    // Exact ||A^{-1}||_1 by solving against every unit vector.
    double exact = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      Vec e(n, 0.0);
      e[j] = 1.0;
      const Vec col = f.solve(e);
      double s = 0.0;
      for (double v : col) s += std::abs(v);
      exact = std::max(exact, s);
    }
    const double est = inverse_norm1_estimate(f);
    EXPECT_LE(est, exact * (1.0 + 1e-12)) << "trial " << trial;
    EXPECT_GE(est, exact / 3.0) << "trial " << trial;  // Hager rarely off by >2x
  }
}

TEST(Condest, SingularFactorizationIsInfinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const LuFactorization f = lu_factor(std::move(a));
  ASSERT_TRUE(f.singular());
  EXPECT_TRUE(std::isinf(inverse_norm1_estimate(f)));
}

TEST(CompensatedKernels, RecoverMassPlainSummationLoses) {
  // 1 followed by many tiny terms: plain accumulation drops them all.
  const std::size_t m = 1000;
  Vec v(m + 1, 1e-18);
  v[0] = 1.0;
  double plain = 0.0;
  for (double x : v) plain += x;
  EXPECT_DOUBLE_EQ(plain, 1.0);  // the loss this kernel exists to fix
  EXPECT_NEAR(sum_compensated(v), 1.0 + 1e-15, 3e-16);
  Vec ones(m + 1, 1.0);
  EXPECT_NEAR(dot_compensated(v, ones), 1.0 + 1e-15, 3e-16);
}

#if TAGS_OBS_ENABLED
TEST(Certify, FailuresAreCountedAndTraced) {
  tags::obs::Counter checks("numerics.certify.checks");
  tags::obs::Counter failures("numerics.certify.failures");
  const std::uint64_t c0 = checks.value();
  const std::uint64_t f0 = failures.value();
  const CsrMatrix a = identity_csr(2);
  const Vec good{0.5, 0.5};
  const Vec bad{0.9, 0.9};
  (void)certify_solution(a, good, good, {});
  (void)certify_solution(a, bad, bad, {});
  EXPECT_EQ(checks.value(), c0 + 2);
  EXPECT_EQ(failures.value(), f0 + 1);
}
#endif

}  // namespace
