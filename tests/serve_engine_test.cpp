// The engine behind tags_server: cache miss-then-hit, byte-identity with
// the one-shot path, warm-started rebinds, deterministic deadline
// shedding, error responses, and LRU eviction — all through the same
// submit() the socket server drives.
#include <gtest/gtest.h>

#include <future>
#include <string>

#include "serve/engine.hpp"
#include "serve/jsonv.hpp"

namespace {

using namespace tags;
using serve::Engine;
using serve::EngineOptions;
using serve::Request;

core::ScenarioRequest small_scenario(double t = 50.0) {
  core::ScenarioRequest s;
  s.policy = core::PolicyKind::kTags;
  s.lambda = 5.0;
  s.mu = 10.0;
  s.t = t;
  s.n = 2;
  s.k1 = 3;
  s.k2 = 3;
  return s;
}

Request solve_request(const core::ScenarioRequest& scenario, std::string id,
                      bool want_pi = false) {
  Request req;
  req.op = serve::RequestOp::kSolve;
  req.id = std::move(id);
  req.scenario = scenario;
  req.want_pi = want_pi;
  return req;
}

std::string submit_and_wait(Engine& engine, Request req) {
  std::promise<std::string> promise;
  auto future = promise.get_future();
  engine.submit(std::move(req), [&promise](std::string line) {
    promise.set_value(std::move(line));
  });
  return future.get();
}

std::string result_part(const std::string& line) {
  const auto pos = line.find("\"result\":");
  EXPECT_NE(pos, std::string::npos) << line;
  return pos == std::string::npos ? std::string() : line.substr(pos);
}

TEST(ServeEngine, MissThenHitServesIdenticalBytes) {
  Engine engine(EngineOptions{.threads = 2});
  const auto scenario = small_scenario();

  const std::string first =
      submit_and_wait(engine, solve_request(scenario, "a", true));
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_size, 1u);

  const std::string second =
      submit_and_wait(engine, solve_request(scenario, "b", true));
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  EXPECT_EQ(result_part(first), result_part(second));
  stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(ServeEngine, ColdServedAnswerEqualsOneShotByteForByte) {
  Engine engine(EngineOptions{.threads = 2});
  const auto scenario = small_scenario();
  const std::string served =
      submit_and_wait(engine, solve_request(scenario, "x", true));

  const serve::Answer oneshot = Engine::evaluate_now(scenario);
  const std::string oneshot_line =
      serve::serialize_answer("x", oneshot, serve::Served{}, true);
  EXPECT_EQ(result_part(served), result_part(oneshot_line));
  EXPECT_TRUE(oneshot.converged);
  EXPECT_GT(oneshot.n_states, 0);
}

TEST(ServeEngine, SameStructureDifferentRatesSolvesWarm) {
  Engine engine(EngineOptions{.threads = 1});
  const std::string cold =
      submit_and_wait(engine, solve_request(small_scenario(50.0), "c"));
  EXPECT_NE(cold.find("\"warm\":false"), std::string::npos) << cold;
  const std::string warm =
      submit_and_wait(engine, solve_request(small_scenario(55.0), "w"));
  EXPECT_NE(warm.find("\"warm\":true"), std::string::npos) << warm;
  EXPECT_NE(warm.find("\"cached\":false"), std::string::npos) << warm;
  // Same frozen sparsity: identical structure digest in both payloads.
  const auto structure_of = [](const std::string& line) {
    const auto doc = serve::parse_json(result_part(line));
    return doc.has_value() ? doc->string_or("structure", "") : std::string();
  };
  EXPECT_EQ(structure_of(cold), structure_of(warm));
  EXPECT_EQ(engine.stats().slots, 1u);
}

TEST(ServeEngine, ZeroDeadlineIsShedBeforeSolving) {
  Engine engine(EngineOptions{.threads = 1});
  Request req = solve_request(small_scenario(), "late");
  req.deadline_ms = 0.0;  // already expired at admission: deterministic shed
  const std::string response = submit_and_wait(engine, std::move(req));
  EXPECT_NE(response.find("\"shed\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"reason\":\"deadline\""), std::string::npos);
  EXPECT_NE(response.find("\"id\":\"late\""), std::string::npos);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.jobs_shed, 1u);
  EXPECT_EQ(stats.deadline_missed, 1u);
  EXPECT_EQ(stats.cache_misses, 0u);  // shed requests never touch the cache
}

TEST(ServeEngine, InvalidParametersProduceErrorResponse) {
  Engine engine(EngineOptions{.threads = 1});
  auto scenario = small_scenario();
  scenario.lambda = -1.0;  // models reject this with std::invalid_argument
  const std::string response =
      submit_and_wait(engine, solve_request(scenario, "bad"));
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"error\":"), std::string::npos) << response;
  EXPECT_NE(response.find("\"id\":\"bad\""), std::string::npos);
}

TEST(ServeEngine, CapacityOneCacheEvicts) {
  Engine engine(EngineOptions{.threads = 1, .cache_capacity = 1});
  const auto a = small_scenario(50.0);
  const auto b = small_scenario(60.0);
  (void)submit_and_wait(engine, solve_request(a, "1"));
  (void)submit_and_wait(engine, solve_request(b, "2"));  // evicts a
  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_evicted, 1u);
  EXPECT_EQ(stats.cache_size, 1u);
  // `a` was evicted, so asking again misses and re-solves.
  const std::string again = submit_and_wait(engine, solve_request(a, "3"));
  EXPECT_NE(again.find("\"cached\":false"), std::string::npos) << again;
  stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_evicted, 2u);
}

TEST(ServeEngine, ClosedFormPoliciesCacheToo) {
  Engine engine(EngineOptions{.threads = 1});
  auto scenario = small_scenario();
  scenario.policy = core::PolicyKind::kRandom;
  const std::string first =
      submit_and_wait(engine, solve_request(scenario, "r1"));
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  EXPECT_NE(first.find("\"method\":\"closed-form\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"structure\":\"0000000000000000\""), std::string::npos);
  const std::string second =
      submit_and_wait(engine, solve_request(scenario, "r2"));
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  EXPECT_EQ(result_part(first), result_part(second));
}

}  // namespace
