// The scenario-request layer shared by the figure drivers and the analysis
// server: policy naming, baseline derivation, the rate-digest contract
// (hash only what the policy reads), and ScenarioSlot rebind/warm-start
// behaviour.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/scenario.hpp"

namespace {

using namespace tags;
using core::PolicyKind;
using core::ScenarioRequest;

core::ScenarioRequest small_tags_request() {
  core::ScenarioRequest req;
  req.policy = PolicyKind::kTags;
  req.lambda = 5.0;
  req.mu = 10.0;
  req.t = 50.0;
  req.n = 2;
  req.k1 = 3;
  req.k2 = 3;
  return req;
}

TEST(CoreScenarioRequest, PolicyNamesRoundTrip) {
  const PolicyKind kinds[] = {
      PolicyKind::kTags,          PolicyKind::kTagsH2,
      PolicyKind::kRandom,        PolicyKind::kRandomH2,
      PolicyKind::kRoundRobin,    PolicyKind::kShortestQueue,
      PolicyKind::kShortestQueueH2};
  for (PolicyKind kind : kinds) {
    const auto name = core::to_string(kind);
    const auto parsed = core::policy_from_string(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
  EXPECT_FALSE(core::policy_from_string("no_such_policy").has_value());
  EXPECT_FALSE(core::policy_from_string("").has_value());
}

TEST(CoreScenarioRequest, RequestForLiftsParams) {
  models::TagsParams p;
  p.lambda = 7.0;
  p.mu = 11.0;
  p.t = 42.0;
  p.n = 4;
  p.k1 = 8;
  p.k2 = 9;
  const auto req = core::request_for(p);
  EXPECT_EQ(req.policy, PolicyKind::kTags);
  EXPECT_EQ(req.lambda, 7.0);
  EXPECT_EQ(req.mu, 11.0);
  EXPECT_EQ(req.t, 42.0);
  EXPECT_EQ(req.n, 4u);
  EXPECT_EQ(req.k1, 8u);
  EXPECT_EQ(req.k2, 9u);

  const auto h2 = models::TagsH2Params::from_ratio(11.0, 0.95, 100.0, 0.1, 20.0);
  const auto req2 = core::request_for(h2);
  EXPECT_EQ(req2.policy, PolicyKind::kTagsH2);
  EXPECT_EQ(req2.lambda, h2.lambda);
  EXPECT_EQ(req2.alpha, h2.alpha);
  EXPECT_EQ(req2.mu1, h2.mu1);
  EXPECT_EQ(req2.mu2, h2.mu2);
  EXPECT_EQ(req2.t, h2.t);
}

TEST(CoreScenarioRequest, BaselineInheritsTheRightSlice) {
  auto base = small_tags_request();
  base.lambda = 6.5;
  base.mu = 12.0;
  base.k1 = 7;
  const auto random = core::baseline_for(PolicyKind::kRandom, base);
  EXPECT_EQ(random.policy, PolicyKind::kRandom);
  EXPECT_EQ(random.lambda, 6.5);
  EXPECT_EQ(random.mu, 12.0);
  EXPECT_EQ(random.k1, 7u);

  auto h2 = core::request_for(
      models::TagsH2Params::from_ratio(11.0, 0.93, 10.0, 0.1, 25.0));
  const auto sq = core::baseline_for(PolicyKind::kShortestQueueH2, h2);
  EXPECT_EQ(sq.policy, PolicyKind::kShortestQueueH2);
  EXPECT_EQ(sq.lambda, h2.lambda);
  EXPECT_EQ(sq.alpha, h2.alpha);
  EXPECT_EQ(sq.mu1, h2.mu1);
  EXPECT_EQ(sq.mu2, h2.mu2);
  EXPECT_EQ(sq.k1, h2.k1);
}

TEST(CoreScenarioRequest, RateDigestHashesOnlyWhatThePolicyReads) {
  const auto base = small_tags_request();
  const auto base_digest = core::rate_digest(base);

  // A parameter the policy reads moves the digest.
  auto changed = base;
  changed.lambda = 5.5;
  EXPECT_NE(core::rate_digest(changed), base_digest);
  changed = base;
  changed.t = 51.0;
  EXPECT_NE(core::rate_digest(changed), base_digest);

  // kRandom ignores the TAGS timer and H2 split entirely.
  auto random = core::baseline_for(PolicyKind::kRandom, base);
  const auto random_digest = core::rate_digest(random);
  random.t = 99.0;
  random.alpha = 0.5;
  random.mu1 = 3.0;
  random.mu2 = 1.0;
  EXPECT_EQ(core::rate_digest(random), random_digest);
  random.mu = 11.0;
  EXPECT_NE(core::rate_digest(random), random_digest);

  // Different policies at the same point never collide on the digest.
  EXPECT_NE(core::rate_digest(core::baseline_for(PolicyKind::kRandom, base)),
            core::rate_digest(core::baseline_for(PolicyKind::kRoundRobin, base)));
}

TEST(CoreScenarioRequest, StructureKeyNamesPolicyAndDimensions) {
  const auto base = small_tags_request();
  EXPECT_EQ(core::structure_key(base), "tags/n2/k3.3");
  auto other = base;
  other.t = 77.0;  // rates do not affect structural identity
  EXPECT_EQ(core::structure_key(other), core::structure_key(base));
  other.k2 = 4;
  EXPECT_NE(core::structure_key(other), core::structure_key(base));
}

TEST(CoreScenarioRequest, OneShotMatchesDirectModelSolve) {
  const auto req = small_tags_request();
  const auto outcome = core::evaluate_scenario(req);
  ASSERT_TRUE(outcome.solve.converged);
  EXPECT_GT(outcome.metrics.throughput, 0.0);
  EXPECT_FALSE(outcome.pi.empty());
  EXPECT_NE(outcome.structure_digest, 0u);

  models::TagsModel model(req.tags_params());
  const auto direct = model.solve({});
  const auto direct_metrics = model.metrics_from(direct.pi);
  EXPECT_DOUBLE_EQ(outcome.metrics.throughput, direct_metrics.throughput);
  EXPECT_DOUBLE_EQ(outcome.metrics.response_time, direct_metrics.response_time);
}

TEST(CoreScenarioRequest, ClosedFormPolicyHasNoChain) {
  auto req = small_tags_request();
  req.policy = PolicyKind::kRandom;
  const auto outcome = core::evaluate_scenario(req);
  EXPECT_TRUE(outcome.pi.empty());
  EXPECT_EQ(outcome.structure_digest, 0u);
  EXPECT_TRUE(outcome.solve.converged);
  EXPECT_GT(outcome.metrics.throughput, 0.0);
}

TEST(CoreScenarioRequest, SlotRebindsAndWarmStartsOnSameStructure) {
  core::ScenarioSlot slot;
  auto req = small_tags_request();
  const auto first = slot.evaluate(req);
  ASSERT_TRUE(first.solve.converged);
  EXPECT_EQ(slot.warm().hits, 0u);

  req.t = 55.0;  // same structure key: rebind + warm start
  const auto second = slot.evaluate(req);
  ASSERT_TRUE(second.solve.converged);
  EXPECT_EQ(second.structure_digest, first.structure_digest);
  EXPECT_GE(slot.warm().hits, 1u);

  // The warm-started answer agrees with a cold one-shot to solver tolerance.
  const auto cold = core::evaluate_scenario(req);
  EXPECT_NEAR(second.metrics.response_time, cold.metrics.response_time, 1e-6);
  EXPECT_NEAR(second.metrics.throughput, cold.metrics.throughput, 1e-6);
}

TEST(CoreScenarioRequest, SlotRebuildsOnStructureChange) {
  core::ScenarioSlot slot;
  auto req = small_tags_request();
  const auto first = slot.evaluate(req);
  req.k1 = 4;
  const auto second = slot.evaluate(req);
  EXPECT_NE(second.structure_digest, first.structure_digest);
  ASSERT_TRUE(second.solve.converged);
}

TEST(CoreScenarioRequest, InvalidParametersThrow) {
  auto req = small_tags_request();
  req.lambda = -1.0;
  EXPECT_THROW((void)core::evaluate_scenario(req), std::invalid_argument);
}

}  // namespace
