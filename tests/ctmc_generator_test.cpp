// The generator-model engine: streaming CSR assembly, rate rebinding on a
// frozen sparsity pattern, per-label reward vectors, and equivalence with
// the classic CtmcBuilder path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctmc/generator.hpp"
#include "ctmc/generator_model.hpp"
#include "ctmc/measures.hpp"
#include "ctmc/reachability.hpp"
#include "ctmc/steady_state.hpp"
#include "models/tags.hpp"
#include "models/tags_h2.hpp"
#include "obs/obs.hpp"

namespace {

using namespace tags;

// A 3-state toy whose sparsity pattern depends on `extra` being non-zero:
// ring 0 -> 1 -> 2 -> 0 at rate r, plus a chord 0 -> 2 when extra > 0.
class RingModel final : public ctmc::GeneratorModel {
 public:
  RingModel(double r, double extra) : r_(r), extra_(extra) {}

  [[nodiscard]] ctmc::index_t state_space_size() const override { return 3; }

  [[nodiscard]] const std::vector<std::string>& transition_labels() const override {
    static const std::vector<std::string> kLabels = {"tau", "step", "chord"};
    return kLabels;
  }

  void for_each_transition(ctmc::index_t s,
                           const ctmc::TransitionSink& emit) const override {
    emit((s + 1) % 3, r_, 1);
    if (s == 0) emit(2, extra_, 2);
  }

  double r_;
  double extra_;
};

void expect_same_csr(const linalg::CsrMatrix& a, const linalg::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (ctmc::index_t i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto bc = b.row_cols(i);
    const auto av = a.row_vals(i);
    const auto bv = b.row_vals(i);
    ASSERT_EQ(ac.size(), bc.size()) << "row " << i;
    for (std::size_t k = 0; k < ac.size(); ++k) {
      EXPECT_EQ(ac[k], bc[k]) << "row " << i;
      EXPECT_EQ(av[k], bv[k]) << "row " << i << " col " << ac[k];  // bit-identical
    }
  }
}

TEST(GeneratorEngine, AssembleMatchesMaterializedBuilderChain) {
  models::TagsParams p;
  p.t = 40.0;
  p.n = 3;
  p.k1 = p.k2 = 4;
  const models::TagsModel m(p);
  const ctmc::Ctmc classic = m.to_ctmc();
  ASSERT_EQ(classic.n_states(), m.n_states());
  expect_same_csr(m.chain().generator(), classic.generator());
  EXPECT_TRUE(m.chain().is_valid_generator());
  EXPECT_TRUE(ctmc::is_irreducible(m.chain()));
}

TEST(GeneratorEngine, RebindReproducesFreshAssembleBitForBit) {
  models::TagsParams p;
  p.t = 30.0;
  models::TagsModel rebound(p);
  p.t = 51.0;
  rebound.rebind(p);
  const models::TagsModel fresh(p);

  expect_same_csr(rebound.chain().generator(), fresh.chain().generator());
  EXPECT_EQ(rebound.chain().max_exit_rate(), fresh.chain().max_exit_rate());

  const auto& labels = rebound.transition_labels();
  for (std::size_t l = 0; l < labels.size(); ++l) {
    const auto ra = rebound.chain().label_rewards(static_cast<ctmc::label_t>(l));
    const auto rb = fresh.chain().label_rewards(static_cast<ctmc::label_t>(l));
    ASSERT_EQ(ra.size(), rb.size()) << labels[l];
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].state, rb[i].state) << labels[l];
      EXPECT_EQ(ra[i].rate, rb[i].rate) << labels[l];
    }
  }
}

TEST(GeneratorEngine, RebindRoundTripRestoresOriginalValues) {
  models::TagsH2Params p = models::TagsH2Params::from_ratio(11.0, 0.99, 100.0, 0.1, 16.0);
  models::TagsH2Model m(p);
  const linalg::CsrMatrix before = m.chain().generator();
  auto shifted = p;
  shifted.t = 23.0;
  shifted.lambda = 8.0;
  m.rebind(shifted);
  m.rebind(p);
  expect_same_csr(m.chain().generator(), before);
}

TEST(GeneratorEngine, StructuralParameterChangeThrows) {
  models::TagsParams p;
  models::TagsModel m(p);
  auto bigger = p;
  bigger.k1 = p.k1 + 1;
  EXPECT_THROW(m.rebind(bigger), std::invalid_argument);
  auto finer = p;
  finer.n = p.n + 1;
  EXPECT_THROW(m.rebind(finer), std::invalid_argument);
}

TEST(GeneratorEngine, PatternMismatchOnRebindThrowsLogicError) {
  // Assembled without the chord: rebinding with the chord present emits
  // outside the frozen pattern.
  RingModel model(2.0, 0.0);
  ctmc::GeneratorCtmc engine;
  engine.assemble(model);
  EXPECT_EQ(engine.nnz(), 6);  // 3 off-diagonals + 3 diagonals
  model.extra_ = 1.0;
  EXPECT_THROW(engine.rebind(model), std::logic_error);

  // The other direction (an edge vanishing) only zeroes a slot: legal.
  RingModel with_chord(2.0, 0.5);
  ctmc::GeneratorCtmc engine2;
  engine2.assemble(with_chord);
  with_chord.extra_ = 0.0;
  EXPECT_NO_THROW(engine2.rebind(with_chord));
  EXPECT_TRUE(engine2.is_valid_generator());
}

TEST(GeneratorEngine, DuplicateEmissionsCoalesceAndSelfLoopsStayOut) {
  // Both ring step and chord leave state 0 toward 2 when r == extra picks
  // the same column twice? No — step from 0 goes to 1. Use a dedicated toy.
  class DupModel final : public ctmc::GeneratorModel {
   public:
    [[nodiscard]] ctmc::index_t state_space_size() const override { return 2; }
    [[nodiscard]] const std::vector<std::string>& transition_labels() const override {
      static const std::vector<std::string> kLabels = {"tau", "a", "b"};
      return kLabels;
    }
    void for_each_transition(ctmc::index_t s,
                             const ctmc::TransitionSink& emit) const override {
      if (s == 0) {
        emit(1, 1.5, 1);
        emit(1, 2.5, 2);  // duplicate (0, 1) edge under a different label
        emit(0, 9.0, 2);  // self-loop: reward only, not in Q
      } else {
        emit(0, 4.0, 1);
      }
    }
  };
  DupModel model;
  ctmc::GeneratorCtmc engine;
  engine.assemble(model);
  const auto& q = engine.generator();
  // Row 0: diagonal -4 and the coalesced (0,1) entry 1.5 + 2.5; the
  // self-loop contributes to neither.
  ASSERT_EQ(q.row_cols(0).size(), 2u);
  EXPECT_EQ(q.at(0, 1), 4.0);
  EXPECT_EQ(q.at(0, 0), -4.0);
  EXPECT_TRUE(engine.is_valid_generator());
  // ...but the self-loop still counts toward label "b" throughput.
  const std::vector<double> pi = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(engine.throughput(pi, "b"), 0.5 * (2.5 + 9.0));
  EXPECT_DOUBLE_EQ(engine.throughput(pi, "a"), 0.5 * 1.5 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(engine.throughput(pi, "no-such-label"), 0.0);
}

TEST(GeneratorEngine, RewardThroughputMatchesClassicTransitionScan) {
  models::TagsParams p;
  p.t = 51.0;
  p.n = 4;
  p.k1 = p.k2 = 6;
  const models::TagsModel m(p);
  const auto solved = m.solve();
  ASSERT_TRUE(solved.converged);
  const ctmc::Ctmc classic = m.to_ctmc();
  for (const std::string& label :
       {std::string("arrival"), std::string("service1"), std::string("service2"),
        std::string("timeout"), std::string("timeout_lost"), std::string("loss1")}) {
    const double gen = m.chain().throughput(solved.pi, label);
    const double cls = ctmc::throughput(classic, solved.pi, label);
    EXPECT_NEAR(gen, cls, 1e-9 * std::max(1.0, std::abs(cls))) << label;
  }
}

TEST(GeneratorEngine, SteadyStateOnCsrMatchesCtmcOverload) {
  models::TagsParams p;
  p.n = 2;
  p.k1 = p.k2 = 3;
  const models::TagsModel m(p);
  const auto from_csr = ctmc::steady_state(m.chain().generator());
  const auto from_ctmc = ctmc::steady_state(m.to_ctmc());
  ASSERT_TRUE(from_csr.converged);
  ASSERT_TRUE(from_ctmc.converged);
  ASSERT_EQ(from_csr.pi.size(), from_ctmc.pi.size());
  for (std::size_t i = 0; i < from_csr.pi.size(); ++i) {
    EXPECT_NEAR(from_csr.pi[i], from_ctmc.pi[i], 1e-10);
  }
}

#if TAGS_OBS_ENABLED
TEST(GeneratorEngine, WarmStartCountersTrackReuse) {
  models::TagsParams p;
  p.n = 2;
  p.k1 = p.k2 = 3;
  const models::TagsModel m(p);
  obs::Counter hits("ctmc.steady_state.warm_start.hits");
  obs::Counter misses("ctmc.steady_state.warm_start.misses");
  obs::Counter cleared("ctmc.steady_state.warm_start.cleared");

  const auto cold = m.solve();
  ASSERT_TRUE(cold.converged);

  ctmc::SteadyStateOptions opts;
  opts.initial_guess = cold.pi;
  const auto h0 = hits.value();
  (void)m.solve(opts);
  EXPECT_EQ(hits.value(), h0 + 1);

  opts.initial_guess = linalg::Vec{0.5, 0.5};  // wrong dimension
  const auto m0 = misses.value();
  (void)m.solve(opts);
  EXPECT_EQ(misses.value(), m0 + 1);

  // reconcile_warm_start drops the stale guess before the solver sees it.
  const auto c0 = cleared.value();
  ctmc::reconcile_warm_start(opts, m.n_states());
  EXPECT_FALSE(opts.initial_guess.has_value());
  EXPECT_EQ(cleared.value(), c0 + 1);
  opts.initial_guess = cold.pi;
  ctmc::reconcile_warm_start(opts, m.n_states());
  EXPECT_TRUE(opts.initial_guess.has_value());
  EXPECT_EQ(cleared.value(), c0 + 1);
}
#endif

TEST(GeneratorEngine, RebindIsCheaperThanAssembleOnCounters) {
#if TAGS_OBS_ENABLED
  obs::Counter assembles("ctmc.generator.assembles");
  obs::Counter rebinds("ctmc.generator.rebinds");
  const auto a0 = assembles.value();
  const auto r0 = rebinds.value();
#endif
  models::TagsParams p;
  models::TagsModel m(p);
  for (double t : {20.0, 30.0, 40.0}) {
    p.t = t;
    m.rebind(p);
  }
#if TAGS_OBS_ENABLED
  EXPECT_EQ(assembles.value(), a0 + 1);
  EXPECT_EQ(rebinds.value(), r0 + 3);
#endif
  EXPECT_TRUE(m.chain().is_valid_generator());
}

}  // namespace
